// Package bruteforce implements the naive exact baseline: scan every
// candidate subsequence and compute its DTW distance to the query. It is
// the ground truth for the accuracy experiments (E2) and the slow anchor of
// the latency experiments (E1), and the oracle the engine's exact mode is
// property-tested against.
package bruteforce

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/ts"
)

// Result is a scan result.
type Result struct {
	Ref ts.SubSeq
	// Dist is the raw DTW distance.
	Dist float64
	// Score is the ranking value: Dist, or Dist/max(len(q), candidate
	// length) when Options.LengthNormalize is set. Results order by Score.
	Score float64
}

// Options configures a scan.
type Options struct {
	// Band is the Sakoe-Chiba width (negative = unconstrained); must match
	// the engine's band for comparable results.
	Band int
	// MinLength/MaxLength bound candidate lengths; zero means "len(query)"
	// for both, i.e. the classic fixed-length subsequence search.
	MinLength, MaxLength int
	// EarlyAbandon keeps a running best and abandons hopeless candidates;
	// disable to measure the fully naive cost.
	EarlyAbandon bool
	// LengthNormalize ranks candidates by DTW / max(len(q), candidate
	// length), matching the engine's LengthNorm option.
	LengthNormalize bool
	// ExcludeSeries skips candidate series indices (self-match avoidance).
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window.
	ExcludeOverlap ts.SubSeq
}

// ErrNoCandidates is returned when no window satisfies the constraints.
var ErrNoCandidates = errors.New("bruteforce: no candidate windows")

// BestMatch scans every candidate window and returns the DTW-closest one.
func BestMatch(d *ts.Dataset, q []float64, opts Options) (Result, error) {
	res, err := KBest(d, q, 1, opts)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// KBest returns the k DTW-closest candidate windows, best first.
func KBest(d *ts.Dataset, q []float64, k int, opts Options) ([]Result, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("bruteforce: query length %d too short", len(q))
	}
	if k < 1 {
		return nil, fmt.Errorf("bruteforce: k = %d must be >= 1", k)
	}
	minL, maxL := opts.MinLength, opts.MaxLength
	if minL <= 0 {
		minL = len(q)
	}
	if maxL <= 0 {
		maxL = len(q)
	}
	norm := func(l int) float64 {
		if !opts.LengthNormalize {
			return 1
		}
		if len(q) > l {
			return float64(len(q))
		}
		return float64(l)
	}
	var best []Result
	worstScore := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Score
	}
	insert := func(r Result) {
		if len(best) < k {
			best = append(best, r)
		} else if r.Score < best[len(best)-1].Score {
			best[len(best)-1] = r
		} else {
			return
		}
		for i := len(best) - 1; i > 0 && best[i].Score < best[i-1].Score; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
	}
	for si, s := range d.Series {
		if opts.ExcludeSeries != nil && opts.ExcludeSeries[si] {
			continue
		}
		for l := minL; l <= maxL && l <= s.Len(); l++ {
			nl := norm(l)
			for st := 0; st+l <= s.Len(); st++ {
				ref := ts.SubSeq{Series: si, Start: st, Length: l}
				if opts.ExcludeOverlap.Length > 0 && ref.Overlaps(opts.ExcludeOverlap) {
					continue
				}
				w := s.Values[st : st+l]
				var dd float64
				if opts.EarlyAbandon {
					dd = dist.DTWEarlyAbandon(q, w, opts.Band, worstScore()*nl)
					if math.IsInf(dd, 1) {
						continue
					}
				} else {
					dd = dist.DTWBanded(q, w, opts.Band)
				}
				insert(Result{Ref: ref, Dist: dd, Score: dd / nl})
			}
		}
	}
	if len(best) == 0 {
		return nil, ErrNoCandidates
	}
	return best, nil
}
