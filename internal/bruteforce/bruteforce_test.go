package bruteforce

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/ts"
)

func walkDataset(t testing.TB, n, length int, seed int64) *ts.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("bf")
	for i := 0; i < n; i++ {
		vals := make([]float64, length)
		v := rng.Float64()
		for j := range vals {
			v += rng.NormFloat64() * 0.1
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries("w"+strconv.Itoa(i), vals))
	}
	return d
}

func TestBestMatchSelfQuery(t *testing.T) {
	d := walkDataset(t, 4, 30, 1)
	q := d.Series[1].Values[5:13]
	r, err := BestMatch(d, q, Options{Band: -1, EarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist != 0 {
		t.Fatalf("self query dist = %g", r.Dist)
	}
	if r.Ref.Length != len(q) {
		t.Fatalf("default search length = %d, want %d", r.Ref.Length, len(q))
	}
}

func TestEarlyAbandonMatchesNaive(t *testing.T) {
	d := walkDataset(t, 4, 25, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		qlen := 4 + rng.Intn(8)
		q := make([]float64, qlen)
		v := rng.Float64()
		for i := range q {
			v += rng.NormFloat64() * 0.1
			q[i] = v
		}
		for _, band := range []int{-1, 2} {
			fast, err := BestMatch(d, q, Options{Band: band, EarlyAbandon: true, MinLength: 4, MaxLength: 10})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := BestMatch(d, q, Options{Band: band, EarlyAbandon: false, MinLength: 4, MaxLength: 10})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fast.Dist-slow.Dist) > 1e-9 {
				t.Fatalf("early abandon changed the answer: %g vs %g", fast.Dist, slow.Dist)
			}
		}
	}
}

func TestKBestOrdered(t *testing.T) {
	d := walkDataset(t, 5, 30, 4)
	q := d.Series[0].Values[0:8]
	res, err := KBest(d, q, 6, Options{Band: -1, EarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results out of order")
		}
	}
	// Distances recompute correctly.
	for _, r := range res {
		if got := dist.DTW(q, r.Ref.Values(d)); math.Abs(got-r.Dist) > 1e-9 {
			t.Fatalf("distance mismatch: %g vs %g", got, r.Dist)
		}
	}
}

func TestExclusions(t *testing.T) {
	d := walkDataset(t, 3, 20, 5)
	self := ts.SubSeq{Series: 0, Start: 2, Length: 6}
	q := self.Values(d)
	r, err := BestMatch(d, q, Options{Band: -1, EarlyAbandon: true, ExcludeOverlap: self})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ref.Overlaps(self) {
		t.Fatal("overlap exclusion violated")
	}
	r2, err := BestMatch(d, q, Options{Band: -1, EarlyAbandon: true, ExcludeSeries: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ref.Series == 0 {
		t.Fatal("series exclusion violated")
	}
}

func TestErrors(t *testing.T) {
	d := walkDataset(t, 2, 10, 6)
	if _, err := BestMatch(d, []float64{1}, Options{}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, err := KBest(d, []float64{1, 2}, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := BestMatch(d, make([]float64, 50), Options{}); err != ErrNoCandidates {
		t.Fatalf("oversized query: err = %v, want ErrNoCandidates", err)
	}
}

func TestVariableLengthSearch(t *testing.T) {
	d := walkDataset(t, 3, 20, 7)
	q := d.Series[0].Values[0:6]
	r, err := BestMatch(d, q, Options{Band: -1, EarlyAbandon: true, MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ref.Length < 4 || r.Ref.Length > 9 {
		t.Fatalf("length constraint violated: %d", r.Ref.Length)
	}
	if r.Dist != 0 {
		t.Fatalf("self window should win at 0, got %g", r.Dist)
	}
}
