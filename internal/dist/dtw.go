package dist

import "math"

// DTW returns the unconstrained L1 dynamic-time-warping distance: the
// minimum over all warping paths of the summed point costs |a_i - b_j|.
// Equivalent to DTWBanded(a, b, -1).
func DTW(a, b []float64) float64 {
	return dtwCore(a, b, -1, math.Inf(1), false)
}

// DTWBanded is DTW under a Sakoe-Chiba band: paths may only visit cells
// with |i-j| <= EffectiveBand(len(a), len(b), band). A negative band is
// unconstrained; a non-negative band is widened to at least the length
// difference so a path always exists.
func DTWBanded(a, b []float64, band int) float64 {
	return dtwCore(a, b, band, math.Inf(1), false)
}

// DTWEarlyAbandon is DTWBanded with early abandoning against an upper
// bound: after each DP row, if the row minimum exceeds ub the computation
// stops and +Inf is returned. Every warping path visits every row and
// point costs are non-negative, so a row minimum above ub certifies
// DTW > ub. When no row triggers abandoning the exact distance is
// returned — which can still exceed ub (only full rows are tested, not
// the final cell); callers filtering on ub must compare explicitly.
func DTWEarlyAbandon(a, b []float64, band int, ub float64) float64 {
	return dtwCore(a, b, band, ub, false)
}

// DTWSq is DTWBanded with the squared point cost (a_i - b_j)², the
// UCR-Suite convention used by internal/ucrsuite's z-normalized mode. The
// result is the minimal summed squared cost, not its square root.
func DTWSq(a, b []float64, band int) float64 {
	return dtwCore(a, b, band, math.Inf(1), true)
}

// DTWSqEarlyAbandon is DTWSq with the row-minimum early abandoning of
// DTWEarlyAbandon.
func DTWSqEarlyAbandon(a, b []float64, band int, ub float64) float64 {
	return dtwCore(a, b, band, ub, true)
}

// dtwCore runs the banded DTW dynamic program on two rolling rows.
// dp(i,j) = cost(a_i, b_j) + min(dp(i-1,j), dp(i-1,j-1), dp(i,j-1)),
// restricted to |i-j| <= w. Rows are swapped, never reallocated, and one
// +Inf sentinel is written on each side of a row's band window so the next
// row (whose window shifts by at most one) never reads a stale cell.
func dtwCore(a, b []float64, band int, ub float64, squared bool) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	w := EffectiveBand(n, m, band)
	inf := math.Inf(1)

	buf := make([]float64, 2*m)
	prev, cur := buf[:m], buf[m:]

	// Row 0: cumulative costs along the first row, inside the band.
	hi := w
	if hi > m-1 {
		hi = m - 1
	}
	acc := 0.0
	a0 := a[0]
	for j := 0; j <= hi; j++ {
		d := a0 - b[j]
		if d < 0 {
			d = -d
		}
		if squared {
			d *= d
		}
		acc += d
		prev[j] = acc
	}
	if hi+1 < m {
		prev[hi+1] = inf
	}
	// Row 0's minimum is its first cell (the row is a non-decreasing
	// cumulative sum).
	if prev[0] > ub {
		return inf
	}

	for i := 1; i < n; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi = i + w
		if hi > m-1 {
			hi = m - 1
		}
		if lo > 0 {
			cur[lo-1] = inf
		}
		rowMin := inf
		ai := a[i]
		for j := lo; j <= hi; j++ {
			best := prev[j]
			if j > 0 {
				if diag := prev[j-1]; diag < best {
					best = diag
				}
				if left := cur[j-1]; left < best {
					best = left
				}
			}
			d := ai - b[j]
			if d < 0 {
				d = -d
			}
			if squared {
				d *= d
			}
			v := best + d
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi+1 < m {
			cur[hi+1] = inf
		}
		if rowMin > ub {
			return inf
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}
