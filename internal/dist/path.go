package dist

import "math"

// PathStep is one aligned index pair of a warping path: query index I
// matched to candidate index J.
type PathStep struct {
	I, J int
}

// WarpPath is a full DTW alignment: monotonically non-decreasing index
// pairs from {0,0} to {len(q)-1, len(c)-1}, each step advancing I, J, or
// both by one. It is the raw material of the demo's warped-points and
// connected-scatter views.
type WarpPath []PathStep

// MaxMultiplicityJ returns the largest number of path steps sharing one J
// (candidate) index — how many query points the most-reused candidate
// point absorbs. This is the μ of the engine's group-transfer bound
// DTW(q,s) <= DTW(q,rep) + μ·ED(rep,s): replacing the representative by a
// member re-prices each representative point at most μ times. Returns 0
// for an empty path.
func (p WarpPath) MaxMultiplicityJ() int {
	best, run := 0, 0
	for i, s := range p {
		if i > 0 && s.J != p[i-1].J {
			run = 0
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}

// MaxMultiplicityI is MaxMultiplicityJ for the I (query) side: the largest
// number of candidate points aligned to one query point.
func (p WarpPath) MaxMultiplicityI() int {
	best, run := 0, 0
	for i, s := range p {
		if i > 0 && s.I != p[i-1].I {
			run = 0
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}

// Valid reports whether p is a structurally well-formed warping path for
// a query of length lenQ and a candidate of length lenC: anchored at
// {0,0} and {lenQ-1, lenC-1}, with every step advancing I, J, or both by
// exactly one. An empty path is invalid.
func (p WarpPath) Valid(lenQ, lenC int) bool {
	if len(p) == 0 || lenQ <= 0 || lenC <= 0 {
		return false
	}
	if p[0] != (PathStep{0, 0}) || p[len(p)-1] != (PathStep{lenQ - 1, lenC - 1}) {
		return false
	}
	for i := 1; i < len(p); i++ {
		di, dj := p[i].I-p[i-1].I, p[i].J-p[i-1].J
		if di < 0 || di > 1 || dj < 0 || dj > 1 || di+dj == 0 {
			return false
		}
	}
	return true
}

// DTWPath returns the banded L1 DTW distance together with one optimal
// warping path. For non-empty inputs the distance equals
// DTWBanded(a, b, band) exactly; the
// path prefers diagonal steps on cost ties. Unlike the rolling-row
// variants this materializes the full O(n·m) DP matrix to backtrack the
// alignment, so it is reserved for final, user-facing results (the engine
// computes paths only for the matches it returns). Empty input returns
// (+Inf, nil).
func DTWPath(a, b []float64, band int) (float64, WarpPath) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1), nil
	}
	w := EffectiveBand(n, m, band)
	inf := math.Inf(1)

	dp := make([]float64, n*m)
	for i := range dp {
		dp[i] = inf
	}
	for i := 0; i < n; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi := i + w
		if hi > m-1 {
			hi = m - 1
		}
		ai := a[i]
		for j := lo; j <= hi; j++ {
			d := ai - b[j]
			if d < 0 {
				d = -d
			}
			if i == 0 && j == 0 {
				dp[0] = d
				continue
			}
			best := inf
			if i > 0 {
				if v := dp[(i-1)*m+j]; v < best {
					best = v
				}
				if j > 0 {
					if v := dp[(i-1)*m+j-1]; v < best {
						best = v
					}
				}
			}
			if j > 0 {
				if v := dp[i*m+j-1]; v < best {
					best = v
				}
			}
			dp[i*m+j] = best + d
		}
	}

	// Backtrack from the corner, preferring diagonal, then up, then left;
	// the minimal predecessor is by construction on an optimal path.
	path := make(WarpPath, 0, n+m)
	i, j := n-1, m-1
	for {
		path = append(path, PathStep{I: i, J: j})
		if i == 0 && j == 0 {
			break
		}
		bi, bj, best := i, j, inf
		if i > 0 && j > 0 {
			if v := dp[(i-1)*m+j-1]; v < best {
				bi, bj, best = i-1, j-1, v
			}
		}
		if i > 0 {
			if v := dp[(i-1)*m+j]; v < best {
				bi, bj, best = i-1, j, v
			}
		}
		if j > 0 {
			if v := dp[i*m+j-1]; v < best {
				bi, bj, best = i, j-1, v
			}
		}
		i, j = bi, bj
	}
	// Reverse into chronological order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return dp[n*m-1], path
}
