package dist

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestEDKnown(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{[]float64{0, 0}, []float64{1, -2}, 3},
		{[]float64{5}, []float64{2}, 3},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := ED(c.a, c.b); !almost(got, c.want, 1e-12) {
			t.Errorf("ED(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestEDLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ED accepted mismatched lengths")
		}
	}()
	ED([]float64{1}, []float64{1, 2})
}

func TestEDEarlyAbandon(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	if got := EDEarlyAbandon(a, b, 10); !almost(got, 4, 1e-12) {
		t.Fatalf("unabandoned = %g, want 4", got)
	}
	if got := EDEarlyAbandon(a, b, 2.5); !math.IsInf(got, 1) {
		t.Fatalf("abandoned = %g, want +Inf", got)
	}
	// ub exactly equal to the distance must not abandon (abandon is strict).
	if got := EDEarlyAbandon(a, b, 4); !almost(got, 4, 1e-12) {
		t.Fatalf("ub == dist returned %g, want 4", got)
	}
}

func TestLBKimKnown(t *testing.T) {
	if got := LBKim([]float64{1, 5, 2}, []float64{3, 9, 4}); !almost(got, 4, 1e-12) {
		t.Fatalf("LBKim = %g, want 4", got)
	}
	// Unequal lengths use each side's own endpoints.
	if got := LBKim([]float64{1, 2}, []float64{1, 7, 8}); !almost(got, 6, 1e-12) {
		t.Fatalf("LBKim unequal = %g, want 6", got)
	}
	// A single-point pair is one alignment step, counted once.
	if got := LBKim([]float64{3}, []float64{5}); !almost(got, 2, 1e-12) {
		t.Fatalf("LBKim single = %g, want 2", got)
	}
	if got := LBKim(nil, []float64{1}); got != 0 {
		t.Fatalf("LBKim empty = %g, want 0", got)
	}
}

func TestEffectiveBand(t *testing.T) {
	cases := []struct {
		lenQ, lenC, band, want int
	}{
		{10, 10, 3, 3},     // equal lengths keep the configured band
		{10, 10, 0, 0},     // band 0 with equal lengths is the diagonal
		{10, 14, 0, 4},     // widened to the length difference
		{14, 10, 2, 4},     // symmetric widening
		{10, 14, 6, 6},     // band already wide enough
		{10, 14, -1, 14},   // unconstrained: max length
		{128, 64, -5, 128}, // any negative means unconstrained
	}
	for _, c := range cases {
		if got := EffectiveBand(c.lenQ, c.lenC, c.band); got != c.want {
			t.Errorf("EffectiveBand(%d, %d, %d) = %d, want %d", c.lenQ, c.lenC, c.band, got, c.want)
		}
	}
}

func TestResample(t *testing.T) {
	in := []float64{0, 1, 2, 3}
	// Identity length returns the same values.
	same := Resample(in, 4)
	for i := range in {
		if !almost(same[i], in[i], 1e-12) {
			t.Fatalf("identity resample differs at %d: %g", i, same[i])
		}
	}
	// Upsampling a linear ramp stays linear, endpoints preserved.
	up := Resample(in, 7)
	if len(up) != 7 {
		t.Fatalf("len = %d, want 7", len(up))
	}
	for i, v := range up {
		want := 3 * float64(i) / 6
		if !almost(v, want, 1e-12) {
			t.Fatalf("up[%d] = %g, want %g", i, v, want)
		}
	}
	// Downsampling preserves endpoints.
	down := Resample(in, 2)
	if !almost(down[0], 0, 1e-12) || !almost(down[1], 3, 1e-12) {
		t.Fatalf("down = %v, want [0 3]", down)
	}
	// Degenerate shapes.
	if got := Resample([]float64{7}, 3); got[0] != 7 || got[1] != 7 || got[2] != 7 {
		t.Fatalf("constant expand = %v", got)
	}
	if got := Resample(in, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("n=1 = %v", got)
	}
	if got := Resample(in, 0); got != nil {
		t.Fatalf("n=0 = %v, want nil", got)
	}
	if got := Resample(nil, 3); len(got) != 3 {
		t.Fatalf("empty input = %v, want 3 zeros", got)
	}
}

func TestEnvelopeShapeAndPinning(t *testing.T) {
	q := []float64{0, 4, 1, 3, 2}
	u, l := Envelope(q, 5, 1)
	if len(u) != 5 || len(l) != 5 {
		t.Fatalf("envelope lengths = %d, %d", len(u), len(l))
	}
	// Corners are pinned to the exact endpoint values.
	if u[0] != 0 || l[0] != 0 || u[4] != 2 || l[4] != 2 {
		t.Fatalf("corners not pinned: u=%v l=%v", u, l)
	}
	// Interior positions are windowed min/max over |i-j| <= 1.
	wantU := []float64{0, 4, 4, 3, 2}
	wantL := []float64{0, 0, 1, 1, 2}
	for j := range u {
		if u[j] != wantU[j] || l[j] != wantL[j] {
			t.Fatalf("envelope j=%d: u=%g l=%g, want u=%g l=%g", j, u[j], l[j], wantU[j], wantL[j])
		}
	}
	// Unconstrained band: interior = global min/max.
	u, l = Envelope(q, 5, -1)
	for j := 1; j < 4; j++ {
		if u[j] != 4 || l[j] != 0 {
			t.Fatalf("unconstrained interior j=%d: u=%g l=%g", j, u[j], l[j])
		}
	}
	// Projection onto a different output length widens the band.
	u, l = Envelope(q, 8, 0)
	if len(u) != 8 || u[0] != 0 || u[7] != 2 {
		t.Fatalf("projected envelope = %v", u)
	}
	if up, lo := Envelope(nil, 4, 1); up != nil || lo != nil {
		t.Fatal("empty input should return nil envelopes")
	}
}

func TestLBKeoghKnownAndAbandon(t *testing.T) {
	u := []float64{1, 2, 3}
	l := []float64{0, 1, 2}
	c := []float64{2, 0.5, 2.5} // hinges: 1, 0.5, 0
	if got := LBKeogh(c, u, l, math.Inf(1)); !almost(got, 1.5, 1e-12) {
		t.Fatalf("LBKeogh = %g, want 1.5", got)
	}
	if got := LBKeogh(c, u, l, 0.9); !math.IsInf(got, 1) {
		t.Fatalf("abandoned LBKeogh = %g, want +Inf", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LBKeogh accepted mismatched lengths")
		}
	}()
	LBKeogh(c, u[:2], l, 1)
}

func TestDTWKnown(t *testing.T) {
	// Identical series: zero.
	if got := DTW([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("self DTW = %g", got)
	}
	// Warping absorbs a repeated point: [0,3] vs [0,0,3] aligns perfectly.
	if got := DTW([]float64{0, 3}, []float64{0, 0, 3}); got != 0 {
		t.Fatalf("warped DTW = %g, want 0", got)
	}
	// Hand-computed small case (L1):
	// a=[0,1], b=[2,3]: path (0,0)(1,1) costs 2+2=4; no cheaper path.
	if got := DTW([]float64{0, 1}, []float64{2, 3}); !almost(got, 4, 1e-12) {
		t.Fatalf("DTW = %g, want 4", got)
	}
	// DTW <= ED for equal lengths (diagonal is one admissible path).
	a := []float64{0, 2, 0, 2, 0}
	b := []float64{2, 0, 2, 0, 2}
	if dtw, ed := DTW(a, b), ED(a, b); dtw > ed+1e-12 {
		t.Fatalf("DTW %g > ED %g", dtw, ed)
	}
	// Empty-input convention.
	if got := DTW(nil, []float64{1}); !math.IsInf(got, 1) {
		t.Fatalf("DTW(nil, x) = %g, want +Inf", got)
	}
	if got := DTW(nil, nil); got != 0 {
		t.Fatalf("DTW(nil, nil) = %g, want 0", got)
	}
}

func TestDTWBandMonotone(t *testing.T) {
	a := []float64{0, 1, 4, 2, 1, 0, 3, 5}
	b := []float64{1, 0, 2, 4, 1, 1, 5, 3}
	prev := math.Inf(1)
	for _, band := range []int{0, 1, 2, 3, 7, -1} {
		d := DTWBanded(a, b, band)
		if d > prev+1e-12 {
			t.Fatalf("widening the band to %d increased DTW: %g > %g", band, d, prev)
		}
		prev = d
	}
	// Band 0 on equal lengths is exactly the pointwise L1 distance.
	if d0 := DTWBanded(a, b, 0); !almost(d0, ED(a, b), 1e-12) {
		t.Fatalf("band-0 DTW %g != ED %g", d0, ED(a, b))
	}
}

func TestDTWSqKnown(t *testing.T) {
	a := []float64{0, 1}
	b := []float64{2, 3}
	// Same path as the L1 case: 2² + 2² = 8, no square root.
	if got := DTWSq(a, b, -1); !almost(got, 8, 1e-12) {
		t.Fatalf("DTWSq = %g, want 8", got)
	}
	if got := DTWSqEarlyAbandon(a, b, -1, 1); !math.IsInf(got, 1) {
		t.Fatalf("DTWSqEarlyAbandon = %g, want +Inf", got)
	}
}

func TestDTWEarlyAbandon(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{4, 3, 2, 1, 0}
	exact := DTWBanded(a, b, 2)
	if got := DTWEarlyAbandon(a, b, 2, math.Inf(1)); !almost(got, exact, 1e-12) {
		t.Fatalf("unbounded early abandon = %g, want %g", got, exact)
	}
	if got := DTWEarlyAbandon(a, b, 2, exact*0.25); !math.IsInf(got, 1) {
		t.Fatalf("tight bound returned %g, want +Inf", got)
	}
}

func TestDTWPathProperties(t *testing.T) {
	a := []float64{0, 1, 2, 1, 0}
	b := []float64{0, 0, 1, 2, 1, 0}
	for _, band := range []int{-1, 1, 3} {
		d, path := DTWPath(a, b, band)
		if !almost(d, DTWBanded(a, b, band), 1e-12) {
			t.Fatalf("band %d: path dist %g != DTWBanded %g", band, d, DTWBanded(a, b, band))
		}
		if !path.Valid(len(a), len(b)) {
			t.Fatalf("band %d: invalid path %v", band, path)
		}
		// The path respects the band and re-prices to the same total.
		w := EffectiveBand(len(a), len(b), band)
		sum := 0.0
		for _, s := range path {
			if s.I-s.J > w || s.J-s.I > w {
				t.Fatalf("band %d: step %v outside band %d", band, s, w)
			}
			sum += math.Abs(a[s.I] - b[s.J])
		}
		if !almost(sum, d, 1e-12) {
			t.Fatalf("band %d: path cost %g != dist %g", band, sum, d)
		}
	}
	if d, p := DTWPath(nil, []float64{1}, -1); !math.IsInf(d, 1) || p != nil {
		t.Fatal("empty DTWPath convention violated")
	}
}

func TestWarpPathValid(t *testing.T) {
	good := WarpPath{{0, 0}, {0, 1}, {1, 2}, {2, 2}}
	if !good.Valid(3, 3) {
		t.Fatal("valid path rejected")
	}
	bad := []struct {
		name string
		p    WarpPath
	}{
		{"empty", nil},
		{"wrong start", WarpPath{{1, 0}, {2, 2}}},
		{"wrong end", WarpPath{{0, 0}, {1, 1}}},
		{"jump", WarpPath{{0, 0}, {2, 2}}},
		{"stall", WarpPath{{0, 0}, {0, 0}, {2, 2}}},
		{"backwards", WarpPath{{0, 0}, {1, 1}, {0, 2}, {2, 2}}},
	}
	for _, c := range bad {
		if c.p.Valid(3, 3) {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestWarpPathMultiplicity(t *testing.T) {
	p := WarpPath{{0, 0}, {1, 0}, {2, 0}, {3, 1}, {3, 2}, {4, 3}}
	if got := p.MaxMultiplicityJ(); got != 3 {
		t.Fatalf("MaxMultiplicityJ = %d, want 3", got)
	}
	if got := p.MaxMultiplicityI(); got != 2 {
		t.Fatalf("MaxMultiplicityI = %d, want 2", got)
	}
	var empty WarpPath
	if empty.MaxMultiplicityJ() != 0 || empty.MaxMultiplicityI() != 0 {
		t.Fatal("empty path multiplicity should be 0")
	}
}
