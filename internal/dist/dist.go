// Package dist implements the distance substrate of the ONEX engine: the
// two-distance design of the paper (Neamtu et al., SIGMOD 2017) where an
// inexpensive pointwise distance compacts the data offline and banded DTW
// with a cascade of lower bounds explores it online.
//
// # Cost convention
//
// Every distance in this package uses the L1 point cost |a-b| and reports
// the plain sum of point costs (no square root):
//
//   - ED(a, b) = Σ |a_i - b_i| over equal-length series — the compaction
//     distance the ONEX base is built with. The name keeps the paper's
//     "ED"; the L1 form is what makes the endpoint bound LBKim and the
//     engine's group-transfer bound (DTW(q,s) ≤ DTW(q,rep) + μ·ED(rep,s),
//     μ = path multiplicity) exact term-by-term.
//   - DTW(a, b) = min over warping paths of Σ |a_i - b_j|.
//
// DTWSq and DTWSqEarlyAbandon are the exceptions: they use the squared
// point cost (a-b)², matching the UCR-Suite convention that
// internal/ucrsuite's z-normalized mode is compared against.
//
// # Pruning cascade
//
// The bounds form a cascade, cheapest first, each one a lower bound on the
// next (see Example_pruningCascade; the first inequality needs a candidate
// of at least two points, see Envelope):
//
//	LBKim ≤ LBKeogh ≤ DTWBanded
//
// LBKim costs O(1), LBKeogh costs O(n) against a precomputed query
// envelope, and DTWBanded costs O(n·w) for band width w. A candidate is
// compared against the current best-so-far distance after each stage and
// dropped as soon as any bound exceeds it; EDEarlyAbandon, LBKeogh and the
// DTW*EarlyAbandon variants additionally abandon mid-computation, returning
// +Inf, once their running sum (for DTW: a full DP row minimum) can no
// longer come in under the caller's upper bound.
//
// All functions are allocation-light: the DTW dynamic program runs on two
// rolling rows (no O(n·m) matrix), and only DTWPath — called on final
// results only, for the demo's warped-points view — materializes the full
// matrix to recover the alignment.
package dist

import "math"

// ED returns the L1 ("ONEX Euclidean") distance Σ|a_i - b_i| between two
// equal-length series. It panics if the lengths differ: callers compare
// same-length windows by construction, so a mismatch is a programming
// error, not a data condition.
func ED(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dist: ED: length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// EDEarlyAbandon is ED with early abandoning: it returns +Inf as soon as
// the running sum exceeds ub, and the exact distance otherwise. Point
// costs are non-negative, so a partial sum above ub certifies ED(a,b) > ub.
func EDEarlyAbandon(a, b []float64, ub float64) float64 {
	if len(a) != len(b) {
		panic("dist: EDEarlyAbandon: length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
		if sum > ub {
			return math.Inf(1)
		}
	}
	return sum
}

// EffectiveBand returns the Sakoe-Chiba width actually used when comparing
// series of lengths lenQ and lenC under the configured band. A negative
// band means unconstrained and yields max(lenQ, lenC), which no |i-j| can
// exceed. A non-negative band is widened to at least |lenQ - lenC|, the
// minimum width for which a warping path between the two lengths exists.
// The same widening is applied by every DTW variant and by Envelope, so
// bounds and distances always agree on the constraint.
func EffectiveBand(lenQ, lenC, band int) int {
	maxLen := lenQ
	if lenC > maxLen {
		maxLen = lenC
	}
	if band < 0 {
		return maxLen
	}
	w := band
	d := lenQ - lenC
	if d < 0 {
		d = -d
	}
	if w < d {
		w = d
	}
	return w
}

// Resample linearly interpolates values onto n evenly spaced positions,
// preserving the first and last points. It is the length normalization
// used by the embedding index (references stored at a pivot length) and
// the visualization fallback for unequal-length comparisons. n <= 0
// returns nil; an empty input returns n zeros; a single value repeats.
func Resample(values []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	switch len(values) {
	case 0:
		return out
	case 1:
		for i := range out {
			out[i] = values[0]
		}
		return out
	}
	if n == 1 {
		out[0] = values[0]
		return out
	}
	scale := float64(len(values)-1) / float64(n-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(values)-1 {
			out[i] = values[len(values)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = values[lo] + frac*(values[lo+1]-values[lo])
	}
	return out
}
