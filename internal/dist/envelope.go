package dist

// Envelope computes the banded Keogh envelope of values, projected onto
// outLen candidate positions: for each candidate index j, upper[j] and
// lower[j] are the max and min of every values[i] a banded warping path
// could align with j, i.e. |i-j| <= EffectiveBand(len(values), outLen,
// band). outLen may differ from len(values); the band is widened
// accordingly, exactly as the DTW variants widen it, so
// LBKeogh(c, upper, lower, ub) <= DTWBanded(values, c, band) for any
// candidate c of length outLen.
//
// The two corner positions are pinned rather than enveloped:
// upper[0] = lower[0] = values[0] and upper[outLen-1] = lower[outLen-1] =
// values[len-1]. Every warping path is anchored at (0,0) and
// (len-1, outLen-1), so the corners of the candidate always pay the exact
// endpoint cost; pinning keeps the bound valid while tightening it, and
// makes the cascade invariant LBKim <= LBKeogh structural (the two corner
// hinge terms are exactly LBKim's two endpoint terms). With outLen == 1
// there is no room to pin both anchors, so the single position stays a
// plain window min/max and only the independent LBKeogh <= DTW guarantee
// holds.
//
// Cost is O(len + outLen) via monotonic deques (the window endpoints are
// non-decreasing in j). Both returned slices have length outLen; an empty
// input or non-positive outLen returns nil slices.
func Envelope(values []float64, outLen, band int) (upper, lower []float64) {
	n := len(values)
	if n == 0 || outLen <= 0 {
		return nil, nil
	}
	w := EffectiveBand(n, outLen, band)
	upper = make([]float64, outLen)
	lower = make([]float64, outLen)

	// maxQ/minQ hold indices into values with monotonically
	// decreasing/increasing values; heads advance as the window's lower
	// edge moves.
	maxQ := make([]int, 0, n)
	minQ := make([]int, 0, n)
	maxHead, minHead := 0, 0
	next := 0 // next values index to enter the window
	for j := 0; j < outLen; j++ {
		lo := j - w
		if lo < 0 {
			lo = 0
		}
		hi := j + w
		if hi > n-1 {
			hi = n - 1
		}
		for ; next <= hi; next++ {
			v := values[next]
			for len(maxQ) > maxHead && values[maxQ[len(maxQ)-1]] <= v {
				maxQ = maxQ[:len(maxQ)-1]
			}
			maxQ = append(maxQ, next)
			for len(minQ) > minHead && values[minQ[len(minQ)-1]] >= v {
				minQ = minQ[:len(minQ)-1]
			}
			minQ = append(minQ, next)
		}
		for maxQ[maxHead] < lo {
			maxHead++
		}
		for minQ[minHead] < lo {
			minHead++
		}
		upper[j] = values[maxQ[maxHead]]
		lower[j] = values[minQ[minHead]]
	}
	if outLen > 1 {
		upper[0], lower[0] = values[0], values[0]
		upper[outLen-1], lower[outLen-1] = values[n-1], values[n-1]
	}
	return upper, lower
}
