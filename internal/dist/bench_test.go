package dist

import (
	"math"
	"testing"
)

func benchPair(n int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(float64(i) * 0.07)
		b[i] = math.Sin(float64(i)*0.07 + 0.5)
	}
	return a, b
}

func BenchmarkDTW_128_Unconstrained(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTW(x, y)
	}
}

func BenchmarkDTW_128_Band4(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTWBanded(x, y, 4)
	}
}

func BenchmarkDTW_1024_Band16(b *testing.B) {
	x, y := benchPair(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTWBanded(x, y, 16)
	}
}

func BenchmarkDTWEarlyAbandon_128_TightBound(b *testing.B) {
	x, y := benchPair(128)
	ub := DTWBanded(x, y, 4) * 0.25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTWEarlyAbandon(x, y, 4, ub)
	}
}

func BenchmarkDTWSq_128_Band4(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTWSq(x, y, 4)
	}
}

func BenchmarkDTWPath_128_Band4(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = DTWPath(x, y, 4)
	}
}

func BenchmarkED_128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ED(x, y)
	}
}

func BenchmarkEnvelope_128_Band4(b *testing.B) {
	x, _ := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Envelope(x, 128, 4)
	}
}

func BenchmarkLBKeogh_128(b *testing.B) {
	x, y := benchPair(128)
	u, l := Envelope(y, 128, 4)
	ub := math.Inf(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = LBKeogh(x, u, l, ub)
	}
}
