package dist_test

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Example_pruningCascade shows the cascade of lower bounds the ONEX engine
// evaluates before paying for a full DTW: LB_Kim (O(1) endpoints), then
// LB_Keogh (O(n) against the query envelope), each a lower bound on the
// banded DTW distance. A candidate is discarded at the first stage whose
// bound already exceeds the best distance found so far, so most candidates
// never reach the O(n·w) dynamic program.
func Example_pruningCascade() {
	query := []float64{0, 1, 2, 3, 2, 1, 0, 1}
	candidate := []float64{0, 2, 4, 6, 4, 2, 0, 2} // same shape, double amplitude
	const band = 2

	lbKim := dist.LBKim(query, candidate)
	upper, lower := dist.Envelope(query, len(candidate), band)
	lbKeogh := dist.LBKeogh(candidate, upper, lower, math.Inf(1))
	dtw := dist.DTWBanded(query, candidate, band)

	fmt.Printf("LB_Kim   = %.1f\n", lbKim)
	fmt.Printf("LB_Keogh = %.1f\n", lbKeogh)
	fmt.Printf("DTW      = %.1f\n", dtw)
	fmt.Println("cascade holds:", lbKim <= lbKeogh && lbKeogh <= dtw)

	// With a best-so-far distance of 2.0, LB_Keogh alone proves this
	// candidate can never win; abandoning returns +Inf without running DTW.
	pruned := dist.LBKeogh(candidate, upper, lower, 2.0)
	fmt.Println("pruned at LB_Keogh:", math.IsInf(pruned, 1))

	// Output:
	// LB_Kim   = 1.0
	// LB_Keogh = 6.0
	// DTW      = 8.0
	// cascade holds: true
	// pruned at LB_Keogh: true
}
