package dist

import "math"

// This file holds the two cheap lower bounds of the pruning cascade
// (LBKim, LBKeogh); Envelope in envelope.go builds the band envelope
// LBKeogh tests against, and the DTW variants in dtw.go are the exact
// distances the bounds prune for.

// LBKim is the O(1) endpoint lower bound |q[0]-c[0]| + |q[last]-c[last]|.
// Every warping path aligns the two first points and the two last points,
// and for equal lengths the identity alignment does too, so LBKim lower
// bounds both DTW(q, c) (any band, any lengths) and ED(q, c). It is the
// cheapest stage of the pruning cascade.
func LBKim(q, c []float64) float64 {
	if len(q) == 0 || len(c) == 0 {
		return 0
	}
	d0 := q[0] - c[0]
	if d0 < 0 {
		d0 = -d0
	}
	if len(q) == 1 && len(c) == 1 {
		// A single-point pair is one path step; counting it twice would
		// overshoot the bound.
		return d0
	}
	dn := q[len(q)-1] - c[len(c)-1]
	if dn < 0 {
		dn = -dn
	}
	return d0 + dn
}

// LBKeogh evaluates the Keogh lower bound of a candidate c against a
// query envelope from Envelope(q, len(c), band): the L1 hinge sum of how
// far each c[j] falls outside [lower[j], upper[j]]. The result lower
// bounds DTWBanded(q, c, band) — every candidate position is aligned with
// at least one in-band query position, whose value lies inside the
// envelope (or equals it exactly at the pinned corners).
//
// The sum abandons early: as soon as it exceeds ub the function returns
// +Inf, certifying LBKeogh > ub without touching the remaining positions.
// It panics if the three slices differ in length.
func LBKeogh(c, upper, lower []float64, ub float64) float64 {
	if len(c) != len(upper) || len(c) != len(lower) {
		panic("dist: LBKeogh: candidate and envelope lengths differ")
	}
	sum := 0.0
	for j, v := range c {
		if v > upper[j] {
			sum += v - upper[j]
		} else if v < lower[j] {
			sum += lower[j] - v
		}
		if sum > ub {
			return math.Inf(1)
		}
	}
	return sum
}
