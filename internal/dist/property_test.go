package dist

import (
	"math"
	"math/rand"
	"testing"
)

// refDTW is the obviously-correct oracle: full O(n·m) matrix, no rolling
// rows, no abandoning. The production kernel is property-tested against it.
func refDTW(a, b []float64, band int, squared bool) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	w := EffectiveBand(n, m, band)
	dp := make([][]float64, n)
	for i := range dp {
		dp[i] = make([]float64, m)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	cost := func(x, y float64) float64 {
		d := math.Abs(x - y)
		if squared {
			return d * d
		}
		return d
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if i-j > w || j-i > w {
				continue
			}
			c := cost(a[i], b[j])
			switch {
			case i == 0 && j == 0:
				dp[i][j] = c
			case i == 0:
				dp[i][j] = dp[i][j-1] + c
			case j == 0:
				dp[i][j] = dp[i-1][j] + c
			default:
				best := dp[i-1][j]
				if dp[i-1][j-1] < best {
					best = dp[i-1][j-1]
				}
				if dp[i][j-1] < best {
					best = dp[i][j-1]
				}
				dp[i][j] = best + c
			}
		}
	}
	return dp[n-1][m-1]
}

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := rng.Float64() * 2
	for i := range out {
		v += rng.NormFloat64() * 0.3
		out[i] = v
	}
	return out
}

var propertyBands = []int{-1, 0, 1, 3, 10}

// The acceptance property: the rolling-row kernel equals the brute-force
// DP reference for every band, and DTW == DTWBanded(-1).
func TestPropertyDTWMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := randSeries(rng, 2+rng.Intn(40))
		b := randSeries(rng, 2+rng.Intn(40))
		for _, band := range propertyBands {
			got := DTWBanded(a, b, band)
			want := refDTW(a, b, band, false)
			if !almost(got, want, 1e-9) {
				t.Fatalf("trial %d band %d: DTWBanded %g != reference %g (lens %d, %d)",
					trial, band, got, want, len(a), len(b))
			}
			gotSq := DTWSq(a, b, band)
			wantSq := refDTW(a, b, band, true)
			if !almost(gotSq, wantSq, 1e-9) {
				t.Fatalf("trial %d band %d: DTWSq %g != reference %g", trial, band, gotSq, wantSq)
			}
		}
		if un, full := DTW(a, b), DTWBanded(a, b, -1); un != full {
			t.Fatalf("trial %d: DTW %g != DTWBanded(-1) %g", trial, un, full)
		}
	}
}

// The cascade invariant: LBKim <= LBKeogh <= DTWBanded for every band and
// every length combination, with the envelope projected onto the
// candidate's length.
func TestPropertyCascadeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		q := randSeries(rng, 2+rng.Intn(40))
		c := randSeries(rng, 2+rng.Intn(40))
		for _, band := range propertyBands {
			kim := LBKim(q, c)
			u, l := Envelope(q, len(c), band)
			keogh := LBKeogh(c, u, l, math.Inf(1))
			dtw := DTWBanded(q, c, band)
			if kim > keogh+1e-9 {
				t.Fatalf("trial %d band %d: LBKim %g > LBKeogh %g", trial, band, kim, keogh)
			}
			if keogh > dtw+1e-9 {
				t.Fatalf("trial %d band %d: LBKeogh %g > DTW %g (lens %d, %d)",
					trial, band, keogh, dtw, len(q), len(c))
			}
		}
	}
}

// Early abandoning must be sound (abandon only when the true distance
// exceeds the bound) and exact when it does not abandon.
func TestPropertyEarlyAbandonSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := randSeries(rng, 2+rng.Intn(30))
		b := randSeries(rng, 2+rng.Intn(30))
		band := propertyBands[rng.Intn(len(propertyBands))]
		exact := refDTW(a, b, band, false)
		ub := exact * rng.Float64() * 1.5 // both below and above the true distance
		got := DTWEarlyAbandon(a, b, band, ub)
		if math.IsInf(got, 1) {
			if exact <= ub {
				t.Fatalf("trial %d: abandoned although exact %g <= ub %g", trial, exact, ub)
			}
		} else if !almost(got, exact, 1e-9) {
			t.Fatalf("trial %d: early abandon returned %g, exact %g", trial, got, exact)
		}
		// Same for the ED variant.
		if len(a) == len(b) {
			e := ED(a, b)
			gotED := EDEarlyAbandon(a, b, ub)
			if math.IsInf(gotED, 1) {
				if e <= ub {
					t.Fatalf("trial %d: ED abandoned although %g <= ub %g", trial, e, ub)
				}
			} else if !almost(gotED, e, 1e-9) {
				t.Fatalf("trial %d: EDEarlyAbandon %g != ED %g", trial, gotED, e)
			}
		}
	}
}

// DTWPath must return the DTWBanded distance and a valid, in-band path
// whose re-priced cost equals the distance.
func TestPropertyDTWPathConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		a := randSeries(rng, 2+rng.Intn(25))
		b := randSeries(rng, 2+rng.Intn(25))
		band := propertyBands[rng.Intn(len(propertyBands))]
		d, path := DTWPath(a, b, band)
		if !almost(d, DTWBanded(a, b, band), 1e-9) {
			t.Fatalf("trial %d: path dist %g != DTWBanded %g", trial, d, DTWBanded(a, b, band))
		}
		if !path.Valid(len(a), len(b)) {
			t.Fatalf("trial %d: invalid path", trial)
		}
		w := EffectiveBand(len(a), len(b), band)
		sum := 0.0
		for _, s := range path {
			if s.I-s.J > w || s.J-s.I > w {
				t.Fatalf("trial %d: step %v outside band %d", trial, s, w)
			}
			sum += math.Abs(a[s.I] - b[s.J])
		}
		if !almost(sum, d, 1e-9) {
			t.Fatalf("trial %d: path cost %g != dist %g", trial, sum, d)
		}
		if mu := path.MaxMultiplicityJ(); mu < 1 || mu > 2*w+1 {
			t.Fatalf("trial %d: MaxMultiplicityJ %d outside [1, %d]", trial, mu, 2*w+1)
		}
	}
}

// Envelope containment: away from the pinned corners, every query value a
// banded path could align with position j lies inside [lower[j], upper[j]].
func TestPropertyEnvelopeContainsAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		q := randSeries(rng, 2+rng.Intn(30))
		outLen := 2 + rng.Intn(30)
		band := propertyBands[rng.Intn(len(propertyBands))]
		u, l := Envelope(q, outLen, band)
		w := EffectiveBand(len(q), outLen, band)
		for j := 1; j < outLen-1; j++ {
			for i := 0; i < len(q); i++ {
				if i-j > w || j-i > w {
					continue
				}
				if q[i] > u[j]+1e-12 || q[i] < l[j]-1e-12 {
					t.Fatalf("trial %d: q[%d]=%g outside envelope [%g, %g] at j=%d (w=%d)",
						trial, i, q[i], l[j], u[j], j, w)
				}
			}
		}
		// Pinned corners carry the exact endpoint values.
		if u[0] != q[0] || l[0] != q[0] || u[outLen-1] != q[len(q)-1] || l[outLen-1] != q[len(q)-1] {
			t.Fatalf("trial %d: corners not pinned", trial)
		}
	}
}

// The transfer-bound ingredient the engine relies on: for same-length
// candidates, DTW(q, s) <= DTW(q, rep) + mu * ED(rep, s), with mu the
// rep-side multiplicity of the optimal (q, rep) path.
func TestPropertyTransferBound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 150; trial++ {
		q := randSeries(rng, 2+rng.Intn(20))
		rep := randSeries(rng, 2+rng.Intn(20))
		s := make([]float64, len(rep))
		for i := range s {
			s[i] = rep[i] + rng.NormFloat64()*0.1
		}
		band := []int{-1, 3}[rng.Intn(2)]
		dqr, path := DTWPath(q, rep, band)
		mu := float64(path.MaxMultiplicityJ())
		bound := dqr + mu*ED(rep, s)
		if got := DTWBanded(q, s, band); got > bound+1e-9 {
			t.Fatalf("trial %d: DTW(q,s) %g > transfer bound %g", trial, got, bound)
		}
	}
}

// Resample is exact on linear ramps, preserves endpoints, and never leaves
// the input's value range.
func TestPropertyResample(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		in := randSeries(rng, 2+rng.Intn(40))
		n := 2 + rng.Intn(40)
		out := Resample(in, n)
		if len(out) != n {
			t.Fatalf("trial %d: len %d != %d", trial, len(out), n)
		}
		if !almost(out[0], in[0], 1e-12) || !almost(out[n-1], in[len(in)-1], 1e-12) {
			t.Fatalf("trial %d: endpoints not preserved", trial)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range in {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for i, v := range out {
			if v < lo-1e-12 || v > hi+1e-12 {
				t.Fatalf("trial %d: out[%d]=%g outside input range [%g, %g]", trial, i, v, lo, hi)
			}
		}
	}
}
