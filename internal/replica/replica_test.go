package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
	"repro/onex"
)

// startLeader builds a store-backed leader DB behind the real HTTP surface.
func startLeader(t *testing.T) (*onex.DB, *httptest.Server) {
	t.Helper()
	eng, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.RandomWalks(gen.WalkOptions{Num: 6, Length: 64, Seed: 21})
	db, err := onex.Open(ds, onex.Config{Store: eng, MaxLength: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	s.AddDB("walks", db)
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		db.Close()
	})
	return db, hts
}

// startFollower runs a follower for the leader and waits for convergence.
func startFollower(t *testing.T, ctx context.Context, url string, target uint64) *replica.Follower {
	t.Helper()
	f := replica.New(url, "walks", replica.Options{PollWait: 500 * time.Millisecond})
	go func() { _ = f.Run(ctx) }()
	if err := f.WaitCaughtUp(ctx, target); err != nil {
		t.Fatalf("follower never converged: %v", err)
	}
	return f
}

var wallRE = regexp.MustCompile(`"wall_micros":\d+`)

// marshalNormalized renders a result as JSON with the only nondeterministic
// field (measured wall time) zeroed; everything else is contractually
// deterministic, so equal bytes mean equal answers.
func marshalNormalized(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return wallRE.ReplaceAll(b, []byte(`"wall_micros":0`))
}

// assertEquivalent runs the acceptance check: at equal applied version the
// follower answers Find, Analyze, and Stream byte-identically to the
// leader. Workers=1 pins the walk schedule so the comparison is exact.
func assertEquivalent(t *testing.T, leader, follower *onex.DB) {
	t.Helper()
	if lv, fv := leader.Version(), follower.Version(); lv != fv {
		t.Fatalf("comparing at unequal versions: leader %d, follower %d", lv, fv)
	}
	ctx := context.Background()
	q := onex.Query{Window: onex.Window{Series: "walk-001", Start: 4, Length: 12},
		K: 3, Exclude: onex.Exclude{Self: true}, Workers: 1}

	lr, lerr := leader.Find(ctx, q)
	fr, ferr := follower.Find(ctx, q)
	if lerr != nil || ferr != nil {
		t.Fatalf("find: leader err %v, follower err %v", lerr, ferr)
	}
	if lb, fb := marshalNormalized(t, lr), marshalNormalized(t, fr); !bytes.Equal(lb, fb) {
		t.Fatalf("Find diverged at version %d:\nleader:   %s\nfollower: %s", leader.Version(), lb, fb)
	}

	a := onex.Analysis{Kind: onex.AnalysisOverview, Length: 12, K: 8, Workers: 1}
	la, lerr := leader.Analyze(ctx, a)
	fa, ferr := follower.Analyze(ctx, a)
	if lerr != nil || ferr != nil {
		t.Fatalf("analyze: leader err %v, follower err %v", lerr, ferr)
	}
	if lb, fb := marshalNormalized(t, la), marshalNormalized(t, fa); !bytes.Equal(lb, fb) {
		t.Fatalf("Analyze diverged at version %d:\nleader:   %s\nfollower: %s", leader.Version(), lb, fb)
	}

	lx, lerr := leader.Stream(ctx, q)
	fx, ferr := follower.Stream(ctx, q)
	if lerr != nil || ferr != nil {
		t.Fatalf("stream: leader err %v, follower err %v", lerr, ferr)
	}
	ls, lerr := lx.Wait()
	fs, ferr := fx.Wait()
	if lerr != nil || ferr != nil {
		t.Fatalf("stream wait: leader err %v, follower err %v", lerr, ferr)
	}
	if lb, fb := marshalNormalized(t, ls), marshalNormalized(t, fs); !bytes.Equal(lb, fb) {
		t.Fatalf("Stream final result diverged at version %d:\nleader:   %s\nfollower: %s", leader.Version(), lb, fb)
	}
}

// TestFollowerByteEquivalence: bootstrap, stream a batch of ingests, and
// verify the follower is answer-identical to the leader at the same
// version.
func TestFollowerByteEquivalence(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	f := startFollower(t, ctx, hts.URL, leader.Version())
	assertEquivalent(t, leader, f.DB())

	// Stream ingests under the follower and re-check at the new version.
	extra := gen.RandomWalks(gen.WalkOptions{Num: 5, Length: 64, Seed: 33})
	for _, s := range extra.Series {
		if err := leader.AddSeries("live-"+s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, leader, f.DB())

	st := f.Status()
	if st.State != "streaming" || st.RecordsApplied != 5 || st.SnapshotsShipped != 1 {
		t.Fatalf("status after streaming = %+v", st)
	}
	if st.LagRecords != 0 || st.AppliedSeq != st.LeaderSeq {
		t.Fatalf("caught-up follower reports lag: %+v", st)
	}
	if st.SecondsSinceRecord < 0 {
		t.Fatalf("SecondsSinceRecord not tracking applied records: %+v", st)
	}
}

// TestFollowerRestartMidStream: a follower killed mid-stream and replaced
// by a fresh one (crash-and-restart) still converges to byte equivalence.
func TestFollowerRestartMidStream(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	fctx, kill := context.WithCancel(ctx)
	defer kill()
	first := startFollower(t, fctx, hts.URL, leader.Version())
	_ = first

	extra := gen.RandomWalks(gen.WalkOptions{Num: 6, Length: 64, Seed: 44})
	for i, s := range extra.Series {
		if err := leader.AddSeries("live-"+s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			kill() // mid-stream: later ingests land with no follower running
		}
	}

	second := startFollower(t, ctx, hts.URL, leader.Version())
	assertEquivalent(t, leader, second.DB())
}

// TestCompactionFenceReshipsAndConverges: a leader that compacts after
// every ingest keeps its WAL empty, so a live follower's cursor is always
// behind the boundary — every poll fences, forcing snapshot re-ships. The
// follower must ride the fences to byte equivalence, never a torn state.
func TestCompactionFenceReshipsAndConverges(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f := startFollower(t, ctx, hts.URL, leader.Version())

	extra := gen.RandomWalks(gen.WalkOptions{Num: 4, Length: 64, Seed: 55})
	for _, s := range extra.Series {
		if err := leader.AddSeries("live-"+s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
		if err := leader.Snapshot(); err != nil { // fold the WAL: fence the follower
			t.Fatal(err)
		}
	}
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, leader, f.DB())
	if st := f.Status(); st.SnapshotsShipped < 2 {
		t.Fatalf("compaction behind the cursor should force a re-ship, got %d ships", st.SnapshotsShipped)
	}
}

// TestFollowerSpoolBootstrapMmap: with a spool directory configured the
// follower streams shipped snapshots to disk and serves them mmap-backed
// instead of holding a decoded copy on the heap. The mmap path must be
// invisible at the protocol level: byte equivalence after bootstrap, after
// streamed ingests, and across a compaction fence (which re-ships, swaps in
// a fresh mapping, and closes the superseded DB).
func TestFollowerSpoolBootstrapMmap(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	spool := t.TempDir()
	f := replica.New(hts.URL, "walks", replica.Options{
		PollWait: 500 * time.Millisecond,
		SpoolDir: spool,
	})
	go func() { _ = f.Run(ctx) }()
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatalf("spooled follower never converged: %v", err)
	}
	assertEquivalent(t, leader, f.DB())

	// The shipped snapshot landed in the spool — that file is what the
	// follower's DB is mapping.
	fi, err := os.Stat(filepath.Join(spool, "walks.snap"))
	if err != nil {
		t.Fatalf("no spooled snapshot: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("spooled snapshot is empty")
	}

	// Streamed ingests apply on top of the mapped dataset.
	extra := gen.RandomWalks(gen.WalkOptions{Num: 3, Length: 64, Seed: 77})
	for _, s := range extra.Series {
		if err := leader.AddSeries("live-"+s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, leader, f.DB())

	// A compaction fence forces a re-ship: the spool file is atomically
	// replaced, a new mapping swapped in, and the old DB closed. The
	// follower must come out the other side still byte-equivalent.
	if err := leader.AddSeries("post-fence", extra.Series[0].Values); err != nil {
		t.Fatal(err)
	}
	if err := leader.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, leader, f.DB())
	if st := f.Status(); st.SnapshotsShipped < 2 {
		t.Fatalf("fence should force a snapshot re-ship, got %d ships", st.SnapshotsShipped)
	}
}

// TestReplicaDBIsReadOnly: the follower's DB refuses direct writes — the
// only mutation path is the leader's WAL stream.
func TestReplicaDBIsReadOnly(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f := startFollower(t, ctx, hts.URL, leader.Version())

	db := f.DB()
	if !db.IsReplica() {
		t.Fatal("follower DB not marked as replica")
	}
	if err := db.AddSeries("rogue", []float64{1, 2, 3, 4}); err != onex.ErrReadOnlyReplica {
		t.Fatalf("AddSeries on replica = %v, want ErrReadOnlyReplica", err)
	}
	// Out-of-sequence replication is rejected, not silently applied.
	if err := db.ApplyReplicated(db.Version()+2, "gap", []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("ApplyReplicated accepted a sequence gap")
	}
}

// TestFollowerReconnectsAfterLeaderOutage: killing the leader mid-stream
// drives the follower into backoff; restarting a leader on a fresh store
// (new history) fences it into a re-bootstrap and convergence on the new
// incarnation.
func TestFollowerReconnectsAfterLeaderOutage(t *testing.T) {
	leader, hts := startLeader(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f := replica.New(hts.URL, "walks", replica.Options{
		PollWait:   200 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	go func() { _ = f.Run(ctx) }()
	if err := f.WaitCaughtUp(ctx, leader.Version()); err != nil {
		t.Fatal(err)
	}

	hts.CloseClientConnections()
	hts.Close() // leader outage
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never counted a reconnect: %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := f.Status()
	if st.LastError == "" {
		t.Fatalf("follower hides the outage: %+v", st)
	}
}
