// Package replica implements the follower half of ONEX's leader/follower
// replication: read replicas that bootstrap from a leader snapshot and
// stay current by tailing the leader's write-ahead log over HTTP.
//
// The protocol rides on the persistence formats from internal/store, so a
// follower decodes exactly the bytes recovery would replay locally:
//
//   - GET /replication/v1/datasets/{name}/snapshot streams the leader's
//     current snapshot file verbatim (version inside the META section);
//   - GET /replication/v1/datasets/{name}/wal?from=S&wait=D long-polls for
//     CRC-framed WAL records with seq > S. 200 carries a WAL-magic-framed
//     batch (decoded with store.DecodeWAL — same CRC and seq-contiguity
//     checks as crash recovery), 204 means "caught up, nothing new within
//     the wait", and 410 Gone is the compaction fence: the requested range
//     was folded into a newer snapshot, re-ship it.
//
// The seq/version discipline makes this correct: a snapshot at version V
// plus records V+1, V+2, ... is the leader's exact mutation history, so a
// follower that applies them in order is bit-identical to the leader at
// every version it passes through. Compaction on the leader only moves the
// snapshot/WAL boundary; a follower whose cursor predates the boundary is
// fenced rather than served a gap.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/fsutil"
	"repro/internal/store"
	"repro/onex"
)

// Protocol constants shared by the leader (internal/server) and follower
// sides. The leader-seq header rides on every WAL response — including 204
// and 410 — so the follower can always measure its lag.
const (
	// HeaderLeaderSeq reports the leader's newest sequence number.
	HeaderLeaderSeq = "X-Onex-Leader-Seq"
	// HeaderSnapshotVersion is the advisory version on snapshot responses
	// (the snapshot's META section is authoritative).
	HeaderSnapshotVersion = "X-Onex-Snapshot-Version"
	// HeaderLeader is set on 503 write rejections by a serving follower,
	// pointing the client at the leader that accepts writes.
	HeaderLeader = "X-Onex-Leader"
)

// SnapshotPath returns the leader snapshot endpoint path for a dataset.
func SnapshotPath(dataset string) string {
	return "/replication/v1/datasets/" + url.PathEscape(dataset) + "/snapshot"
}

// WALPath returns the leader WAL-tail endpoint path for a dataset.
func WALPath(dataset string) string {
	return "/replication/v1/datasets/" + url.PathEscape(dataset) + "/wal"
}

// Options tunes a Follower. The zero value is ready to use.
type Options struct {
	// Client is the HTTP client for leader requests. nil uses a private
	// client with no global timeout (per-request contexts bound each
	// call, sized to the long-poll wait).
	Client *http.Client
	// Workers forwards to the follower DB's onex.Config.
	Workers int
	// SpoolDir, when set, routes snapshot bootstraps through the mmap
	// path: each shipped snapshot is streamed to <SpoolDir>/<dataset>.snap
	// (atomic temp+rename, never held in memory) and the follower DB is
	// opened with onex.Config.MmapValues, so series values are zero-copy
	// views over the spooled file — a follower of a beyond-RAM leader
	// stays beyond-RAM instead of materializing the dataset on its heap.
	// Re-bootstraps overwrite the spool file by rename and Close the
	// superseded DB, releasing its mapping once in-flight scans finish
	// (queries that still hold the old pointer then fail with
	// onex.ErrMmapClosed). Empty keeps the in-memory decode.
	SpoolDir string
	// PollWait is the long-poll duration asked of the leader (how long a
	// WAL request may block waiting for new records). 0 means 20s.
	PollWait time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff. 0 means 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// OnDB is called with the freshly built DB after every bootstrap —
	// the initial snapshot ship and every fence-triggered re-ship. A
	// serving follower uses it to swap the replica into its dataset map.
	OnDB func(*onex.DB)
	// Logf, when set, receives follower lifecycle messages (bootstrap,
	// fence, reconnect). nil is silent.
	Logf func(format string, args ...any)
}

// Status is a point-in-time view of a follower, surfaced by /healthz and
// the onex_replica_* metric families.
type Status struct {
	Dataset string `json:"dataset"`
	Leader  string `json:"leader"`
	// State is "bootstrapping" (shipping a snapshot), "streaming"
	// (tailing the WAL), or "reconnecting" (backing off after an error).
	State string `json:"state"`
	// AppliedSeq is the follower's version: every leader mutation up to
	// and including this sequence has been applied.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the leader's newest sequence as of the last response.
	LeaderSeq uint64 `json:"leader_seq"`
	// LagRecords = LeaderSeq - AppliedSeq (0 when caught up).
	LagRecords uint64 `json:"lag_records"`
	// SecondsSinceRecord is the age of the last applied record (-1 before
	// any). Low lag with a stale record age just means an idle leader;
	// growing lag with a stale age means the follower is stuck.
	SecondsSinceRecord float64 `json:"seconds_since_record"`
	// Reconnects counts error-triggered reconnections (not fences).
	Reconnects uint64 `json:"reconnects"`
	// SnapshotsShipped counts full snapshot bootstraps (1 = initial only;
	// more means compaction fences forced re-ships).
	SnapshotsShipped uint64 `json:"snapshots_shipped"`
	// RecordsApplied counts WAL records applied since the follower
	// started (across re-bootstraps).
	RecordsApplied uint64 `json:"records_applied"`
	// LastError is the most recent connection or protocol error ("" when
	// healthy).
	LastError string `json:"last_error,omitempty"`
}

// errFenced signals a 410 from the WAL endpoint: not a failure, an
// instruction to re-bootstrap from a fresh snapshot.
var errFenced = errors.New("replica: fenced (leader compacted past our cursor)")

// Follower replicates one leader dataset into an in-process read-only
// onex.DB. Safe for concurrent use: Run drives replication while DB and
// Status serve readers.
type Follower struct {
	leader  string // base URL, no trailing slash
	dataset string
	opt     Options
	client  *http.Client

	mu         sync.Mutex
	db         *onex.DB
	st         Status
	lastRecord time.Time
}

// New prepares a follower for one dataset of the leader at baseURL (e.g.
// "http://leader:8080"). Call Run to start replicating.
func New(baseURL, dataset string, opt Options) *Follower {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if opt.PollWait <= 0 {
		opt.PollWait = 20 * time.Second
	}
	if opt.BackoffMin <= 0 {
		opt.BackoffMin = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Follower{
		leader:  baseURL,
		dataset: dataset,
		opt:     opt,
		client:  client,
		st:      Status{Dataset: dataset, Leader: baseURL, State: "bootstrapping", SecondsSinceRecord: -1},
	}
}

// DB returns the follower's current database (nil before the first
// bootstrap completes). The pointer is swapped on every snapshot re-ship;
// callers serving queries should fetch it per request, as a serving
// follower's OnDB wiring does.
func (f *Follower) DB() *onex.DB {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// Status returns the follower's current replication status.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	if st.LeaderSeq > st.AppliedSeq {
		st.LagRecords = st.LeaderSeq - st.AppliedSeq
	}
	if !f.lastRecord.IsZero() {
		st.SecondsSinceRecord = time.Since(f.lastRecord).Seconds()
	}
	return st
}

// WaitCaughtUp blocks until the follower has applied every record up to
// seq (AppliedSeq >= seq) or ctx expires. A test and benchmark
// convenience: convergence is "WaitCaughtUp(leader.Version()) returns".
func (f *Follower) WaitCaughtUp(ctx context.Context, seq uint64) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		f.mu.Lock()
		applied := f.st.AppliedSeq
		f.mu.Unlock()
		if applied >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.opt.Logf != nil {
		f.opt.Logf(format, args...)
	}
}

func (f *Follower) setState(state string) {
	f.mu.Lock()
	f.st.State = state
	f.mu.Unlock()
}

func (f *Follower) setError(err error) {
	f.mu.Lock()
	if err == nil {
		f.st.LastError = ""
	} else {
		f.st.LastError = err.Error()
	}
	f.mu.Unlock()
}

// Run replicates until ctx is cancelled: bootstrap from a snapshot, tail
// the WAL, re-bootstrap on compaction fences, and reconnect with jittered
// exponential backoff on errors. The returned error is ctx.Err() — a
// follower never gives up on a flaky leader, it keeps retrying, because
// serving slightly stale reads beats serving none.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opt.BackoffMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := f.bootstrap(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			f.reconnect(ctx, err, &backoff)
			continue
		}
		backoff = f.opt.BackoffMin
		err := f.tail(ctx)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, errFenced):
			// Not a failure: the leader compacted past our cursor. Loop
			// straight into a fresh bootstrap.
			f.logf("replica %s: %v; re-shipping snapshot", f.dataset, err)
		default:
			f.reconnect(ctx, err, &backoff)
		}
	}
}

// reconnect records the error and sleeps the jittered exponential backoff.
func (f *Follower) reconnect(ctx context.Context, err error, backoff *time.Duration) {
	f.setError(err)
	f.setState("reconnecting")
	f.mu.Lock()
	f.st.Reconnects++
	f.mu.Unlock()
	// Full jitter: sleep uniformly in [0, backoff) so a fleet of followers
	// losing one leader does not reconnect in lockstep.
	d := time.Duration(rand.Int63n(int64(*backoff) + 1))
	f.logf("replica %s: %v; retrying in %v", f.dataset, err, d.Round(time.Millisecond))
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
	*backoff *= 2
	if *backoff > f.opt.BackoffMax {
		*backoff = f.opt.BackoffMax
	}
}

// bootstrap ships the leader's current snapshot and swaps in a fresh DB.
func (f *Follower) bootstrap(ctx context.Context) error {
	f.setState("bootstrapping")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+SnapshotPath(f.dataset), nil)
	if err != nil {
		return fmt.Errorf("replica: snapshot request: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot: leader answered %s%s", resp.Status, bodyHint(resp.Body))
	}
	var db *onex.DB
	var size int64
	if f.opt.SpoolDir != "" {
		// Beyond-RAM path: stream the snapshot to disk and mmap it, so the
		// shipped dataset is never resident in this process's heap.
		path := f.spoolPath()
		if err := fsutil.WriteFileAtomic(path, func(w io.Writer) error {
			n, err := io.Copy(w, resp.Body)
			size = n
			return err
		}); err != nil {
			return fmt.Errorf("replica: spool snapshot: %w", err)
		}
		db, err = onex.OpenReplicaFile(path, onex.Config{Workers: f.opt.Workers, MmapValues: true})
		if err != nil {
			return fmt.Errorf("replica: %w", err)
		}
	} else {
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("replica: snapshot body: %w", err)
		}
		size = int64(len(blob))
		db, err = onex.OpenReplica(blob, onex.Config{Workers: f.opt.Workers})
		if err != nil {
			return fmt.Errorf("replica: %w", err)
		}
	}
	version := db.Version()
	f.mu.Lock()
	old := f.db
	f.db = db
	f.st.AppliedSeq = version
	if version > f.st.LeaderSeq {
		f.st.LeaderSeq = version
	}
	f.st.SnapshotsShipped++
	f.st.LastError = ""
	f.mu.Unlock()
	f.logf("replica %s: bootstrapped at version %d (%d bytes)", f.dataset, version, size)
	if f.opt.OnDB != nil {
		f.opt.OnDB(db)
	}
	if old != nil {
		// Release the superseded DB's mapping (no-op for in-memory
		// replicas). In-flight scans hold pins and finish safely; the
		// spool file's previous incarnation was already replaced by
		// rename, so the last pin dropping reclaims its inode too.
		old.Close()
	}
	return nil
}

// spoolPath is the mmap bootstrap spool file for this follower's dataset.
// The dataset name is path-escaped: it arrived from configuration, not a
// trusted filesystem, and must not traverse out of SpoolDir.
func (f *Follower) spoolPath() string {
	return filepath.Join(f.opt.SpoolDir, url.PathEscape(f.dataset)+".snap")
}

// tail long-polls the WAL endpoint and applies batches until an error or a
// fence. Each batch is decoded with store.DecodeWAL — the crash-recovery
// decoder — so a torn or corrupted stream can never half-apply: the batch
// fails decoding and the follower reconnects with its cursor unmoved past
// the last fully applied record.
func (f *Follower) tail(ctx context.Context) error {
	f.setState("streaming")
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f.mu.Lock()
		from := f.st.AppliedSeq
		db := f.db
		f.mu.Unlock()

		recs, leaderSeq, err := f.fetchWAL(ctx, from)
		if leaderSeq > 0 {
			f.mu.Lock()
			f.st.LeaderSeq = leaderSeq
			f.mu.Unlock()
		}
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Seq <= from {
				continue // duplicate from a crash-leftover leader log
			}
			if err := db.ApplyReplicated(rec.Seq, rec.Name, rec.Values); err != nil {
				return err
			}
			from = rec.Seq
			f.mu.Lock()
			f.st.AppliedSeq = rec.Seq
			f.st.RecordsApplied++
			f.lastRecord = time.Now()
			f.mu.Unlock()
		}
		if len(recs) > 0 {
			f.setError(nil)
		}
	}
}

// fetchWAL performs one long-poll against the WAL endpoint. A 204 returns
// an empty batch; a 410 returns errFenced.
func (f *Follower) fetchWAL(ctx context.Context, from uint64) ([]store.Record, uint64, error) {
	// Bound the request at the poll wait plus slack for transfer, so a
	// hung leader surfaces as a reconnect instead of a stuck follower.
	rctx, cancel := context.WithTimeout(ctx, f.opt.PollWait+15*time.Second)
	defer cancel()
	u := fmt.Sprintf("%s%s?from=%d&wait=%s", f.leader, WALPath(f.dataset), from, f.opt.PollWait)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("replica: wal request: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("replica: wal: %w", err)
	}
	defer resp.Body.Close()
	leaderSeq, _ := strconv.ParseUint(resp.Header.Get(HeaderLeaderSeq), 10, 64)
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, leaderSeq, fmt.Errorf("replica: wal body: %w", err)
		}
		recs, report, err := store.DecodeWAL(body)
		if err != nil {
			return nil, leaderSeq, fmt.Errorf("replica: wal decode: %w", err)
		}
		if report.DiscardedBytes > 0 {
			// The leader never frames a torn record; damage here means the
			// transfer itself was cut. Reconnect and re-request.
			return nil, leaderSeq, fmt.Errorf("replica: wal stream damaged: %s", report.DiscardedReason)
		}
		return recs, leaderSeq, nil
	case http.StatusNoContent:
		return nil, leaderSeq, nil
	case http.StatusGone:
		return nil, leaderSeq, errFenced
	default:
		return nil, leaderSeq, fmt.Errorf("replica: wal: leader answered %s%s", resp.Status, bodyHint(resp.Body))
	}
}

// bodyHint renders a short error-body excerpt for diagnostics.
func bodyHint(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 200))
	if len(b) == 0 {
		return ""
	}
	return ": " + string(b)
}
