package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fsutil"
)

// File names inside a FileStore directory. The temp files produced by
// atomic swaps use fsutil.TempPattern on these names; leftovers from a
// crash mid-swap are removed (and reported) by Open.
const (
	snapshotFile = "snapshot.onex"
	walFile      = "wal.log"
)

// FileStore is the first Engine implementation: one directory holding a
// snapshot file and a write-ahead log (formats documented in snapshot.go
// and wal.go). Appends are fsynced before they return; snapshots are
// written with an atomic temp+fsync+rename swap and then reset the WAL with
// the same swap, so a crash at any point leaves a recoverable state:
// either the old snapshot with the old WAL, or the new snapshot with
// either an empty WAL or the old one (whose records replay as sequence-
// skippable no-ops).
type FileStore struct {
	dir string

	mu       sync.Mutex
	wal      *os.File // open for append; nil after Close
	walBytes int64
	walRecs  int
	closed   bool

	appends     uint64
	compactions uint64
	snapVersion uint64
	snapTime    time.Time
	recovery    RecoveryReport
}

// Open creates or opens a FileStore directory. It cleans up (and records in
// the recovery report surfaced by Status and Load) any leftover temp files
// from an interrupted swap, and opens the WAL for appending, creating it
// with a fresh magic when absent.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	fs := &FileStore{dir: dir}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if fsutil.IsTempFor(name, snapshotFile) || fsutil.IsTempFor(name, walFile) {
			if err := os.Remove(filepath.Join(dir, name)); err == nil {
				fs.recovery.TempFilesRemoved = append(fs.recovery.TempFilesRemoved, name)
			}
		}
	}

	if err := fs.openWAL(); err != nil {
		return nil, err
	}
	return fs, nil
}

// openWAL opens (creating if needed) the append handle and measures the
// current log. Callers hold fs.mu or have exclusive access.
func (fs *FileStore) openWAL() error {
	path := filepath.Join(fs.dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: wal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: %w", err)
		}
		fs.walBytes = int64(len(walMagic))
	} else {
		fs.walBytes = info.Size()
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: %w", err)
		}
	}
	fs.wal = f
	return nil
}

// Kind implements Engine.
func (fs *FileStore) Kind() string { return "filestore" }

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// Load implements Engine: decode the snapshot (when present), decode the
// WAL's longest valid prefix, truncate any damaged tail so subsequent
// appends extend the valid prefix rather than an unreadable one, and report
// everything that was discarded.
func (fs *FileStore) Load() (*LoadResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	res := &LoadResult{Recovery: fs.recovery}

	snapPath := filepath.Join(fs.dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		st, err := DecodeSnapshot(data)
		if err != nil {
			// A damaged snapshot is unrecoverable by design: it is the one
			// full copy of the grouped index. Fail loudly rather than
			// rebuilding silently over it.
			return nil, fmt.Errorf("store: Load: %w", err)
		}
		res.State = st
		fs.snapVersion = st.Version
		fs.snapTime = st.CreatedAt
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: Load: %w", err)
	}

	walPath := filepath.Join(fs.dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		return nil, fmt.Errorf("store: Load: %w", err)
	}
	records, report, err := DecodeWAL(data)
	if err != nil {
		return nil, fmt.Errorf("store: Load: %w", err)
	}
	if report.DiscardedBytes > 0 {
		res.Recovery.DiscardedBytes = report.DiscardedBytes
		res.Recovery.DiscardedReason = report.DiscardedReason
		// Cut the damaged tail so the next append extends the valid prefix.
		keep := int64(len(data)) - report.DiscardedBytes
		if err := fs.wal.Truncate(keep); err != nil {
			return nil, fmt.Errorf("store: Load: truncate damaged tail: %w", err)
		}
		if _, err := fs.wal.Seek(keep, io.SeekStart); err != nil {
			return nil, fmt.Errorf("store: Load: %w", err)
		}
		if err := fs.wal.Sync(); err != nil {
			return nil, fmt.Errorf("store: Load: %w", err)
		}
		fs.walBytes = keep
	}
	res.Records = records
	fs.walRecs = len(records)
	fs.recovery = res.Recovery
	return res, nil
}

// Snapshot implements Engine: encode the state, swap it in atomically, then
// reset the WAL. The snapshot rename is the commit point — if the process
// dies before the WAL reset, every WAL record now has Seq <= the snapshot's
// Version and replay skips it.
func (fs *FileStore) Snapshot(st *State) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	stamped := *st
	stamped.CreatedAt = time.Now()
	data, err := EncodeSnapshot(&stamped)
	if err != nil {
		return err
	}
	snapPath := filepath.Join(fs.dir, snapshotFile)
	if err := fsutil.WriteFileAtomic(snapPath, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return fmt.Errorf("store: Snapshot: %w", err)
	}

	// Reset the WAL with the same atomic swap: a crash between the two
	// renames leaves the old WAL in place, which is correct (sequence-
	// skippable), just not yet compact.
	walPath := filepath.Join(fs.dir, walFile)
	if err := fsutil.WriteFileAtomic(walPath, func(w io.Writer) error {
		_, err := io.WriteString(w, walMagic)
		return err
	}); err != nil {
		return fmt.Errorf("store: Snapshot: reset wal: %w", err)
	}
	// The append handle still points at the renamed-away file; reopen.
	if fs.wal != nil {
		fs.wal.Close()
		fs.wal = nil
	}
	if err := fs.openWAL(); err != nil {
		return fmt.Errorf("store: Snapshot: %w", err)
	}
	fs.walRecs = 0
	fs.snapVersion = stamped.Version
	fs.snapTime = stamped.CreatedAt
	fs.compactions++
	return nil
}

// Append implements Engine: frame, write, and fsync one record. The record
// is durable when Append returns nil.
func (fs *FileStore) Append(rec Record) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	buf := encodeWALRecord(rec)
	if _, err := fs.wal.Write(buf); err != nil {
		return fmt.Errorf("store: Append: %w", err)
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("store: Append: %w", err)
	}
	fs.walBytes += int64(len(buf))
	fs.walRecs++
	fs.appends++
	return nil
}

// Status implements Engine.
func (fs *FileStore) Status() Status {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := Status{
		Kind:            "filestore",
		Path:            fs.dir,
		SnapshotVersion: fs.snapVersion,
		SnapshotTime:    fs.snapTime,
		WALRecords:      fs.walRecs,
		WALBytes:        fs.walBytes,
		Appends:         fs.appends,
		Compactions:     fs.compactions,
		Recovery:        fs.recovery,
	}
	if info, err := os.Stat(filepath.Join(fs.dir, snapshotFile)); err == nil {
		st.HasSnapshot = true
		st.SnapshotBytes = info.Size()
	}
	return st
}

// Close implements Engine.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if fs.wal != nil {
		err := fs.wal.Close()
		fs.wal = nil
		return err
	}
	return nil
}
