package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fsutil"
)

// File names inside a FileStore directory. The temp files produced by
// atomic swaps use fsutil.TempPattern on these names; leftovers from a
// crash mid-swap are removed (and reported) by Open.
const (
	snapshotFile = "snapshot.onex"
	walFile      = "wal.log"
)

// SnapshotPath returns the snapshot file path inside a FileStore directory.
// The mmap open path (internal/mmapdata) maps this file directly; exposing
// the name keeps the layout knowledge in one place.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotFile) }

// SnapshotOpener turns the snapshot file at path into a State. The default
// reads the file into memory and runs DecodeSnapshot; SetSnapshotOpener
// installs an alternative (mmapdata.OpenState maps the file read-only and
// aliases the value runs). A missing file must surface an error satisfying
// errors.Is(err, os.ErrNotExist).
type SnapshotOpener func(path string) (*State, error)

// FileStore is the first Engine implementation: one directory holding a
// snapshot file and a write-ahead log (formats documented in snapshot.go
// and wal.go). Appends are fsynced before they return; snapshots are
// written with an atomic temp+fsync+rename swap and then reset the WAL with
// the same swap, so a crash at any point leaves a recoverable state:
// either the old snapshot with the old WAL, or the new snapshot with
// either an empty WAL or the old one (whose records replay as sequence-
// skippable no-ops).
type FileStore struct {
	dir string

	mu       sync.Mutex
	wal      *os.File // open for append; nil after Close
	walBytes int64
	walRecs  int
	closed   bool

	appends     uint64
	compactions uint64
	snapVersion uint64
	snapTime    time.Time
	recovery    RecoveryReport

	// tail mirrors the WAL's decoded records in memory so replication can
	// serve seq-addressed reads without re-reading the file. It is seeded
	// by Load, extended by Append, and reset by Snapshot, so its size is
	// bounded by the compaction threshold. lastSeq is the newest sequence
	// the store holds (snapshot or tail); change is closed (and replaced)
	// on every append or compaction to wake long-polling tail readers.
	tail    []Record
	lastSeq uint64
	change  chan struct{}

	// fsyncEvery is the group-commit stride (1 = fsync per append, the
	// durable default); unsynced counts appends since the last fsync.
	fsyncEvery int
	unsynced   int

	// snapOpen overrides how Load obtains the snapshot State (see
	// SnapshotOpener); nil selects read-into-memory + DecodeSnapshot.
	snapOpen SnapshotOpener
}

// Open creates or opens a FileStore directory. It cleans up (and records in
// the recovery report surfaced by Status and Load) any leftover temp files
// from an interrupted swap, and opens the WAL for appending, creating it
// with a fresh magic when absent.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	fs := &FileStore{dir: dir, change: make(chan struct{}), fsyncEvery: 1}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if fsutil.IsTempFor(name, snapshotFile) || fsutil.IsTempFor(name, walFile) {
			if err := os.Remove(filepath.Join(dir, name)); err == nil {
				fs.recovery.TempFilesRemoved = append(fs.recovery.TempFilesRemoved, name)
			}
		}
	}

	if err := fs.openWAL(); err != nil {
		return nil, err
	}
	return fs, nil
}

// openWAL opens (creating if needed) the append handle and measures the
// current log. Callers hold fs.mu or have exclusive access.
func (fs *FileStore) openWAL() error {
	path := filepath.Join(fs.dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: wal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: %w", err)
		}
		fs.walBytes = int64(len(walMagic))
	} else {
		fs.walBytes = info.Size()
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return fmt.Errorf("store: wal: %w", err)
		}
	}
	fs.wal = f
	return nil
}

// SetSnapshotOpener installs how Load turns the snapshot file into a
// State; nil restores the default (read into memory + DecodeSnapshot).
// Call before Load — the opener is consulted there only.
func (fs *FileStore) SetSnapshotOpener(open SnapshotOpener) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.snapOpen = open
}

// openSnapshot applies the configured SnapshotOpener. Callers hold fs.mu.
func (fs *FileStore) openSnapshot(path string) (*State, error) {
	if fs.snapOpen != nil {
		return fs.snapOpen(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// Kind implements Engine.
func (fs *FileStore) Kind() string { return "filestore" }

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// Load implements Engine: decode the snapshot (when present), decode the
// WAL's longest valid prefix, truncate any damaged tail so subsequent
// appends extend the valid prefix rather than an unreadable one, and report
// everything that was discarded.
func (fs *FileStore) Load() (*LoadResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	res := &LoadResult{Recovery: fs.recovery}

	snapPath := filepath.Join(fs.dir, snapshotFile)
	if st, err := fs.openSnapshot(snapPath); err == nil {
		res.State = st
		fs.snapVersion = st.Version
		fs.snapTime = st.CreatedAt
	} else if !errors.Is(err, os.ErrNotExist) {
		// A damaged snapshot is unrecoverable by design: it is the one
		// full copy of the grouped index. Fail loudly rather than
		// rebuilding silently over it.
		return nil, fmt.Errorf("store: Load: %w", err)
	}

	walPath := filepath.Join(fs.dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		return nil, fmt.Errorf("store: Load: %w", err)
	}
	records, report, err := DecodeWAL(data)
	if err != nil {
		return nil, fmt.Errorf("store: Load: %w", err)
	}
	if report.DiscardedBytes > 0 {
		res.Recovery.DiscardedBytes = report.DiscardedBytes
		res.Recovery.DiscardedReason = report.DiscardedReason
		// Cut the damaged tail so the next append extends the valid prefix.
		keep := int64(len(data)) - report.DiscardedBytes
		if err := fs.wal.Truncate(keep); err != nil {
			return nil, fmt.Errorf("store: Load: truncate damaged tail: %w", err)
		}
		if _, err := fs.wal.Seek(keep, io.SeekStart); err != nil {
			return nil, fmt.Errorf("store: Load: %w", err)
		}
		if err := fs.wal.Sync(); err != nil {
			return nil, fmt.Errorf("store: Load: %w", err)
		}
		fs.walBytes = keep
	}
	res.Records = records
	fs.walRecs = len(records)
	fs.tail = append([]Record(nil), records...)
	fs.lastSeq = fs.snapVersion
	if n := len(records); n > 0 && records[n-1].Seq > fs.lastSeq {
		fs.lastSeq = records[n-1].Seq
	}
	res.Recovery.SnapshotVersion = fs.snapVersion
	for _, rec := range records {
		if rec.Seq > fs.snapVersion {
			res.Recovery.ReplayedRecords++
		}
	}
	fs.recovery = res.Recovery
	return res, nil
}

// Snapshot implements Engine: encode the state, swap it in atomically, then
// reset the WAL. The snapshot rename is the commit point — if the process
// dies before the WAL reset, every WAL record now has Seq <= the snapshot's
// Version and replay skips it.
func (fs *FileStore) Snapshot(st *State) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	stamped := *st
	stamped.CreatedAt = time.Now()
	data, err := EncodeSnapshot(&stamped)
	if err != nil {
		return err
	}
	snapPath := filepath.Join(fs.dir, snapshotFile)
	if err := fsutil.WriteFileAtomic(snapPath, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return fmt.Errorf("store: Snapshot: %w", err)
	}

	// Reset the WAL with the same atomic swap: a crash between the two
	// renames leaves the old WAL in place, which is correct (sequence-
	// skippable), just not yet compact.
	walPath := filepath.Join(fs.dir, walFile)
	if err := fsutil.WriteFileAtomic(walPath, func(w io.Writer) error {
		_, err := io.WriteString(w, walMagic)
		return err
	}); err != nil {
		return fmt.Errorf("store: Snapshot: reset wal: %w", err)
	}
	// The append handle still points at the renamed-away file; reopen.
	if fs.wal != nil {
		fs.wal.Close()
		fs.wal = nil
	}
	if err := fs.openWAL(); err != nil {
		return fmt.Errorf("store: Snapshot: %w", err)
	}
	fs.walRecs = 0
	fs.snapVersion = stamped.Version
	fs.snapTime = stamped.CreatedAt
	fs.compactions++
	// The folded records leave the retained tail: a follower whose cursor
	// predates this snapshot must now re-ship it (TailSince fences).
	fs.tail = nil
	if stamped.Version > fs.lastSeq {
		fs.lastSeq = stamped.Version
	}
	fs.unsynced = 0
	fs.wakeLocked()
	return nil
}

// Append implements Engine: frame, write, and fsync one record. With the
// default fsync stride of 1 the record is durable when Append returns nil.
// A larger stride (SetFsyncEvery) groups commits: the fsync runs once per
// stride, so a crash can lose up to stride-1 of the most recent acked
// appends — always a clean suffix, never a torn middle, because recovery
// keeps the longest valid record prefix.
func (fs *FileStore) Append(rec Record) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	buf := encodeWALRecord(rec)
	if _, err := fs.wal.Write(buf); err != nil {
		return fmt.Errorf("store: Append: %w", err)
	}
	fs.unsynced++
	if fs.unsynced >= fs.fsyncEvery {
		if err := fs.wal.Sync(); err != nil {
			return fmt.Errorf("store: Append: %w", err)
		}
		fs.unsynced = 0
	}
	fs.walBytes += int64(len(buf))
	fs.walRecs++
	fs.appends++
	fs.tail = append(fs.tail, rec)
	if rec.Seq > fs.lastSeq {
		fs.lastSeq = rec.Seq
	}
	fs.wakeLocked()
	return nil
}

// SetFsyncEvery sets the group-commit stride: the WAL is fsynced once per
// n appends. n = 1 (the default) restores fsync-per-append durability;
// larger strides trade the tail of a crash window — at most n-1 acked
// ingests — for one fsync amortized over n appends on ingest-heavy
// leaders. Values below 1 are clamped to 1.
func (fs *FileStore) SetFsyncEvery(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fsyncEvery = max(n, 1)
}

// Flush fsyncs any appends deferred by a group-commit stride > 1.
func (fs *FileStore) Flush() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	return fs.flushLocked()
}

func (fs *FileStore) flushLocked() error {
	if fs.unsynced == 0 || fs.wal == nil {
		return nil
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("store: Flush: %w", err)
	}
	fs.unsynced = 0
	return nil
}

// wakeLocked wakes long-polling tail readers: the current change channel
// is closed and replaced. Callers hold fs.mu.
func (fs *FileStore) wakeLocked() {
	close(fs.change)
	fs.change = make(chan struct{})
}

// Changed implements ReplicationSource.
func (fs *FileStore) Changed() <-chan struct{} {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.change
}

// LastSeq implements ReplicationSource.
func (fs *FileStore) LastSeq() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lastSeq
}

// SnapshotBlob implements ReplicationSource: it opens the current snapshot
// file for streaming. The returned handle survives a concurrent compaction
// swap (rename does not invalidate an open descriptor), so the bytes read
// are always one complete, self-verifying snapshot — possibly one
// compaction old, which the WAL tail then covers.
func (fs *FileStore) SnapshotBlob() (io.ReadCloser, int64, uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, 0, 0, ErrClosed
	}
	f, err := os.Open(filepath.Join(fs.dir, snapshotFile))
	if err != nil {
		return nil, 0, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, info.Size(), fs.snapVersion, nil
}

// TailSince implements ReplicationSource: the retained records with
// Seq > from, contiguous from from+1, or a fence when compaction folded
// part of that range into the snapshot. The returned slice is a copy and
// safe to use after the lock is released. Records are served from the
// in-memory tail, which may run ahead of the fsync horizon under group
// commit — a follower can therefore briefly hold records the leader would
// lose in a crash; the follower's next tail request fences and re-ships in
// that case, so the pair reconverges on the durable state.
func (fs *FileStore) TailSince(from uint64) ([]Record, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, false, ErrClosed
	}
	if from > fs.lastSeq {
		// The follower is ahead of everything we hold — it replicated from
		// a leader state that no longer exists (e.g. we restarted from an
		// older snapshot). Fence so it resyncs to our reality.
		return nil, true, nil
	}
	if from == fs.lastSeq {
		return nil, false, nil // caught up
	}
	// from < lastSeq: the follower needs from+1..lastSeq contiguously.
	if len(fs.tail) == 0 || fs.tail[0].Seq > from+1 {
		// Records (from, tail start) were folded into the snapshot and
		// dropped from the log: re-ship the snapshot.
		return nil, true, nil
	}
	i := 0
	for i < len(fs.tail) && fs.tail[i].Seq <= from {
		i++
	}
	if i == len(fs.tail) {
		// The retained tail predates the snapshot (a crash-leftover log):
		// the records past from exist only inside the snapshot. Fence.
		return nil, true, nil
	}
	out := make([]Record, len(fs.tail)-i)
	copy(out, fs.tail[i:])
	return out, false, nil
}

// Status implements Engine.
func (fs *FileStore) Status() Status {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := Status{
		Kind:            "filestore",
		Path:            fs.dir,
		SnapshotVersion: fs.snapVersion,
		SnapshotTime:    fs.snapTime,
		WALRecords:      fs.walRecs,
		WALBytes:        fs.walBytes,
		Appends:         fs.appends,
		Compactions:     fs.compactions,
		FsyncEvery:      fs.fsyncEvery,
		LastSeq:         fs.lastSeq,
		Recovery:        fs.recovery,
	}
	if info, err := os.Stat(filepath.Join(fs.dir, snapshotFile)); err == nil {
		st.HasSnapshot = true
		st.SnapshotBytes = info.Size()
	}
	return st
}

// Close implements Engine.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if fs.wal != nil {
		// Flush any group-commit remainder so a clean shutdown loses
		// nothing even with FsyncEvery > 1.
		err := fs.flushLocked()
		if cerr := fs.wal.Close(); err == nil {
			err = cerr
		}
		fs.wal = nil
		return err
	}
	return nil
}
