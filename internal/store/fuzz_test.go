package store

import (
	"testing"
)

// FuzzSnapshotDecode asserts the snapshot decoder never panics and never
// accepts silently corrupted data: arbitrary bytes either fail cleanly or
// decode into a structurally consistent State.
func FuzzSnapshotDecode(f *testing.F) {
	st := testState(f)
	valid, err := EncodeSnapshot(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent: the section
		// CRCs tie the dataset, base, and meta to each other.
		if back.Dataset == nil || back.Base == nil {
			t.Fatal("decoded snapshot with nil dataset or base")
		}
		if err := back.Dataset.Validate(); err != nil {
			t.Fatalf("invalid dataset survived CRC: %v", err)
		}
		if back.Base.MinLength <= 0 || back.Base.MaxLength < back.Base.MinLength {
			t.Fatalf("implausible base bounds [%d,%d] survived CRC",
				back.Base.MinLength, back.Base.MaxLength)
		}
	})
}

// FuzzWALDecode asserts the WAL decoder never panics: arbitrary bytes either
// fail (bad magic), or yield a valid-prefix of records plus an accurate
// recovery report.
func FuzzWALDecode(f *testing.F) {
	valid := []byte(walMagic)
	for i, r := range []Record{
		{Seq: 2, Name: "x", Values: []float64{1, 2, 3}},
		{Seq: 3, Name: "y", Values: []float64{-0.5}},
	} {
		_ = i
		valid = append(valid, encodeWALRecord(r)...)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, report, err := DecodeWAL(data)
		if err != nil {
			return
		}
		// Sequence numbers must be contiguous and ascending — DecodeWAL's
		// contract with replay.
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq != recs[i-1].Seq+1 {
				t.Fatalf("non-contiguous seqs %d -> %d survived decode",
					recs[i-1].Seq, recs[i].Seq)
			}
		}
		for _, r := range recs {
			if r.Name == "" {
				t.Fatal("record with empty name survived CRC")
			}
		}
		// The report's accounting must cover the input exactly: discarded
		// bytes never exceed what follows the magic.
		if report.DiscardedBytes < 0 || report.DiscardedBytes > int64(len(data)-len(walMagic)) {
			t.Fatalf("discarded %d of %d payload bytes", report.DiscardedBytes, len(data)-len(walMagic))
		}
	})
}
