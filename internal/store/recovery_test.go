package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore writes a snapshot at version 1 and n WAL records into a fresh
// directory, then closes the engine, simulating a process that ran and died.
func seedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := testState(t)
	st.Version = 1
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{Seq: uint64(2 + i), Name: "ingest-" + string(rune('a'+i)), Values: []float64{1, 2, 3, float64(i)}}
		if err := fs.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRecoveryTruncatedWALRecord simulates a crash mid-append: the last
// record is torn. Recovery must keep the full valid prefix, report — not
// silently drop — the tail, and leave the log appendable.
func TestRecoveryTruncatedWALRecord(t *testing.T) {
	dir := seedStore(t, 3)
	var cut int
	fs := corruptWAL(t, dir, func(data []byte) []byte {
		cut = 5 // strip the last record's tail, leaving a torn payload
		return data[:len(data)-cut]
	})
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("kept %d records, want the 2 intact ones", len(res.Records))
	}
	if res.Recovery.DiscardedBytes == 0 || !strings.Contains(res.Recovery.DiscardedReason, "torn") {
		t.Fatalf("tail loss not reported: %+v", res.Recovery)
	}
	// Load truncated the damaged tail; a new append must extend the valid
	// prefix and survive the next recovery.
	if err := fs.Append(Record{Seq: 4, Name: "after-crash", Values: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	fs2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	res, err = fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 || res.Records[2].Name != "after-crash" {
		t.Fatalf("post-crash append lost: %+v", res.Records)
	}
	if !res.Recovery.Empty() {
		t.Fatalf("second recovery not clean: %s", res.Recovery)
	}
}

// TestRecoveryFlippedCRCByte simulates silent media corruption inside a
// record: its CRC no longer matches, so it and everything after it are
// discarded with a report.
func TestRecoveryFlippedCRCByte(t *testing.T) {
	dir := seedStore(t, 3)
	var secondRecord int
	fs := corruptWAL(t, dir, func(data []byte) []byte {
		// Locate the second record and flip a payload byte.
		off := len(walMagic)
		off += 8 + int(u32(data[off:])) // skip record 1
		secondRecord = off
		data[off+8+2] ^= 0x01
		return data
	})
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("kept %d records, want 1 (corruption is in record 2)", len(res.Records))
	}
	if !strings.Contains(res.Recovery.DiscardedReason, "CRC mismatch") {
		t.Fatalf("reason = %q, want a CRC mismatch", res.Recovery.DiscardedReason)
	}
	if res.Recovery.DiscardedBytes == 0 || int(res.Recovery.DiscardedBytes) > len(walMagic)+1024*1024 {
		t.Fatalf("implausible discard count %d", res.Recovery.DiscardedBytes)
	}
	_ = secondRecord
}

// TestRecoveryTornSnapshotTemp simulates a crash mid-snapshot-swap: a
// partial temp file sits next to the real snapshot. Open must remove it,
// report it, and load the intact snapshot.
func TestRecoveryTornSnapshotTemp(t *testing.T) {
	dir := seedStore(t, 1)
	torn := filepath.Join(dir, snapshotFile+".tmp-1234567")
	if err := os.WriteFile(torn, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file survived Open")
	}
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || res.State.Version != 1 || len(res.Records) != 1 {
		t.Fatalf("intact snapshot/WAL not recovered: state=%v records=%d", res.State, len(res.Records))
	}
	if len(res.Recovery.TempFilesRemoved) != 1 {
		t.Fatalf("temp cleanup not reported: %+v", res.Recovery)
	}
}

// TestRecoveryWALGarbageAfterMagic keeps only the magic plus random bytes:
// everything after the magic is one torn header, and zero records survive —
// but the snapshot still loads.
func TestRecoveryWALGarbageAfterMagic(t *testing.T) {
	dir := seedStore(t, 2)
	fs := corruptWAL(t, dir, func(data []byte) []byte {
		return append([]byte(walMagic), 0xDE, 0xAD, 0xBE)
	})
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || len(res.Records) != 0 {
		t.Fatalf("state=%v records=%d", res.State, len(res.Records))
	}
	if res.Recovery.DiscardedBytes != 3 {
		t.Fatalf("discarded %d bytes, want 3", res.Recovery.DiscardedBytes)
	}
}

// TestRecoveryImplausibleLength guards the allocation limit: a corrupted
// length prefix claiming a giant record is discarded, not allocated.
func TestRecoveryImplausibleLength(t *testing.T) {
	dir := seedStore(t, 1)
	fs := corruptWAL(t, dir, func(data []byte) []byte {
		buf := append([]byte(walMagic), 0xFF, 0xFF, 0xFF, 0xFF) // length = MaxUint32
		return append(buf, 0, 0, 0, 0)
	})
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || !strings.Contains(res.Recovery.DiscardedReason, "implausible record length") {
		t.Fatalf("records=%d recovery=%+v", len(res.Records), res.Recovery)
	}
}
