package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/grouping"
	"repro/internal/ts"
)

// testState builds a small but real State: a dataset with meta, a grouping
// base built over it, and non-default configuration in every field.
func testState(t testing.TB) *State {
	t.Helper()
	d := ts.NewDataset("store-test")
	d.MustAdd(ts.NewSeries("a", []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.4, 0.3, 0.2, 0.1, 0.2, 0.3, 0.4}))
	d.MustAdd(ts.NewSeries("b", []float64{0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5}))
	c := &ts.Series{Name: "c", Values: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.8},
		Meta: map[string]string{"unit": "kW", "site": "x1"}}
	d.MustAdd(c)
	base, err := grouping.Build(d, grouping.Options{ST: 0.08, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	return &State{
		Dataset:   d,
		Norm:      ts.NormInfo{Kind: ts.NormMinMax, Min: -2.5, Max: 7.25},
		Base:      base,
		Version:   42,
		Band:      3,
		Exact:     true,
		KeepRaw:   false,
		CreatedAt: time.Unix(1700000000, 123456789),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := testState(t)
	data, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != st.Version || back.Band != st.Band || back.Exact != st.Exact || back.KeepRaw != st.KeepRaw {
		t.Fatalf("config fields mangled: %+v", back)
	}
	if back.Norm.Kind != st.Norm.Kind || back.Norm.Min != st.Norm.Min || back.Norm.Max != st.Norm.Max {
		t.Fatalf("norm = %+v, want %+v", back.Norm, st.Norm)
	}
	if !back.CreatedAt.Equal(st.CreatedAt) {
		t.Fatalf("createdAt = %v, want %v", back.CreatedAt, st.CreatedAt)
	}
	if back.Dataset.Name != st.Dataset.Name || back.Dataset.Len() != st.Dataset.Len() {
		t.Fatalf("dataset shape mangled: %s/%d", back.Dataset.Name, back.Dataset.Len())
	}
	for i, s := range st.Dataset.Series {
		bs := back.Dataset.Series[i]
		if bs.Name != s.Name {
			t.Fatalf("series %d name %q != %q", i, bs.Name, s.Name)
		}
		for j, v := range s.Values {
			if bs.Values[j] != v {
				t.Fatalf("series %s value %d: %v != %v (must be bit-exact)", s.Name, j, bs.Values[j], v)
			}
		}
		for k, v := range s.Meta {
			if bs.Meta[k] != v {
				t.Fatalf("series %s meta %q lost", s.Name, k)
			}
		}
	}
	// The grouping checksum ties the decoded base to the decoded dataset.
	if back.Base.DatasetSum != st.Base.DatasetSum {
		t.Fatalf("base checksum %x != %x", back.Base.DatasetSum, st.Base.DatasetSum)
	}
	if back.Base.NumGroups() != st.Base.NumGroups() || back.Base.NumSubsequences() != st.Base.NumSubsequences() {
		t.Fatal("base shape changed through the round trip")
	}
}

func TestSnapshotByteReproducible(t *testing.T) {
	st := testState(t)
	a, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same state differ (map iteration leaked into the format?)")
	}
}

func TestSnapshotSectionsAligned(t *testing.T) {
	data, err := EncodeSnapshot(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	sections, err := parseSnapshotHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 3 {
		t.Fatalf("%d sections, want 3", len(sections))
	}
	for _, s := range sections {
		if s.offset%8 != 0 {
			t.Fatalf("section %d at offset %d: not 8-aligned (mmap layout contract)", s.id, s.offset)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 2, Name: "x", Values: []float64{1, 2, 3}},
		{Seq: 3, Name: "y", Values: []float64{-0.5}},
		{Seq: 4, Name: "z", Values: []float64{9, 8, 7, 6}},
	}
	buf := []byte(walMagic)
	for _, r := range recs {
		buf = append(buf, encodeWALRecord(r)...)
	}
	back, report, err := DecodeWAL(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Empty() {
		t.Fatalf("clean WAL reported recovery: %s", report)
	}
	if len(back) != len(recs) {
		t.Fatalf("%d records, want %d", len(back), len(recs))
	}
	for i, r := range recs {
		if back[i].Seq != r.Seq || back[i].Name != r.Name || len(back[i].Values) != len(r.Values) {
			t.Fatalf("record %d = %+v, want %+v", i, back[i], r)
		}
		for j, v := range r.Values {
			if back[i].Values[j] != v {
				t.Fatalf("record %d value %d: %v != %v", i, j, back[i].Values[j], v)
			}
		}
	}
}

func TestFileStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Fresh store: no snapshot, no records.
	res, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State != nil || len(res.Records) != 0 {
		t.Fatalf("fresh store loaded state=%v records=%d", res.State, len(res.Records))
	}

	st := testState(t)
	st.Version = 1
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(Record{Seq: 2, Name: "n1", Values: []float64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(Record{Seq: 3, Name: "n2", Values: []float64{5, 6, 7, 8}}); err != nil {
		t.Fatal(err)
	}

	status := fs.Status()
	if !status.HasSnapshot || status.WALRecords != 2 || status.Appends != 2 || status.Compactions != 1 {
		t.Fatalf("status = %+v", status)
	}
	if status.Kind != "filestore" {
		t.Fatalf("kind = %q", status.Kind)
	}

	// A second engine on the same directory (a fresh process) recovers both.
	fs2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	res, err = fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || res.State.Version != 1 {
		t.Fatalf("recovered state = %+v", res.State)
	}
	if len(res.Records) != 2 || res.Records[0].Name != "n1" || res.Records[1].Seq != 3 {
		t.Fatalf("recovered records = %+v", res.Records)
	}
	if !res.Recovery.Empty() {
		t.Fatalf("clean shutdown reported recovery: %s", res.Recovery)
	}

	// Compaction folds the WAL: snapshot at the new version, log empty.
	st.Version = 3
	if err := fs2.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	res, err = fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Version != 3 || len(res.Records) != 0 {
		t.Fatalf("after compaction: version %d, %d records", res.State.Version, len(res.Records))
	}
	if s := fs2.Status(); s.WALRecords != 0 || s.WALBytes != int64(len(walMagic)) {
		t.Fatalf("WAL not reset: %+v", s)
	}
}

func TestFileStoreAppendAfterClose(t *testing.T) {
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(Record{Seq: 1, Name: "x", Values: []float64{1}}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestDecodeWALRejectsBadMagic(t *testing.T) {
	if _, _, err := DecodeWAL([]byte("NOTAWAL!")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := DecodeWAL(nil); err == nil {
		t.Fatal("empty file accepted as WAL")
	}
}

func TestDecodeWALSequenceGap(t *testing.T) {
	buf := []byte(walMagic)
	buf = append(buf, encodeWALRecord(Record{Seq: 2, Name: "a", Values: []float64{1}})...)
	gapAt := len(buf)
	buf = append(buf, encodeWALRecord(Record{Seq: 5, Name: "b", Values: []float64{2}})...)
	recs, report, err := DecodeWAL(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("records = %+v, want just seq 2", recs)
	}
	if report.DiscardedBytes != int64(len(buf)-gapAt) {
		t.Fatalf("discarded %d bytes, want %d", report.DiscardedBytes, len(buf)-gapAt)
	}
}

// TestSnapshotDamageIsHardError distinguishes the two recovery postures: a
// WAL tail can be dropped (bounded, reported loss) but snapshot damage must
// refuse to load — it is the only full copy of the index.
func TestSnapshotDamageIsHardError(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the payload.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, err := fs2.Load(); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
}

// corruptTail is a helper for the recovery tests: it rewrites the WAL file
// through fn and reopens the store.
func corruptWAL(t *testing.T, dir string, fn func([]byte) []byte) *FileStore {
	t.Helper()
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func u32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
