package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"repro/internal/grouping"
	"repro/internal/ts"
)

// ErrSnapshotCorrupt is wrapped by every snapshot decode failure — bad
// magic, torn section table, a section reaching past end of file, a CRC
// mismatch, or a malformed payload — so callers (and the mmap open path,
// which must turn damage into an error rather than a fault) can classify
// with errors.Is without matching message text.
var ErrSnapshotCorrupt = errors.New("snapshot corrupt")

// Snapshot file format, little endian throughout:
//
//	magic    [8]byte "ONEXSNP1"
//	u32      format version (currently 1)
//	u32      section count n
//	n x 32B  section table entry:
//	           u32 id, u32 reserved, u64 offset, u64 length, u32 crc32, u32 reserved
//	u32      header CRC (IEEE, over magic .. table)
//	...      sections at their stated offsets, each 8-byte aligned
//
// Section offsets are absolute file offsets and every section's float64 runs
// are 8-byte aligned relative to the file start, so a future engine can mmap
// the file and point slices straight at the value arrays without a decode
// pass. Each section carries its own CRC in the table; the BASE section is
// the grouping serialization verbatim, which adds the inner magic+CRC
// framing from internal/grouping/serialize.go.
const (
	snapMagic         = "ONEXSNP1"
	snapFormatVersion = 1

	secMeta    = 1
	secDataset = 2
	secBase    = 3

	// Decoder sanity limits: a corrupted or adversarial header must not be
	// able to force implausible allocations (the fuzz targets rely on
	// these).
	maxSections   = 64
	maxStringLen  = 1 << 20
	maxSeries     = 1 << 24
	maxValues     = 1 << 28
	maxMetaFields = 1 << 16
)

// section is one decoded section-table entry.
type section struct {
	id     uint32
	offset uint64
	length uint64
	crc    uint32
}

// bwriter accumulates a section payload.
type bwriter struct{ buf []byte }

func (w *bwriter) u8(v byte) { w.buf = append(w.buf, v) }
func (w *bwriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *bwriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *bwriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *bwriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *bwriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// pad8 pads to an 8-byte boundary (sections are placed at 8-aligned file
// offsets, so in-buffer alignment equals file alignment).
func (w *bwriter) pad8() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// breader decodes a section payload with sticky errors and sanity limits.
type breader struct {
	buf []byte
	off int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *breader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("store: snapshot: truncated section (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *breader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *breader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *breader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *breader) i64() int64   { return int64(r.u64()) }
func (r *breader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *breader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.fail("store: snapshot: string length %d exceeds limit %d", n, maxStringLen)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

func (r *breader) pad8() {
	if rem := r.off % 8; rem != 0 {
		r.take(8 - rem)
	}
}

// EncodeSnapshot serializes a State into the snapshot file format.
func EncodeSnapshot(st *State) ([]byte, error) {
	if st == nil || st.Dataset == nil || st.Base == nil {
		return nil, fmt.Errorf("store: EncodeSnapshot: nil state, dataset, or base")
	}

	var meta bwriter
	meta.u64(st.Version)
	meta.i64(st.CreatedAt.UnixNano())
	meta.i64(int64(st.Band))
	meta.u8(b2u8(st.Exact))
	meta.u8(b2u8(st.KeepRaw))
	meta.u8(byte(st.Norm.Kind))
	meta.f64(st.Norm.Min)
	meta.f64(st.Norm.Max)

	var data bwriter
	data.str(st.Dataset.Name)
	data.u32(uint32(st.Dataset.Len()))
	for _, s := range st.Dataset.Series {
		data.str(s.Name)
		keys := make([]string, 0, len(s.Meta))
		for k := range s.Meta {
			keys = append(keys, k)
		}
		// Deterministic meta order keeps snapshots byte-reproducible.
		sort.Strings(keys)
		data.u32(uint32(len(keys)))
		for _, k := range keys {
			data.str(k)
			data.str(s.Meta[k])
		}
		data.u32(uint32(len(s.Values)))
		data.pad8()
		for _, v := range s.Values {
			data.f64(v)
		}
	}

	var base bytes.Buffer
	if err := st.Base.Write(&base); err != nil {
		return nil, fmt.Errorf("store: EncodeSnapshot: %w", err)
	}

	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secMeta, meta.buf},
		{secDataset, data.buf},
		{secBase, base.Bytes()},
	}

	headerSize := len(snapMagic) + 4 + 4 + len(sections)*32 + 4
	offset := align8(headerSize)

	var hdr bwriter
	hdr.buf = append(hdr.buf, snapMagic...)
	hdr.u32(snapFormatVersion)
	hdr.u32(uint32(len(sections)))
	for _, s := range sections {
		hdr.u32(s.id)
		hdr.u32(0)
		hdr.u64(uint64(offset))
		hdr.u64(uint64(len(s.payload)))
		hdr.u32(crc32.ChecksumIEEE(s.payload))
		hdr.u32(0)
		offset = align8(offset + len(s.payload))
	}
	hdr.u32(crc32.ChecksumIEEE(hdr.buf))

	out := make([]byte, 0, offset)
	out = append(out, hdr.buf...)
	for _, s := range sections {
		for len(out)%8 != 0 {
			out = append(out, 0)
		}
		out = append(out, s.payload...)
	}
	return out, nil
}

// parseSnapshotHeader validates the magic, format version, header CRC, and
// section table (bounds and per-section CRCs) and returns the table.
func parseSnapshotHeader(data []byte) ([]section, error) {
	fixed := len(snapMagic) + 4 + 4
	if len(data) < fixed+4 {
		return nil, fmt.Errorf("store: snapshot: file too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic %q", data[:len(snapMagic)])
	}
	version := binary.LittleEndian.Uint32(data[len(snapMagic):])
	if version != snapFormatVersion {
		return nil, fmt.Errorf("store: snapshot: unsupported format version %d (want %d)", version, snapFormatVersion)
	}
	n := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	if n == 0 || n > maxSections {
		return nil, fmt.Errorf("store: snapshot: implausible section count %d", n)
	}
	headerSize := fixed + int(n)*32 + 4
	if len(data) < headerSize {
		return nil, fmt.Errorf("store: snapshot: truncated section table (%d bytes, need %d)", len(data), headerSize)
	}
	wantCRC := binary.LittleEndian.Uint32(data[headerSize-4:])
	if got := crc32.ChecksumIEEE(data[:headerSize-4]); got != wantCRC {
		return nil, fmt.Errorf("store: snapshot: header CRC mismatch: stored %08x, computed %08x", wantCRC, got)
	}
	sections := make([]section, n)
	for i := range sections {
		e := data[fixed+i*32:]
		sections[i] = section{
			id:     binary.LittleEndian.Uint32(e),
			offset: binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
			crc:    binary.LittleEndian.Uint32(e[24:]),
		}
		s := sections[i]
		if s.offset > uint64(len(data)) || s.length > uint64(len(data)) || s.offset+s.length > uint64(len(data)) {
			return nil, fmt.Errorf("store: snapshot: section %d [%d,+%d) exceeds file size %d", s.id, s.offset, s.length, len(data))
		}
		if got := crc32.ChecksumIEEE(data[s.offset : s.offset+s.length]); got != s.crc {
			return nil, fmt.Errorf("store: snapshot: section %d CRC mismatch: stored %08x, computed %08x", s.id, s.crc, got)
		}
	}
	return sections, nil
}

// Float64Viewer turns one 8-aligned little-endian float64 run of the
// snapshot buffer into a []float64. nil selects the default, which decodes
// into a fresh heap slice; the mmap open path (internal/mmapdata) supplies
// a zero-copy reinterpretation over its read-only mapping instead, so the
// returned slices page in on demand rather than being materialized.
type Float64Viewer func(raw []byte) []float64

// copyFloat64s is the default viewer: an explicit little-endian decode
// into a heap slice, byte-compatible with the zero-copy view.
func copyFloat64s(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// DecodeSnapshot parses and verifies a snapshot file into a State.
func DecodeSnapshot(data []byte) (*State, error) {
	return DecodeSnapshotWith(data, nil)
}

// DecodeSnapshotWith is DecodeSnapshot with the value decoding pluggable:
// every series' float64 run is handed to view (see Float64Viewer), so the
// caller controls whether values are copied onto the heap or aliased in
// place. All structural metadata — names, meta maps, the grouping base —
// is decoded eagerly either way; it is small next to the value runs.
// Decode failures satisfy errors.Is(err, ErrSnapshotCorrupt).
func DecodeSnapshotWith(data []byte, view Float64Viewer) (*State, error) {
	if view == nil {
		view = copyFloat64s
	}
	st, err := decodeSnapshot(data, view)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	return st, nil
}

func decodeSnapshot(data []byte, view Float64Viewer) (*State, error) {
	sections, err := parseSnapshotHeader(data)
	if err != nil {
		return nil, err
	}
	payload := func(id uint32) ([]byte, bool) {
		for _, s := range sections {
			if s.id == id {
				return data[s.offset : s.offset+s.length], true
			}
		}
		return nil, false
	}

	metaBuf, ok := payload(secMeta)
	if !ok {
		return nil, fmt.Errorf("store: snapshot: missing META section")
	}
	st := &State{}
	mr := &breader{buf: metaBuf}
	st.Version = mr.u64()
	st.CreatedAt = time.Unix(0, mr.i64())
	st.Band = int(mr.i64())
	st.Exact = mr.u8() != 0
	st.KeepRaw = mr.u8() != 0
	st.Norm.Kind = ts.NormKind(mr.u8())
	st.Norm.Min = mr.f64()
	st.Norm.Max = mr.f64()
	if mr.err != nil {
		return nil, fmt.Errorf("store: snapshot: META: %w", mr.err)
	}
	switch st.Norm.Kind {
	case ts.NormNone, ts.NormMinMax:
	default:
		return nil, fmt.Errorf("store: snapshot: unsupported normalization %v", st.Norm.Kind)
	}

	dataBuf, ok := payload(secDataset)
	if !ok {
		return nil, fmt.Errorf("store: snapshot: missing DATASET section")
	}
	dr := &breader{buf: dataBuf}
	ds := ts.NewDataset(dr.str())
	numSeries := dr.u32()
	if dr.err == nil && numSeries > maxSeries {
		return nil, fmt.Errorf("store: snapshot: implausible series count %d", numSeries)
	}
	for i := uint32(0); i < numSeries && dr.err == nil; i++ {
		name := dr.str()
		numMeta := dr.u32()
		if dr.err != nil {
			break
		}
		if numMeta > maxMetaFields {
			return nil, fmt.Errorf("store: snapshot: implausible meta count %d", numMeta)
		}
		var meta map[string]string
		if numMeta > 0 {
			meta = make(map[string]string, numMeta)
		}
		for j := uint32(0); j < numMeta && dr.err == nil; j++ {
			k := dr.str()
			meta[k] = dr.str()
		}
		numValues := dr.u32()
		if dr.err != nil {
			break
		}
		if numValues > maxValues {
			return nil, fmt.Errorf("store: snapshot: implausible value count %d", numValues)
		}
		dr.pad8()
		// Values are one contiguous 8-aligned little-endian run; hand the
		// raw bytes to the viewer so the mmap path can alias them in place.
		// (On 32-bit platforms the multiplication can wrap; take rejects
		// negative sizes, so a wrapped length fails cleanly.)
		raw := dr.take(int(numValues) * 8)
		if dr.err != nil {
			break
		}
		values := view(raw)
		s := &ts.Series{Name: name, Values: values, Meta: meta}
		if err := ds.Add(s); err != nil {
			return nil, fmt.Errorf("store: snapshot: DATASET: %w", err)
		}
	}
	if dr.err != nil {
		return nil, fmt.Errorf("store: snapshot: DATASET: %w", dr.err)
	}
	st.Dataset = ds

	baseBuf, ok := payload(secBase)
	if !ok {
		return nil, fmt.Errorf("store: snapshot: missing BASE section")
	}
	base, err := grouping.Read(bytes.NewReader(baseBuf))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: BASE: %w", err)
	}
	st.Base = base
	return st, nil
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func align8(n int) int { return (n + 7) &^ 7 }
