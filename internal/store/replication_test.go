package store

import (
	"io"
	"sync"
	"testing"
	"time"
)

// replSource opens a FileStore with a version-42 snapshot (testState), the
// starting point for every replication-view test.
func replSource(t *testing.T) *FileStore {
	t.Helper()
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	if err := fs.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	return fs
}

func mustAppend(t *testing.T, fs *FileStore, seq uint64) {
	t.Helper()
	if err := fs.Append(Record{Seq: seq, Name: "r", Values: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
}

// TestTailSinceSemantics covers the four contract cases: records to serve,
// caught up, fenced behind the snapshot, and fenced ahead of the leader.
func TestTailSinceSemantics(t *testing.T) {
	fs := replSource(t) // snapshot at 42, empty WAL
	for seq := uint64(43); seq <= 45; seq++ {
		mustAppend(t, fs, seq)
	}
	if got := fs.LastSeq(); got != 45 {
		t.Fatalf("LastSeq = %d, want 45", got)
	}

	recs, fence, err := fs.TailSince(42)
	if err != nil || fence {
		t.Fatalf("TailSince(42) fence=%v err=%v", fence, err)
	}
	if len(recs) != 3 || recs[0].Seq != 43 || recs[2].Seq != 45 {
		t.Fatalf("TailSince(42) = %+v, want seqs 43..45", recs)
	}

	recs, fence, err = fs.TailSince(44)
	if err != nil || fence || len(recs) != 1 || recs[0].Seq != 45 {
		t.Fatalf("TailSince(44) = %v recs, fence=%v, err=%v", len(recs), fence, err)
	}

	// Caught up: empty, unfenced.
	recs, fence, err = fs.TailSince(45)
	if err != nil || fence || len(recs) != 0 {
		t.Fatalf("TailSince(45) = %v recs, fence=%v, err=%v", len(recs), fence, err)
	}

	// Behind the snapshot (1..42 were folded at snapshot time): fence.
	if _, fence, _ = fs.TailSince(10); !fence {
		t.Fatal("TailSince(10) should fence (range folded into snapshot)")
	}

	// Ahead of the leader (a follower of some future incarnation): fence.
	if _, fence, _ = fs.TailSince(99); !fence {
		t.Fatal("TailSince(99) should fence (follower ahead of leader)")
	}
}

// TestTailSinceAcrossCompaction: a compaction folds the tail away, so a
// cursor from before the boundary fences while the new boundary itself is
// caught up — the exact transition a live follower rides through.
func TestTailSinceAcrossCompaction(t *testing.T) {
	fs := replSource(t)
	for seq := uint64(43); seq <= 45; seq++ {
		mustAppend(t, fs, seq)
	}
	st := testState(t)
	st.Version = 45
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if _, fence, _ := fs.TailSince(43); !fence {
		t.Fatal("TailSince(43) after compaction should fence")
	}
	recs, fence, err := fs.TailSince(45)
	if err != nil || fence || len(recs) != 0 {
		t.Fatalf("TailSince(45) after compaction = %v recs, fence=%v, err=%v", len(recs), fence, err)
	}
	// The stream continues seamlessly past the new boundary.
	mustAppend(t, fs, 46)
	recs, fence, err = fs.TailSince(45)
	if err != nil || fence || len(recs) != 1 || recs[0].Seq != 46 {
		t.Fatalf("TailSince(45) post-compaction append = %+v, fence=%v, err=%v", recs, fence, err)
	}
}

// TestChangedWakesLongPollers: the broadcast channel closes on append and
// on compaction, so a long-polling WAL handler never sleeps through the
// record it is waiting for.
func TestChangedWakesLongPollers(t *testing.T) {
	fs := replSource(t)

	ch := fs.Changed()
	select {
	case <-ch:
		t.Fatal("Changed() fired with no mutation")
	case <-time.After(10 * time.Millisecond):
	}
	mustAppend(t, fs, 43)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed() did not fire on append")
	}

	ch = fs.Changed()
	st := testState(t)
	st.Version = 43
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed() did not fire on compaction")
	}
}

// TestSnapshotBlobSurvivesCompaction: a blob opened before a compaction
// still reads as one complete, decodable snapshot afterwards (the open fd
// survives the atomic rename) — a follower mid-download never sees a torn
// image.
func TestSnapshotBlobSurvivesCompaction(t *testing.T) {
	fs := replSource(t)
	blob, size, version, err := fs.SnapshotBlob()
	if err != nil {
		t.Fatal(err)
	}
	defer blob.Close()
	if version != 42 {
		t.Fatalf("SnapshotBlob version = %d, want 42", version)
	}

	// Compact to a newer version while the blob is open.
	mustAppend(t, fs, 43)
	st := testState(t)
	st.Version = 43
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}

	data, err := io.ReadAll(blob)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != size {
		t.Fatalf("blob read %d bytes, advertised %d", len(data), size)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("blob no longer decodes after compaction: %v", err)
	}
	if got.Version != 42 {
		t.Fatalf("blob decoded to version %d, want the pre-compaction 42", got.Version)
	}
}

// TestGroupCommitDurableOnCloseAndFlush: with a fsync stride above 1,
// appends are still fully present after Flush or Close (both force the
// deferred fsync), so a graceful shutdown never loses acked ingests.
func TestGroupCommitDurableOnCloseAndFlush(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFsyncEvery(8)
	if err := fs.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(43); seq <= 47; seq++ { // 5 appends < stride 8: no fsync yet
		mustAppend(t, fs, seq)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, fs, 48)
	if st := fs.Status(); st.FsyncEvery != 8 || st.LastSeq != 48 {
		t.Fatalf("Status fsyncEvery=%d lastSeq=%d, want 8/48", st.FsyncEvery, st.LastSeq)
	}
	if err := fs.Close(); err != nil { // Close flushes the unsynced suffix
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 || res.Records[5].Seq != 48 {
		t.Fatalf("reopened with %d records, want all 6 through 48", len(res.Records))
	}
	if !res.Recovery.Empty() {
		t.Fatalf("recovery not clean: %s", res.Recovery)
	}
}

// TestRecoveryReportCounts: the report carries the structured replay
// account (snapshot version + records replayed) that /healthz surfaces.
func TestRecoveryReportCounts(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, fs, 43)
	mustAppend(t, fs, 44)
	fs.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.SnapshotVersion != 42 || res.Recovery.ReplayedRecords != 2 {
		t.Fatalf("recovery report = %+v, want snapshotVersion=42 replayedRecords=2", res.Recovery)
	}
}

// TestCompactionRacesTailReader is the satellite (c) race test: one writer
// interleaving appends and compactions (serialized, as under onex.DB's
// write lock) while reader goroutines chase the tail concurrently. Every
// read must be a seamless continuation (contiguous from the cursor) or a
// clean fence — never a gapped or torn batch. Run with -race.
func TestCompactionRacesTailReader(t *testing.T) {
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	st := testState(t)
	st.Version = 0
	if err := fs.Snapshot(st); err != nil {
		t.Fatal(err)
	}

	const total = 400
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var from uint64
			for from < total {
				recs, fence, err := fs.TailSince(from)
				if err != nil {
					t.Errorf("TailSince(%d): %v", from, err)
					return
				}
				if fence {
					// Re-sync exactly as a follower would: restart from the
					// compaction boundary (the snapshot re-ship position).
					from = fs.Status().SnapshotVersion
					continue
				}
				want := from
				for _, rec := range recs {
					want++
					if rec.Seq != want {
						t.Errorf("gap: got seq %d after cursor %d", rec.Seq, want-1)
						return
					}
					if len(rec.Values) != 3 {
						t.Errorf("torn record at seq %d: %d values", rec.Seq, len(rec.Values))
						return
					}
				}
				if len(recs) > 0 {
					from = recs[len(recs)-1].Seq
				}
			}
		}()
	}

	// Single writer: appends with periodic compactions, the serialization
	// onex.DB's write lock provides in production.
	for seq := uint64(1); seq <= total; seq++ {
		mustAppend(t, fs, seq)
		if seq%37 == 0 {
			st.Version = seq
			if err := fs.Snapshot(st); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
}
