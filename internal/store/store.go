// Package store is the pluggable persistence subsystem behind onex.DB: a
// storage-engine abstraction that turns restarts from full grouping rebuilds
// into millisecond warm opens.
//
// An Engine persists one dataset as two artifacts:
//
//   - a snapshot: one compact, versioned, CRC-checksummed file holding the
//     raw series data, the normalization transform, the resolved engine
//     configuration, and the grouping index (the ONEX base), laid out behind
//     a section-table header so a future engine can mmap the value runs
//     without a decode pass; and
//   - a write-ahead log: an append-only file of length-prefixed,
//     CRC-per-record entries, one per successful AddSeries, fsynced before
//     the ingest is acknowledged, so ingested series survive a crash.
//
// Recovery is: load the snapshot, replay the WAL tail whose sequence numbers
// exceed the snapshot's version, and report — never silently drop — any
// trailing bytes that fail their CRC or arrive torn. Compaction folds the
// WAL back into a fresh snapshot (written with an atomic temp+fsync+rename
// swap) and resets the log.
//
// The same two artifacts double as the replication feed: ReplicationSource
// exposes the current snapshot as a torn-proof blob (SnapshotBlob), the
// live WAL tail addressed by sequence number (TailSince, with an explicit
// fence when compaction has folded the requested range away), and a
// broadcast channel for long-pollers (Changed). SetFsyncEvery trades a
// bounded durability window for ingest throughput by batching WAL fsyncs
// (group commit); Close and Flush always force the deferred sync.
//
// FileStore is the first Engine implementation; the in-memory path (a nil
// Engine on the DB) remains the default.
package store

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/grouping"
	"repro/internal/ts"
)

// Record is one durable mutation: an AddSeries call in original units.
// Records carry a contiguous sequence number so replay can tell which ones a
// snapshot has already folded in (Seq <= snapshot Version).
type Record struct {
	// Seq is the dataset's mutation version after applying this record:
	// the first record appended on top of a version-v snapshot has Seq v+1.
	Seq uint64
	// Name and Values are the AddSeries arguments, in original units.
	Name   string
	Values []float64
}

// State is the full persisted state of one database: everything needed to
// reconstruct an onex.DB bit-exactly without rebuilding the grouping index.
type State struct {
	// Dataset holds the series in original units (Norm zero). The engine
	// view is reconstructed by re-applying Norm, which is deterministic
	// arithmetic, so the reconstruction is bit-identical to the live DB —
	// the base's dataset checksum verifies this at open.
	Dataset *ts.Dataset
	// Norm is the normalization transform the engine view was produced
	// with (recorded, not recomputed: ingested values may lie outside the
	// open-time extrema).
	Norm ts.NormInfo
	// Base is the grouping index built over the normalized view.
	Base *grouping.Base
	// Version is the dataset's mutation counter at snapshot time.
	Version uint64
	// Band, Exact, and KeepRaw complete the resolved configuration (ST and
	// the length bounds travel inside Base).
	Band    int
	Exact   bool
	KeepRaw bool
	// CreatedAt is stamped by the engine when the snapshot is written.
	CreatedAt time.Time
}

// RecoveryReport describes what recovery had to discard or clean up. A zero
// report means the persisted state was pristine.
type RecoveryReport struct {
	// DiscardedBytes counts WAL bytes dropped after the longest valid
	// record prefix (a torn tail or a corrupted record and everything
	// after it).
	DiscardedBytes int64
	// DiscardedReason says why the tail was cut (short record, CRC
	// mismatch, implausible length, bad sequence).
	DiscardedReason string
	// TempFilesRemoved lists leftover in-progress files (torn snapshot or
	// WAL swaps from a crash mid-write) that were deleted.
	TempFilesRemoved []string
	// SnapshotVersion is the mutation version of the snapshot recovery
	// started from (0 when the engine held none). Together with
	// ReplayedRecords it lets an operator — or a follower checking its
	// leader — confirm a clean catch-up from /healthz instead of logs.
	SnapshotVersion uint64
	// ReplayedRecords counts the valid WAL records past the snapshot
	// version, i.e. the ingests recovery re-applied on top of the snapshot.
	ReplayedRecords int
}

// Empty reports whether recovery found nothing to complain about.
func (r RecoveryReport) Empty() bool {
	return r.DiscardedBytes == 0 && len(r.TempFilesRemoved) == 0 && r.DiscardedReason == ""
}

// String renders the report for logs and health endpoints.
func (r RecoveryReport) String() string {
	if r.Empty() {
		return "clean"
	}
	s := ""
	if r.DiscardedBytes > 0 || r.DiscardedReason != "" {
		s = fmt.Sprintf("discarded %d WAL byte(s): %s", r.DiscardedBytes, r.DiscardedReason)
	}
	if n := len(r.TempFilesRemoved); n > 0 {
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("removed %d leftover temp file(s)", n)
	}
	return s
}

// LoadResult is what Engine.Load recovers.
type LoadResult struct {
	// State is the decoded snapshot, or nil when the engine holds none.
	State *State
	// Records is the WAL tail in append order; the caller skips records
	// with Seq <= State.Version (already folded by a compaction).
	Records []Record
	// Recovery describes anything discarded or cleaned up on the way.
	Recovery RecoveryReport
}

// Status is a point-in-time view of an engine's persistence state, surfaced
// by /healthz and /metrics.
type Status struct {
	// Kind names the engine implementation ("filestore").
	Kind string
	// Path locates the persisted state (the directory for a FileStore).
	Path string
	// HasSnapshot reports whether a snapshot exists.
	HasSnapshot bool
	// SnapshotTime is the CreatedAt of the current snapshot.
	SnapshotTime time.Time
	// SnapshotBytes is the size of the snapshot file.
	SnapshotBytes int64
	// SnapshotVersion is the mutation version the snapshot holds.
	SnapshotVersion uint64
	// WALRecords and WALBytes measure the log pending compaction.
	WALRecords int
	WALBytes   int64
	// Appends and Compactions count engine operations since process start.
	Appends     uint64
	Compactions uint64
	// FsyncEvery is the group-commit stride: the WAL is fsynced once per
	// this many appends (1 = every append, the durable default).
	FsyncEvery int
	// LastSeq is the newest sequence number the engine holds, in the
	// snapshot or the WAL tail (the leader position replication lag is
	// measured against).
	LastSeq uint64
	// Recovery is what the engine's Load had to discard, if anything.
	Recovery RecoveryReport
	// LastError carries the owning DB's most recent background persistence
	// failure (a failed auto-compaction, say) for health endpoints; the
	// engine itself never sets it.
	LastError string
	// ValuesKind, MappedBytes, and MappedResidentBytes describe the owning
	// DB's value residency when it was opened with mmap-backed values
	// (onex.Config.MmapValues): the backing kind ("mmap", or
	// "mmap-fallback" on platforms without a usable mapping), the size of
	// the mapped snapshot, and how much of it is currently resident in
	// physical memory (-1 when the platform cannot tell). Zero values mean
	// the dataset is fully heap-resident (eager decode). Like LastError,
	// these are annotated by the DB — the engine itself never sets them.
	ValuesKind          string
	MappedBytes         int64
	MappedResidentBytes int64
}

// Engine is the pluggable persistence contract. Implementations must make
// Append durable (fsynced) before returning, and must make Snapshot atomic:
// a crash at any point leaves either the previous snapshot+WAL or the new
// snapshot with an empty (or superseded, sequence-skippable) WAL. Engines
// are safe for concurrent use, though onex.DB already serializes mutations
// behind its write lock.
type Engine interface {
	// Kind names the implementation for health and metrics endpoints.
	Kind() string
	// Load recovers the persisted state: snapshot plus replayable WAL tail.
	// A missing snapshot is not an error (LoadResult.State is nil).
	Load() (*LoadResult, error)
	// Snapshot atomically persists the full state and resets the WAL.
	Snapshot(st *State) error
	// Append durably logs one mutation before returning.
	Append(rec Record) error
	// Status reports the current persistence state.
	Status() Status
	// Close releases file handles. The engine is unusable afterwards.
	Close() error
}

// ErrClosed is returned by engine operations after Close.
var ErrClosed = errors.New("store: engine closed")

// ReplicationSource is the optional Engine extension a replication leader
// serves followers from. The version/seq discipline already makes a
// snapshot plus a WAL tail a consistent replication unit: a follower that
// applies the snapshot at version V and then every record V+1, V+2, ... is
// bit-identical to the leader at each applied version. Implementations
// must keep TailSince correct across compaction: once records have been
// folded into a snapshot and dropped from the log, a request that predates
// the oldest retained sequence must fence (fence=true) instead of serving
// a gap, telling the follower to re-ship the snapshot.
type ReplicationSource interface {
	// SnapshotBlob opens the current snapshot for streaming: the reader
	// (caller closes), its size, and the advisory version it was written
	// at. The snapshot's own META section is authoritative for the
	// version; a follower decodes it rather than trusting the transport.
	// Returns an error satisfying errors.Is(err, os.ErrNotExist) when the
	// engine holds no snapshot yet.
	SnapshotBlob() (r io.ReadCloser, size int64, version uint64, err error)
	// TailSince returns the retained WAL records with Seq > from, in
	// order and contiguous from from+1. fence reports that records in
	// (from, oldest-retained) were compacted away — the caller must
	// restart from a fresh snapshot. An empty, unfenced result means the
	// follower is caught up.
	TailSince(from uint64) (recs []Record, fence bool, err error)
	// LastSeq is the newest sequence number the source holds.
	LastSeq() uint64
	// Changed returns a channel closed at the next append or compaction,
	// for long-polling tails. After it fires, call Changed again for a
	// fresh channel.
	Changed() <-chan struct{}
}
