// Package store is the pluggable persistence subsystem behind onex.DB: a
// storage-engine abstraction that turns restarts from full grouping rebuilds
// into millisecond warm opens.
//
// An Engine persists one dataset as two artifacts:
//
//   - a snapshot: one compact, versioned, CRC-checksummed file holding the
//     raw series data, the normalization transform, the resolved engine
//     configuration, and the grouping index (the ONEX base), laid out behind
//     a section-table header so a future engine can mmap the value runs
//     without a decode pass; and
//   - a write-ahead log: an append-only file of length-prefixed,
//     CRC-per-record entries, one per successful AddSeries, fsynced before
//     the ingest is acknowledged, so ingested series survive a crash.
//
// Recovery is: load the snapshot, replay the WAL tail whose sequence numbers
// exceed the snapshot's version, and report — never silently drop — any
// trailing bytes that fail their CRC or arrive torn. Compaction folds the
// WAL back into a fresh snapshot (written with an atomic temp+fsync+rename
// swap) and resets the log.
//
// FileStore is the first Engine implementation; the in-memory path (a nil
// Engine on the DB) remains the default.
package store

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/grouping"
	"repro/internal/ts"
)

// Record is one durable mutation: an AddSeries call in original units.
// Records carry a contiguous sequence number so replay can tell which ones a
// snapshot has already folded in (Seq <= snapshot Version).
type Record struct {
	// Seq is the dataset's mutation version after applying this record:
	// the first record appended on top of a version-v snapshot has Seq v+1.
	Seq uint64
	// Name and Values are the AddSeries arguments, in original units.
	Name   string
	Values []float64
}

// State is the full persisted state of one database: everything needed to
// reconstruct an onex.DB bit-exactly without rebuilding the grouping index.
type State struct {
	// Dataset holds the series in original units (Norm zero). The engine
	// view is reconstructed by re-applying Norm, which is deterministic
	// arithmetic, so the reconstruction is bit-identical to the live DB —
	// the base's dataset checksum verifies this at open.
	Dataset *ts.Dataset
	// Norm is the normalization transform the engine view was produced
	// with (recorded, not recomputed: ingested values may lie outside the
	// open-time extrema).
	Norm ts.NormInfo
	// Base is the grouping index built over the normalized view.
	Base *grouping.Base
	// Version is the dataset's mutation counter at snapshot time.
	Version uint64
	// Band, Exact, and KeepRaw complete the resolved configuration (ST and
	// the length bounds travel inside Base).
	Band    int
	Exact   bool
	KeepRaw bool
	// CreatedAt is stamped by the engine when the snapshot is written.
	CreatedAt time.Time
}

// RecoveryReport describes what recovery had to discard or clean up. A zero
// report means the persisted state was pristine.
type RecoveryReport struct {
	// DiscardedBytes counts WAL bytes dropped after the longest valid
	// record prefix (a torn tail or a corrupted record and everything
	// after it).
	DiscardedBytes int64
	// DiscardedReason says why the tail was cut (short record, CRC
	// mismatch, implausible length, bad sequence).
	DiscardedReason string
	// TempFilesRemoved lists leftover in-progress files (torn snapshot or
	// WAL swaps from a crash mid-write) that were deleted.
	TempFilesRemoved []string
}

// Empty reports whether recovery found nothing to complain about.
func (r RecoveryReport) Empty() bool {
	return r.DiscardedBytes == 0 && len(r.TempFilesRemoved) == 0 && r.DiscardedReason == ""
}

// String renders the report for logs and health endpoints.
func (r RecoveryReport) String() string {
	if r.Empty() {
		return "clean"
	}
	s := ""
	if r.DiscardedBytes > 0 || r.DiscardedReason != "" {
		s = fmt.Sprintf("discarded %d WAL byte(s): %s", r.DiscardedBytes, r.DiscardedReason)
	}
	if n := len(r.TempFilesRemoved); n > 0 {
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("removed %d leftover temp file(s)", n)
	}
	return s
}

// LoadResult is what Engine.Load recovers.
type LoadResult struct {
	// State is the decoded snapshot, or nil when the engine holds none.
	State *State
	// Records is the WAL tail in append order; the caller skips records
	// with Seq <= State.Version (already folded by a compaction).
	Records []Record
	// Recovery describes anything discarded or cleaned up on the way.
	Recovery RecoveryReport
}

// Status is a point-in-time view of an engine's persistence state, surfaced
// by /healthz and /metrics.
type Status struct {
	// Kind names the engine implementation ("filestore").
	Kind string
	// Path locates the persisted state (the directory for a FileStore).
	Path string
	// HasSnapshot reports whether a snapshot exists.
	HasSnapshot bool
	// SnapshotTime is the CreatedAt of the current snapshot.
	SnapshotTime time.Time
	// SnapshotBytes is the size of the snapshot file.
	SnapshotBytes int64
	// SnapshotVersion is the mutation version the snapshot holds.
	SnapshotVersion uint64
	// WALRecords and WALBytes measure the log pending compaction.
	WALRecords int
	WALBytes   int64
	// Appends and Compactions count engine operations since process start.
	Appends     uint64
	Compactions uint64
	// Recovery is what the engine's Load had to discard, if anything.
	Recovery RecoveryReport
	// LastError carries the owning DB's most recent background persistence
	// failure (a failed auto-compaction, say) for health endpoints; the
	// engine itself never sets it.
	LastError string
}

// Engine is the pluggable persistence contract. Implementations must make
// Append durable (fsynced) before returning, and must make Snapshot atomic:
// a crash at any point leaves either the previous snapshot+WAL or the new
// snapshot with an empty (or superseded, sequence-skippable) WAL. Engines
// are safe for concurrent use, though onex.DB already serializes mutations
// behind its write lock.
type Engine interface {
	// Kind names the implementation for health and metrics endpoints.
	Kind() string
	// Load recovers the persisted state: snapshot plus replayable WAL tail.
	// A missing snapshot is not an error (LoadResult.State is nil).
	Load() (*LoadResult, error)
	// Snapshot atomically persists the full state and resets the WAL.
	Snapshot(st *State) error
	// Append durably logs one mutation before returning.
	Append(rec Record) error
	// Status reports the current persistence state.
	Status() Status
	// Close releases file handles. The engine is unusable afterwards.
	Close() error
}

// ErrClosed is returned by engine operations after Close.
var ErrClosed = errors.New("store: engine closed")
