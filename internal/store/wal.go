package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL file format, little endian throughout:
//
//	magic   [8]byte "ONEXWAL1"
//	records, each:
//	  u32 payload length
//	  u32 payload CRC (IEEE)
//	  payload:
//	    u8  record type (1 = AddSeries)
//	    u64 seq
//	    str series name
//	    u32 value count, then count x f64 values
//
// Records are framed independently so recovery can keep the longest valid
// prefix: decoding stops at the first short, oversized, or CRC-failing
// record and everything from that offset on is reported as discarded — a
// torn tail from a crash mid-append loses at most the record being written.
const (
	walMagic = "ONEXWAL1"

	recAddSeries = 1

	// maxWALPayload bounds a single record so a corrupted length prefix
	// cannot force a giant allocation.
	maxWALPayload = 1 << 30
)

// encodeWALRecord frames one record (length prefix + CRC + payload).
func encodeWALRecord(rec Record) []byte {
	var p bwriter
	p.u8(recAddSeries)
	p.u64(rec.Seq)
	p.str(rec.Name)
	p.u32(uint32(len(rec.Values)))
	for _, v := range rec.Values {
		p.f64(v)
	}
	out := make([]byte, 0, 8+len(p.buf))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.buf)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p.buf))
	return append(out, p.buf...)
}

// EncodeWALStream frames records exactly as a WAL file holds them: the
// magic followed by length/CRC-framed records. The replication leader
// serves WAL batches in this format so a follower decodes the stream with
// DecodeWAL — byte-for-byte the same decoder crash recovery uses.
func EncodeWALStream(recs []Record) []byte {
	out := []byte(walMagic)
	for _, rec := range recs {
		out = append(out, encodeWALRecord(rec)...)
	}
	return out
}

// decodeWALPayload parses one verified record payload.
func decodeWALPayload(payload []byte) (Record, error) {
	r := &breader{buf: payload}
	typ := r.u8()
	if r.err == nil && typ != recAddSeries {
		return Record{}, fmt.Errorf("store: wal: unknown record type %d", typ)
	}
	rec := Record{Seq: r.u64(), Name: r.str()}
	n := r.u32()
	if r.err != nil {
		return Record{}, fmt.Errorf("store: wal: %w", r.err)
	}
	if rec.Name == "" {
		return Record{}, fmt.Errorf("store: wal: record with empty series name")
	}
	if n > maxValues {
		return Record{}, fmt.Errorf("store: wal: implausible value count %d", n)
	}
	rec.Values = make([]float64, n)
	for i := range rec.Values {
		rec.Values[i] = r.f64()
	}
	if r.err != nil {
		return Record{}, fmt.Errorf("store: wal: %w", r.err)
	}
	if r.off != len(payload) {
		return Record{}, fmt.Errorf("store: wal: %d trailing byte(s) in record", len(payload)-r.off)
	}
	return rec, nil
}

// DecodeWAL parses a WAL file image into its longest valid record prefix.
// It never returns an error for a damaged tail: the records decoded before
// the damage are returned together with a report of what was discarded and
// why. Only a missing or wrong magic is a hard error (the file is not a WAL
// at all — as opposed to a WAL that lost its tail).
func DecodeWAL(data []byte) ([]Record, RecoveryReport, error) {
	var report RecoveryReport
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, report, fmt.Errorf("store: wal: bad magic")
	}
	var records []Record
	off := len(walMagic)
	discard := func(reason string) ([]Record, RecoveryReport, error) {
		report.DiscardedBytes = int64(len(data) - off)
		report.DiscardedReason = fmt.Sprintf("%s at offset %d", reason, off)
		return records, report, nil
	}
	for off < len(data) {
		if len(data)-off < 8 {
			return discard("torn record header")
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxWALPayload {
			return discard(fmt.Sprintf("implausible record length %d", n))
		}
		if len(data)-off-8 < int(n) {
			return discard("torn record payload")
		}
		payload := data[off+8 : off+8+int(n)]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return discard(fmt.Sprintf("record CRC mismatch (stored %08x, computed %08x)", crc, got))
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return discard(err.Error())
		}
		if want := prevSeq(records) + 1; len(records) > 0 && rec.Seq != want {
			return discard(fmt.Sprintf("sequence gap (record %d after %d)", rec.Seq, prevSeq(records)))
		}
		records = append(records, rec)
		off += 8 + int(n)
	}
	return records, report, nil
}

func prevSeq(records []Record) uint64 {
	if len(records) == 0 {
		return 0
	}
	return records[len(records)-1].Seq
}
