// Package gen provides deterministic synthetic dataset generators that
// substitute for the collections the ONEX demo uses but which cannot be
// redistributed (see DESIGN.md §2):
//
//   - Matters — economic/social indicators for the 50 US states, standing
//     in for the MATTERS collection (matters.mhtc.org). Regional regime
//     structure is planted so demo walkthroughs ("find the state most
//     similar to MA") have verifiable ground truth.
//   - ElectricityLoad — per-household power usage with daily, weekly and
//     seasonal cycles, standing in for the demo's power usage collection.
//   - CBF, RandomWalks, WarpedSines — classic labelled synthetic families
//     from the time-series literature, used by the benchmark harness.
//
// Every generator is a pure function of its options (fixed seeds), so
// experiments and documentation figures are reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ts"
)

// StateNames lists the 50 US states in alphabetical order.
var StateNames = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
	"HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
	"MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
	"NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
	"SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
}

// StateRegion maps each state to a coarse economic region; states within a
// region share a latent factor, which plants the similarity structure the
// demo explores (MA tracks its New England neighbors, etc.).
var StateRegion = map[string]string{
	"CT": "newengland", "ME": "newengland", "MA": "newengland",
	"NH": "newengland", "RI": "newengland", "VT": "newengland",
	"NJ": "mideast", "NY": "mideast", "PA": "mideast", "DE": "mideast", "MD": "mideast",
	"IL": "greatlakes", "IN": "greatlakes", "MI": "greatlakes", "OH": "greatlakes", "WI": "greatlakes",
	"IA": "plains", "KS": "plains", "MN": "plains", "MO": "plains",
	"NE": "plains", "ND": "plains", "SD": "plains",
	"AL": "southeast", "AR": "southeast", "FL": "southeast", "GA": "southeast",
	"KY": "southeast", "LA": "southeast", "MS": "southeast", "NC": "southeast",
	"SC": "southeast", "TN": "southeast", "VA": "southeast", "WV": "southeast",
	"AZ": "southwest", "NM": "southwest", "OK": "southwest", "TX": "southwest",
	"CO": "rocky", "ID": "rocky", "MT": "rocky", "UT": "rocky", "WY": "rocky",
	"AK": "farwest", "CA": "farwest", "HI": "farwest", "NV": "farwest",
	"OR": "farwest", "WA": "farwest",
}

// Indicator selects which MATTERS-style indicator to synthesize. The
// indicators differ deliberately in unit scale — the property that
// motivates the paper's threshold recommendation operation.
type Indicator int

// Available indicators.
const (
	// GrowthRate is an annual GDP growth percentage (values of a few
	// percent, fine structure at tenths of a percent).
	GrowthRate Indicator = iota
	// UnemploymentRate is an unemployment percentage (3-12%).
	UnemploymentRate
	// TechEmployment is tech-sector headcount in thousands of people
	// (tens to hundreds).
	TechEmployment
	// MedianIncome is household median income in dollars (tens of
	// thousands).
	MedianIncome
	// TaxBurden is the state+local tax share of income in percent.
	TaxBurden
)

// String implements fmt.Stringer.
func (ind Indicator) String() string {
	switch ind {
	case GrowthRate:
		return "GrowthRate"
	case UnemploymentRate:
		return "UnemploymentRate"
	case TechEmployment:
		return "TechEmployment"
	case MedianIncome:
		return "MedianIncome"
	case TaxBurden:
		return "TaxBurden"
	default:
		return fmt.Sprintf("Indicator(%d)", int(ind))
	}
}

// indicatorParams are the per-indicator level/scale/dynamics knobs.
type indicatorParams struct {
	level    float64 // long-run mean
	scale    float64 // typical deviation magnitude
	cyclical float64 // strength of the shared business cycle
	trend    float64 // per-step drift (e.g. income growth)
	unit     string
}

func paramsFor(ind Indicator) indicatorParams {
	switch ind {
	case GrowthRate:
		return indicatorParams{level: 2.5, scale: 1.2, cyclical: 1.5, trend: 0, unit: "percent"}
	case UnemploymentRate:
		return indicatorParams{level: 5.5, scale: 1.0, cyclical: -2.0, trend: 0, unit: "percent"}
	case TechEmployment:
		return indicatorParams{level: 80, scale: 18, cyclical: 10, trend: 1.2, unit: "thousands"}
	case MedianIncome:
		return indicatorParams{level: 55000, scale: 4000, cyclical: 2500, trend: 600, unit: "dollars"}
	case TaxBurden:
		return indicatorParams{level: 9.5, scale: 0.8, cyclical: 0.2, trend: 0, unit: "percent"}
	default:
		return indicatorParams{level: 1, scale: 0.3, cyclical: 0.2, unit: "units"}
	}
}

// MattersOptions configures the Matters generator.
type MattersOptions struct {
	// Indicator selects the synthesized measure.
	Indicator Indicator
	// Periods is the number of observations per state (default 24:
	// six years of quarterly data, matching the demo's "growth rate over
	// the last 6 years" selection pane).
	Periods int
	// Seed fixes the random stream (0 means a package default).
	Seed int64
	// Noise scales the state-idiosyncratic noise (default 1.0).
	Noise float64
}

// Matters synthesizes one indicator across the 50 states. Per-state series
// are generated as
//
//	state = level + loading*region_factor + cycle + idiosyncratic walk
//
// so states sharing a region (see StateRegion) are genuinely similar time
// series, and a shared national business cycle gives the dataset the
// recurring shapes the overview pane displays. Series carry Meta
// annotations: "region", "indicator", and "unit".
func Matters(opts MattersOptions) *ts.Dataset {
	periods := opts.Periods
	if periods <= 0 {
		periods = 24
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 20170514
	}
	noise := opts.Noise
	if noise <= 0 {
		noise = 1.0
	}
	p := paramsFor(opts.Indicator)
	rng := rand.New(rand.NewSource(seed + int64(opts.Indicator)*7919))

	// Shared national business cycle: a slow sinusoid with a stochastic
	// phase plus an AR(1) component.
	cycle := make([]float64, periods)
	phase := rng.Float64() * 2 * math.Pi
	ar := 0.0
	for t := range cycle {
		ar = 0.7*ar + rng.NormFloat64()*0.3
		cycle[t] = math.Sin(2*math.Pi*float64(t)/float64(maxI(8, periods/3))+phase) + 0.5*ar
	}

	// Regional latent factors: independent smooth walks, generated in
	// sorted region order so the output is a pure function of the seed
	// (map iteration order must not leak into the random stream).
	names := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, st := range StateNames {
		if r := StateRegion[st]; !seen[r] {
			seen[r] = true
			names = append(names, r)
		}
	}
	sort.Strings(names)
	regions := map[string][]float64{}
	for _, r := range names {
		f := make([]float64, periods)
		v := 0.0
		for t := range f {
			v = 0.85*v + rng.NormFloat64()*0.35
			f[t] = v
		}
		regions[r] = f
	}

	d := ts.NewDataset("matters-" + p.unitName(opts.Indicator))
	for _, st := range StateNames {
		region := StateRegion[st]
		factor := regions[region]
		loading := 0.8 + rng.Float64()*0.4 // state's exposure to its region
		level := p.level * (0.85 + rng.Float64()*0.3)
		vals := make([]float64, periods)
		walk := 0.0
		for t := range vals {
			walk = 0.9*walk + rng.NormFloat64()*0.25*noise
			vals[t] = level +
				p.scale*loading*factor[t] +
				p.cyclical*0.3*cycle[t] +
				p.scale*0.35*walk +
				float64(t)*p.trend
		}
		s := ts.NewSeries(st, vals)
		s.SetLabel("region", region)
		s.SetLabel("indicator", p.unitName(opts.Indicator))
		s.SetLabel("unit", p.unit)
		d.MustAdd(s)
	}
	return d
}

func (p indicatorParams) unitName(ind Indicator) string { return ind.String() }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
