package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ts"
)

// ElectricityOptions configures the household power-usage generator.
type ElectricityOptions struct {
	// Households is the number of independent series (default 5).
	Households int
	// Days is the series span in days (default 365, one year as in Fig 4).
	Days int
	// SamplesPerDay sets the sampling rate (default 24, hourly).
	SamplesPerDay int
	// Seed fixes the random stream (0 means a package default).
	Seed int64
}

// ElectricityLoad synthesizes household electricity consumption with the
// structure the demo's seasonal view (Fig 4) relies on:
//
//   - a daily profile with morning and evening peaks (period = one day),
//   - a weekly rhythm (weekend days run a flatter, higher daytime profile),
//   - a seasonal envelope (winter heating for all households, summer
//     cooling for households with Meta["ac"]="yes"),
//   - plus small auto-correlated noise.
//
// The daily and weekly periodicities are exact by construction, so
// seasonal-query recall against them is measurable (experiment E5).
func ElectricityLoad(opts ElectricityOptions) *ts.Dataset {
	households := opts.Households
	if households <= 0 {
		households = 5
	}
	days := opts.Days
	if days <= 0 {
		days = 365
	}
	spd := opts.SamplesPerDay
	if spd <= 0 {
		spd = 24
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 998877
	}
	rng := rand.New(rand.NewSource(seed))

	d := ts.NewDataset("electricity")
	total := days * spd
	for h := 0; h < households; h++ {
		baseLoad := 0.25 + rng.Float64()*0.2   // kW idle draw
		morningPeak := 0.8 + rng.Float64()*0.5 // kW
		eveningPeak := 1.2 + rng.Float64()*0.8 // kW
		hasAC := rng.Float64() < 0.5
		heating := 0.5 + rng.Float64()*0.6
		cooling := 0.0
		if hasAC {
			cooling = 0.4 + rng.Float64()*0.6
		}
		vals := make([]float64, total)
		arNoise := 0.0
		for i := 0; i < total; i++ {
			day := i / spd
			hourFrac := float64(i%spd) / float64(spd) * 24 // 0..24
			dayOfYear := float64(day % 365)
			weekend := day%7 >= 5

			// Daily profile: two Gaussian bumps.
			daily := morningPeak*gauss(hourFrac, 7.5, 1.2) +
				eveningPeak*gauss(hourFrac, 19.5, 2.0)
			if weekend {
				// Flatter, later, slightly higher daytime use.
				daily = 0.6*daily + 0.35*(morningPeak+eveningPeak)*gauss(hourFrac, 14, 4.5)
			}
			// Seasonal envelope: winter peak near day 15, summer near 196.
			winter := 0.5 * (1 + math.Cos(2*math.Pi*(dayOfYear-15)/365)) // 1 in winter
			summer := 0.5 * (1 + math.Cos(2*math.Pi*(dayOfYear-196)/365))
			seasonal := heating*winter*winter + cooling*summer*summer

			arNoise = 0.8*arNoise + rng.NormFloat64()*0.03
			v := baseLoad + daily + seasonal*0.4*(0.7+0.3*daily) + arNoise
			if v < 0.02 {
				v = 0.02
			}
			vals[i] = v
		}
		s := ts.NewSeries(fmt.Sprintf("household-%02d", h), vals)
		s.SetLabel("unit", "kW")
		if hasAC {
			s.SetLabel("ac", "yes")
		} else {
			s.SetLabel("ac", "no")
		}
		d.MustAdd(s)
	}
	return d
}

// gauss is an unnormalized Gaussian bump on the 24h clock, wrapping
// around midnight.
func gauss(hour, center, width float64) float64 {
	diff := math.Abs(hour - center)
	if diff > 12 {
		diff = 24 - diff
	}
	return math.Exp(-diff * diff / (2 * width * width))
}
