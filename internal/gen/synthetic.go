package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ts"
)

// CBFOptions configures the cylinder-bell-funnel generator.
type CBFOptions struct {
	// PerClass is the number of series generated for each of the three
	// classes (default 10).
	PerClass int
	// Length is the series length (default 128).
	Length int
	// Seed fixes the random stream (0 means a package default).
	Seed int64
}

// CBF generates the classic cylinder-bell-funnel benchmark (Saito 1994),
// the standard labelled synthetic family in the DTW literature. Class
// labels ("cylinder", "bell", "funnel") are stored in Meta["class"].
//
// Each series places an event of random onset a, offset b and amplitude
// 6+eta on a noise floor:
//
//	cylinder: flat top        bell: linear rise        funnel: linear fall
func CBF(opts CBFOptions) *ts.Dataset {
	perClass := opts.PerClass
	if perClass <= 0 {
		perClass = 10
	}
	length := opts.Length
	if length <= 0 {
		length = 128
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1994
	}
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("cbf")
	classes := []string{"cylinder", "bell", "funnel"}
	idx := 0
	for _, class := range classes {
		for c := 0; c < perClass; c++ {
			a := 1 + int(float64(length)*0.15) + rng.Intn(length/8)
			b := a + length/4 + rng.Intn(length/4)
			if b >= length {
				b = length - 1
			}
			amp := 6 + rng.NormFloat64()
			vals := make([]float64, length)
			for i := range vals {
				vals[i] = rng.NormFloat64()
				if i >= a && i <= b {
					switch class {
					case "cylinder":
						vals[i] += amp
					case "bell":
						vals[i] += amp * float64(i-a) / float64(b-a)
					case "funnel":
						vals[i] += amp * float64(b-i) / float64(b-a)
					}
				}
			}
			s := ts.NewSeries(fmt.Sprintf("cbf-%s-%02d", class, c), vals)
			s.SetLabel("class", class)
			d.MustAdd(s)
			idx++
		}
	}
	return d
}

// WalkOptions configures RandomWalks.
type WalkOptions struct {
	// Num is the number of series (default 10).
	Num int
	// Length is the series length (default 128).
	Length int
	// Drift adds a constant per-step trend.
	Drift float64
	// Step scales the innovation magnitude (default 1.0).
	Step float64
	// Seed fixes the random stream (0 means a package default).
	Seed int64
}

// RandomWalks generates unlabelled Gaussian random walks, the scaling
// workload of the latency experiments (series count and length are free
// parameters with no planted structure).
func RandomWalks(opts WalkOptions) *ts.Dataset {
	num := opts.Num
	if num <= 0 {
		num = 10
	}
	length := opts.Length
	if length <= 0 {
		length = 128
	}
	step := opts.Step
	if step <= 0 {
		step = 1.0
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 262
	}
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("walks")
	for i := 0; i < num; i++ {
		vals := make([]float64, length)
		v := rng.NormFloat64()
		for j := range vals {
			v += rng.NormFloat64()*step + opts.Drift
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries(fmt.Sprintf("walk-%03d", i), vals))
	}
	return d
}

// SineOptions configures WarpedSines.
type SineOptions struct {
	// PerClass is the number of series per frequency class (default 10).
	PerClass int
	// Length is the series length (default 128).
	Length int
	// Classes is the number of distinct frequencies (default 3).
	Classes int
	// MaxWarp is the largest random local time distortion in samples
	// (default Length/16). This is what makes DTW necessary: two series of
	// one class are near-identical under warping but far under pointwise
	// distances.
	MaxWarp int
	// Seed fixes the random stream (0 means a package default).
	Seed int64
}

// WarpedSines generates sinusoids with class-determined frequency, random
// phase, and a smooth random time-warp applied to each instance. Labels
// ("f0", "f1", ...) are stored in Meta["class"]. This family realizes the
// paper's motivating misalignment: class members match under DTW but not
// under Euclidean comparison.
func WarpedSines(opts SineOptions) *ts.Dataset {
	perClass := opts.PerClass
	if perClass <= 0 {
		perClass = 10
	}
	length := opts.Length
	if length <= 0 {
		length = 128
	}
	classes := opts.Classes
	if classes <= 0 {
		classes = 3
	}
	maxWarp := opts.MaxWarp
	if maxWarp <= 0 {
		maxWarp = length / 16
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 440
	}
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("warpedsines")
	for c := 0; c < classes; c++ {
		freq := 1.5 + float64(c)*1.25 // cycles over the series
		for i := 0; i < perClass; i++ {
			phase := rng.Float64() * 2 * math.Pi
			// Smooth warp: cumulative sum of small positive increments,
			// normalized to [0,1], bending time by up to maxWarp samples.
			warp := smoothWarp(rng, length, float64(maxWarp))
			vals := make([]float64, length)
			for j := range vals {
				tt := (float64(j) + warp[j]) / float64(length)
				vals[j] = math.Sin(2*math.Pi*freq*tt+phase) + rng.NormFloat64()*0.05
			}
			s := ts.NewSeries(fmt.Sprintf("sine-f%d-%02d", c, i), vals)
			s.SetLabel("class", fmt.Sprintf("f%d", c))
			d.MustAdd(s)
		}
	}
	return d
}

// ECGOptions configures the synthetic electrocardiogram generator.
type ECGOptions struct {
	// Num is the number of recordings (default 5).
	Num int
	// Beats is the number of heartbeats per recording (default 20).
	Beats int
	// SamplesPerBeat sets the nominal beat resolution (default 32).
	SamplesPerBeat int
	// Arrhythmic inserts irregular RR intervals and occasional ectopic
	// beats in half the recordings, labelled Meta["class"]="arrhythmia"
	// (the rest are "normal").
	Arrhythmic bool
	// Seed fixes the random stream (0 means a package default).
	Seed int64
}

// ECG synthesizes electrocardiogram-like recordings: each beat is a PQRST
// complex (sum of Gaussian bumps) with naturally varying RR intervals, the
// classic medical workload of the DTW literature (the UCR archive's ECG
// families). Beat-to-beat timing jitter is exactly the misalignment that
// makes DTW necessary and pointwise distances misleading.
func ECG(opts ECGOptions) *ts.Dataset {
	num := opts.Num
	if num <= 0 {
		num = 5
	}
	beats := opts.Beats
	if beats <= 0 {
		beats = 20
	}
	spb := opts.SamplesPerBeat
	if spb <= 0 {
		spb = 32
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1887 // Waller's first human ECG
	}
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("ecg")
	for rec := 0; rec < num; rec++ {
		arr := opts.Arrhythmic && rec%2 == 1
		amp := 0.9 + rng.Float64()*0.3
		var vals []float64
		for b := 0; b < beats; b++ {
			// RR variability: normal sinus ~5%, arrhythmic up to 35%
			// with occasional dropped/early beats.
			jitter := rng.NormFloat64() * 0.05
			if arr && rng.Float64() < 0.25 {
				jitter = rng.NormFloat64() * 0.35
			}
			beatLen := int(float64(spb) * (1 + jitter))
			if beatLen < spb/2 {
				beatLen = spb / 2
			}
			ectopic := arr && rng.Float64() < 0.15
			for i := 0; i < beatLen; i++ {
				tt := float64(i) / float64(beatLen) // beat phase 0..1
				v := pqrst(tt, amp, ectopic)
				v += rng.NormFloat64() * 0.02
				vals = append(vals, v)
			}
		}
		s := ts.NewSeries(fmt.Sprintf("ecg-%02d", rec), vals)
		if arr {
			s.SetLabel("class", "arrhythmia")
		} else {
			s.SetLabel("class", "normal")
		}
		s.SetLabel("unit", "mV")
		d.MustAdd(s)
	}
	return d
}

// pqrst evaluates one beat's waveform at phase tt in [0,1): P wave, QRS
// complex, T wave as Gaussian bumps. Ectopic beats widen and inflate QRS
// and drop the P wave, the classic premature-ventricular morphology.
func pqrst(tt, amp float64, ectopic bool) float64 {
	bump := func(center, width, height float64) float64 {
		diff := tt - center
		return height * math.Exp(-diff*diff/(2*width*width))
	}
	if ectopic {
		return amp * (bump(0.42, 0.07, 1.6) - bump(0.34, 0.045, 0.5) - bump(0.52, 0.05, 0.4) +
			bump(0.72, 0.06, 0.35))
	}
	return amp * (bump(0.18, 0.035, 0.18) - // P
		bump(0.36, 0.018, 0.25) + // Q
		bump(0.40, 0.022, 1.8) - // R
		bump(0.45, 0.020, 0.45) + // S
		bump(0.68, 0.055, 0.4)) // T
}

// smoothWarp builds a slowly-varying displacement field bounded by amp.
func smoothWarp(rng *rand.Rand, length int, amp float64) []float64 {
	warp := make([]float64, length)
	// Sum of a few random low-frequency sinusoids.
	k := 2 + rng.Intn(3)
	for h := 0; h < k; h++ {
		f := 0.5 + rng.Float64()*1.5
		ph := rng.Float64() * 2 * math.Pi
		a := amp / float64(k) * rng.Float64()
		for j := range warp {
			warp[j] += a * math.Sin(2*math.Pi*f*float64(j)/float64(length)+ph)
		}
	}
	return warp
}
