package gen

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/ts"
)

func TestMattersShape(t *testing.T) {
	d := Matters(MattersOptions{Indicator: GrowthRate})
	if d.Len() != 50 {
		t.Fatalf("states = %d, want 50", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ma, ok := d.ByName("MA")
	if !ok {
		t.Fatal("MA missing")
	}
	if ma.Len() != 24 {
		t.Fatalf("default periods = %d, want 24", ma.Len())
	}
	if ma.Label("region") != "newengland" {
		t.Fatalf("MA region = %q", ma.Label("region"))
	}
	if ma.Label("unit") != "percent" {
		t.Fatalf("GrowthRate unit = %q", ma.Label("unit"))
	}
}

func TestMattersDeterministic(t *testing.T) {
	a := Matters(MattersOptions{Indicator: TechEmployment, Seed: 5})
	b := Matters(MattersOptions{Indicator: TechEmployment, Seed: 5})
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := Matters(MattersOptions{Indicator: TechEmployment, Seed: 6})
	same := true
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != c.Series[i].Values[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// The planted regional structure: MA must be closer (on average, under ED
// after min-max normalization) to its New England neighbors than to the
// average non-neighbor.
func TestMattersRegionalStructure(t *testing.T) {
	d := Matters(MattersOptions{Indicator: GrowthRate})
	if err := ts.NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	ma, _ := d.ByName("MA")
	var inRegion, outRegion []float64
	for _, s := range d.Series {
		if s.Name == "MA" {
			continue
		}
		dd := dist.ED(ma.Values, s.Values)
		if s.Label("region") == "newengland" {
			inRegion = append(inRegion, dd)
		} else {
			outRegion = append(outRegion, dd)
		}
	}
	if len(inRegion) != 5 {
		t.Fatalf("new england neighbors = %d, want 5", len(inRegion))
	}
	if ts.Mean(inRegion) >= ts.Mean(outRegion) {
		t.Fatalf("regional structure absent: in %.3f >= out %.3f",
			ts.Mean(inRegion), ts.Mean(outRegion))
	}
}

// Indicators differ in scale by orders of magnitude (the threshold-
// recommendation motivation).
func TestMattersIndicatorScales(t *testing.T) {
	growth := Matters(MattersOptions{Indicator: GrowthRate})
	income := Matters(MattersOptions{Indicator: MedianIncome})
	gs := ts.DatasetStats(growth)
	is := ts.DatasetStats(income)
	if is.Mean < gs.Mean*1000 {
		t.Fatalf("scale separation missing: income %.1f vs growth %.3f", is.Mean, gs.Mean)
	}
}

func TestMattersAllIndicators(t *testing.T) {
	for _, ind := range []Indicator{GrowthRate, UnemploymentRate, TechEmployment, MedianIncome, TaxBurden} {
		d := Matters(MattersOptions{Indicator: ind, Periods: 12})
		if err := d.Validate(); err != nil {
			t.Fatalf("%v: %v", ind, err)
		}
		if d.Series[0].Len() != 12 {
			t.Fatalf("%v: periods not honored", ind)
		}
		if ind.String() == "" || d.Series[0].Label("indicator") != ind.String() {
			t.Fatalf("%v: indicator label missing", ind)
		}
	}
}

func TestElectricityShape(t *testing.T) {
	d := ElectricityLoad(ElectricityOptions{Households: 3, Days: 28, SamplesPerDay: 24})
	if d.Len() != 3 {
		t.Fatalf("households = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Series[0].Len() != 28*24 {
		t.Fatalf("series length = %d, want %d", d.Series[0].Len(), 28*24)
	}
	// Loads are physically positive.
	for _, s := range d.Series {
		for _, v := range s.Values {
			if v <= 0 {
				t.Fatalf("non-positive load %g", v)
			}
		}
	}
}

// The planted daily cycle: autocorrelation at lag = one day must exceed
// autocorrelation at a non-harmonic lag.
func TestElectricityDailyCycle(t *testing.T) {
	d := ElectricityLoad(ElectricityOptions{Households: 1, Days: 56, SamplesPerDay: 24})
	vals := d.Series[0].Values
	dayLag := autocorr(vals, 24)
	offLag := autocorr(vals, 17)
	if dayLag <= offLag {
		t.Fatalf("daily cycle absent: ac(24)=%.3f <= ac(17)=%.3f", dayLag, offLag)
	}
}

// Seasonality: winter consumption exceeds shoulder-season consumption for
// every household (heating is universal in the model).
func TestElectricitySeasonality(t *testing.T) {
	d := ElectricityLoad(ElectricityOptions{Households: 4, Days: 365, SamplesPerDay: 24})
	for _, s := range d.Series {
		winter := ts.Mean(s.Values[0 : 30*24])         // days 0-30 (near winter peak)
		shoulder := ts.Mean(s.Values[100*24 : 130*24]) // spring
		if winter <= shoulder {
			t.Fatalf("%s: winter %.3f <= shoulder %.3f", s.Name, winter, shoulder)
		}
	}
}

func autocorr(vals []float64, lag int) float64 {
	st := ts.Summarize(vals)
	if st.Std == 0 {
		return 0
	}
	sum := 0.0
	n := len(vals) - lag
	for i := 0; i < n; i++ {
		sum += (vals[i] - st.Mean) * (vals[i+lag] - st.Mean)
	}
	return sum / (float64(n) * st.Std * st.Std)
}

func TestCBFShapeAndClasses(t *testing.T) {
	d := CBF(CBFOptions{PerClass: 5, Length: 64})
	if d.Len() != 15 {
		t.Fatalf("series = %d, want 15", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range d.Series {
		counts[s.Label("class")]++
		if s.Len() != 64 {
			t.Fatalf("length = %d", s.Len())
		}
	}
	for _, class := range []string{"cylinder", "bell", "funnel"} {
		if counts[class] != 5 {
			t.Fatalf("class %s count = %d", class, counts[class])
		}
	}
}

// CBF classes are separable: a cylinder's event plateau mean sits well
// above the noise floor.
func TestCBFEventPresent(t *testing.T) {
	d := CBF(CBFOptions{PerClass: 3, Length: 128, Seed: 8})
	for _, s := range d.Series {
		st := ts.Summarize(s.Values)
		if st.Max < 3 {
			t.Fatalf("%s: no event visible (max %.2f)", s.Name, st.Max)
		}
	}
}

func TestRandomWalks(t *testing.T) {
	d := RandomWalks(WalkOptions{Num: 7, Length: 50, Seed: 3})
	if d.Len() != 7 || d.Series[0].Len() != 50 {
		t.Fatalf("shape wrong: %d x %d", d.Len(), d.Series[0].Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drift pushes the endpoint with overwhelming probability.
	dr := RandomWalks(WalkOptions{Num: 5, Length: 200, Drift: 0.5, Seed: 4})
	for _, s := range dr.Series {
		if s.Values[199] <= s.Values[0] {
			t.Fatalf("drifted walk went down: %g -> %g", s.Values[0], s.Values[199])
		}
	}
}

func TestWarpedSines(t *testing.T) {
	d := WarpedSines(SineOptions{PerClass: 4, Length: 96, Classes: 2, Seed: 6})
	if d.Len() != 8 {
		t.Fatalf("series = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The whole point of this family: same-class pairs are much closer
	// under DTW than under ED.
	var s0, s1 *ts.Series
	for _, s := range d.Series {
		if s.Label("class") == "f0" {
			if s0 == nil {
				s0 = s
			} else if s1 == nil {
				s1 = s
			}
		}
	}
	ed := dist.ED(s0.Values, s1.Values)
	dtw := dist.DTW(s0.Values, s1.Values)
	if dtw >= ed {
		t.Fatalf("warping gave no benefit: DTW %.2f >= ED %.2f", dtw, ed)
	}
	if dtw > ed*0.8 {
		t.Logf("note: modest warping benefit (DTW %.2f vs ED %.2f)", dtw, ed)
	}
}

func TestECGShapeAndLabels(t *testing.T) {
	d := ECG(ECGOptions{Num: 4, Beats: 10, SamplesPerBeat: 24, Arrhythmic: true})
	if d.Len() != 4 {
		t.Fatalf("recordings = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	for _, s := range d.Series {
		classes[s.Label("class")]++
		// ~10 beats x ~24 samples, with jitter.
		if s.Len() < 10*12 || s.Len() > 10*40 {
			t.Fatalf("%s: implausible length %d", s.Name, s.Len())
		}
	}
	if classes["normal"] != 2 || classes["arrhythmia"] != 2 {
		t.Fatalf("class split = %v", classes)
	}
	// Without the flag, everything is normal.
	d2 := ECG(ECGOptions{Num: 3, Beats: 5})
	for _, s := range d2.Series {
		if s.Label("class") != "normal" {
			t.Fatal("non-arrhythmic generator produced arrhythmia label")
		}
	}
}

// The planted beat periodicity: autocorrelation at one beat period beats a
// non-harmonic lag (same check as the electricity daily cycle).
func TestECGBeatPeriodicity(t *testing.T) {
	d := ECG(ECGOptions{Num: 1, Beats: 40, SamplesPerBeat: 24, Seed: 9})
	vals := d.Series[0].Values
	beat := autocorr(vals, 24)
	off := autocorr(vals, 17)
	if beat <= off {
		t.Fatalf("beat periodicity absent: ac(24)=%.3f <= ac(17)=%.3f", beat, off)
	}
}

// DTW absorbs the RR jitter far better than pointwise comparison: two
// normal recordings should be much closer under DTW than under ED at the
// same length.
func TestECGWarpingMatters(t *testing.T) {
	d := ECG(ECGOptions{Num: 2, Beats: 8, SamplesPerBeat: 24, Seed: 5})
	a, b := d.Series[0].Values, d.Series[1].Values
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	ed := dist.ED(a[:n], b[:n])
	dtw := dist.DTW(a[:n], b[:n])
	if dtw >= ed*0.8 {
		t.Fatalf("DTW %.2f vs ED %.2f: warping gave <20%% benefit on jittered beats", dtw, ed)
	}
}

func TestGeneratorsNoNaN(t *testing.T) {
	datasets := []*ts.Dataset{
		Matters(MattersOptions{Indicator: UnemploymentRate}),
		ElectricityLoad(ElectricityOptions{Households: 2, Days: 14}),
		CBF(CBFOptions{PerClass: 2, Length: 32}),
		RandomWalks(WalkOptions{Num: 2, Length: 32}),
		WarpedSines(SineOptions{PerClass: 2, Length: 32}),
	}
	for _, d := range datasets {
		for _, s := range d.Series {
			for _, v := range s.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s contains non-finite value", d.Name, s.Name)
				}
			}
		}
	}
}
