package ucrsuite

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dist"
	"repro/internal/ts"
)

func walkDataset(t testing.TB, n, length int, seed int64) *ts.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("ucr")
	for i := 0; i < n; i++ {
		vals := make([]float64, length)
		v := rng.Float64()
		for j := range vals {
			v += rng.NormFloat64() * 0.1
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries("u"+strconv.Itoa(i), vals))
	}
	return d
}

func randQuery(rng *rand.Rand, n int) []float64 {
	q := make([]float64, n)
	v := rng.Float64()
	for i := range q {
		v += rng.NormFloat64() * 0.1
		q[i] = v
	}
	return q
}

// The exactness property: in raw mode the cascade must return exactly the
// brute-force answer for every band.
func TestPropertyExactAgainstBruteForce(t *testing.T) {
	d := walkDataset(t, 5, 40, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		q := randQuery(rng, 5+rng.Intn(10))
		for _, band := range []int{-1, 3} {
			got, err := BestMatch(d, q, Options{Band: band})
			if err != nil {
				t.Fatal(err)
			}
			want, err := bruteforce.BestMatch(d, q, bruteforce.Options{Band: band, EarlyAbandon: true})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("trial %d band %d: ucrsuite %g != bruteforce %g (refs %v vs %v)",
					trial, band, got.Dist, want.Dist, got.Ref, want.Ref)
			}
		}
	}
}

func TestSelfQueryZeroDistance(t *testing.T) {
	d := walkDataset(t, 4, 30, 3)
	q := d.Series[2].Values[4:14]
	r, err := BestMatch(d, q, Options{Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist != 0 {
		t.Fatalf("self query dist = %g", r.Dist)
	}
}

// Z-norm mode must equal a z-normalizing brute-force scan.
func TestZNormModeExact(t *testing.T) {
	d := walkDataset(t, 4, 30, 4)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		q := randQuery(rng, 6+rng.Intn(6))
		band := 3
		got, err := BestMatch(d, q, Options{Band: band, ZNormalize: true, Squared: true})
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: scan every window, z-normalize both sides, squared DTW.
		qz := ts.ZNormalizeWindow(q, nil)
		bestDist := math.Inf(1)
		var bestRef ts.SubSeq
		for si, s := range d.Series {
			for st := 0; st+len(q) <= s.Len(); st++ {
				wz := ts.ZNormalizeWindow(s.Values[st:st+len(q)], nil)
				dd := dist.DTWSq(qz, wz, band)
				if dd < bestDist {
					bestDist = dd
					bestRef = ts.SubSeq{Series: si, Start: st, Length: len(q)}
				}
			}
		}
		if math.Abs(got.Dist-bestDist) > 1e-9 {
			t.Fatalf("trial %d: znorm mode %g (ref %v) != oracle %g (ref %v)",
				trial, got.Dist, got.Ref, bestDist, bestRef)
		}
	}
}

func TestCascadeActuallyPrunes(t *testing.T) {
	d := walkDataset(t, 10, 80, 6)
	rng := rand.New(rand.NewSource(7))
	q := randQuery(rng, 16)
	r, err := BestMatch(d, q, Options{Band: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if st.Windows == 0 {
		t.Fatal("no windows examined")
	}
	pruned := st.PrunedKim + st.PrunedKeoghQ + st.PrunedKeoghC + st.DTWAbandoned
	if pruned == 0 {
		t.Fatalf("cascade pruned nothing: %+v", st)
	}
	if st.DTWComputed > st.Windows {
		t.Fatalf("impossible stats: %+v", st)
	}
}

func TestExclusions(t *testing.T) {
	d := walkDataset(t, 3, 24, 8)
	self := ts.SubSeq{Series: 1, Start: 3, Length: 8}
	q := self.Values(d)
	r, err := BestMatch(d, q, Options{Band: -1, ExcludeOverlap: self})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ref.Overlaps(self) {
		t.Fatal("overlap exclusion violated")
	}
	r2, err := BestMatch(d, q, Options{Band: -1, ExcludeSeries: map[int]bool{1: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ref.Series == 1 {
		t.Fatal("series exclusion violated")
	}
}

func TestErrors(t *testing.T) {
	d := walkDataset(t, 2, 10, 9)
	if _, err := BestMatch(d, []float64{1}, Options{}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, err := BestMatch(d, make([]float64, 99), Options{}); err != ErrNoCandidates {
		t.Fatalf("oversized query err = %v", err)
	}
}

// A constant window must not produce NaNs in z-norm mode.
func TestZNormConstantWindow(t *testing.T) {
	d := ts.NewDataset("const")
	flat := make([]float64, 20)
	for i := range flat {
		flat[i] = 5
	}
	d.MustAdd(ts.NewSeries("flat", flat))
	d.MustAdd(ts.NewSeries("walk", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
		11, 12, 13, 14, 15, 16, 17, 18, 19, 20}))
	q := []float64{1, 5, 2, 6, 3, 7}
	r, err := BestMatch(d, q, Options{Band: 2, ZNormalize: true, Squared: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Dist) {
		t.Fatal("NaN distance from constant window")
	}
}
