// Package ucrsuite implements a UCR-Suite-style exact subsequence search
// under DTW (Rakthanmanon et al., KDD 2012 — reference [6] of the demo
// paper, the "fastest known method" ONEX is compared against).
//
// The search slides a window of the query's length over every series and
// applies the suite's cascade of increasingly expensive filters, each
// pruned against the best-so-far distance:
//
//	LB_Kim (endpoints)  ->  LB_Keogh(query envelope vs window)
//	  ->  LB_Keogh(window envelope vs query)  ->  early-abandoning DTW
//
// Two conventions are supported to serve both comparison targets:
//
//   - Raw mode (ZNormalize=false, L1 cost): candidates are compared in the
//     dataset's units, exactly like the ONEX engine, so E1 measures the
//     same ranking problem across systems.
//   - UCR mode (ZNormalize=true, squared cost): per-window z-normalization
//     as in the original suite.
//
// The window envelope uses the standard streaming trick: the envelope of
// the full series, sliced to the window, contains the window's own
// envelope, so the resulting bound is slightly weaker but still valid and
// costs O(1) per window after one O(n) pass per series.
package ucrsuite

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/ts"
)

// Options configures a search.
type Options struct {
	// Band is the Sakoe-Chiba width for DTW and envelopes (negative =
	// unconstrained).
	Band int
	// ZNormalize applies per-window z-normalization (UCR convention).
	ZNormalize bool
	// Squared uses the squared point cost (UCR convention); false uses L1
	// to match the ONEX engine's distance.
	Squared bool
	// ExcludeSeries skips candidate series indices.
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window.
	ExcludeOverlap ts.SubSeq
}

// Stats counts cascade activity for one search; E1 reports prune rates.
type Stats struct {
	Windows      int // candidate windows enumerated
	PrunedKim    int // dropped by LB_Kim
	PrunedKeoghQ int // dropped by LB_Keogh(query env)
	PrunedKeoghC int // dropped by LB_Keogh(candidate env)
	DTWComputed  int // full DTW evaluations started
	DTWAbandoned int // of those, abandoned early
}

// Result is the best window found plus search statistics.
type Result struct {
	Ref   ts.SubSeq
	Dist  float64
	Stats Stats
}

// ErrNoCandidates is returned when no window fits the constraints.
var ErrNoCandidates = errors.New("ucrsuite: no candidate windows")

// BestMatch returns the exact DTW-closest window of length len(q).
func BestMatch(d *ts.Dataset, q []float64, opts Options) (Result, error) {
	m := len(q)
	if m < 2 {
		return Result{}, fmt.Errorf("ucrsuite: query length %d too short", m)
	}
	query := q
	if opts.ZNormalize {
		query = ts.ZNormalizeWindow(q, nil)
	}
	// Envelope of the query, used by the first Keogh filter.
	qU, qL := dist.Envelope(query, m, opts.Band)

	best := Result{Dist: math.Inf(1)}
	var stats Stats
	scratch := make([]float64, m)

	for si, s := range d.Series {
		if opts.ExcludeSeries != nil && opts.ExcludeSeries[si] {
			continue
		}
		if s.Len() < m {
			continue
		}
		// Full-series envelope; window slices of it bound window envelopes.
		sU, sL := dist.Envelope(s.Values, s.Len(), opts.Band)

		// Prefix sums for O(1) per-window mean/std in z-norm mode.
		var prefix, prefixSq []float64
		if opts.ZNormalize {
			prefix = make([]float64, s.Len()+1)
			prefixSq = make([]float64, s.Len()+1)
			for i, v := range s.Values {
				prefix[i+1] = prefix[i] + v
				prefixSq[i+1] = prefixSq[i] + v*v
			}
		}

		for st := 0; st+m <= s.Len(); st++ {
			ref := ts.SubSeq{Series: si, Start: st, Length: m}
			if opts.ExcludeOverlap.Length > 0 && ref.Overlaps(opts.ExcludeOverlap) {
				continue
			}
			stats.Windows++
			raw := s.Values[st : st+m]

			var mean, std float64
			if opts.ZNormalize {
				n := float64(m)
				mean = (prefix[st+m] - prefix[st]) / n
				variance := (prefixSq[st+m]-prefixSq[st])/n - mean*mean
				if variance < 0 {
					variance = 0
				}
				std = math.Sqrt(variance)
			}

			// --- LB_Kim on (normalized) endpoints, no materialization.
			first := znorm(raw[0], mean, std, opts.ZNormalize)
			last := znorm(raw[m-1], mean, std, opts.ZNormalize)
			lbKim := pointCost(query[0]-first, opts.Squared) +
				pointCost(query[m-1]-last, opts.Squared)
			if lbKim > best.Dist {
				stats.PrunedKim++
				continue
			}

			// --- LB_Keogh: query envelope vs candidate values.
			lbQ := lbKeoghAgainstWindow(raw, qU, qL, mean, std, opts, best.Dist)
			if lbQ > best.Dist {
				stats.PrunedKeoghQ++
				continue
			}

			// --- LB_Keogh reversed: candidate envelope (series slice) vs
			// query. Skipped in z-norm mode: slicing a raw-series envelope
			// does not commute with per-window normalization.
			if !opts.ZNormalize {
				lbC := keoghHinge(query, sU[st:st+m], sL[st:st+m], opts.Squared, best.Dist)
				if lbC > best.Dist {
					stats.PrunedKeoghC++
					continue
				}
			}

			// --- Full DTW with early abandoning.
			cand := raw
			if opts.ZNormalize {
				for i, v := range raw {
					if std == 0 {
						scratch[i] = 0
					} else {
						scratch[i] = (v - mean) / std
					}
				}
				cand = scratch
			}
			stats.DTWComputed++
			var dd float64
			if opts.Squared {
				dd = dist.DTWSqEarlyAbandon(query, cand, opts.Band, best.Dist)
			} else {
				dd = dist.DTWEarlyAbandon(query, cand, opts.Band, best.Dist)
			}
			if math.IsInf(dd, 1) {
				stats.DTWAbandoned++
				continue
			}
			if dd < best.Dist {
				best.Ref = ref
				best.Dist = dd
			}
		}
	}
	if math.IsInf(best.Dist, 1) {
		return Result{}, ErrNoCandidates
	}
	best.Stats = stats
	return best, nil
}

func znorm(v, mean, std float64, on bool) float64 {
	if !on {
		return v
	}
	if std == 0 {
		return 0
	}
	return (v - mean) / std
}

func pointCost(diff float64, squared bool) float64 {
	if squared {
		return diff * diff
	}
	return math.Abs(diff)
}

// lbKeoghAgainstWindow evaluates the query-envelope Keogh bound against a
// window, z-normalizing candidate values on the fly when configured.
func lbKeoghAgainstWindow(raw, qU, qL []float64, mean, std float64, opts Options, ub float64) float64 {
	sum := 0.0
	for i, rv := range raw {
		v := znorm(rv, mean, std, opts.ZNormalize)
		var h float64
		if v > qU[i] {
			h = v - qU[i]
		} else if v < qL[i] {
			h = qL[i] - v
		}
		sum += pointCost(h, opts.Squared)
		if sum > ub {
			return math.Inf(1)
		}
	}
	return sum
}

// keoghHinge is the plain Keogh hinge sum with early abandoning.
func keoghHinge(x, upper, lower []float64, squared bool, ub float64) float64 {
	sum := 0.0
	for i, v := range x {
		var h float64
		if v > upper[i] {
			h = v - upper[i]
		} else if v < lower[i] {
			h = lower[i] - v
		}
		sum += pointCost(h, squared)
		if sum > ub {
			return math.Inf(1)
		}
	}
	return sum
}
