package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// plantedWorld builds a dataset whose first series repeats a motif with a
// known period, plus distractor series.
func plantedWorld(t testing.TB, period, repeats, motifLen int) (*ts.Dataset, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	total := period * repeats
	vals := make([]float64, total)
	for i := range vals {
		vals[i] = 0.5 + rng.NormFloat64()*0.01
	}
	// Plant a sharp triangular motif at the start of every period.
	for r := 0; r < repeats; r++ {
		base := r * period
		for j := 0; j < motifLen && base+j < total; j++ {
			tri := 1 - math.Abs(float64(j)-float64(motifLen)/2)/(float64(motifLen)/2)
			vals[base+j] = 0.5 + 0.4*tri
		}
	}
	d := ts.NewDataset("seasonal")
	d.MustAdd(ts.NewSeries("household", vals))
	for i := 0; i < 2; i++ {
		dn := make([]float64, total)
		v := 0.2
		for j := range dn {
			v += rng.NormFloat64() * 0.05
			dn[j] = v
		}
		d.MustAdd(ts.NewSeries("distractor"+strconv.Itoa(i), dn))
	}
	b, err := grouping.Build(d, grouping.Options{ST: 0.04, MinLength: motifLen, MaxLength: motifLen})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: ModeApprox})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func TestSeasonalFindsPlantedMotif(t *testing.T) {
	const period, repeats, motifLen = 20, 6, 8
	d, e := plantedWorld(t, period, repeats, motifLen)
	pats, err := e.Seasonal("household", SeasonalOptions{MinOccurrences: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no seasonal patterns found")
	}
	// The top pattern should recur ~`repeats` times with gap ~= period.
	best := pats[0]
	if best.Count() < repeats-1 {
		t.Fatalf("top pattern count = %d, want >= %d", best.Count(), repeats-1)
	}
	// At least one reported pattern must align with the planted period.
	foundPeriodic := false
	for _, p := range pats {
		if p.Count() >= repeats-1 && math.Abs(p.MeanGap-period) <= 2 {
			foundPeriodic = true
			break
		}
	}
	if !foundPeriodic {
		gaps := make([]float64, 0, len(pats))
		for _, p := range pats {
			gaps = append(gaps, p.MeanGap)
		}
		t.Fatalf("no pattern matched planted period %d; gaps = %v", period, gaps)
	}
	// Structural invariants on every pattern.
	for _, p := range pats {
		if p.SeriesIndex != 0 {
			t.Fatal("pattern from wrong series")
		}
		for i, o := range p.Occurrences {
			if err := o.Validate(d); err != nil {
				t.Fatal(err)
			}
			if o.Series != p.SeriesIndex || o.Length != p.Length {
				t.Fatalf("occurrence %v inconsistent with pattern", o)
			}
			if i > 0 {
				if p.Occurrences[i-1].End() > o.Start {
					t.Fatal("occurrences overlap")
				}
			}
		}
		// Mutual similarity: all occurrences within the absolute threshold
		// ST*l of each other (via the group invariant).
		for i := 0; i < len(p.Occurrences); i++ {
			for j := i + 1; j < len(p.Occurrences); j++ {
				dd := dist.ED(p.Occurrences[i].Values(d), p.Occurrences[j].Values(d))
				if dd > 2*e.Base().HalfST(p.Length)+1e-9 {
					t.Fatalf("occurrences %d,%d differ by %g > ST*l", i, j, dd)
				}
			}
		}
	}
}

func TestSeasonalErrors(t *testing.T) {
	_, e := plantedWorld(t, 20, 4, 8)
	if _, err := e.Seasonal("ghost", SeasonalOptions{}); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := e.SeasonalByIndex(-1, SeasonalOptions{}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := e.SeasonalByIndex(99, SeasonalOptions{}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSeasonalRespectsOptions(t *testing.T) {
	_, e := plantedWorld(t, 20, 6, 8)
	pats, err := e.Seasonal("household", SeasonalOptions{MinOccurrences: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 0 {
		t.Fatal("impossible MinOccurrences returned patterns")
	}
	one, err := e.Seasonal("household", SeasonalOptions{MaxPatterns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) > 1 {
		t.Fatalf("MaxPatterns not honored: %d", len(one))
	}
}

func TestSeasonalDedup(t *testing.T) {
	// Build a world indexing two lengths so sub-window duplicates arise.
	const period, repeats, motifLen = 24, 6, 10
	rng := rand.New(rand.NewSource(12))
	total := period * repeats
	vals := make([]float64, total)
	for i := range vals {
		vals[i] = 0.5 + rng.NormFloat64()*0.01
	}
	for r := 0; r < repeats; r++ {
		base := r * period
		for j := 0; j < motifLen && base+j < total; j++ {
			tri := 1 - math.Abs(float64(j)-float64(motifLen)/2)/(float64(motifLen)/2)
			vals[base+j] = 0.5 + 0.4*tri
		}
	}
	d := ts.NewDataset("dedup")
	d.MustAdd(ts.NewSeries("x", vals))
	b, err := grouping.Build(d, grouping.Options{ST: 0.04, MinLength: motifLen - 2, MaxLength: motifLen})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: ModeApprox})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := e.Seasonal("x", SeasonalOptions{MinOccurrences: 3, MaxPatterns: 32})
	if err != nil {
		t.Fatal(err)
	}
	deduped, err := e.Seasonal("x", SeasonalOptions{MinOccurrences: 3, MaxPatterns: 32, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped) > len(raw) {
		t.Fatalf("dedup grew the list: %d > %d", len(deduped), len(raw))
	}
	if len(deduped) == 0 {
		t.Fatal("dedup removed everything")
	}
	// The surviving top pattern still captures the planted motif.
	if deduped[0].Count() < repeats-1 {
		t.Fatalf("top deduped pattern count = %d", deduped[0].Count())
	}
	// No kept pattern is 80%-covered by a longer kept one.
	for i, p := range deduped {
		for _, q := range deduped[:i] {
			if q.Length <= p.Length {
				continue
			}
			covered := 0
			for _, po := range p.Occurrences {
				for _, qo := range q.Occurrences {
					if po.Overlaps(qo) {
						covered++
						break
					}
				}
			}
			if float64(covered) >= 0.8*float64(len(p.Occurrences)) {
				t.Fatalf("kept pattern %d is subsumed by an earlier longer one", i)
			}
		}
	}
}

func TestSelectNonOverlapping(t *testing.T) {
	ms := []ts.SubSeq{
		{Series: 0, Start: 5, Length: 4},
		{Series: 0, Start: 0, Length: 4},
		{Series: 0, Start: 2, Length: 4},
		{Series: 0, Start: 9, Length: 4},
	}
	out := selectNonOverlapping(ms)
	if len(out) != 3 {
		t.Fatalf("selected %d, want 3 (starts 0,5,9)", len(out))
	}
	if out[0].Start != 0 || out[1].Start != 5 || out[2].Start != 9 {
		t.Fatalf("selection = %+v", out)
	}
}

func TestMeanGap(t *testing.T) {
	occ := []ts.SubSeq{{Start: 0, Length: 2}, {Start: 10, Length: 2}, {Start: 18, Length: 2}}
	if g := meanGap(occ); !almost(g, 9, 1e-12) {
		t.Fatalf("meanGap = %g, want 9", g)
	}
	if meanGap(occ[:1]) != 0 {
		t.Fatal("single occurrence gap should be 0")
	}
}
