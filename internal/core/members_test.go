package core

import (
	"testing"
)

func TestGroupMembersDrillDown(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 8, ModeApprox, -1)
	ov := e.Overview(6, 3)
	if len(ov) == 0 {
		t.Fatal("no overview groups")
	}
	for _, gs := range ov {
		members, err := e.GroupMembers(gs.Group)
		if err != nil {
			t.Fatal(err)
		}
		if len(members) != gs.Count {
			t.Fatalf("member count %d != overview count %d", len(members), gs.Count)
		}
		half := e.Base().HalfST(gs.Group.Length)
		for i, m := range members {
			if err := m.Ref.Validate(d); err != nil {
				t.Fatal(err)
			}
			if m.SeriesName != d.At(m.Ref.Series).Name {
				t.Fatalf("series name mismatch: %s", m.SeriesName)
			}
			if m.RepED > half+1e-9 {
				t.Fatalf("member %d beyond invariant radius: %g > %g", i, m.RepED, half)
			}
			if i > 0 && members[i-1].RepED > m.RepED {
				t.Fatal("members not sorted by representative distance")
			}
			if len(m.Values) != gs.Group.Length {
				t.Fatalf("member values length %d", len(m.Values))
			}
		}
	}
}

func TestOverviewAll(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 8, ModeApprox, -1)
	all := e.OverviewAll(10)
	if len(all) == 0 || len(all) > 10 {
		t.Fatalf("overview size %d", len(all))
	}
	lengths := map[int]bool{}
	for i, gs := range all {
		if i > 0 && all[i-1].Count < gs.Count {
			t.Fatal("not sorted by cardinality")
		}
		if gs.MaxRadius > e.Base().HalfST(gs.Group.Length)+1e-9 {
			t.Fatal("radius exceeds invariant")
		}
		lengths[gs.Group.Length] = true
		// The ref must resolve.
		if _, err := e.GroupMembers(gs.Group); err != nil {
			t.Fatal(err)
		}
	}
	_ = d
	// k <= 0 returns everything.
	if len(e.OverviewAll(0)) != e.Base().NumGroups() {
		t.Fatal("k=0 should return all groups")
	}
}

func TestGroupMembersErrors(t *testing.T) {
	_, e := newTestWorld(t, 4, 24, 0.1, 4, 6, ModeApprox, -1)
	if _, err := e.GroupMembers(GroupRef{Length: 5, Index: -1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := e.GroupMembers(GroupRef{Length: 5, Index: 1 << 20}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := e.GroupMembers(GroupRef{Length: 999, Index: 0}); err == nil {
		t.Fatal("unknown length accepted")
	}
}
