package core

import (
	"context"
	"errors"
	"testing"
)

// collectSnapshots runs an exact-mode Find with a progress sink and
// returns every emission plus the one-shot result for comparison.
func collectSnapshots(t *testing.T, e *Engine, q []float64, fo FindOptions) ([]Snapshot, FindResult) {
	t.Helper()
	var snaps []Snapshot
	streamFO := fo
	streamFO.Progress = func(s Snapshot) { snaps = append(snaps, s) }
	res, err := e.Find(context.Background(), q, streamFO)
	if err != nil {
		t.Fatal(err)
	}
	return snaps, res
}

// TestProgressivePipeline pins the emission contract at every worker
// count: the first snapshot is the approximate answer (equal to an
// approx-mode Find, emitted before any refinement wave), intermediate
// snapshots refine monotonically, and the final snapshot equals the
// one-shot exact Find — matches, order, and stats.
func TestProgressivePipeline(t *testing.T) {
	d, e := parallelWorld(t, ModeExact)
	q := d.Series[0].Values[0:16]
	ctx := context.Background()

	for _, workers := range []int{1, 4} {
		fo := FindOptions{Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true, Workers: workers}, K: 5}
		snaps, res := collectSnapshots(t, e, q, fo)
		if len(snaps) < 3 {
			t.Fatalf("workers=%d: only %d snapshots; want approx + waves + final", workers, len(snaps))
		}

		// The approximate snapshot comes first, before any wave.
		first := snaps[0]
		if first.Seq != 0 || first.Wave != 0 || first.Final {
			t.Fatalf("workers=%d: first snapshot = seq %d wave %d final %v", workers, first.Seq, first.Wave, first.Final)
		}
		if first.GroupsRemaining == 0 {
			t.Fatalf("workers=%d: approximate snapshot claims the walk already finished", workers)
		}
		approxFO := FindOptions{Options: Options{Band: -1, Mode: ModeApprox, LengthNorm: true, Workers: workers}, K: 5}
		approx, err := e.Find(ctx, q, approxFO)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, "approx snapshot vs approx Find", approx.Matches, first.Matches)
		// Stats prove the emission point: the approximate phase has done
		// exactly the work an approx-mode Find does — no wave has run yet.
		if first.Stats.Groups != approx.Stats.Groups ||
			first.Stats.GroupsRefined != approx.Stats.GroupsRefined ||
			first.Stats.Members != approx.Stats.Members {
			t.Fatalf("workers=%d: approx snapshot stats %+v != approx Find stats %+v",
				workers, first.Stats, approx.Stats)
		}

		// The final snapshot equals the one-shot exact result.
		last := snaps[len(snaps)-1]
		if !last.Final || last.GroupsRemaining != 0 {
			t.Fatalf("workers=%d: last snapshot final=%v remaining=%d", workers, last.Final, last.GroupsRemaining)
		}
		sameMatches(t, "final snapshot vs Find", res.Matches, last.Matches)
		if last.Stats != res.Stats {
			t.Fatalf("workers=%d: final snapshot stats %+v != Find stats %+v", workers, last.Stats, res.Stats)
		}
		for i, c := range last.Certified {
			if !c {
				t.Fatalf("workers=%d: final snapshot match %d not certified", workers, i)
			}
		}

		// Emission invariants across the run: seq increments, waves only
		// move forward, remaining only shrinks, stats only grow, and
		// certification is monotone per match ref.
		certified := map[interface{}]bool{}
		for i, s := range snaps {
			if s.Seq != i {
				t.Fatalf("workers=%d: snapshot %d has seq %d", workers, i, s.Seq)
			}
			if len(s.Certified) != len(s.Matches) {
				t.Fatalf("workers=%d: snapshot %d: %d flags for %d matches", workers, i, len(s.Certified), len(s.Matches))
			}
			if i == 0 {
				continue
			}
			prev := snaps[i-1]
			if s.GroupsRemaining > prev.GroupsRemaining {
				t.Fatalf("workers=%d: snapshot %d remaining grew %d -> %d", workers, i, prev.GroupsRemaining, s.GroupsRemaining)
			}
			if s.Stats.GroupsRefined < prev.Stats.GroupsRefined || s.Stats.MemberDTW < prev.Stats.MemberDTW {
				t.Fatalf("workers=%d: snapshot %d stats went backwards", workers, i)
			}
			for j, m := range s.Matches {
				if s.Certified[j] {
					certified[m.Ref] = true
				}
			}
		}
		for i, s := range snaps {
			for j, m := range s.Matches {
				if certified[m.Ref] && s.Final && !s.Certified[j] {
					t.Fatalf("workers=%d: snapshot %d lost certification for %v", workers, i, m.Ref)
				}
			}
		}

		// Certification soundness: a match certified in any snapshot
		// appears in the final exact result with the same distance.
		finalByRef := map[interface{}]float64{}
		for _, m := range res.Matches {
			finalByRef[m.Ref] = m.Dist
		}
		for i, s := range snaps {
			for j, m := range s.Matches {
				if !s.Certified[j] {
					continue
				}
				d, ok := finalByRef[m.Ref]
				if !ok {
					t.Fatalf("workers=%d: snapshot %d certified %v, absent from final result", workers, i, m.Ref)
				}
				if d != m.Dist {
					t.Fatalf("workers=%d: snapshot %d certified %v at %g, final has %g", workers, i, m.Ref, m.Dist, d)
				}
			}
		}
	}
}

// TestProgressiveSnapshotsDeterministic pins that the emission sequence
// itself — wave boundaries, remaining counts, per-wave match sets — is
// identical at every worker count, not just the final answer.
func TestProgressiveSnapshotsDeterministic(t *testing.T) {
	d, e := parallelWorld(t, ModeExact)
	q := d.Series[2].Values[10:26]
	base := FindOptions{Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true, Workers: 1}, K: 4}
	serial, _ := collectSnapshots(t, e, q, base)
	for _, workers := range []int{2, 4} {
		fo := base
		fo.Workers = workers
		par, _ := collectSnapshots(t, e, q, fo)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d snapshots != %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].Wave != serial[i].Wave || par[i].GroupsRemaining != serial[i].GroupsRemaining {
				t.Fatalf("workers=%d: snapshot %d shape (%d, %d) != (%d, %d)", workers, i,
					par[i].Wave, par[i].GroupsRemaining, serial[i].Wave, serial[i].GroupsRemaining)
			}
			sameMatches(t, "snapshot", serial[i].Matches, par[i].Matches)
			for j := range par[i].Certified {
				if par[i].Certified[j] != serial[i].Certified[j] {
					t.Fatalf("workers=%d: snapshot %d certification %d diverged", workers, i, j)
				}
			}
		}
	}
}

// TestProgressiveCancelMidStream cancels the context from inside the sink
// and requires the walk to abort within one wave: at most one further
// emission, then ctx.Err().
func TestProgressiveCancelMidStream(t *testing.T) {
	d, e := parallelWorld(t, ModeExact)
	q := d.Series[1].Values[0:20]
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		emissions := 0
		_, err := e.Find(ctx, q, FindOptions{
			Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true, Workers: workers},
			K:       5,
			Progress: func(s Snapshot) {
				emissions++
				if s.Seq == 1 {
					cancel() // give up after the first refinement wave
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Seq 0 (approx), seq 1 (first wave, cancels), and at most one
		// in-flight wave that raced the cancellation.
		if emissions > 3 {
			t.Fatalf("workers=%d: %d emissions after cancelling at the first wave", workers, emissions)
		}
	}
}

// TestProgressiveApproxNeverEmits pins that approx-mode and range calls
// ignore the sink: the approximate answer is the whole result.
func TestProgressiveApproxNeverEmits(t *testing.T) {
	d, e := parallelWorld(t, ModeApprox)
	q := d.Series[0].Values[0:12]
	calls := 0
	sink := func(Snapshot) { calls++ }
	if _, err := e.Find(context.Background(), q, FindOptions{
		Options: Options{Band: -1, LengthNorm: true}, K: 3, Progress: sink,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Find(context.Background(), q, FindOptions{
		Options: Options{Band: -1, LengthNorm: true}, Range: true, MaxDist: 0.1, Progress: sink,
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("sink called %d times on approx/range calls", calls)
	}
}
