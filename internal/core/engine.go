// Package core implements the online half of the ONEX contribution: the
// query processor that explores the compact ONEX base with DTW instead of
// the raw data (paper §3.2-§3.3).
//
// Two search modes are provided:
//
//   - ModeApprox is the paper's behaviour: find the group whose
//     representative is DTW-closest to the query, then return the
//     DTW-closest member of that group. This is what the ONEX papers
//     measure: very fast, and empirically near-exact.
//   - ModeExact uses the certified transfer bound (DESIGN.md Lemma 3) to
//     prune groups soundly and refines every surviving group, returning
//     the provably best match over all indexed subsequences. It equals a
//     brute-force DTW scan on every input (property-tested) while still
//     profiting from the base.
//
// The package also implements the paper's other exploratory operations:
// seasonal (repeated-pattern) queries, data-driven threshold
// recommendation, and the group overview that feeds the visual front end.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// Mode selects the search guarantee.
type Mode int

// Search modes.
const (
	// ModeApprox explores only the best representative's group (paper
	// behaviour; fastest).
	ModeApprox Mode = iota
	// ModeExact prunes with certified bounds and guarantees the true
	// DTW-best indexed subsequence.
	ModeExact
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeApprox:
		return "approx"
	case ModeExact:
		return "exact"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures an Engine.
type Options struct {
	// Band is the Sakoe-Chiba width used for every DTW the engine runs.
	// Negative means unconstrained. Bands are widened per comparison via
	// dist.EffectiveBand as needed.
	Band int
	// Mode selects approximate (paper) or certified-exact search.
	Mode Mode
	// LengthNorm ranks candidates by length-normalized DTW
	// (DTW / max(len(query), len(candidate))) instead of raw DTW. This is
	// how ONEX compares matches of different lengths fairly: a long match
	// accumulates more absolute cost than a short one for the same
	// per-point discrepancy. Match.Score carries the ranking value either
	// way.
	LengthNorm bool
	// Workers bounds the worker pool one search may shard its group scans
	// across (representative scoring, member refinement, range scans).
	// Values < 1 select GOMAXPROCS; 1 forces the serial code paths. Small
	// scans stay serial regardless — see parallel.go for the thresholds and
	// the determinism contract.
	Workers int
}

// Engine binds a normalized dataset to its ONEX base and answers
// exploratory queries. Engines are safe for concurrent readers: all query
// methods are read-only.
type Engine struct {
	ds   *ts.Dataset
	base *grouping.Base
	opts Options
}

// GroupRef locates a group inside the base.
type GroupRef struct {
	Length int
	Index  int
}

// Match is one similarity-query result.
type Match struct {
	// Ref locates the matched subsequence in the dataset.
	Ref ts.SubSeq
	// Values is the matched window (a view into the dataset; do not mutate).
	Values []float64
	// Dist is the raw DTW(query, match) under the engine's band.
	Dist float64
	// Score is the ranking value: Dist when Options.LengthNorm is off,
	// Dist / max(len(query), match length) when on. Results are ordered
	// by Score.
	Score float64
	// RepDist is the raw DTW(query, representative of the match's group).
	RepDist float64
	// Group locates the group the match came from.
	Group GroupRef
	// Path is the warping path between the query and the match, for the
	// demo's "warped points" presentation (Fig 2).
	Path dist.WarpPath
}

// ErrNoMatch is returned when no candidate length intersects the base.
var ErrNoMatch = errors.New("core: no candidate subsequence in the base matches the query constraints")

// NewEngine validates that base was built from d and returns an engine.
func NewEngine(d *ts.Dataset, base *grouping.Base, opts Options) (*Engine, error) {
	if d == nil || base == nil {
		return nil, errors.New("core: NewEngine: nil dataset or base")
	}
	if got := grouping.DatasetChecksum(d); got != base.DatasetSum {
		return nil, fmt.Errorf("core: NewEngine: base was built from a different dataset (checksum %x != %x)",
			base.DatasetSum, got)
	}
	return &Engine{ds: d, base: base, opts: opts}, nil
}

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *ts.Dataset { return e.ds }

// Base returns the engine's ONEX base.
func (e *Engine) Base() *grouping.Base { return e.base }

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// GroupSummary describes one similarity group for the overview pane
// (Fig 2 top-left): the representative shape plus the cardinality that
// drives the color intensity.
type GroupSummary struct {
	Group GroupRef
	Count int
	Rep   []float64
	// MaxRadius is the largest member-to-representative ED (<= ST/2).
	MaxRadius float64
}

// Overview returns the top-k groups of one length by cardinality
// (k <= 0 means all). Length 0 selects the base length with the largest
// membership, mirroring the demo's default landing view.
func (e *Engine) Overview(length, k int) []GroupSummary {
	sums, _ := e.OverviewContext(context.Background(), length, k, nil)
	return sums
}

// OverviewContext is Overview with cancellation and statistics: the context
// is checked once per length during auto-selection and once per returned
// group (each MaxRadius computation scans the group's members), so a
// cancelled walk aborts within one round with ctx.Err(). st, when non-nil,
// accumulates the groups and members visited.
func (e *Engine) OverviewContext(ctx context.Context, length, k int, st *SearchStats) ([]GroupSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: Overview: %w", err)
	}
	defer release()
	if length == 0 {
		best, bestCount := 0, -1
		for _, l := range e.base.Lengths() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n := 0
			//onex:nopoll O(1) count accumulation per group; the enclosing per-length loop polls each round
			for _, g := range e.base.GroupsOfLength(l) {
				n += g.Count()
			}
			if n > bestCount {
				best, bestCount = l, n
			}
		}
		length = best
	}
	groups := e.base.GroupsOfLength(length)
	if k <= 0 || k > len(groups) {
		k = len(groups)
	}
	out := make([]GroupSummary, 0, k)
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g := groups[i]
		if st != nil {
			st.Groups++
			st.Members += g.Count()
		}
		out = append(out, GroupSummary{
			Group:     GroupRef{Length: length, Index: i},
			Count:     g.Count(),
			Rep:       g.Rep,
			MaxRadius: g.MaxRadius(e.ds),
		})
	}
	return out, nil
}

// OverviewAll returns the top-k groups across every indexed length by
// cardinality — the landing view when no length is selected gives the
// data's dominant shapes regardless of scale.
func (e *Engine) OverviewAll(k int) []GroupSummary {
	var all []GroupSummary
	for _, l := range e.base.Lengths() {
		//onex:nopoll context-free legacy wrapper (PR 3 keeps the signature); O(1) append per group, MaxRadius scans only the returned k
		for i, g := range e.base.GroupsOfLength(l) {
			all = append(all, GroupSummary{
				Group: GroupRef{Length: l, Index: i},
				Count: g.Count(),
				Rep:   g.Rep,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Group.Length != all[j].Group.Length {
			return all[i].Group.Length > all[j].Group.Length
		}
		return all[i].Group.Index < all[j].Group.Index
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	// MaxRadius only for the returned set (it scans members).
	for i := range all {
		g := e.base.GroupsOfLength(all[i].Group.Length)[all[i].Group.Index]
		all[i].MaxRadius = g.MaxRadius(e.ds)
	}
	return all
}

// MemberInfo describes one group member for the drill-down view: the demo
// lets the analyst click an overview tile and scroll through the group's
// sequences (Fig 2's query selection pane).
type MemberInfo struct {
	Ref ts.SubSeq
	// SeriesName resolves Ref.Series for display.
	SeriesName string
	// RepED is the member's Euclidean distance to the group representative
	// (at most ST*l/2 by the construction invariant).
	RepED float64
	// Values is the member window (a view into the dataset; do not mutate).
	Values []float64
}

// GroupMembers returns the members of one group, nearest-to-representative
// first. It errors on a dangling reference.
func (e *Engine) GroupMembers(ref GroupRef) ([]MemberInfo, error) {
	return e.GroupMembersContext(context.Background(), ref, nil)
}

// GroupMembersContext is GroupMembers with cancellation and statistics: the
// context is checked every ctxCheckStride members (each member costs one
// representative ED), so a cancelled drill-down aborts within one round
// with ctx.Err(). st, when non-nil, accumulates the visit counts.
func (e *Engine) GroupMembersContext(ctx context.Context, ref GroupRef, st *SearchStats) ([]MemberInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: GroupMembers: %w", err)
	}
	defer release()
	groups := e.base.GroupsOfLength(ref.Length)
	if ref.Index < 0 || ref.Index >= len(groups) {
		return nil, fmt.Errorf("core: GroupMembers: no group %d at length %d", ref.Index, ref.Length)
	}
	g := groups[ref.Index]
	if st != nil {
		st.Groups++
		st.Members += len(g.Members)
	}
	out := make([]MemberInfo, 0, len(g.Members))
	for mi, m := range g.Members {
		if mi%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		vals := m.Values(e.ds)
		out = append(out, MemberInfo{
			Ref:        m,
			SeriesName: e.ds.At(m.Series).Name,
			RepED:      dist.ED(vals, g.Rep),
			Values:     vals,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RepED < out[j].RepED })
	return out, nil
}

// LengthSummary reports per-length base statistics for navigation panes.
type LengthSummary struct {
	Length       int
	Groups       int
	Subsequences int
}

// LengthSummaries returns the base's per-length shape, ascending by length.
func (e *Engine) LengthSummaries() []LengthSummary {
	sums, _ := e.LengthSummariesContext(context.Background(), nil)
	return sums
}

// LengthSummariesContext is LengthSummaries with cancellation and
// statistics: the context is checked once per indexed length, so a
// cancelled walk aborts within one round with ctx.Err(). st, when non-nil,
// accumulates the groups and members visited.
func (e *Engine) LengthSummariesContext(ctx context.Context, st *SearchStats) ([]LengthSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lengths := e.base.Lengths()
	out := make([]LengthSummary, 0, len(lengths))
	for _, l := range lengths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ls := LengthSummary{Length: l}
		//onex:nopoll O(1) count accumulation per group; the enclosing per-length loop polls each round
		for _, g := range e.base.GroupsOfLength(l) {
			ls.Groups++
			ls.Subsequences += g.Count()
		}
		out = append(out, ls)
		if st != nil {
			st.Groups += ls.Groups
			st.Members += ls.Subsequences
		}
	}
	return out, nil
}
