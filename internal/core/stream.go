package core

import (
	"context"
	"math"

	"repro/internal/dist"
)

// Progressive refinement: the top-k search restructured as a resumable
// pipeline with an event sink. One walk serves both entry points:
//
//   - Find (exact mode) drives the pipeline to completion and returns the
//     final answer — the one-shot spelling.
//   - Find with FindOptions.Progress set emits a Snapshot at every
//     emission boundary, so callers (onex.DB.Stream, the NDJSON endpoint)
//     can show the analyst an answer that refines while the walk runs.
//
// The emission boundaries are the points where the search has a coherent
// intermediate answer:
//
//   1. After the approximate phase — the paper's search (best groups by
//      representative distance, refined best-first until the cutoff).
//      This snapshot's matches equal what Find returns in approx mode.
//   2. After every certified refinement wave — the exact walk refines the
//      remaining groups in fixed 16-group waves (parallel.go exactWave),
//      re-checking the certified transfer bound between waves; each wave
//      boundary yields the current top-k plus per-match certification.
//   3. A terminating snapshot (Final = true) whose matches carry warping
//      paths and equal Find's exact-mode result exactly.
//
// The sink is called synchronously on the searching goroutine: a slow
// consumer slows the walk rather than queueing unbounded snapshots — that
// is the backpressure contract, and it keeps cancellation simple (the
// walk polls ctx between waves like everywhere else).

// Snapshot is one emission of the progressive search pipeline.
type Snapshot struct {
	// Seq numbers the emissions of one walk: 0 is the approximate answer,
	// then one snapshot per certified refinement wave, then the final one.
	Seq int
	// Matches is the current top-k, best first. Intermediate snapshots
	// omit warping paths (they cost a full DP matrix each); the final
	// snapshot carries them.
	Matches []Match
	// Certified reports, per match, whether the match provably belongs to
	// the final exact answer with its exact distance: its score is below
	// the certified lower bound of every group the walk has not yet
	// refined. Certification is monotone — once true for a match it stays
	// true — and every flag is true in the final snapshot.
	Certified []bool
	// Stats is the cumulative work since the walk started.
	Stats SearchStats
	// GroupsRemaining is how many candidate groups the walk has neither
	// refined nor certified-skipped yet.
	GroupsRemaining int
	// Wave is the refinement wave this snapshot closes: 0 for the
	// approximate phase, 1..N for the certified waves (the final snapshot
	// repeats N).
	Wave int
	// Final marks the terminating snapshot; its Matches (and Stats) equal
	// the exact-mode Find result.
	Final bool
}

// ProgressFunc receives pipeline snapshots. It is invoked synchronously
// from the search goroutine; blocking in the sink blocks the walk.
type ProgressFunc func(Snapshot)

// progressiveWalk is the resumable state of one top-k search: the scored
// candidate groups, the accumulator, and how far the member-level walk has
// advanced. The approximate phase produces it; the exact continuation
// consumes it.
type progressiveWalk struct {
	e    *Engine
	q    []float64
	k    int
	c    QueryConstraints
	opts Options
	st   *SearchStats

	// cands is sorted by representative score (pruned-last before
	// resolution). cands[:refined] have had their members fully scanned or
	// been certified-skipped; the walk resumes at cands[refined].
	cands   []repCandidate
	top     *topK
	refined int
	// resolved records that every repDist in cands is an exact distance
	// (no +Inf placeholders), which certification needs.
	resolved bool
	// suffixMinLower[i] is the minimum certLower over cands[i:]
	// (suffixMinLower[len(cands)] = +Inf), precomputed by finishExact once
	// the tail order is final so every snapshot certifies in O(k) instead
	// of rescanning the unrefined tail.
	suffixMinLower []float64
	// seq and wave number the snapshots emitted so far.
	seq, wave int
}

// startWalk runs the approximate phase — representative scoring plus the
// best-first member walk with its cutoff — and returns the resumable state.
// The accumulator content equals the approx-mode answer when it returns.
func (e *Engine) startWalk(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) (*progressiveWalk, error) {
	cands, err := e.scoreRepresentatives(ctx, q, k, lengths, opts, st)
	if err != nil {
		return nil, err
	}
	sortCandidates(cands)
	w := &progressiveWalk{e: e, q: q, k: k, c: c, opts: opts, st: st, cands: cands, top: newTopK(k)}

	// Refine within the most promising groups. To fill k results we may
	// need more than k groups when constraints exclude members, so walk
	// groups in rep order until k matches are collected (or candidates are
	// exhausted).
	for i := 0; i < len(cands); i++ {
		if !w.resolved && (i >= k || math.IsInf(cands[i].repDist, 1)) {
			// End of the deterministic prefix: the k best representatives are
			// exactly scored in every run, but beyond them which groups the
			// scoring pass LB-pruned depends on scan order (and, with
			// Workers > 1, on scheduling). Resolve the tail — recompute every
			// pruned representative and re-sort by true score — so the walk
			// continues in true representative order regardless, and a
			// constrained query that under-fills stops at the same cutoff as
			// the main loop instead of degenerating into a near-exhaustive
			// member scan of every pruned group.
			if err := e.resolveCandidates(ctx, q, cands[i:], opts, st); err != nil {
				return nil, err
			}
			sortCandidates(cands[i:])
			w.resolved = true
		}
		cand := cands[i]
		if w.top.full() && cand.repScore > w.top.worst().Score {
			// A group whose representative already scores worse than every
			// collected member cannot improve an approximate top-k
			// (heuristic: members can score below their representative).
			break
		}
		if err := e.refine(ctx, q, cand, c, w.top, opts, st); err != nil {
			return nil, err
		}
		w.refined = i + 1
	}
	return w, nil
}

// certLower is the certified lower bound for every member s of cand's
// group: DTW(q,s) >= DTW(q,rep) - mu*ED(rep,s) >= repDist - mu*ST_l/2,
// where mu is bounded by the band geometry of the (q,s) grid and ST_l is
// the absolute threshold at the group's length.
func (w *progressiveWalk) certLower(cand repCandidate) float64 {
	bw := dist.EffectiveBand(len(w.q), cand.g.Length, w.opts.Band)
	mu := float64(2*bw + 1)
	return (cand.repDist - mu*w.e.base.HalfST(cand.g.Length)) / cand.norm
}

// snapshot assembles the current emission. Certification is computed only
// once every representative distance is resolved: an unresolved (+Inf)
// candidate's true certified bound is unknown, and guessing it could
// certify a match unsoundly.
func (w *progressiveWalk) snapshot(final bool) Snapshot {
	var ms []Match
	if final {
		ms = w.e.finishMatches(w.q, w.top.sorted(), w.opts)
	} else {
		ms = w.top.sorted()
	}
	cert := make([]bool, len(ms))
	switch {
	case final:
		for i := range cert {
			cert[i] = true
		}
	case w.resolved:
		// The minimum certified lower bound over the unrefined tail: from
		// the precomputed suffix array when finishExact has frozen the tail
		// order, by a one-off scan for the single pre-wave emission.
		minLower := math.Inf(1)
		if w.suffixMinLower != nil {
			minLower = w.suffixMinLower[w.refined]
		} else {
			for i := w.refined; i < len(w.cands); i++ {
				if l := w.certLower(w.cands[i]); l < minLower {
					minLower = l
				}
			}
		}
		for i, m := range ms {
			cert[i] = m.Score < minLower
		}
	}
	var st SearchStats
	if w.st != nil {
		st = *w.st
	}
	s := Snapshot{
		Seq:             w.seq,
		Matches:         ms,
		Certified:       cert,
		Stats:           st,
		GroupsRemaining: len(w.cands) - w.refined,
		Wave:            w.wave,
		Final:           final,
	}
	w.seq++
	return s
}

// finishExact resumes the walk to a certified-exact answer: it resolves
// any still-pruned representative distances, re-sorts the unwalked tail by
// true score, and refines the remaining groups in fixed-size waves. After
// each wave the certified transfer bound re-filters the tail against the
// tightened top-k, and emit (when non-nil) receives a snapshot. The wave
// size is a constant (parallel.go exactWave), never derived from the
// worker count, so the refined set — and with it every deterministic work
// total — is identical at every Workers setting.
func (w *progressiveWalk) finishExact(ctx context.Context, emit ProgressFunc) error {
	e := w.e
	// The approximate phase resolves the tail only when its walk reaches
	// it; a walk that filled k from the first groups leaves the rest
	// LB-pruned. The kth tracker also saturates (1024), so on large bases
	// some representatives are abandoned regardless. Recompute them all —
	// in parallel when allowed — so the certified bound below sees true
	// distances, and walk the tail in true representative-score order.
	if err := e.resolveCandidates(ctx, w.q, w.cands[w.refined:], w.opts, w.st); err != nil {
		return err
	}
	sortCandidates(w.cands[w.refined:])
	w.resolved = true
	if emit != nil {
		// The tail order is now final, so each candidate's certified bound
		// is fixed: one backward pass gives every snapshot its minimum
		// over the unrefined tail in O(1).
		w.suffixMinLower = make([]float64, len(w.cands)+1)
		w.suffixMinLower[len(w.cands)] = math.Inf(1)
		for i := len(w.cands) - 1; i >= 0; i-- {
			w.suffixMinLower[i] = math.Min(w.suffixMinLower[i+1], w.certLower(w.cands[i]))
		}
	}

	// The walk proceeds in fixed-size waves: between waves the certified
	// transfer bound is re-evaluated against the tightened top-k, and
	// within a wave every surviving group is refined — across the worker
	// pool when one is configured.
	workers := resolveWorkers(w.opts.Workers, exactWave)
	wave := make([]repCandidate, 0, exactWave)
	for w.refined < len(w.cands) {
		// Collect the next wave of groups the certified bound cannot skip.
		wave = wave[:0]
		idx := w.refined
		for idx < len(w.cands) && len(wave) < exactWave {
			if err := ctx.Err(); err != nil {
				return err
			}
			cand := w.cands[idx]
			idx++
			if w.top.full() && w.certLower(cand) > w.top.worst().Score {
				if w.st != nil {
					w.st.GroupsLBPruned++
				}
				continue // provably cannot improve the top-k
			}
			wave = append(wave, cand)
		}
		if len(wave) > 0 {
			if workers > 1 && len(wave) > 1 {
				if err := e.refineWaveParallel(ctx, w.q, wave, w.c, w.top, w.opts, w.st, workers); err != nil {
					return err
				}
			} else {
				for _, cand := range wave {
					if err := e.refine(ctx, w.q, cand, w.c, w.top, w.opts, w.st); err != nil {
						return err
					}
				}
			}
		}
		w.refined = idx
		if len(wave) > 0 && emit != nil {
			w.wave++
			emit(w.snapshot(false))
		}
	}
	return nil
}
