package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
)

// RangeOptions configures WithinThreshold.
type RangeOptions struct {
	// MaxDist is the inclusive score threshold (same units as Match.Score:
	// raw DTW, or length-normalized DTW when the engine ranks normalized).
	MaxDist float64
	// Constraints narrow the candidate set.
	Constraints QueryConstraints
	// Limit caps the number of returned matches (0 = unlimited).
	Limit int
}

// WithinThreshold returns every indexed subsequence whose DTW score from q
// is at most MaxDist, ordered best-first. This is the paper's §3.3 range
// flavour of similarity exploration ("showing the changes in the
// similarity between sequences for varying parameters"): re-running with a
// swept threshold shows how the match set grows.
//
// The search is exact regardless of the engine mode: a group can be
// skipped only when the certified transfer bound proves every member lies
// beyond the threshold.
func (e *Engine) WithinThreshold(q []float64, opts RangeOptions) ([]Match, error) {
	return e.withinThreshold(context.Background(), q, opts, e.opts, nil)
}

// rangeJob is one group to scan plus the per-length precomputation shared
// (read-only) by every group of that length.
type rangeJob struct {
	ref    GroupRef
	g      *grouping.Group
	norm   float64
	rawMax float64
	slack  float64
	qU, qL []float64
}

// withinThreshold is WithinThreshold with an explicit context, per-call
// engine options, and optional statistics collection. The group scan is
// sharded across callOpts.Workers goroutines when the base is large; the
// threshold bound is fixed, so results and statistics are identical at
// every worker count. Each worker checks the context once per group and
// every ctxCheckStride members, so cancelled range scans abort within one
// pruning round.
func (e *Engine) withinThreshold(ctx context.Context, q []float64, opts RangeOptions, callOpts Options, st *SearchStats) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if opts.MaxDist < 0 || math.IsNaN(opts.MaxDist) {
		return nil, fmt.Errorf("core: WithinThreshold: MaxDist %g must be non-negative", opts.MaxDist)
	}
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: WithinThreshold: %w", err)
	}
	defer release()
	lengths := e.candidateLengths(opts.Constraints)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	var jobs []rangeJob
	for _, l := range lengths {
		groups := e.base.GroupsOfLength(l)
		if len(groups) == 0 {
			continue
		}
		norm := callOpts.norm(len(q), l)
		qU, qL := dist.Envelope(q, l, callOpts.Band)
		w := dist.EffectiveBand(len(q), l, callOpts.Band)
		slack := float64(2*w+1) * e.base.HalfST(l)
		//onex:nopoll O(1) job enumeration per group; the scan that follows polls per group and per 64 members
		for gi, g := range groups {
			jobs = append(jobs, rangeJob{
				ref:    GroupRef{Length: l, Index: gi},
				g:      g,
				norm:   norm,
				rawMax: opts.MaxDist * norm,
				slack:  slack,
				qU:     qU,
				qL:     qL,
			})
		}
	}

	perGroup, err := scanGroups(ctx, callOpts.Workers, jobs, st,
		func(job rangeJob, st *SearchStats) ([]Match, bool, error) {
			ms, err := e.rangeScanGroup(ctx, q, job, opts.Constraints, callOpts, st)
			return ms, len(ms) > 0, err
		})
	if err != nil {
		return nil, err
	}
	var out []Match
	//onex:nopoll merging already-scanned per-group results; scanGroups polled per group and per 64 members
	for _, ms := range perGroup {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool { return matchBefore(out[i], out[j]) })
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	// Paths only for the returned set.
	return e.finishMatches(q, out, callOpts), nil
}

// rangeScanGroup applies the certified group skip and, when the group
// survives, scans its members against the fixed threshold, returning every
// in-range match. st may be a worker-local accumulator.
func (e *Engine) rangeScanGroup(ctx context.Context, q []float64, job rangeJob, c QueryConstraints, callOpts Options, st *SearchStats) ([]Match, error) {
	if st != nil {
		st.Groups++
		st.RepDTW++
	}
	// Certified skip: if DTW(q, rep) - slack > rawMax then every member is
	// provably outside the threshold.
	repDist := dist.DTWEarlyAbandon(q, job.g.Rep, callOpts.Band, job.rawMax+job.slack)
	if math.IsInf(repDist, 1) {
		if st != nil {
			st.GroupsLBPruned++
		}
		return nil, nil
	}
	if st != nil {
		st.GroupsRefined++
		st.Members += len(job.g.Members)
	}
	var out []Match
	for mi, m := range job.g.Members {
		if mi%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if c.excludes(m) {
			continue
		}
		mv := m.Values(e.ds)
		if dist.LBKim(q, mv) > job.rawMax {
			continue
		}
		if dist.LBKeogh(mv, job.qU, job.qL, job.rawMax) > job.rawMax {
			continue
		}
		if st != nil {
			st.MemberDTW++
		}
		d := dist.DTWEarlyAbandon(q, mv, callOpts.Band, job.rawMax)
		// Early abandoning may return a finite value above the bound when no
		// full DP row exceeded it; filter explicitly.
		if math.IsInf(d, 1) || d > job.rawMax {
			continue
		}
		out = append(out, Match{
			Ref:     m,
			Values:  mv,
			Dist:    d,
			Score:   d / job.norm,
			RepDist: repDist,
			Group:   job.ref,
		})
	}
	return out, nil
}
