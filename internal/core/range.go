package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// RangeOptions configures WithinThreshold.
type RangeOptions struct {
	// MaxDist is the inclusive score threshold (same units as Match.Score:
	// raw DTW, or length-normalized DTW when the engine ranks normalized).
	MaxDist float64
	// Constraints narrow the candidate set.
	Constraints QueryConstraints
	// Limit caps the number of returned matches (0 = unlimited).
	Limit int
}

// WithinThreshold returns every indexed subsequence whose DTW score from q
// is at most MaxDist, ordered best-first. This is the paper's §3.3 range
// flavour of similarity exploration ("showing the changes in the
// similarity between sequences for varying parameters"): re-running with a
// swept threshold shows how the match set grows.
//
// The search is exact regardless of the engine mode: a group can be
// skipped only when the certified transfer bound proves every member lies
// beyond the threshold.
func (e *Engine) WithinThreshold(q []float64, opts RangeOptions) ([]Match, error) {
	return e.withinThreshold(context.Background(), q, opts, e.opts, nil)
}

// withinThreshold is WithinThreshold with an explicit context, per-call
// engine options, and optional statistics collection. The context is
// checked once per group and every ctxCheckStride members, so cancelled
// range scans abort within one pruning round.
func (e *Engine) withinThreshold(ctx context.Context, q []float64, opts RangeOptions, callOpts Options, st *SearchStats) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if opts.MaxDist < 0 || math.IsNaN(opts.MaxDist) {
		return nil, fmt.Errorf("core: WithinThreshold: MaxDist %g must be non-negative", opts.MaxDist)
	}
	lengths := e.candidateLengths(opts.Constraints)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	var out []Match
	for _, l := range lengths {
		groups := e.base.GroupsOfLength(l)
		if len(groups) == 0 {
			continue
		}
		norm := callOpts.norm(len(q), l)
		rawMax := opts.MaxDist * norm
		qU, qL := dist.Envelope(q, l, callOpts.Band)
		w := dist.EffectiveBand(len(q), l, callOpts.Band)
		slack := float64(2*w+1) * e.base.HalfST(l)
		for gi, g := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if st != nil {
				st.Groups++
				st.RepDTW++
			}
			// Certified skip: if DTW(q, rep) - slack > rawMax then every
			// member is provably outside the threshold.
			repDist := dist.DTWEarlyAbandon(q, g.Rep, callOpts.Band, rawMax+slack)
			if math.IsInf(repDist, 1) {
				if st != nil {
					st.GroupsLBPruned++
				}
				continue
			}
			if st != nil {
				st.GroupsRefined++
				st.Members += len(g.Members)
			}
			for mi, m := range g.Members {
				if mi%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				if opts.Constraints.excludes(m) {
					continue
				}
				mv := m.Values(e.ds)
				if dist.LBKim(q, mv) > rawMax {
					continue
				}
				if dist.LBKeogh(mv, qU, qL, rawMax) > rawMax {
					continue
				}
				if st != nil {
					st.MemberDTW++
				}
				d := dist.DTWEarlyAbandon(q, mv, callOpts.Band, rawMax)
				// Early abandoning may return a finite value above the
				// bound when no full DP row exceeded it; filter explicitly.
				if math.IsInf(d, 1) || d > rawMax {
					continue
				}
				out = append(out, Match{
					Ref:     m,
					Values:  mv,
					Dist:    d,
					Score:   d / norm,
					RepDist: repDist,
					Group:   GroupRef{Length: l, Index: gi},
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	// Paths only for the returned set.
	return e.finishMatches(q, out, callOpts), nil
}
