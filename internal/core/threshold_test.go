package core

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/ts"
)

func thresholdDataset(t testing.TB, scale float64) *ts.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	d := ts.NewDataset("thr")
	for i := 0; i < 6; i++ {
		vals := make([]float64, 40)
		v := scale / 2
		for j := range vals {
			v += rng.NormFloat64() * scale * 0.05
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries("s"+strconv.Itoa(i), vals))
	}
	return d
}

func TestRecommendThresholdsShape(t *testing.T) {
	d := thresholdDataset(t, 1.0)
	recs, err := RecommendThresholds(d, ThresholdOptions{ProbeLength: 8, SamplePairs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want 3", len(recs))
	}
	labels := map[string]bool{}
	for i, r := range recs {
		if r.ST <= 0 {
			t.Fatalf("non-positive ST: %+v", r)
		}
		if i > 0 && recs[i-1].ST > r.ST {
			t.Fatal("recommendations not ascending in ST")
		}
		if i > 0 && recs[i-1].EstGroups < r.EstGroups {
			t.Fatal("looser ST should not create more groups")
		}
		if r.EstGroups <= 0 {
			t.Fatalf("trial clustering missing: %+v", r)
		}
		labels[r.Label] = true
	}
	for _, want := range []string{"tight", "balanced", "loose"} {
		if !labels[want] {
			t.Fatalf("missing label %q", want)
		}
	}
}

// The paper's motivation: differently-scaled data should receive
// differently-scaled thresholds.
func TestRecommendThresholdsTrackScale(t *testing.T) {
	small := thresholdDataset(t, 0.01) // growth-rate-like units
	big := thresholdDataset(t, 10000)  // headcount-like units
	rs, err := RecommendThresholds(small, ThresholdOptions{ProbeLength: 8, SamplePairs: 400})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RecommendThresholds(big, ThresholdOptions{ProbeLength: 8, SamplePairs: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rb[1].ST <= rs[1].ST*100 {
		t.Fatalf("thresholds do not track units: big %g vs small %g", rb[1].ST, rs[1].ST)
	}
}

func TestRecommendThresholdsDeterministic(t *testing.T) {
	d := thresholdDataset(t, 1.0)
	a, err := RecommendThresholds(d, ThresholdOptions{ProbeLength: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecommendThresholds(d, ThresholdOptions{ProbeLength: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ST != b[i].ST {
			t.Fatal("same seed produced different recommendations")
		}
	}
}

func TestRecommendThresholdsDefaultsAndErrors(t *testing.T) {
	d := thresholdDataset(t, 1.0)
	recs, err := RecommendThresholds(d, ThresholdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("defaults produced nothing")
	}
	if _, err := RecommendThresholds(ts.NewDataset("empty"), ThresholdOptions{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	// Probe length longer than shortest series clamps instead of failing.
	if _, err := RecommendThresholds(d, ThresholdOptions{ProbeLength: 10000}); err != nil {
		t.Fatalf("oversized probe length not clamped: %v", err)
	}
}

func TestRecommendThresholdsConstantData(t *testing.T) {
	d := ts.NewDataset("const")
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 5
	}
	d.MustAdd(ts.NewSeries("flat", vals))
	d.MustAdd(ts.NewSeries("flat2", vals))
	recs, err := RecommendThresholds(d, ThresholdOptions{ProbeLength: 6, SamplePairs: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ST <= 0 {
			t.Fatalf("constant data produced non-positive ST: %+v", r)
		}
	}
}
