package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/ts"
)

func TestWithinThresholdBasics(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	q := d.Series[1].Values[4:11]
	ms, err := e.WithinThreshold(q, RangeOptions{MaxDist: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches within a generous threshold")
	}
	for i, m := range ms {
		if m.Score > 0.5+1e-9 {
			t.Fatalf("match %d beyond threshold: %g", i, m.Score)
		}
		if i > 0 && ms[i-1].Score > m.Score {
			t.Fatal("range results out of order")
		}
		if err := m.Ref.Validate(d); err != nil {
			t.Fatal(err)
		}
		if !m.Path.Valid(len(q), m.Ref.Length) {
			t.Fatal("range match path invalid")
		}
	}
	// The self window is in range at distance 0.
	if ms[0].Dist != 0 {
		t.Fatalf("best range match dist = %g, want 0", ms[0].Dist)
	}
}

// Range results must be exactly the brute-force set under the same
// threshold: certified group skipping must never lose a qualifying member.
func TestPropertyWithinThresholdComplete(t *testing.T) {
	d, e := newTestWorld(t, 4, 24, 0.08, 4, 8, ModeApprox, 3)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		qlen := 4 + rng.Intn(5)
		q := make([]float64, qlen)
		v := rng.Float64()
		for i := range q {
			v += rng.NormFloat64() * 0.1
			q[i] = v
		}
		maxDist := 0.3 + rng.Float64()*1.0
		got, err := e.WithinThreshold(q, RangeOptions{MaxDist: maxDist})
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: scan every window; engine has LengthNorm off so
		// Score == raw DTW.
		oracle := bruteScan(d, q, 3, 4, 8)
		wantSet := map[ts.SubSeq]float64{}
		for ref, dd := range oracle {
			if dd <= maxDist+1e-12 {
				wantSet[ref] = dd
			}
		}
		gotSet := map[ts.SubSeq]float64{}
		for _, m := range got {
			gotSet[m.Ref] = m.Dist
		}
		if len(gotSet) != len(wantSet) {
			t.Fatalf("trial %d: range returned %d matches, oracle has %d (maxDist %g)",
				trial, len(gotSet), len(wantSet), maxDist)
		}
		for ref, dd := range wantSet {
			gd, ok := gotSet[ref]
			if !ok {
				t.Fatalf("trial %d: missing qualifying member %v (dist %g)", trial, ref, dd)
			}
			if math.Abs(gd-dd) > 1e-9 {
				t.Fatalf("trial %d: distance mismatch for %v: %g vs %g", trial, ref, gd, dd)
			}
		}
	}
}

// bruteScan computes raw banded DTW for every window in the length range.
func bruteScan(d *ts.Dataset, q []float64, band, minL, maxL int) map[ts.SubSeq]float64 {
	out := map[ts.SubSeq]float64{}
	for si, s := range d.Series {
		for l := minL; l <= maxL && l <= s.Len(); l++ {
			for st := 0; st+l <= s.Len(); st++ {
				ref := ts.SubSeq{Series: si, Start: st, Length: l}
				out[ref] = dist.DTWBanded(q, s.Values[st:st+l], band)
			}
		}
	}
	return out
}

func TestWithinThresholdOptions(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	q := d.Series[0].Values[0:6]

	// Limit honored.
	limited, err := e.WithinThreshold(q, RangeOptions{MaxDist: 10, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) > 3 {
		t.Fatalf("limit ignored: %d results", len(limited))
	}
	// Constraints honored.
	constrained, err := e.WithinThreshold(q, RangeOptions{
		MaxDist:     10,
		Constraints: QueryConstraints{MinLength: 6, MaxLength: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range constrained {
		if m.Ref.Length != 6 {
			t.Fatal("length constraint violated")
		}
	}
	// Zero threshold returns only exact-zero matches.
	zero, err := e.WithinThreshold(q, RangeOptions{MaxDist: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range zero {
		if m.Dist != 0 {
			t.Fatalf("zero-threshold match at %g", m.Dist)
		}
	}
	// Errors.
	if _, err := e.WithinThreshold([]float64{1}, RangeOptions{MaxDist: 1}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, err := e.WithinThreshold(q, RangeOptions{MaxDist: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := e.WithinThreshold(q, RangeOptions{
		MaxDist:     1,
		Constraints: QueryConstraints{MinLength: 999, MaxLength: 999},
	}); err != ErrNoMatch {
		t.Fatal("impossible constraints should yield ErrNoMatch")
	}
}
