package core

import (
	"testing"
)

func TestSimilaritySweepMonotone(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	q := d.Series[1].Values[4:11]
	thresholds := []float64{0.05, 0.2, 0.5, 1.0, 2.0}
	pts, err := e.SimilaritySweep(q, thresholds, QueryConstraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(thresholds) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.MaxDist != thresholds[i] {
			t.Fatalf("thresholds reordered: %+v", pts)
		}
		if i > 0 && pts[i-1].Matches > p.Matches {
			t.Fatal("match count not monotone in threshold")
		}
	}
	// Each point must agree with a direct range query.
	for _, p := range pts[:2] {
		ms, err := e.WithinThreshold(q, RangeOptions{MaxDist: p.MaxDist})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != p.Matches {
			t.Fatalf("sweep %d matches at %g, direct query %d", p.Matches, p.MaxDist, len(ms))
		}
	}
	// The self window guarantees at least one match at any threshold.
	if pts[0].Matches == 0 {
		t.Fatal("zero matches even with the self window indexed")
	}
}

func TestSimilaritySweepUnsortedInputAndErrors(t *testing.T) {
	d, e := newTestWorld(t, 4, 24, 0.1, 4, 8, ModeApprox, -1)
	q := d.Series[0].Values[0:6]
	pts, err := e.SimilaritySweep(q, []float64{1.0, 0.1, 0.5}, QueryConstraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Output is in ascending threshold order regardless of input order.
	if pts[0].MaxDist != 0.1 || pts[2].MaxDist != 1.0 {
		t.Fatalf("sweep not sorted: %+v", pts)
	}
	if _, err := e.SimilaritySweep(q, nil, QueryConstraints{}); err == nil {
		t.Fatal("empty thresholds accepted")
	}
	if _, err := e.SimilaritySweep(q, []float64{-1}, QueryConstraints{}); err == nil {
		t.Fatal("negative thresholds accepted")
	}
}

func TestBestMatchWithStats(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	q := d.Series[2].Values[3:10]
	m, st, err := e.BestMatchWithStats(q, QueryConstraints{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist != 0 {
		t.Fatalf("self query dist = %g", m.Dist)
	}
	if st.Groups == 0 {
		t.Fatal("no groups counted")
	}
	// Pruned and refined are disjoint tallies over the candidate groups
	// (an abandoned representative DTW counts as both a DTW started and a
	// prune, so RepDTW overlaps with GroupsLBPruned).
	if st.GroupsLBPruned+st.GroupsRefined > st.Groups {
		t.Fatalf("impossible stats: %+v", st)
	}
	if st.RepDTW == 0 {
		t.Fatalf("no representative DTW counted: %+v", st)
	}
	if st.GroupsRefined == 0 || st.Members == 0 {
		t.Fatalf("refinement not counted: %+v", st)
	}
	if st.MemberDTW > st.Members {
		t.Fatalf("more member DTW than members: %+v", st)
	}
	// The whole point of the base: the engine refines far fewer groups
	// than exist.
	if st.GroupsRefined > st.Groups/2 {
		t.Logf("note: refined %d of %d groups (loose threshold)", st.GroupsRefined, st.Groups)
	}
	// Errors propagate.
	if _, _, err := e.BestMatchWithStats([]float64{1}, QueryConstraints{}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, _, err := e.BestMatchWithStats(q, QueryConstraints{MinLength: 999, MaxLength: 999}); err == nil {
		t.Fatal("impossible constraints accepted")
	}
}
