package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/grouping"
	"repro/internal/ts"
)

// Pattern is one seasonal-query result: a set of non-overlapping windows of
// a single series that all belong to one ONEX similarity group, i.e. are
// mutually within the similarity threshold. This is the paper's §3.3
// "seasonal similarity" operation and the substance of the Fig 4 view.
type Pattern struct {
	// SeriesIndex identifies the series the pattern recurs in.
	SeriesIndex int
	// Length is the motif length.
	Length int
	// Occurrences are the non-overlapping instances, sorted by start.
	Occurrences []ts.SubSeq
	// Group is the similarity group the occurrences share.
	Group GroupRef
	// Rep is the shared group representative (the motif shape).
	Rep []float64
	// MeanGap is the mean distance in samples between consecutive
	// occurrence starts; for a planted period p this approximates p.
	MeanGap float64
}

// Count returns the number of occurrences.
func (p Pattern) Count() int { return len(p.Occurrences) }

// SeasonalOptions configures a seasonal query.
type SeasonalOptions struct {
	// MinLength/MaxLength bound the motif lengths examined; zero values
	// mean the base's full range.
	MinLength, MaxLength int
	// MinOccurrences is the smallest recurrence count to report (default 2).
	MinOccurrences int
	// MaxPatterns caps the result list (default 16, <=0 means default).
	MaxPatterns int
	// Dedup suppresses patterns that a longer reported pattern already
	// explains: P is dropped when some pattern Q with Q.Length > P.Length
	// covers at least 80% of P's occurrences (each occurrence of P
	// overlapping some occurrence of Q). Multi-length mining otherwise
	// reports every sub-window of a long motif as its own pattern.
	Dedup bool
	// Workers bounds the worker pool the group scan is sharded across
	// (values < 1 select GOMAXPROCS, 1 forces the serial path). The mine is
	// a pure read of the base, so results and statistics are identical at
	// every worker count.
	Workers int
}

// Seasonal finds repeating patterns within the named series by mining the
// ONEX base: any group holding two or more non-overlapping windows of the
// series is a recurring motif, with no additional distance computation
// (the base already encodes the similarity).
//
// Results are ranked by occurrence count (descending), then by motif
// length (descending: longer recurring shapes are more informative), then
// by earliest occurrence.
func (e *Engine) Seasonal(seriesName string, opts SeasonalOptions) ([]Pattern, error) {
	return e.SeasonalContext(context.Background(), seriesName, opts, nil)
}

// SeasonalContext is Seasonal with cancellation and statistics: the context
// is checked once per candidate group and every ctxCheckStride members, so
// a cancelled mine aborts within one pruning round with ctx.Err(). st, when
// non-nil, accumulates the groups and members visited.
func (e *Engine) SeasonalContext(ctx context.Context, seriesName string, opts SeasonalOptions, st *SearchStats) ([]Pattern, error) {
	si := e.ds.IndexOf(seriesName)
	if si < 0 {
		return nil, fmt.Errorf("core: Seasonal: series %q not in dataset %q", seriesName, e.ds.Name)
	}
	return e.SeasonalByIndexContext(ctx, si, opts, st)
}

// SeasonalByIndex is Seasonal addressed by series position.
func (e *Engine) SeasonalByIndex(si int, opts SeasonalOptions) ([]Pattern, error) {
	return e.SeasonalByIndexContext(context.Background(), si, opts, nil)
}

// SeasonalByIndexContext is SeasonalContext addressed by series position.
func (e *Engine) SeasonalByIndexContext(ctx context.Context, si int, opts SeasonalOptions, st *SearchStats) ([]Pattern, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if si < 0 || si >= e.ds.Len() {
		return nil, fmt.Errorf("core: Seasonal: series index %d out of range", si)
	}
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: Seasonal: %w", err)
	}
	defer release()
	minL, maxL := opts.MinLength, opts.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	minOcc := opts.MinOccurrences
	if minOcc < 2 {
		minOcc = 2
	}
	maxPatterns := opts.MaxPatterns
	if maxPatterns <= 0 {
		maxPatterns = 16
	}

	type job struct {
		l, gi int
		g     *grouping.Group
	}
	var jobs []job
	for _, l := range e.base.Lengths() {
		if l < minL || l > maxL {
			continue
		}
		//onex:nopoll O(1) job enumeration per group; the scan that follows polls per group and per 64 members
		for gi, g := range e.base.GroupsOfLength(l) {
			jobs = append(jobs, job{l: l, gi: gi, g: g})
		}
	}
	// mineGroup scans one group for this series' recurrences; st may be a
	// worker-local accumulator.
	mineGroup := func(j job, st *SearchStats) (Pattern, bool, error) {
		if st != nil {
			st.Groups++
			st.Members += len(j.g.Members)
		}
		// Collect this series' members of the group.
		var mine []ts.SubSeq
		for mi, m := range j.g.Members {
			if mi%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return Pattern{}, false, err
				}
			}
			if m.Series == si {
				mine = append(mine, m)
			}
		}
		if len(mine) < minOcc {
			return Pattern{}, false, nil
		}
		occ := selectNonOverlapping(mine)
		if len(occ) < minOcc {
			return Pattern{}, false, nil
		}
		return Pattern{
			SeriesIndex: si,
			Length:      j.l,
			Occurrences: occ,
			Group:       GroupRef{Length: j.l, Index: j.gi},
			Rep:         j.g.Rep,
			MeanGap:     meanGap(occ),
		}, true, nil
	}

	patterns, err := scanGroups(ctx, opts.Workers, jobs, st, mineGroup)
	if err != nil {
		return nil, err
	}
	sort.Slice(patterns, func(i, j int) bool {
		if len(patterns[i].Occurrences) != len(patterns[j].Occurrences) {
			return len(patterns[i].Occurrences) > len(patterns[j].Occurrences)
		}
		if patterns[i].Length != patterns[j].Length {
			return patterns[i].Length > patterns[j].Length
		}
		return patterns[i].Occurrences[0].Start < patterns[j].Occurrences[0].Start
	})
	if opts.Dedup {
		patterns = dedupePatterns(patterns)
	}
	if len(patterns) > maxPatterns {
		patterns = patterns[:maxPatterns]
	}
	return patterns, nil
}

// dedupePatterns drops patterns whose occurrences are mostly covered by a
// longer kept pattern. Quadratic in the pattern count, which MaxPatterns
// keeps small.
func dedupePatterns(patterns []Pattern) []Pattern {
	kept := patterns[:0]
	for _, p := range patterns {
		subsumed := false
		for _, q := range kept {
			if q.Length <= p.Length {
				continue
			}
			covered := 0
			for _, po := range p.Occurrences {
				for _, qo := range q.Occurrences {
					if po.Overlaps(qo) {
						covered++
						break
					}
				}
			}
			if float64(covered) >= 0.8*float64(len(p.Occurrences)) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, p)
		}
	}
	return kept
}

// selectNonOverlapping performs greedy interval scheduling by start order:
// windows all share one length, so earliest-start greedy maximizes the
// count of disjoint occurrences.
func selectNonOverlapping(ms []ts.SubSeq) []ts.SubSeq {
	sorted := make([]ts.SubSeq, len(ms))
	copy(sorted, ms)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := sorted[:0]
	lastEnd := -1
	for _, m := range sorted {
		if m.Start >= lastEnd {
			out = append(out, m)
			lastEnd = m.End()
		}
	}
	return out
}

func meanGap(occ []ts.SubSeq) float64 {
	if len(occ) < 2 {
		return 0
	}
	total := 0
	for i := 1; i < len(occ); i++ {
		total += occ[i].Start - occ[i-1].Start
	}
	return float64(total) / float64(len(occ)-1)
}
