package core

import (
	"context"
	"fmt"
	"sort"
)

// SweepPoint is one step of a threshold sweep: how many indexed
// subsequences fall within MaxDist of the query.
type SweepPoint struct {
	MaxDist float64
	Matches int
}

// SimilaritySweep evaluates WithinThreshold at several thresholds in one
// pass (paper §2: "showing the changes in the similarity between sequences
// for varying parameters"). The curve lets the analyst pick a threshold by
// seeing where the match population jumps. Thresholds are evaluated
// against the largest value, then counted per step, so the cost is one
// range query, not len(thresholds).
func (e *Engine) SimilaritySweep(q []float64, thresholds []float64, c QueryConstraints) ([]SweepPoint, error) {
	return e.SimilaritySweepContext(context.Background(), q, thresholds, c, e.opts, nil)
}

// SimilaritySweepContext is SimilaritySweep with cancellation, per-call
// engine options, and statistics. The underlying range scan checks the
// context once per group and every ctxCheckStride members, so a cancelled
// sweep aborts within one pruning round with ctx.Err(). callOpts overrides
// the engine's Band (the scan is always certified regardless of Mode); st,
// when non-nil, accumulates the range scan's search statistics.
func (e *Engine) SimilaritySweepContext(ctx context.Context, q []float64, thresholds []float64, c QueryConstraints, callOpts Options, st *SearchStats) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("core: SimilaritySweep: no thresholds")
	}
	sorted := make([]float64, len(thresholds))
	copy(sorted, thresholds)
	sort.Float64s(sorted)
	maxT := sorted[len(sorted)-1]
	if maxT < 0 {
		return nil, fmt.Errorf("core: SimilaritySweep: negative thresholds")
	}
	ms, err := e.withinThreshold(ctx, q, RangeOptions{MaxDist: maxT, Constraints: c}, callOpts, st)
	if err != nil {
		return nil, err
	}
	// ms is sorted by score; count matches under each threshold by walking
	// both sorted sequences once.
	out := make([]SweepPoint, len(sorted))
	mi := 0
	for ti, th := range sorted {
		for mi < len(ms) && ms[mi].Score <= th+1e-12 {
			mi++
		}
		out[ti] = SweepPoint{MaxDist: th, Matches: mi}
	}
	return out, nil
}

// SearchStats counts the work one similarity query did; exposed so the
// pruning story (paper §3.3 "early pruning of unpromising candidates") is
// measurable on the ONEX side too.
type SearchStats struct {
	// Groups is the number of candidate groups considered.
	Groups int
	// GroupsLBPruned is how many groups were skipped without a member
	// scan: by the LB cascade, by an early-abandoned representative DTW,
	// or by the certified transfer bound / threshold slack (exact and
	// range). A group later revisited by a fallback recompute is
	// un-counted, so the tally stays disjoint from GroupsRefined.
	GroupsLBPruned int
	// RepDTW is the number of representative DTW evaluations started.
	RepDTW int
	// GroupsRefined is how many groups had their members scanned.
	GroupsRefined int
	// Members is the total membership of the refined groups.
	Members int
	// MemberDTW is the number of member DTW evaluations started (the rest
	// were dropped by LB_Kim / LB_Keogh).
	MemberDTW int
}

// BestMatchWithStats is BestMatch instrumented with search statistics.
// It runs the approximate search regardless of the engine mode (the
// statistics describe the paper's configuration).
func (e *Engine) BestMatchWithStats(q []float64, c QueryConstraints) (Match, SearchStats, error) {
	var st SearchStats
	if len(q) < 2 {
		return Match{}, st, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	lengths := e.candidateLengths(c)
	if len(lengths) == 0 {
		return Match{}, st, ErrNoMatch
	}
	ms, err := e.kbestApprox(context.Background(), q, 1, c, lengths, e.opts, &st)
	if err != nil {
		return Match{}, st, err
	}
	return ms[0], st, nil
}
