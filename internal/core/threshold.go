package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// Recommendation is one data-driven similarity-threshold suggestion
// (paper §3.3: "Threshold recommendations help analysts to select
// appropriate parameter settings in a data-driven fashion").
type Recommendation struct {
	// ST is the suggested per-point similarity threshold in the dataset's
	// units (see grouping.Options.ST: the absolute threshold for length l
	// is ST*l).
	ST float64
	// Percentile is the pairwise-ED percentile ST was drawn from (0-1).
	Percentile float64
	// EstGroups and EstCompaction describe the base a build at this ST
	// would produce at the probe length (measured on a trial clustering).
	EstGroups     int
	EstCompaction float64
	// Label is a human-readable intent ("tight", "balanced", "loose").
	Label string
}

// ThresholdOptions configures RecommendThresholds.
type ThresholdOptions struct {
	// ProbeLength is the subsequence length sampled; 0 picks ~1/4 of the
	// shortest series (clamped to [2, shortest]).
	ProbeLength int
	// SamplePairs bounds the number of subsequence pairs sampled for the
	// distance distribution (default 2000).
	SamplePairs int
	// Seed makes sampling deterministic (0 means a fixed default).
	Seed int64
}

// defaultPercentiles are the distribution points offered to the analyst:
// demographic-scale data wants looser thresholds than growth-rate-scale
// data, and surfacing the spread lets the analyst pick per domain.
var defaultPercentiles = []struct {
	q     float64
	label string
}{
	{0.01, "tight"},
	{0.05, "balanced"},
	{0.15, "loose"},
}

// SampleDistances draws the pairwise subsequence-ED sample that threshold
// recommendation is based on, normalized per point (divided by the probe
// length) and sorted ascending. Exposed so front ends can draw the
// distribution behind the recommended cut points. The probe length
// actually used is returned alongside.
func SampleDistances(d *ts.Dataset, opts ThresholdOptions) ([]float64, int, error) {
	return SampleDistancesContext(context.Background(), d, opts)
}

// SampleDistancesContext is SampleDistances with cancellation: the context
// is checked once per series during window enumeration and every
// ctxCheckStride sampled pairs, so a cancelled sample aborts promptly with
// ctx.Err().
func SampleDistancesContext(ctx context.Context, d *ts.Dataset, opts ThresholdOptions) ([]float64, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, err := d.Pin()
	if err != nil {
		return nil, 0, fmt.Errorf("core: SampleDistances: %w", err)
	}
	defer release()
	if err := d.Validate(); err != nil {
		return nil, 0, fmt.Errorf("core: SampleDistances: %w", err)
	}
	probe := opts.ProbeLength
	shortest := d.MinLen()
	if probe <= 0 {
		probe = shortest / 4
	}
	if probe < 2 {
		probe = 2
	}
	if probe > shortest {
		probe = shortest
	}
	samplePairs := opts.SamplePairs
	if samplePairs <= 0 {
		samplePairs = 2000
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 424242
	}
	rng := rand.New(rand.NewSource(seed))

	// Enumerate all windows of the probe length (references only).
	var windows []ts.SubSeq
	for si, s := range d.Series {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		for st := 0; st+probe <= s.Len(); st++ {
			windows = append(windows, ts.SubSeq{Series: si, Start: st, Length: probe})
		}
	}
	if len(windows) < 2 {
		return nil, 0, fmt.Errorf("core: SampleDistances: not enough windows of length %d", probe)
	}
	dists := make([]float64, 0, samplePairs)
	for i := 0; i < samplePairs; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		a := windows[rng.Intn(len(windows))]
		b := windows[rng.Intn(len(windows))]
		if a == b {
			continue
		}
		dists = append(dists, dist.ED(a.Values(d), b.Values(d))/float64(probe))
	}
	if len(dists) == 0 {
		return nil, 0, fmt.Errorf("core: SampleDistances: sampling produced no distances")
	}
	sort.Float64s(dists)
	return dists, probe, nil
}

// RecommendThresholds samples the dataset's pairwise subsequence-ED
// distribution at a probe length and returns candidate STs at fixed low
// percentiles, each annotated with the group count a trial clustering at
// that ST produces. The "balanced" entry is a sensible default ST.
func RecommendThresholds(d *ts.Dataset, opts ThresholdOptions) ([]Recommendation, error) {
	return RecommendThresholdsContext(context.Background(), d, opts)
}

// RecommendThresholdsContext is RecommendThresholds with cancellation: the
// context is threaded through the distance sampling and re-checked between
// the per-percentile trial clusterings (the dominant cost), so a cancelled
// recommendation aborts between rounds with ctx.Err().
func RecommendThresholdsContext(ctx context.Context, d *ts.Dataset, opts ThresholdOptions) ([]Recommendation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dists, probe, err := SampleDistancesContext(ctx, d, opts)
	if err != nil {
		return nil, fmt.Errorf("core: RecommendThresholds: %w", err)
	}
	return RecommendFromSampleContext(ctx, d, dists, probe)
}

// RecommendFromSampleContext derives the recommendations from an
// already-drawn SampleDistances sample (sorted ascending, normalized per
// point, measured at probe), so callers needing both the distribution and
// the recommendations pay the sampling pass only once.
func RecommendFromSampleContext(ctx context.Context, d *ts.Dataset, dists []float64, probe int) ([]Recommendation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	recs := make([]Recommendation, 0, len(defaultPercentiles))
	for _, p := range defaultPercentiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// SampleDistances already normalizes per point, so quantiles are
		// directly the per-point thresholds the grouping layer expects.
		st := quantileSorted(dists, p.q)
		if st <= 0 {
			// Degenerate distributions (many identical windows): nudge to
			// the smallest positive distance, or a tiny epsilon.
			st = smallestPositive(dists)
		}
		rec := Recommendation{ST: st, Percentile: p.q, Label: p.label}
		// Trial clustering at the probe length only: cheap, and the group
		// count is the statistic the analyst is choosing between.
		if trial, err := grouping.Build(d, grouping.Options{
			ST:        st,
			MinLength: probe,
			MaxLength: probe,
		}); err == nil {
			rec.EstGroups = trial.NumGroups()
			rec.EstCompaction = trial.CompactionRatio()
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func smallestPositive(sorted []float64) float64 {
	for _, v := range sorted {
		if v > 0 {
			return v
		}
	}
	return 1e-9
}
