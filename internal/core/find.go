package core

import (
	"context"
)

// FindOptions is the fully-resolved specification of one Find call. The
// embedded Options (Band, Mode, LengthNorm) override the engine's
// construction-time configuration for this call only; callers resolve
// defaults before invoking Find.
type FindOptions struct {
	Options
	// K requests the top-K matches in best-match mode (values < 1 are
	// treated as 1). In range mode K caps the number of returned matches
	// (0 = unlimited), mirroring RangeOptions.Limit.
	K int
	// Range switches from top-K to within-threshold semantics: return
	// every candidate whose score is at most MaxDist.
	Range bool
	// MaxDist is the inclusive score threshold for range mode.
	MaxDist float64
	// Constraints narrow the candidate set in either mode.
	Constraints QueryConstraints
	// Progress, when non-nil, turns an exact-mode Find into a progressive
	// search: the sink receives a Snapshot after the approximate phase,
	// after every certified refinement wave, and a final one equal to the
	// returned result (see stream.go). It is called synchronously on the
	// searching goroutine — a slow sink slows the walk. Approx-mode and
	// range calls never invoke it.
	Progress ProgressFunc
}

// FindResult bundles one Find call's matches with the work statistics the
// search accumulated.
type FindResult struct {
	Matches []Match
	Stats   SearchStats
}

// Find is the unified, context-aware similarity entry point: one call
// covers best-match, top-K, and range ("within threshold") queries, with
// per-call Band/Mode/LengthNorm overrides. Cancellation is honoured
// between pruning rounds — once per candidate group and every
// ctxCheckStride members inside a group — so long exact-mode scans abort
// promptly with ctx.Err().
func (e *Engine) Find(ctx context.Context, q []float64, fo FindOptions) (FindResult, error) {
	var st SearchStats
	if fo.Range {
		ms, err := e.withinThreshold(ctx, q, RangeOptions{
			MaxDist:     fo.MaxDist,
			Constraints: fo.Constraints,
			Limit:       fo.K,
		}, fo.Options, &st)
		return FindResult{Matches: ms, Stats: st}, err
	}
	k := fo.K
	if k < 1 {
		k = 1
	}
	ms, err := e.search(ctx, q, k, fo.Constraints, fo.Options, &st, fo.Progress)
	return FindResult{Matches: ms, Stats: st}, err
}

// DTWs returns the total number of DTW dynamic programs started
// (representatives plus members).
func (s SearchStats) DTWs() int { return s.RepDTW + s.MemberDTW }
