package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// QueryConstraints narrows a similarity search.
type QueryConstraints struct {
	// MinLength/MaxLength bound candidate subsequence lengths; zero values
	// mean the full base range.
	MinLength, MaxLength int
	// ExcludeSeries skips candidates from the named series (used by the
	// demo to avoid returning the query's own source series). Nil means no
	// exclusion. Values are series indices.
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window (used by
	// self-queries so the best match is not the query itself). Zero value
	// excludes nothing.
	ExcludeOverlap ts.SubSeq
}

func (c QueryConstraints) excludes(ref ts.SubSeq) bool {
	if c.ExcludeSeries != nil && c.ExcludeSeries[ref.Series] {
		return true
	}
	if c.ExcludeOverlap.Length > 0 && ref.Overlaps(c.ExcludeOverlap) {
		return true
	}
	return false
}

// BestMatch returns the most similar indexed subsequence to q under DTW,
// per the engine's mode. See BestMatchConstrained.
func (e *Engine) BestMatch(q []float64) (Match, error) {
	return e.BestMatchConstrained(q, QueryConstraints{})
}

// BestMatchConstrained is BestMatch with search constraints.
func (e *Engine) BestMatchConstrained(q []float64, c QueryConstraints) (Match, error) {
	ms, err := e.KBestMatchesConstrained(q, 1, c)
	if err != nil {
		return Match{}, err
	}
	return ms[0], nil
}

// KBestMatches returns the k most similar indexed subsequences, best first.
func (e *Engine) KBestMatches(q []float64, k int) ([]Match, error) {
	return e.KBestMatchesConstrained(q, k, QueryConstraints{})
}

// KBestMatchesConstrained runs the engine's configured search mode.
//
// ModeApprox (paper §3.2): rank groups by DTW(query, representative), then
// return the best members of the top groups. ModeExact: prune groups with
// the certified transfer bound and refine all survivors; the result is the
// true DTW top-k over every indexed candidate.
func (e *Engine) KBestMatchesConstrained(q []float64, k int, c QueryConstraints) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	lengths := e.candidateLengths(c)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	switch e.opts.Mode {
	case ModeExact:
		return e.kbestExact(q, k, c, lengths)
	default:
		return e.kbestApprox(q, k, c, lengths)
	}
}

func (e *Engine) candidateLengths(c QueryConstraints) []int {
	minL, maxL := c.MinLength, c.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	var out []int
	for _, l := range e.base.Lengths() {
		if l >= minL && l <= maxL {
			out = append(out, l)
		}
	}
	return out
}

// norm returns the score divisor for candidates of length l: 1 for raw
// ranking, max(len(q), l) for length-normalized ranking.
func (e *Engine) norm(qlen, l int) float64 {
	if !e.opts.LengthNorm {
		return 1
	}
	if qlen > l {
		return float64(qlen)
	}
	return float64(l)
}

// repCandidate is a group scored by its representative's DTW distance.
type repCandidate struct {
	ref      GroupRef
	g        *grouping.Group
	repDist  float64 // raw DTW(q, rep); +Inf when pruned
	repScore float64 // repDist / norm
	norm     float64
}

// scoreRepresentatives computes DTW(query, representative) for every group
// of the candidate lengths, with an LB_Kim + LB_Keogh + early-abandon
// cascade against the running k-th best representative score. Groups whose
// representative provably cannot enter the top-k are returned with
// repDist = +Inf. st, when non-nil, accumulates search statistics.
func (e *Engine) scoreRepresentatives(q []float64, k int, lengths []int, st *SearchStats) []repCandidate {
	var cands []repCandidate
	// kth tracks the k-th best representative score seen so far; the raw
	// abandon bound per length is score bound * norm.
	kth := newKthTracker(k)
	for _, l := range lengths {
		groups := e.base.GroupsOfLength(l)
		if len(groups) == 0 {
			continue
		}
		norm := e.norm(len(q), l)
		// One query envelope per candidate length: upper[j]/lower[j] bound
		// q over the band window around rep position j, giving
		// LBKeogh(rep, qU, qL) <= DTW(q, rep).
		qU, qL := dist.Envelope(q, l, e.opts.Band)
		for gi, g := range groups {
			if st != nil {
				st.Groups++
			}
			ub := kth.bound() * norm // raw-distance bound for this length
			var repDist float64
			if dist.LBKim(q, g.Rep) > ub {
				repDist = math.Inf(1)
				if st != nil {
					st.GroupsLBPruned++
				}
			} else if dist.LBKeogh(g.Rep, qU, qL, ub) > ub {
				repDist = math.Inf(1)
				if st != nil {
					st.GroupsLBPruned++
				}
			} else {
				if st != nil {
					st.RepDTW++
				}
				repDist = dist.DTWEarlyAbandon(q, g.Rep, e.opts.Band, ub)
			}
			score := repDist / norm
			if !math.IsInf(repDist, 1) {
				kth.offer(score)
			}
			cands = append(cands, repCandidate{
				ref:      GroupRef{Length: l, Index: gi},
				g:        g,
				repDist:  repDist,
				repScore: score,
				norm:     norm,
			})
		}
	}
	return cands
}

// kbestApprox implements the paper's search: pick the top-k groups by
// representative score, then take the best members inside them.
func (e *Engine) kbestApprox(q []float64, k int, c QueryConstraints, lengths []int) ([]Match, error) {
	return e.kbestApproxStats(q, k, c, lengths, nil)
}

// kbestApproxStats is kbestApprox with optional statistics collection.
func (e *Engine) kbestApproxStats(q []float64, k int, c QueryConstraints, lengths []int, st *SearchStats) ([]Match, error) {
	cands := e.scoreRepresentatives(q, k, lengths, st)
	sort.Slice(cands, func(i, j int) bool { return cands[i].repScore < cands[j].repScore })

	// Refine within the most promising groups. To fill k results we may
	// need more than k groups when constraints exclude members, so walk
	// groups in rep order until k matches are collected (or candidates are
	// exhausted).
	top := newTopK(k)
	for _, cand := range cands {
		if math.IsInf(cand.repDist, 1) {
			break // remaining groups were pruned against the k-th best rep
		}
		if top.full() && cand.repScore > top.worst().Score {
			// A group whose representative already scores worse than every
			// collected member cannot improve an approximate top-k
			// (heuristic: members can score below their representative).
			break
		}
		e.refineGroup(q, cand, c, top, st)
	}
	// Constraints may have excluded every member of the promising groups;
	// fall back to the groups whose representatives were LB-pruned during
	// scoring so constrained queries still fill k results when possible.
	if top.len() < k {
		for i := range cands {
			if !math.IsInf(cands[i].repDist, 1) {
				continue
			}
			cands[i].repDist = dist.DTWBanded(q, cands[i].g.Rep, e.opts.Band)
			cands[i].repScore = cands[i].repDist / cands[i].norm
			e.refineGroup(q, cands[i], c, top, st)
		}
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted()), nil
}

// kbestExact prunes groups with the certified transfer bound and refines
// every survivor; the result is the true top-k.
func (e *Engine) kbestExact(q []float64, k int, c QueryConstraints, lengths []int) ([]Match, error) {
	cands := e.scoreRepresentatives(q, math.MaxInt32, lengths, nil) // no rep pruning in exact mode
	sort.Slice(cands, func(i, j int) bool { return cands[i].repScore < cands[j].repScore })

	top := newTopK(k)
	for _, cand := range cands {
		if math.IsInf(cand.repDist, 1) {
			// scoreRepresentatives with k=MaxInt32 never abandons, so this
			// only happens for genuinely infinite distances (impossible);
			// treat defensively as unpruned.
			cand.repDist = dist.DTWBanded(q, cand.g.Rep, e.opts.Band)
			cand.repScore = cand.repDist / cand.norm
		}
		if top.full() {
			// Certified lower bound for every member s of this group:
			// DTW(q,s) >= DTW(q,rep) - mu*ED(rep,s) >= repDist - mu*ST_l/2,
			// where mu is bounded by the band geometry of the (q,s) grid
			// and ST_l is the absolute threshold at this group's length.
			w := dist.EffectiveBand(len(q), cand.g.Length, e.opts.Band)
			mu := float64(2*w + 1)
			lower := (cand.repDist - mu*e.base.HalfST(cand.g.Length)) / cand.norm
			if lower > top.worst().Score {
				continue // provably cannot improve the top-k
			}
		}
		e.refineGroup(q, cand, c, top, nil)
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted()), nil
}

// refineGroup scans a group's members with an LB cascade and early-abandon
// DTW, offering improvements to the top-k accumulator.
func (e *Engine) refineGroup(q []float64, cand repCandidate, c QueryConstraints, top *topK, st *SearchStats) {
	l := cand.g.Length
	qU, qL := dist.Envelope(q, l, e.opts.Band)
	if st != nil {
		st.GroupsRefined++
		st.Members += len(cand.g.Members)
	}
	for _, m := range cand.g.Members {
		if c.excludes(m) {
			continue
		}
		mv := m.Values(e.ds)
		ub := math.Inf(1)
		if top.full() {
			ub = top.worst().Score * cand.norm // raw-distance bound
		}
		if dist.LBKim(q, mv) > ub {
			continue
		}
		if dist.LBKeogh(mv, qU, qL, ub) > ub {
			continue
		}
		if st != nil {
			st.MemberDTW++
		}
		d := dist.DTWEarlyAbandon(q, mv, e.opts.Band, ub)
		if math.IsInf(d, 1) {
			continue
		}
		top.offer(Match{
			Ref:     m,
			Values:  mv,
			Dist:    d,
			Score:   d / cand.norm,
			RepDist: cand.repDist,
			Group:   cand.ref,
		})
	}
}

// finishMatches fills in warping paths (presentation data) for the final
// result set only, so inner loops never pay the full-matrix cost.
func (e *Engine) finishMatches(q []float64, ms []Match) []Match {
	for i := range ms {
		_, path := dist.DTWPath(q, ms[i].Values, e.opts.Band)
		ms[i].Path = path
	}
	return ms
}

// topK accumulates the k best matches seen, deduplicating by Ref.
type topK struct {
	k  int
	ms []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) len() int   { return len(t.ms) }
func (t *topK) full() bool { return len(t.ms) >= t.k }
func (t *topK) worst() Match {
	return t.ms[len(t.ms)-1]
}

func (t *topK) offer(m Match) {
	for i := range t.ms {
		if t.ms[i].Ref == m.Ref {
			if m.Score < t.ms[i].Score {
				t.ms[i] = m
				t.restore()
			}
			return
		}
	}
	if len(t.ms) < t.k {
		t.ms = append(t.ms, m)
		t.restore()
		return
	}
	if m.Score < t.ms[len(t.ms)-1].Score {
		t.ms[len(t.ms)-1] = m
		t.restore()
	}
}

// restore re-sorts the small accumulator (k is tiny; insertion sort).
func (t *topK) restore() {
	for i := len(t.ms) - 1; i > 0; i-- {
		if t.ms[i].Score < t.ms[i-1].Score {
			t.ms[i], t.ms[i-1] = t.ms[i-1], t.ms[i]
		} else {
			break
		}
	}
}

func (t *topK) sorted() []Match {
	out := make([]Match, len(t.ms))
	copy(out, t.ms)
	return out
}

// kthTracker tracks the k-th smallest value offered, as the abandon bound
// for representative scoring.
type kthTracker struct {
	k    int
	vals []float64
}

func newKthTracker(k int) *kthTracker {
	if k < 1 {
		k = 1
	}
	if k > 1024 {
		k = 1024 // exact mode passes MaxInt32 meaning "never prune"
	}
	return &kthTracker{k: k}
}

func (kt *kthTracker) offer(v float64) {
	if len(kt.vals) < kt.k {
		kt.vals = append(kt.vals, v)
		sort.Float64s(kt.vals)
		return
	}
	if v < kt.vals[kt.k-1] {
		kt.vals[kt.k-1] = v
		sort.Float64s(kt.vals)
	}
}

func (kt *kthTracker) bound() float64 {
	if len(kt.vals) < kt.k {
		return math.Inf(1)
	}
	return kt.vals[kt.k-1]
}
