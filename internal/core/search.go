package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// ctxCheckStride bounds how many group members are scanned between two
// context-cancellation checks inside the refinement loops.
const ctxCheckStride = 64

// QueryConstraints narrows a similarity search.
type QueryConstraints struct {
	// MinLength/MaxLength bound candidate subsequence lengths; zero values
	// mean the full base range.
	MinLength, MaxLength int
	// ExcludeSeries skips candidates from the named series (used by the
	// demo to avoid returning the query's own source series). Nil means no
	// exclusion. Values are series indices.
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window (used by
	// self-queries so the best match is not the query itself). Zero value
	// excludes nothing.
	ExcludeOverlap ts.SubSeq
}

func (c QueryConstraints) excludes(ref ts.SubSeq) bool {
	if c.ExcludeSeries != nil && c.ExcludeSeries[ref.Series] {
		return true
	}
	if c.ExcludeOverlap.Length > 0 && ref.Overlaps(c.ExcludeOverlap) {
		return true
	}
	return false
}

// BestMatch returns the most similar indexed subsequence to q under DTW,
// per the engine's mode. See BestMatchConstrained.
func (e *Engine) BestMatch(q []float64) (Match, error) {
	return e.BestMatchConstrained(q, QueryConstraints{})
}

// BestMatchConstrained is BestMatch with search constraints.
func (e *Engine) BestMatchConstrained(q []float64, c QueryConstraints) (Match, error) {
	ms, err := e.KBestMatchesConstrained(q, 1, c)
	if err != nil {
		return Match{}, err
	}
	return ms[0], nil
}

// KBestMatches returns the k most similar indexed subsequences, best first.
func (e *Engine) KBestMatches(q []float64, k int) ([]Match, error) {
	return e.KBestMatchesConstrained(q, k, QueryConstraints{})
}

// KBestMatchesConstrained runs the engine's configured search mode.
//
// ModeApprox (paper §3.2): rank groups by DTW(query, representative), then
// return the best members of the top groups. ModeExact: prune groups with
// the certified transfer bound and refine all survivors; the result is the
// true DTW top-k over every indexed candidate.
func (e *Engine) KBestMatchesConstrained(q []float64, k int, c QueryConstraints) ([]Match, error) {
	return e.search(context.Background(), q, k, c, e.opts, nil)
}

// search is the shared top-k entry point: it validates the query, resolves
// candidate lengths, and dispatches on the per-call mode. It honours ctx
// cancellation between pruning rounds (per group and per member batch) and
// returns ctx.Err() when the caller gave up.
func (e *Engine) search(ctx context.Context, q []float64, k int, c QueryConstraints, opts Options, st *SearchStats) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	lengths := e.candidateLengths(c)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	switch opts.Mode {
	case ModeExact:
		return e.kbestExact(ctx, q, k, c, lengths, opts, st)
	default:
		return e.kbestApprox(ctx, q, k, c, lengths, opts, st)
	}
}

func (e *Engine) candidateLengths(c QueryConstraints) []int {
	minL, maxL := c.MinLength, c.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	var out []int
	for _, l := range e.base.Lengths() {
		if l >= minL && l <= maxL {
			out = append(out, l)
		}
	}
	return out
}

// norm returns the score divisor for candidates of length l: 1 for raw
// ranking, max(qlen, l) for length-normalized ranking.
func (o Options) norm(qlen, l int) float64 {
	if !o.LengthNorm {
		return 1
	}
	if qlen > l {
		return float64(qlen)
	}
	return float64(l)
}

// repCandidate is a group scored by its representative's DTW distance.
type repCandidate struct {
	ref      GroupRef
	g        *grouping.Group
	repDist  float64 // raw DTW(q, rep); +Inf when pruned
	repScore float64 // repDist / norm
	norm     float64
}

// scoreRepresentatives computes DTW(query, representative) for every group
// of the candidate lengths, with an LB_Kim + LB_Keogh + early-abandon
// cascade against the running k-th best representative score. Groups whose
// representative provably cannot enter the top-k are returned with
// repDist = +Inf. st, when non-nil, accumulates search statistics. The scan
// is sharded across Options.Workers goroutines when the group list is large
// (see parallel.go); with one worker the context is checked once per group,
// so a cancelled scan aborts before the next representative is scored.
func (e *Engine) scoreRepresentatives(ctx context.Context, q []float64, k int, lengths []int, opts Options, st *SearchStats) ([]repCandidate, error) {
	jobs := e.flattenGroups(q, lengths, opts)
	workers := resolveWorkers(opts.Workers, len(jobs))
	if workers > 1 && len(jobs) >= minParallelGroups {
		return e.scoreRepsParallel(ctx, q, k, jobs, opts, st, workers)
	}
	cands := make([]repCandidate, 0, len(jobs))
	// kth tracks the k-th best representative score seen so far; the raw
	// abandon bound per job is score bound * norm.
	kth := newKthTracker(k)
	for _, job := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		repDist := scoreJob(q, job, kth.bound()*job.norm, opts.Band, st)
		score := repDist / job.norm
		if !math.IsInf(repDist, 1) {
			kth.offer(score)
		}
		cands = append(cands, repCandidate{ref: job.ref, g: job.g, repDist: repDist, repScore: score, norm: job.norm})
	}
	return cands, nil
}

// sortCandidates orders group candidates by representative score, pruned
// (+Inf) candidates last, breaking ties by group identity so the walk order
// — and with it the refined set — is deterministic at every worker count.
func sortCandidates(cands []repCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := &cands[i], &cands[j]
		if a.repScore != b.repScore {
			return a.repScore < b.repScore
		}
		if a.ref.Length != b.ref.Length {
			return a.ref.Length < b.ref.Length
		}
		return a.ref.Index < b.ref.Index
	})
}

// kbestApprox implements the paper's search: pick the top-k groups by
// representative score, then take the best members inside them.
func (e *Engine) kbestApprox(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) ([]Match, error) {
	cands, err := e.scoreRepresentatives(ctx, q, k, lengths, opts, st)
	if err != nil {
		return nil, err
	}
	sortCandidates(cands)

	// Refine within the most promising groups. To fill k results we may
	// need more than k groups when constraints exclude members, so walk
	// groups in rep order until k matches are collected (or candidates are
	// exhausted).
	top := newTopK(k)
	resolved := false
	for i := 0; i < len(cands); i++ {
		if !resolved && (i >= k || math.IsInf(cands[i].repDist, 1)) {
			// End of the deterministic prefix: the k best representatives are
			// exactly scored in every run, but beyond them which groups the
			// scoring pass LB-pruned depends on scan order (and, with
			// Workers > 1, on scheduling). Resolve the tail — recompute every
			// pruned representative and re-sort by true score — so the walk
			// continues in true representative order regardless, and a
			// constrained query that under-fills stops at the same cutoff as
			// the main loop instead of degenerating into a near-exhaustive
			// member scan of every pruned group.
			if err := e.resolveCandidates(ctx, q, cands[i:], opts, st); err != nil {
				return nil, err
			}
			sortCandidates(cands[i:])
			resolved = true
		}
		cand := cands[i]
		if top.full() && cand.repScore > top.worst().Score {
			// A group whose representative already scores worse than every
			// collected member cannot improve an approximate top-k
			// (heuristic: members can score below their representative).
			break
		}
		if err := e.refine(ctx, q, cand, c, top, opts, st); err != nil {
			return nil, err
		}
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted(), opts), nil
}

// kbestExact prunes groups with the certified transfer bound and refines
// every survivor; the result is the true top-k.
func (e *Engine) kbestExact(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) ([]Match, error) {
	cands, err := e.scoreRepresentatives(ctx, q, math.MaxInt32, lengths, opts, st) // no rep pruning in exact mode
	if err != nil {
		return nil, err
	}
	// The kth tracker saturates at 1024, so on large bases a tail of
	// representatives is LB-abandoned even in exact mode; recompute them
	// all (in parallel when allowed) so the certified bound below sees true
	// distances, and walk groups in true representative-score order.
	if err := e.resolveCandidates(ctx, q, cands, opts, st); err != nil {
		return nil, err
	}
	sortCandidates(cands)

	// The walk proceeds in fixed-size waves: between waves the certified
	// transfer bound is re-evaluated against the tightened top-k (exactly
	// like the old per-group check, at wave granularity), and within a wave
	// every surviving group is refined — across the worker pool when one is
	// configured. The wave size is a constant, so the set of refined groups
	// is identical at every worker count; only the member-level DTW/abandon
	// split depends on scheduling.
	//
	// certLower is the certified lower bound for every member s of a group:
	// DTW(q,s) >= DTW(q,rep) - mu*ED(rep,s) >= repDist - mu*ST_l/2, where mu
	// is bounded by the band geometry of the (q,s) grid and ST_l is the
	// absolute threshold at the group's length.
	certLower := func(cand repCandidate) float64 {
		w := dist.EffectiveBand(len(q), cand.g.Length, opts.Band)
		mu := float64(2*w + 1)
		return (cand.repDist - mu*e.base.HalfST(cand.g.Length)) / cand.norm
	}
	top := newTopK(k)
	workers := resolveWorkers(opts.Workers, exactWave)
	wave := make([]repCandidate, 0, exactWave)
	for idx := 0; idx < len(cands); {
		// Collect the next wave of groups the certified bound cannot skip.
		wave = wave[:0]
		for idx < len(cands) && len(wave) < exactWave {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cand := cands[idx]
			idx++
			if top.full() && certLower(cand) > top.worst().Score {
				if st != nil {
					st.GroupsLBPruned++
				}
				continue // provably cannot improve the top-k
			}
			wave = append(wave, cand)
		}
		if len(wave) == 0 {
			continue
		}
		if workers > 1 && len(wave) > 1 {
			if err := e.refineWaveParallel(ctx, q, wave, c, top, opts, st, workers); err != nil {
				return nil, err
			}
		} else {
			for _, cand := range wave {
				if err := e.refine(ctx, q, cand, c, top, opts, st); err != nil {
					return nil, err
				}
			}
		}
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted(), opts), nil
}

// matchSink abstracts the accumulator a member scan offers into: the plain
// topK on serial walks, the mutex-guarded sharedTopK when several workers
// feed one accumulator (parallel.go). boundScore is the current k-th best
// score (+Inf until full), the member-level pruning bound.
type matchSink interface {
	offer(Match)
	boundScore() float64
}

func (t *topK) boundScore() float64 {
	if t.full() {
		return t.worst().Score
	}
	return math.Inf(1)
}

// refineGroup scans a group's members with an LB cascade and early-abandon
// DTW, offering improvements to the top-k accumulator. The context is
// re-checked every ctxCheckStride members so large groups abandon promptly.
func (e *Engine) refineGroup(ctx context.Context, q []float64, cand repCandidate, c QueryConstraints, top matchSink, opts Options, st *SearchStats) error {
	l := cand.g.Length
	qU, qL := dist.Envelope(q, l, opts.Band)
	if st != nil {
		st.GroupsRefined++
		st.Members += len(cand.g.Members)
	}
	for mi, m := range cand.g.Members {
		if mi%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if c.excludes(m) {
			continue
		}
		mv := m.Values(e.ds)
		ub := top.boundScore() * cand.norm // raw-distance bound
		if dist.LBKim(q, mv) > ub {
			continue
		}
		if dist.LBKeogh(mv, qU, qL, ub) > ub {
			continue
		}
		if st != nil {
			st.MemberDTW++
		}
		d := dist.DTWEarlyAbandon(q, mv, opts.Band, ub)
		if math.IsInf(d, 1) {
			continue
		}
		top.offer(Match{
			Ref:     m,
			Values:  mv,
			Dist:    d,
			Score:   d / cand.norm,
			RepDist: cand.repDist,
			Group:   cand.ref,
		})
	}
	return nil
}

// finishMatches fills in warping paths (presentation data) for the final
// result set only, so inner loops never pay the full-matrix cost.
func (e *Engine) finishMatches(q []float64, ms []Match, opts Options) []Match {
	for i := range ms {
		_, path := dist.DTWPath(q, ms[i].Values, opts.Band)
		ms[i].Path = path
	}
	return ms
}

// matchBefore is the total result order: ascending Score, ties broken by
// subsequence identity. A total order keeps accumulators (and final result
// lists) deterministic regardless of offer order, which parallel member
// refinement depends on.
func matchBefore(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if a.Ref.Series != b.Ref.Series {
		return a.Ref.Series < b.Ref.Series
	}
	if a.Ref.Start != b.Ref.Start {
		return a.Ref.Start < b.Ref.Start
	}
	return a.Ref.Length < b.Ref.Length
}

// topK accumulates the k best matches seen, deduplicating by Ref.
type topK struct {
	k  int
	ms []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) len() int   { return len(t.ms) }
func (t *topK) full() bool { return len(t.ms) >= t.k }
func (t *topK) worst() Match {
	return t.ms[len(t.ms)-1]
}

func (t *topK) offer(m Match) {
	for i := range t.ms {
		if t.ms[i].Ref == m.Ref {
			if m.Score < t.ms[i].Score {
				t.ms[i] = m
				t.restore()
			}
			return
		}
	}
	if len(t.ms) < t.k {
		t.ms = append(t.ms, m)
		t.restore()
		return
	}
	if matchBefore(m, t.ms[len(t.ms)-1]) {
		t.ms[len(t.ms)-1] = m
		t.restore()
	}
}

// restore re-sorts the small accumulator (k is tiny; insertion sort).
func (t *topK) restore() {
	for i := len(t.ms) - 1; i > 0; i-- {
		if matchBefore(t.ms[i], t.ms[i-1]) {
			t.ms[i], t.ms[i-1] = t.ms[i-1], t.ms[i]
		} else {
			break
		}
	}
}

func (t *topK) sorted() []Match {
	out := make([]Match, len(t.ms))
	copy(out, t.ms)
	return out
}

// kthTracker tracks the k-th smallest value offered, as the abandon bound
// for representative scoring.
type kthTracker struct {
	k    int
	vals []float64
}

func newKthTracker(k int) *kthTracker {
	if k < 1 {
		k = 1
	}
	if k > 1024 {
		k = 1024 // exact mode passes MaxInt32 meaning "never prune"
	}
	return &kthTracker{k: k}
}

// offer inserts v with a single insertion shift (the slice is always
// sorted, so a full re-sort per improvement would waste O(k log k) on
// every group).
func (kt *kthTracker) offer(v float64) {
	if len(kt.vals) < kt.k {
		kt.vals = append(kt.vals, v)
	} else if v < kt.vals[kt.k-1] {
		kt.vals[kt.k-1] = v
	} else {
		return
	}
	for i := len(kt.vals) - 1; i > 0 && kt.vals[i] < kt.vals[i-1]; i-- {
		kt.vals[i], kt.vals[i-1] = kt.vals[i-1], kt.vals[i]
	}
}

func (kt *kthTracker) bound() float64 {
	if len(kt.vals) < kt.k {
		return math.Inf(1)
	}
	return kt.vals[kt.k-1]
}
