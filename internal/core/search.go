package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// ctxCheckStride bounds how many group members are scanned between two
// context-cancellation checks inside the refinement loops.
const ctxCheckStride = 64

// QueryConstraints narrows a similarity search.
type QueryConstraints struct {
	// MinLength/MaxLength bound candidate subsequence lengths; zero values
	// mean the full base range.
	MinLength, MaxLength int
	// ExcludeSeries skips candidates from the named series (used by the
	// demo to avoid returning the query's own source series). Nil means no
	// exclusion. Values are series indices.
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window (used by
	// self-queries so the best match is not the query itself). Zero value
	// excludes nothing.
	ExcludeOverlap ts.SubSeq
}

func (c QueryConstraints) excludes(ref ts.SubSeq) bool {
	if c.ExcludeSeries != nil && c.ExcludeSeries[ref.Series] {
		return true
	}
	if c.ExcludeOverlap.Length > 0 && ref.Overlaps(c.ExcludeOverlap) {
		return true
	}
	return false
}

// BestMatch returns the most similar indexed subsequence to q under DTW,
// per the engine's mode. See BestMatchConstrained.
func (e *Engine) BestMatch(q []float64) (Match, error) {
	return e.BestMatchConstrained(q, QueryConstraints{})
}

// BestMatchConstrained is BestMatch with search constraints.
func (e *Engine) BestMatchConstrained(q []float64, c QueryConstraints) (Match, error) {
	ms, err := e.KBestMatchesConstrained(q, 1, c)
	if err != nil {
		return Match{}, err
	}
	return ms[0], nil
}

// KBestMatches returns the k most similar indexed subsequences, best first.
func (e *Engine) KBestMatches(q []float64, k int) ([]Match, error) {
	return e.KBestMatchesConstrained(q, k, QueryConstraints{})
}

// KBestMatchesConstrained runs the engine's configured search mode.
//
// ModeApprox (paper §3.2): rank groups by DTW(query, representative), then
// return the best members of the top groups. ModeExact: prune groups with
// the certified transfer bound and refine all survivors; the result is the
// true DTW top-k over every indexed candidate.
func (e *Engine) KBestMatchesConstrained(q []float64, k int, c QueryConstraints) ([]Match, error) {
	return e.search(context.Background(), q, k, c, e.opts, nil, nil)
}

// search is the shared top-k entry point: it validates the query, resolves
// candidate lengths, and dispatches on the per-call mode. It honours ctx
// cancellation between pruning rounds (per group and per member batch) and
// returns ctx.Err() when the caller gave up. progress, when non-nil,
// receives pipeline snapshots in exact mode (see stream.go); approx-mode
// calls never invoke it — the approximate answer is the whole result.
func (e *Engine) search(ctx context.Context, q []float64, k int, c QueryConstraints, opts Options, st *SearchStats, progress ProgressFunc) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	// Pin mmap-backed values for the whole walk (no-op for heap datasets):
	// the backing mapping cannot be released while the search dereferences
	// member windows.
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: search: %w", err)
	}
	defer release()
	lengths := e.candidateLengths(c)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	switch opts.Mode {
	case ModeExact:
		return e.kbestExact(ctx, q, k, c, lengths, opts, st, progress)
	default:
		return e.kbestApprox(ctx, q, k, c, lengths, opts, st)
	}
}

func (e *Engine) candidateLengths(c QueryConstraints) []int {
	minL, maxL := c.MinLength, c.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	var out []int
	for _, l := range e.base.Lengths() {
		if l >= minL && l <= maxL {
			out = append(out, l)
		}
	}
	return out
}

// norm returns the score divisor for candidates of length l: 1 for raw
// ranking, max(qlen, l) for length-normalized ranking.
func (o Options) norm(qlen, l int) float64 {
	if !o.LengthNorm {
		return 1
	}
	if qlen > l {
		return float64(qlen)
	}
	return float64(l)
}

// repCandidate is a group scored by its representative's DTW distance.
type repCandidate struct {
	ref      GroupRef
	g        *grouping.Group
	repDist  float64 // raw DTW(q, rep); +Inf when pruned
	repScore float64 // repDist / norm
	norm     float64
}

// scoreRepresentatives computes DTW(query, representative) for every group
// of the candidate lengths, with an LB_Kim + LB_Keogh + early-abandon
// cascade against the running k-th best representative score. Groups whose
// representative provably cannot enter the top-k are returned with
// repDist = +Inf. st, when non-nil, accumulates search statistics. The scan
// is sharded across Options.Workers goroutines when the group list is large
// (see parallel.go); with one worker the context is checked once per group,
// so a cancelled scan aborts before the next representative is scored.
func (e *Engine) scoreRepresentatives(ctx context.Context, q []float64, k int, lengths []int, opts Options, st *SearchStats) ([]repCandidate, error) {
	jobs := e.flattenGroups(q, lengths, opts)
	workers := resolveWorkers(opts.Workers, len(jobs))
	if workers > 1 && len(jobs) >= minParallelGroups {
		return e.scoreRepsParallel(ctx, q, k, jobs, opts, st, workers)
	}
	cands := make([]repCandidate, 0, len(jobs))
	// kth tracks the k-th best representative score seen so far; the raw
	// abandon bound per job is score bound * norm.
	kth := newKthTracker(k)
	for _, job := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		repDist := scoreJob(q, job, kth.bound()*job.norm, opts.Band, st)
		score := repDist / job.norm
		if !math.IsInf(repDist, 1) {
			kth.offer(score)
		}
		cands = append(cands, repCandidate{ref: job.ref, g: job.g, repDist: repDist, repScore: score, norm: job.norm})
	}
	return cands, nil
}

// sortCandidates orders group candidates by representative score, pruned
// (+Inf) candidates last, breaking ties by group identity so the walk order
// — and with it the refined set — is deterministic at every worker count.
func sortCandidates(cands []repCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := &cands[i], &cands[j]
		if a.repScore != b.repScore {
			return a.repScore < b.repScore
		}
		if a.ref.Length != b.ref.Length {
			return a.ref.Length < b.ref.Length
		}
		return a.ref.Index < b.ref.Index
	})
}

// kbestApprox implements the paper's search: pick the top-k groups by
// representative score, then take the best members inside them. It is the
// approximate phase of the progressive pipeline (stream.go), stopped after
// its first emission boundary.
func (e *Engine) kbestApprox(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) ([]Match, error) {
	w, err := e.startWalk(ctx, q, k, c, lengths, opts, st)
	if err != nil {
		return nil, err
	}
	if w.top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, w.top.sorted(), opts), nil
}

// kbestExact drives the progressive pipeline to its certified end: the
// approximate phase seeds the accumulator, then the remaining groups are
// refined in fixed-size waves under the certified transfer bound
// (stream.go finishExact); the result is the true top-k. progress, when
// non-nil, receives a snapshot after the approximate phase, after every
// wave, and a final one equal to the returned matches.
func (e *Engine) kbestExact(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats, progress ProgressFunc) ([]Match, error) {
	w, err := e.startWalk(ctx, q, k, c, lengths, opts, st)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress(w.snapshot(false))
	}
	if err := w.finishExact(ctx, progress); err != nil {
		return nil, err
	}
	if w.top.len() == 0 {
		return nil, ErrNoMatch
	}
	final := w.snapshot(true)
	if progress != nil {
		progress(final)
	}
	return final.Matches, nil
}

// matchSink abstracts the accumulator a member scan offers into: the plain
// topK on serial walks, the mutex-guarded sharedTopK when several workers
// feed one accumulator (parallel.go). boundScore is the current k-th best
// score (+Inf until full), the member-level pruning bound.
type matchSink interface {
	offer(Match)
	boundScore() float64
}

func (t *topK) boundScore() float64 {
	if t.full() {
		return t.worst().Score
	}
	return math.Inf(1)
}

// refineGroup scans a group's members with an LB cascade and early-abandon
// DTW, offering improvements to the top-k accumulator. The context is
// re-checked every ctxCheckStride members so large groups abandon promptly.
func (e *Engine) refineGroup(ctx context.Context, q []float64, cand repCandidate, c QueryConstraints, top matchSink, opts Options, st *SearchStats) error {
	l := cand.g.Length
	qU, qL := dist.Envelope(q, l, opts.Band)
	if st != nil {
		st.GroupsRefined++
		st.Members += len(cand.g.Members)
	}
	for mi, m := range cand.g.Members {
		if mi%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if c.excludes(m) {
			continue
		}
		mv := m.Values(e.ds)
		ub := top.boundScore() * cand.norm // raw-distance bound
		if dist.LBKim(q, mv) > ub {
			continue
		}
		if dist.LBKeogh(mv, qU, qL, ub) > ub {
			continue
		}
		if st != nil {
			st.MemberDTW++
		}
		d := dist.DTWEarlyAbandon(q, mv, opts.Band, ub)
		if math.IsInf(d, 1) {
			continue
		}
		top.offer(Match{
			Ref:     m,
			Values:  mv,
			Dist:    d,
			Score:   d / cand.norm,
			RepDist: cand.repDist,
			Group:   cand.ref,
		})
	}
	return nil
}

// finishMatches fills in warping paths (presentation data) for the final
// result set only, so inner loops never pay the full-matrix cost.
func (e *Engine) finishMatches(q []float64, ms []Match, opts Options) []Match {
	for i := range ms {
		_, path := dist.DTWPath(q, ms[i].Values, opts.Band)
		ms[i].Path = path
	}
	return ms
}

// matchBefore is the total result order: ascending Score, ties broken by
// subsequence identity. A total order keeps accumulators (and final result
// lists) deterministic regardless of offer order, which parallel member
// refinement depends on.
func matchBefore(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if a.Ref.Series != b.Ref.Series {
		return a.Ref.Series < b.Ref.Series
	}
	if a.Ref.Start != b.Ref.Start {
		return a.Ref.Start < b.Ref.Start
	}
	return a.Ref.Length < b.Ref.Length
}

// topK accumulates the k best matches seen, deduplicating by Ref.
type topK struct {
	k  int
	ms []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) len() int   { return len(t.ms) }
func (t *topK) full() bool { return len(t.ms) >= t.k }
func (t *topK) worst() Match {
	return t.ms[len(t.ms)-1]
}

func (t *topK) offer(m Match) {
	for i := range t.ms {
		if t.ms[i].Ref == m.Ref {
			if m.Score < t.ms[i].Score {
				t.ms[i] = m
				t.restore()
			}
			return
		}
	}
	if len(t.ms) < t.k {
		t.ms = append(t.ms, m)
		t.restore()
		return
	}
	if matchBefore(m, t.ms[len(t.ms)-1]) {
		t.ms[len(t.ms)-1] = m
		t.restore()
	}
}

// restore re-sorts the small accumulator (k is tiny; insertion sort).
func (t *topK) restore() {
	for i := len(t.ms) - 1; i > 0; i-- {
		if matchBefore(t.ms[i], t.ms[i-1]) {
			t.ms[i], t.ms[i-1] = t.ms[i-1], t.ms[i]
		} else {
			break
		}
	}
}

func (t *topK) sorted() []Match {
	out := make([]Match, len(t.ms))
	copy(out, t.ms)
	return out
}

// kthTracker tracks the k-th smallest value offered, as the abandon bound
// for representative scoring.
type kthTracker struct {
	k    int
	vals []float64
}

func newKthTracker(k int) *kthTracker {
	if k < 1 {
		k = 1
	}
	if k > 1024 {
		// Saturate: beyond this the bound is useless anyway. The exact
		// pipeline compensates for any resulting over-pruning by resolving
		// every abandoned representative (finishExact / resolveCandidates)
		// before the certified walk.
		k = 1024
	}
	return &kthTracker{k: k}
}

// offer inserts v with a single insertion shift (the slice is always
// sorted, so a full re-sort per improvement would waste O(k log k) on
// every group).
func (kt *kthTracker) offer(v float64) {
	if len(kt.vals) < kt.k {
		kt.vals = append(kt.vals, v)
	} else if v < kt.vals[kt.k-1] {
		kt.vals[kt.k-1] = v
	} else {
		return
	}
	for i := len(kt.vals) - 1; i > 0 && kt.vals[i] < kt.vals[i-1]; i-- {
		kt.vals[i], kt.vals[i-1] = kt.vals[i-1], kt.vals[i]
	}
}

func (kt *kthTracker) bound() float64 {
	if len(kt.vals) < kt.k {
		return math.Inf(1)
	}
	return kt.vals[kt.k-1]
}
