package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// ctxCheckStride bounds how many group members are scanned between two
// context-cancellation checks inside the refinement loops.
const ctxCheckStride = 64

// QueryConstraints narrows a similarity search.
type QueryConstraints struct {
	// MinLength/MaxLength bound candidate subsequence lengths; zero values
	// mean the full base range.
	MinLength, MaxLength int
	// ExcludeSeries skips candidates from the named series (used by the
	// demo to avoid returning the query's own source series). Nil means no
	// exclusion. Values are series indices.
	ExcludeSeries map[int]bool
	// ExcludeOverlap skips candidates overlapping this window (used by
	// self-queries so the best match is not the query itself). Zero value
	// excludes nothing.
	ExcludeOverlap ts.SubSeq
}

func (c QueryConstraints) excludes(ref ts.SubSeq) bool {
	if c.ExcludeSeries != nil && c.ExcludeSeries[ref.Series] {
		return true
	}
	if c.ExcludeOverlap.Length > 0 && ref.Overlaps(c.ExcludeOverlap) {
		return true
	}
	return false
}

// BestMatch returns the most similar indexed subsequence to q under DTW,
// per the engine's mode. See BestMatchConstrained.
func (e *Engine) BestMatch(q []float64) (Match, error) {
	return e.BestMatchConstrained(q, QueryConstraints{})
}

// BestMatchConstrained is BestMatch with search constraints.
func (e *Engine) BestMatchConstrained(q []float64, c QueryConstraints) (Match, error) {
	ms, err := e.KBestMatchesConstrained(q, 1, c)
	if err != nil {
		return Match{}, err
	}
	return ms[0], nil
}

// KBestMatches returns the k most similar indexed subsequences, best first.
func (e *Engine) KBestMatches(q []float64, k int) ([]Match, error) {
	return e.KBestMatchesConstrained(q, k, QueryConstraints{})
}

// KBestMatchesConstrained runs the engine's configured search mode.
//
// ModeApprox (paper §3.2): rank groups by DTW(query, representative), then
// return the best members of the top groups. ModeExact: prune groups with
// the certified transfer bound and refine all survivors; the result is the
// true DTW top-k over every indexed candidate.
func (e *Engine) KBestMatchesConstrained(q []float64, k int, c QueryConstraints) ([]Match, error) {
	return e.search(context.Background(), q, k, c, e.opts, nil)
}

// search is the shared top-k entry point: it validates the query, resolves
// candidate lengths, and dispatches on the per-call mode. It honours ctx
// cancellation between pruning rounds (per group and per member batch) and
// returns ctx.Err() when the caller gave up.
func (e *Engine) search(ctx context.Context, q []float64, k int, c QueryConstraints, opts Options, st *SearchStats) ([]Match, error) {
	if len(q) < 2 {
		return nil, fmt.Errorf("core: query length %d too short (need >= 2)", len(q))
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	lengths := e.candidateLengths(c)
	if len(lengths) == 0 {
		return nil, ErrNoMatch
	}
	switch opts.Mode {
	case ModeExact:
		return e.kbestExact(ctx, q, k, c, lengths, opts, st)
	default:
		return e.kbestApprox(ctx, q, k, c, lengths, opts, st)
	}
}

func (e *Engine) candidateLengths(c QueryConstraints) []int {
	minL, maxL := c.MinLength, c.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	var out []int
	for _, l := range e.base.Lengths() {
		if l >= minL && l <= maxL {
			out = append(out, l)
		}
	}
	return out
}

// norm returns the score divisor for candidates of length l: 1 for raw
// ranking, max(qlen, l) for length-normalized ranking.
func (o Options) norm(qlen, l int) float64 {
	if !o.LengthNorm {
		return 1
	}
	if qlen > l {
		return float64(qlen)
	}
	return float64(l)
}

// repCandidate is a group scored by its representative's DTW distance.
type repCandidate struct {
	ref      GroupRef
	g        *grouping.Group
	repDist  float64 // raw DTW(q, rep); +Inf when pruned
	repScore float64 // repDist / norm
	norm     float64
}

// scoreRepresentatives computes DTW(query, representative) for every group
// of the candidate lengths, with an LB_Kim + LB_Keogh + early-abandon
// cascade against the running k-th best representative score. Groups whose
// representative provably cannot enter the top-k are returned with
// repDist = +Inf. st, when non-nil, accumulates search statistics. The
// context is checked once per group, so a cancelled scan aborts before the
// next representative is scored.
func (e *Engine) scoreRepresentatives(ctx context.Context, q []float64, k int, lengths []int, opts Options, st *SearchStats) ([]repCandidate, error) {
	var cands []repCandidate
	// kth tracks the k-th best representative score seen so far; the raw
	// abandon bound per length is score bound * norm.
	kth := newKthTracker(k)
	for _, l := range lengths {
		groups := e.base.GroupsOfLength(l)
		if len(groups) == 0 {
			continue
		}
		norm := opts.norm(len(q), l)
		// One query envelope per candidate length: upper[j]/lower[j] bound
		// q over the band window around rep position j, giving
		// LBKeogh(rep, qU, qL) <= DTW(q, rep).
		qU, qL := dist.Envelope(q, l, opts.Band)
		for gi, g := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if st != nil {
				st.Groups++
			}
			ub := kth.bound() * norm // raw-distance bound for this length
			var repDist float64
			if dist.LBKim(q, g.Rep) > ub {
				repDist = math.Inf(1)
				if st != nil {
					st.GroupsLBPruned++
				}
			} else if dist.LBKeogh(g.Rep, qU, qL, ub) > ub {
				repDist = math.Inf(1)
				if st != nil {
					st.GroupsLBPruned++
				}
			} else {
				if st != nil {
					st.RepDTW++
				}
				repDist = dist.DTWEarlyAbandon(q, g.Rep, opts.Band, ub)
				if st != nil && math.IsInf(repDist, 1) {
					// Abandoned against the k-th best bound: the group is
					// pruned exactly like an LB rejection (and un-counted
					// if a fallback later recomputes it).
					st.GroupsLBPruned++
				}
			}
			score := repDist / norm
			if !math.IsInf(repDist, 1) {
				kth.offer(score)
			}
			cands = append(cands, repCandidate{
				ref:      GroupRef{Length: l, Index: gi},
				g:        g,
				repDist:  repDist,
				repScore: score,
				norm:     norm,
			})
		}
	}
	return cands, nil
}

// kbestApprox implements the paper's search: pick the top-k groups by
// representative score, then take the best members inside them.
func (e *Engine) kbestApprox(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) ([]Match, error) {
	cands, err := e.scoreRepresentatives(ctx, q, k, lengths, opts, st)
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].repScore < cands[j].repScore })

	// Refine within the most promising groups. To fill k results we may
	// need more than k groups when constraints exclude members, so walk
	// groups in rep order until k matches are collected (or candidates are
	// exhausted).
	top := newTopK(k)
	for _, cand := range cands {
		if math.IsInf(cand.repDist, 1) {
			break // remaining groups were pruned against the k-th best rep
		}
		if top.full() && cand.repScore > top.worst().Score {
			// A group whose representative already scores worse than every
			// collected member cannot improve an approximate top-k
			// (heuristic: members can score below their representative).
			break
		}
		if err := e.refineGroup(ctx, q, cand, c, top, opts, st); err != nil {
			return nil, err
		}
	}
	// Constraints may have excluded every member of the promising groups;
	// fall back to the groups whose representatives were LB-pruned during
	// scoring so constrained queries still fill k results when possible.
	if top.len() < k {
		for i := range cands {
			if !math.IsInf(cands[i].repDist, 1) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if st != nil {
				// The group is un-pruned after all: keep the pruned/refined
				// counters disjoint.
				st.GroupsLBPruned--
				st.RepDTW++
			}
			cands[i].repDist = dist.DTWBanded(q, cands[i].g.Rep, opts.Band)
			cands[i].repScore = cands[i].repDist / cands[i].norm
			if err := e.refineGroup(ctx, q, cands[i], c, top, opts, st); err != nil {
				return nil, err
			}
		}
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted(), opts), nil
}

// kbestExact prunes groups with the certified transfer bound and refines
// every survivor; the result is the true top-k.
func (e *Engine) kbestExact(ctx context.Context, q []float64, k int, c QueryConstraints, lengths []int, opts Options, st *SearchStats) ([]Match, error) {
	cands, err := e.scoreRepresentatives(ctx, q, math.MaxInt32, lengths, opts, st) // no rep pruning in exact mode
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].repScore < cands[j].repScore })

	top := newTopK(k)
	for _, cand := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if math.IsInf(cand.repDist, 1) {
			// The kth tracker saturates at 1024, so on large bases a tail
			// of representatives is LB-abandoned even in exact mode;
			// recompute them so the certified bound below sees a true
			// distance, and un-count the prune.
			if st != nil {
				st.GroupsLBPruned--
				st.RepDTW++
			}
			cand.repDist = dist.DTWBanded(q, cand.g.Rep, opts.Band)
			cand.repScore = cand.repDist / cand.norm
		}
		if top.full() {
			// Certified lower bound for every member s of this group:
			// DTW(q,s) >= DTW(q,rep) - mu*ED(rep,s) >= repDist - mu*ST_l/2,
			// where mu is bounded by the band geometry of the (q,s) grid
			// and ST_l is the absolute threshold at this group's length.
			w := dist.EffectiveBand(len(q), cand.g.Length, opts.Band)
			mu := float64(2*w + 1)
			lower := (cand.repDist - mu*e.base.HalfST(cand.g.Length)) / cand.norm
			if lower > top.worst().Score {
				if st != nil {
					st.GroupsLBPruned++
				}
				continue // provably cannot improve the top-k
			}
		}
		if err := e.refineGroup(ctx, q, cand, c, top, opts, st); err != nil {
			return nil, err
		}
	}
	if top.len() == 0 {
		return nil, ErrNoMatch
	}
	return e.finishMatches(q, top.sorted(), opts), nil
}

// refineGroup scans a group's members with an LB cascade and early-abandon
// DTW, offering improvements to the top-k accumulator. The context is
// re-checked every ctxCheckStride members so large groups abandon promptly.
func (e *Engine) refineGroup(ctx context.Context, q []float64, cand repCandidate, c QueryConstraints, top *topK, opts Options, st *SearchStats) error {
	l := cand.g.Length
	qU, qL := dist.Envelope(q, l, opts.Band)
	if st != nil {
		st.GroupsRefined++
		st.Members += len(cand.g.Members)
	}
	for mi, m := range cand.g.Members {
		if mi%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if c.excludes(m) {
			continue
		}
		mv := m.Values(e.ds)
		ub := math.Inf(1)
		if top.full() {
			ub = top.worst().Score * cand.norm // raw-distance bound
		}
		if dist.LBKim(q, mv) > ub {
			continue
		}
		if dist.LBKeogh(mv, qU, qL, ub) > ub {
			continue
		}
		if st != nil {
			st.MemberDTW++
		}
		d := dist.DTWEarlyAbandon(q, mv, opts.Band, ub)
		if math.IsInf(d, 1) {
			continue
		}
		top.offer(Match{
			Ref:     m,
			Values:  mv,
			Dist:    d,
			Score:   d / cand.norm,
			RepDist: cand.repDist,
			Group:   cand.ref,
		})
	}
	return nil
}

// finishMatches fills in warping paths (presentation data) for the final
// result set only, so inner loops never pay the full-matrix cost.
func (e *Engine) finishMatches(q []float64, ms []Match, opts Options) []Match {
	for i := range ms {
		_, path := dist.DTWPath(q, ms[i].Values, opts.Band)
		ms[i].Path = path
	}
	return ms
}

// topK accumulates the k best matches seen, deduplicating by Ref.
type topK struct {
	k  int
	ms []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) len() int   { return len(t.ms) }
func (t *topK) full() bool { return len(t.ms) >= t.k }
func (t *topK) worst() Match {
	return t.ms[len(t.ms)-1]
}

func (t *topK) offer(m Match) {
	for i := range t.ms {
		if t.ms[i].Ref == m.Ref {
			if m.Score < t.ms[i].Score {
				t.ms[i] = m
				t.restore()
			}
			return
		}
	}
	if len(t.ms) < t.k {
		t.ms = append(t.ms, m)
		t.restore()
		return
	}
	if m.Score < t.ms[len(t.ms)-1].Score {
		t.ms[len(t.ms)-1] = m
		t.restore()
	}
}

// restore re-sorts the small accumulator (k is tiny; insertion sort).
func (t *topK) restore() {
	for i := len(t.ms) - 1; i > 0; i-- {
		if t.ms[i].Score < t.ms[i-1].Score {
			t.ms[i], t.ms[i-1] = t.ms[i-1], t.ms[i]
		} else {
			break
		}
	}
}

func (t *topK) sorted() []Match {
	out := make([]Match, len(t.ms))
	copy(out, t.ms)
	return out
}

// kthTracker tracks the k-th smallest value offered, as the abandon bound
// for representative scoring.
type kthTracker struct {
	k    int
	vals []float64
}

func newKthTracker(k int) *kthTracker {
	if k < 1 {
		k = 1
	}
	if k > 1024 {
		k = 1024 // exact mode passes MaxInt32 meaning "never prune"
	}
	return &kthTracker{k: k}
}

func (kt *kthTracker) offer(v float64) {
	if len(kt.vals) < kt.k {
		kt.vals = append(kt.vals, v)
		sort.Float64s(kt.vals)
		return
	}
	if v < kt.vals[kt.k-1] {
		kt.vals[kt.k-1] = v
		sort.Float64s(kt.vals)
	}
}

func (kt *kthTracker) bound() float64 {
	if len(kt.vals) < kt.k {
		return math.Inf(1)
	}
	return kt.vals[kt.k-1]
}
