package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/grouping"
)

// Parallel execution layer for the online search path. Every group scan the
// engine runs — representative scoring, member refinement, range scans, and
// the seasonal / common-pattern mines — can shard its work across a bounded
// worker pool, sized per call by Options.Workers (and its analytics
// equivalents).
//
// The determinism contract, enforced by tests:
//
//   - Workers = 1 takes the exact serial code paths, so results and
//     statistics are identical to a single-threaded engine.
//   - The result set (matches, patterns, sweep counts) is identical at
//     every worker count. Accumulators break score ties by subsequence
//     identity, so even the order is stable.
//   - Groups, GroupsRefined, and Members are identical at every worker
//     count. The pruned/DTW split (GroupsLBPruned, RepDTW, MemberDTW) can
//     shift slightly at Workers > 1 because the shared best-so-far bound
//     tightens in scheduling order; the totals still reconcile
//     (GroupsLBPruned + GroupsRefined <= Groups).
//
// Cancellation: each worker polls ctx.Err() once per group it scores and
// every ctxCheckStride members it refines, so a cancelled parallel scan
// aborts within one pruning round per worker.

const (
	// minParallelGroups is the smallest group-scan fan-out worth a worker
	// pool; below it the dispatch overhead dwarfs the per-group work and the
	// serial path is used regardless of Options.Workers.
	minParallelGroups = 64
	// minParallelMembers is the smallest member scan worth sharding across
	// workers inside one group's refinement.
	minParallelMembers = 256
	// exactWave is how many surviving groups one exact-mode refinement wave
	// holds. It is a constant — never derived from the worker count — so
	// the certified-bound re-check points, and with them the refined set,
	// are identical at every worker count.
	exactWave = 16
)

// resolveWorkers maps a Workers knob to an effective pool size for n work
// items: values < 1 select GOMAXPROCS, and the pool never exceeds the item
// count.
func resolveWorkers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers runs fn(0) … fn(workers-1) concurrently and returns the first
// error by worker index. Workers observe cancellation through their own
// ctx polling, so a failed sibling never leaves the pool stuck.
func runWorkers(workers int, fn func(w int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sharedKth is the cross-worker k-th-best representative score: a mutex-
// guarded kthTracker fed by every worker, with the current bound mirrored
// into an atomic so the hot pruning path reads it lock-free. The bound is
// monotonically non-increasing and always >= the final global k-th best,
// so early-abandon pruning against it stays sound while tightening across
// workers. Offers only happen for finite (unpruned) scores, so contention
// stays far below the group count.
type sharedKth struct {
	mu    sync.Mutex
	kth   *kthTracker
	bound atomic.Uint64 // float bits of the current k-th best score
}

func newSharedKth(k int) *sharedKth {
	s := &sharedKth{kth: newKthTracker(k)}
	s.bound.Store(math.Float64bits(math.Inf(1)))
	return s
}

func (s *sharedKth) load() float64 { return math.Float64frombits(s.bound.Load()) }

func (s *sharedKth) offer(v float64) {
	s.mu.Lock()
	s.kth.offer(v)
	s.bound.Store(math.Float64bits(s.kth.bound()))
	s.mu.Unlock()
}

// sharedTopK guards a topK for concurrent offers during parallel member
// refinement. The worst-score bound is mirrored into an atomic so the hot
// LB cascade reads it without taking the mutex; it is always >= the final
// worst score, so pruning against a stale value stays sound.
type sharedTopK struct {
	mu    sync.Mutex
	top   *topK
	worst atomic.Uint64 // score bits; +Inf until the accumulator fills
}

func newSharedTopK(top *topK) *sharedTopK {
	s := &sharedTopK{top: top}
	w := math.Inf(1)
	if top.full() {
		w = top.worst().Score
	}
	s.worst.Store(math.Float64bits(w))
	return s
}

func (s *sharedTopK) boundScore() float64 { return math.Float64frombits(s.worst.Load()) }

func (s *sharedTopK) offer(m Match) {
	s.mu.Lock()
	s.top.offer(m)
	if s.top.full() {
		s.worst.Store(math.Float64bits(s.top.worst().Score))
	}
	s.mu.Unlock()
}

// repScoreJob is one group to score plus the per-length precomputation
// shared (read-only) by every group of that length.
type repScoreJob struct {
	ref    GroupRef
	g      *grouping.Group
	norm   float64
	qU, qL []float64
}

// flattenGroups lists every candidate group of the given lengths in the
// deterministic serial scan order, computing the query envelope once per
// length.
func (e *Engine) flattenGroups(q []float64, lengths []int, opts Options) []repScoreJob {
	var jobs []repScoreJob
	for _, l := range lengths {
		groups := e.base.GroupsOfLength(l)
		if len(groups) == 0 {
			continue
		}
		norm := opts.norm(len(q), l)
		qU, qL := dist.Envelope(q, l, opts.Band)
		//onex:nopoll O(1) job enumeration per group; the scoring pass that consumes the jobs polls per group
		for gi, g := range groups {
			jobs = append(jobs, repScoreJob{ref: GroupRef{Length: l, Index: gi}, g: g, norm: norm, qU: qU, qL: qL})
		}
	}
	return jobs
}

// scoreJob runs the LB_Kim -> LB_Keogh -> early-abandon-DTW cascade for one
// representative against the raw-distance bound ub, updating st (which may
// be a worker-local accumulator).
func scoreJob(q []float64, job repScoreJob, ub float64, band int, st *SearchStats) (repDist float64) {
	if st != nil {
		st.Groups++
	}
	if dist.LBKim(q, job.g.Rep) > ub {
		if st != nil {
			st.GroupsLBPruned++
		}
		return math.Inf(1)
	}
	if dist.LBKeogh(job.g.Rep, job.qU, job.qL, ub) > ub {
		if st != nil {
			st.GroupsLBPruned++
		}
		return math.Inf(1)
	}
	if st != nil {
		st.RepDTW++
	}
	repDist = dist.DTWEarlyAbandon(q, job.g.Rep, band, ub)
	if st != nil && math.IsInf(repDist, 1) {
		// Abandoned against the k-th best bound: the group is pruned exactly
		// like an LB rejection (and un-counted if a fallback later recomputes
		// it).
		st.GroupsLBPruned++
	}
	return repDist
}

// scoreRepsParallel shards the group list across a worker pool. Each worker
// keeps local statistics, merged at the barrier; a shared atomic
// best-so-far bound (the global k-th best score seen by any worker) lets
// early-abandon pruning tighten across workers. Worker w scores jobs w,
// w+workers, w+2*workers, … and the shards are stitched back by index, so
// the returned candidate order matches the serial scan exactly.
func (e *Engine) scoreRepsParallel(ctx context.Context, q []float64, k int, jobs []repScoreJob, opts Options, st *SearchStats, workers int) ([]repCandidate, error) {
	shared := newSharedKth(k) // normalized score units
	locals := make([]SearchStats, workers)
	// Workers score interleaved shards (job i -> worker i % workers) for
	// load balance, but accumulate into worker-local buffers — writing
	// adjacent entries of one shared slice from different cores would
	// false-share cache lines on every job.
	buffers := make([][]repCandidate, workers)
	err := runWorkers(workers, func(w int) error {
		var local SearchStats
		buf := make([]repCandidate, 0, (len(jobs)+workers-1)/workers)
		for i := w; i < len(jobs); i += workers {
			if err := ctx.Err(); err != nil {
				locals[w], buffers[w] = local, buf
				return err
			}
			job := jobs[i]
			repDist := scoreJob(q, job, shared.load()*job.norm, opts.Band, &local)
			score := repDist / job.norm
			if !math.IsInf(repDist, 1) {
				shared.offer(score)
			}
			buf = append(buf, repCandidate{ref: job.ref, g: job.g, repDist: repDist, repScore: score, norm: job.norm})
		}
		locals[w], buffers[w] = local, buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st != nil {
		for _, local := range locals {
			st.add(local)
		}
	}
	// Stitch the shards back into the serial scan order.
	cands := make([]repCandidate, len(jobs))
	for w, buf := range buffers {
		for j, cand := range buf {
			cands[w+j*workers] = cand
		}
	}
	return cands, nil
}

// resolveCandidates recomputes the representative distance of every
// LB-pruned (repDist = +Inf) candidate in cands, in parallel when the tail
// is large, so the caller can continue walking groups in true
// representative-score order. Each recompute un-counts the earlier prune,
// keeping GroupsLBPruned and GroupsRefined disjoint.
func (e *Engine) resolveCandidates(ctx context.Context, q []float64, cands []repCandidate, opts Options, st *SearchStats) error {
	var idx []int
	for i := range cands {
		if math.IsInf(cands[i].repDist, 1) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	if st != nil {
		st.GroupsLBPruned -= len(idx)
		st.RepDTW += len(idx)
	}
	workers := resolveWorkers(opts.Workers, len(idx))
	recompute := func(i int) {
		cands[i].repDist = dist.DTWBanded(q, cands[i].g.Rep, opts.Band)
		cands[i].repScore = cands[i].repDist / cands[i].norm
	}
	if workers <= 1 || len(idx) < minParallelGroups {
		for _, i := range idx {
			if err := ctx.Err(); err != nil {
				return err
			}
			recompute(i)
		}
		return nil
	}
	return runWorkers(workers, func(w int) error {
		for j := w; j < len(idx); j += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			recompute(idx[j])
		}
		return nil
	})
}

// refine dispatches one group's member scan to the serial or parallel
// implementation. The choice depends only on the member count and the
// Workers knob, never on scheduling, so the refined set stays deterministic.
func (e *Engine) refine(ctx context.Context, q []float64, cand repCandidate, c QueryConstraints, top *topK, opts Options, st *SearchStats) error {
	workers := resolveWorkers(opts.Workers, len(cand.g.Members))
	if workers <= 1 || len(cand.g.Members) < minParallelMembers {
		return e.refineGroup(ctx, q, cand, c, top, opts, st)
	}
	return e.refineGroupParallel(ctx, q, cand, c, top, opts, st, workers)
}

// refineGroupParallel shards one group's members across the worker pool,
// offering improvements into a mutex-guarded topK. Workers prune against
// the accumulator's current worst score (always >= the final worst, so no
// true top-k member is ever lost), and every surviving member is offered
// with deterministic tie-breaking — the final contents match the serial
// scan exactly.
func (e *Engine) refineGroupParallel(ctx context.Context, q []float64, cand repCandidate, c QueryConstraints, top *topK, opts Options, st *SearchStats, workers int) error {
	l := cand.g.Length
	qU, qL := dist.Envelope(q, l, opts.Band)
	if st != nil {
		st.GroupsRefined++
		st.Members += len(cand.g.Members)
	}
	members := cand.g.Members
	shared := newSharedTopK(top)
	localDTW := make([]int, workers)
	err := runWorkers(workers, func(w int) error {
		seen, dtws := 0, 0
		defer func() { localDTW[w] = dtws }()
		for mi := w; mi < len(members); mi += workers {
			if seen%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			seen++
			m := members[mi]
			if c.excludes(m) {
				continue
			}
			mv := m.Values(e.ds)
			ub := shared.boundScore() * cand.norm // raw-distance bound
			if dist.LBKim(q, mv) > ub {
				continue
			}
			if dist.LBKeogh(mv, qU, qL, ub) > ub {
				continue
			}
			dtws++
			d := dist.DTWEarlyAbandon(q, mv, opts.Band, ub)
			if math.IsInf(d, 1) {
				continue
			}
			shared.offer(Match{
				Ref:     m,
				Values:  mv,
				Dist:    d,
				Score:   d / cand.norm,
				RepDist: cand.repDist,
				Group:   cand.ref,
			})
		}
		return nil
	})
	if st != nil {
		for _, n := range localDTW {
			st.MemberDTW += n
		}
	}
	return err
}

// scanGroups runs fn over every job — serially, or sharded across a worker
// pool (job i -> worker i % workers) when the list is large — and collects
// the accepted results in job order, so the output never depends on
// scheduling. fn's stats accumulator is the caller's in the serial case
// and worker-local (merged at the barrier) in the parallel case; each job
// is preceded by a ctx poll, so cancellation aborts within one round per
// worker. This is the shared scaffolding of the range, seasonal, and
// common-pattern scans, whose per-group work needs no cross-group state.
func scanGroups[J, R any](ctx context.Context, requestedWorkers int, jobs []J, st *SearchStats, fn func(J, *SearchStats) (R, bool, error)) ([]R, error) {
	workers := resolveWorkers(requestedWorkers, len(jobs))
	if workers <= 1 || len(jobs) < minParallelGroups {
		var out []R
		for _, j := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, ok, err := fn(j, st)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil
	}
	found := make([]*R, len(jobs))
	locals := make([]SearchStats, workers)
	err := runWorkers(workers, func(w int) error {
		var local SearchStats // worker-local to avoid false sharing
		defer func() { locals[w] = local }()
		for i := w; i < len(jobs); i += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, ok, err := fn(jobs[i], &local)
			if err != nil {
				return err
			}
			if ok {
				found[i] = &r
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st != nil {
		for _, local := range locals {
			st.add(local)
		}
	}
	out := make([]R, 0, len(found))
	for _, r := range found {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out, nil
}

// refineWaveParallel fans one exact-mode wave of group refinements across
// the worker pool (group i -> worker i % workers), all offering into one
// mutex-guarded topK. Every group in the wave is fully scanned, so the
// refined set — fixed by the caller — does not depend on scheduling; the
// shared accumulator only tightens the member-level pruning bound.
func (e *Engine) refineWaveParallel(ctx context.Context, q []float64, wave []repCandidate, c QueryConstraints, top *topK, opts Options, st *SearchStats, workers int) error {
	if workers > len(wave) {
		workers = len(wave)
	}
	shared := newSharedTopK(top)
	locals := make([]SearchStats, workers)
	err := runWorkers(workers, func(w int) error {
		var local SearchStats // worker-local to avoid false sharing
		defer func() { locals[w] = local }()
		for i := w; i < len(wave); i += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := e.refineGroup(ctx, q, wave[i], c, shared, opts, &local); err != nil {
				return err
			}
		}
		return nil
	})
	if st != nil {
		for _, local := range locals {
			st.add(local)
		}
	}
	return err
}

// add accumulates another stats block (worker-local merge).
func (s *SearchStats) add(o SearchStats) {
	s.Groups += o.Groups
	s.GroupsLBPruned += o.GroupsLBPruned
	s.RepDTW += o.RepDTW
	s.GroupsRefined += o.GroupsRefined
	s.Members += o.Members
	s.MemberDTW += o.MemberDTW
}
