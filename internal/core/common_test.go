package core

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// commonWorld plants one shape into several series and adds distractors.
func commonWorld(t testing.TB, sharers, distractors, length, motifLen int) (*ts.Dataset, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	d := ts.NewDataset("common")
	motif := make([]float64, motifLen)
	for j := range motif {
		motif[j] = 0.5 + 0.4*float64(j%2) // square-ish wave, distinctive
	}
	for i := 0; i < sharers; i++ {
		vals := make([]float64, length)
		for j := range vals {
			vals[j] = 0.2 + rng.NormFloat64()*0.01
		}
		at := 2 + i // slightly different positions
		for j := 0; j < motifLen; j++ {
			vals[at+j] = motif[j] + rng.NormFloat64()*0.01
		}
		d.MustAdd(ts.NewSeries("sharer"+strconv.Itoa(i), vals))
	}
	for i := 0; i < distractors; i++ {
		vals := make([]float64, length)
		v := 0.8
		for j := range vals {
			v += rng.NormFloat64() * 0.05
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries("noise"+strconv.Itoa(i), vals))
	}
	b, err := grouping.Build(d, grouping.Options{ST: 0.06, MinLength: motifLen, MaxLength: motifLen})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: ModeApprox})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func TestCommonPatternsFindsSharedShape(t *testing.T) {
	const sharers, motifLen = 4, 6
	d, e := commonWorld(t, sharers, 3, 24, motifLen)
	pats := e.CommonPatterns(CommonOptions{MinSeries: 3})
	if len(pats) == 0 {
		t.Fatal("no common patterns found")
	}
	top := pats[0]
	if top.SeriesCount < sharers {
		t.Fatalf("top pattern spans %d series, want >= %d", top.SeriesCount, sharers)
	}
	// One exemplar per series, sorted, valid, and genuinely close to the
	// shared representative.
	seen := map[int]bool{}
	for i, o := range top.Occurrences {
		if err := o.Validate(d); err != nil {
			t.Fatal(err)
		}
		if seen[o.Series] {
			t.Fatal("duplicate series in occurrences")
		}
		seen[o.Series] = true
		if i > 0 && top.Occurrences[i-1].Series > o.Series {
			t.Fatal("occurrences not sorted by series")
		}
		if dd := dist.ED(o.Values(d), top.Rep); dd > e.Base().HalfST(top.Length)+1e-9 {
			t.Fatalf("exemplar %d beyond invariant radius: %g", i, dd)
		}
	}
	// Ordering: series coverage descending.
	for i := 1; i < len(pats); i++ {
		if pats[i-1].SeriesCount < pats[i].SeriesCount {
			t.Fatal("patterns not ordered by series coverage")
		}
	}
}

func TestCommonPatternsOptions(t *testing.T) {
	_, e := commonWorld(t, 3, 2, 24, 6)
	// MinSeries above the planted coverage filters the motif group out of
	// the (tight-threshold) noise groups too.
	if pats := e.CommonPatterns(CommonOptions{MinSeries: 50}); len(pats) != 0 {
		t.Fatalf("impossible MinSeries returned %d patterns", len(pats))
	}
	one := e.CommonPatterns(CommonOptions{MaxPatterns: 1})
	if len(one) > 1 {
		t.Fatal("MaxPatterns ignored")
	}
	// Length constraints filter everything when out of range.
	if pats := e.CommonPatterns(CommonOptions{MinLength: 99, MaxLength: 100}); len(pats) != 0 {
		t.Fatal("length constraints ignored")
	}
}
