package core

import (
	"sync"
	"testing"
)

// The engine documents itself as safe for concurrent readers; this test
// backs the claim (run with -race to make it meaningful).
func TestConcurrentReaders(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	queries := [][]float64{
		d.Series[0].Values[0:8],
		d.Series[1].Values[3:9],
		d.Series[2].Values[5:12],
		d.Series[3].Values[0:6],
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := e.BestMatch(q); err != nil {
					errs <- err
					return
				}
				if _, err := e.KBestMatches(q, 3); err != nil {
					errs <- err
					return
				}
				if _, err := e.WithinThreshold(q, RangeOptions{MaxDist: 0.5, Limit: 5}); err != nil {
					errs <- err
					return
				}
				_ = e.Overview(6, 4)
				if _, err := e.SeasonalByIndex(0, SeasonalOptions{MinOccurrences: 2}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
