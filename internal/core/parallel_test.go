package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

func TestResolveWorkers(t *testing.T) {
	for _, tc := range []struct{ requested, n, min, max int }{
		{1, 100, 1, 1},        // explicit serial
		{4, 100, 4, 4},        // explicit pool
		{4, 2, 2, 2},          // clamped to item count
		{0, 100, 1, 1 << 20},  // GOMAXPROCS, whatever it is
		{-3, 100, 1, 1 << 20}, // negative behaves like 0
		{8, 0, 1, 1},          // no items still yields a sane pool
	} {
		got := resolveWorkers(tc.requested, tc.n)
		if got < tc.min || got > tc.max {
			t.Fatalf("resolveWorkers(%d, %d) = %d, want in [%d, %d]",
				tc.requested, tc.n, got, tc.min, tc.max)
		}
	}
}

// TestKthTrackerOffer pins the insertion-shift rewrite against a sorted-
// slice reference: same bound after every offer, for many k values and
// random (including duplicate and descending) inputs.
func TestKthTrackerOffer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, k := range []int{1, 2, 3, 7, 16} {
		kt := newKthTracker(k)
		var ref []float64
		refBound := func() float64 {
			if len(ref) < k {
				return math.Inf(1)
			}
			return ref[k-1]
		}
		for i := 0; i < 500; i++ {
			var v float64
			switch i % 3 {
			case 0:
				v = rng.Float64()
			case 1:
				v = float64(500-i) / 500 // descending ramp
			default:
				v = math.Round(rng.Float64()*8) / 8 // duplicates
			}
			kt.offer(v)
			ref = append(ref, v)
			sort.Float64s(ref)
			if len(ref) > k {
				ref = ref[:k]
			}
			if got, want := kt.bound(), refBound(); got != want {
				t.Fatalf("k=%d after %d offers: bound %g, want %g", k, i+1, got, want)
			}
			if !sort.Float64sAreSorted(kt.vals) {
				t.Fatalf("k=%d: tracker slice unsorted: %v", k, kt.vals)
			}
		}
	}
}

// parallelWorld builds a base large enough (hundreds of groups, thousands
// of members) that every parallel code path — sharded representative
// scoring, tail resolution, in-group member fan-out, range scans — really
// triggers.
func parallelWorld(t testing.TB, mode Mode) (*ts.Dataset, *Engine) {
	t.Helper()
	d := gen.RandomWalks(gen.WalkOptions{Num: 8, Length: 96, Seed: 11})
	if err := ts.NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	b, err := grouping.Build(d, grouping.Options{ST: 0.12, MinLength: 8, MaxLength: 20})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumGroups() < minParallelGroups {
		t.Fatalf("parallelWorld too small: %d groups", b.NumGroups())
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: mode, LengthNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func sameMatches(t *testing.T, label string, a, b []Match) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d matches != %d matches", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Ref != b[i].Ref {
			t.Fatalf("%s: match %d ref %+v != %+v", label, i, a[i].Ref, b[i].Ref)
		}
		if a[i].Dist != b[i].Dist || a[i].Score != b[i].Score {
			t.Fatalf("%s: match %d dist/score (%g, %g) != (%g, %g)",
				label, i, a[i].Dist, a[i].Score, b[i].Dist, b[i].Score)
		}
	}
}

// TestFindWorkersEquivalence is the central parallel-correctness property:
// at every worker count, Find returns the identical match list (same refs,
// same distances, same order) and the identical deterministic work totals
// (Groups, GroupsRefined, Members) as the serial engine — in approx mode,
// exact mode, and range mode, with and without constraints.
func TestFindWorkersEquivalence(t *testing.T) {
	d, e := parallelWorld(t, ModeApprox)
	queries := []struct {
		name string
		fo   FindOptions
		q    []float64
	}{
		{"approx top3", FindOptions{Options: Options{Band: -1, LengthNorm: true}, K: 3}, d.Series[0].Values[0:12]},
		{"approx k10", FindOptions{Options: Options{Band: -1, LengthNorm: true}, K: 10}, d.Series[3].Values[20:36]},
		{"approx constrained", FindOptions{
			Options:     Options{Band: -1, LengthNorm: true},
			K:           5,
			Constraints: QueryConstraints{ExcludeSeries: map[int]bool{0: true}, MinLength: 10, MaxLength: 16},
		}, d.Series[0].Values[5:19]},
		{"exact top3", FindOptions{Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true}, K: 3}, d.Series[1].Values[0:12]},
		{"exact banded", FindOptions{Options: Options{Band: 3, Mode: ModeExact, LengthNorm: true}, K: 5}, d.Series[2].Values[10:28]},
		{"range", FindOptions{Options: Options{Band: -1, LengthNorm: true}, Range: true, MaxDist: 0.08}, d.Series[4].Values[0:16]},
	}
	ctx := context.Background()
	for _, tc := range queries {
		serialFO := tc.fo
		serialFO.Workers = 1
		serial, err := e.Find(ctx, tc.q, serialFO)
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		for _, workers := range []int{2, 4, 0} {
			fo := tc.fo
			fo.Workers = workers
			par, err := e.Find(ctx, tc.q, fo)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			label := tc.name + " workers=" + strconv.Itoa(workers)
			sameMatches(t, label, serial.Matches, par.Matches)
			if par.Stats.Groups != serial.Stats.Groups ||
				par.Stats.GroupsRefined != serial.Stats.GroupsRefined ||
				par.Stats.Members != serial.Stats.Members {
				t.Fatalf("%s: deterministic totals drifted: serial %+v, parallel %+v",
					label, serial.Stats, par.Stats)
			}
			if tc.fo.Range {
				// Range scans prune against a fixed threshold, so the full
				// statistics block is scheduling-independent.
				if par.Stats != serial.Stats {
					t.Fatalf("%s: range stats drifted: serial %+v, parallel %+v",
						label, serial.Stats, par.Stats)
				}
			}
			if par.Stats.GroupsLBPruned+par.Stats.GroupsRefined > par.Stats.Groups {
				t.Fatalf("%s: counters don't reconcile: %+v", label, par.Stats)
			}
		}
	}
}

// TestAnalyticsWorkersEquivalence covers the mining walks: seasonal and
// common-pattern scans are pure reads against fixed thresholds, so results
// and the full statistics block must be identical at every worker count.
func TestAnalyticsWorkersEquivalence(t *testing.T) {
	_, e := parallelWorld(t, ModeApprox)
	ctx := context.Background()

	var serialSt SearchStats
	serialPats, err := e.SeasonalByIndexContext(ctx, 0, SeasonalOptions{Workers: 1}, &serialSt)
	if err != nil {
		t.Fatal(err)
	}
	var serialCommonSt SearchStats
	serialCommon, err := e.CommonPatternsContext(ctx, CommonOptions{Workers: 1}, &serialCommonSt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		var st SearchStats
		pats, err := e.SeasonalByIndexContext(ctx, 0, SeasonalOptions{Workers: workers}, &st)
		if err != nil {
			t.Fatalf("seasonal workers=%d: %v", workers, err)
		}
		if len(pats) != len(serialPats) {
			t.Fatalf("seasonal workers=%d: %d patterns != %d", workers, len(pats), len(serialPats))
		}
		for i := range pats {
			if pats[i].Group != serialPats[i].Group || pats[i].Count() != serialPats[i].Count() {
				t.Fatalf("seasonal workers=%d: pattern %d diverged", workers, i)
			}
		}
		if st != serialSt {
			t.Fatalf("seasonal workers=%d: stats %+v != %+v", workers, st, serialSt)
		}

		st = SearchStats{}
		common, err := e.CommonPatternsContext(ctx, CommonOptions{Workers: workers}, &st)
		if err != nil {
			t.Fatalf("common workers=%d: %v", workers, err)
		}
		if len(common) != len(serialCommon) {
			t.Fatalf("common workers=%d: %d patterns != %d", workers, len(common), len(serialCommon))
		}
		for i := range common {
			if common[i].Group != serialCommon[i].Group || common[i].SeriesCount != serialCommon[i].SeriesCount {
				t.Fatalf("common workers=%d: pattern %d diverged", workers, i)
			}
		}
		if st != serialCommonSt {
			t.Fatalf("common workers=%d: stats %+v != %+v", workers, st, serialCommonSt)
		}
	}
}

// TestConstrainedFallbackBounded is the regression test for the approx-mode
// fallback degeneration: a constrained query whose promising groups cannot
// fill k used to refine every LB-pruned group in the base unconditionally.
// The fixed walk recomputes the pruned representatives, continues in true
// score order, and stops at the same cutoff as the main loop — so the
// number of refined groups stays well below the total group count.
func TestConstrainedFallbackBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	d := ts.NewDataset("fallback")
	// probe: a distinctive high-amplitude shape whose windows group apart
	// from everything else.
	probe := make([]float64, 24)
	for i := range probe {
		probe[i] = 0.85 + 0.1*math.Sin(float64(i)*1.3)
	}
	d.MustAdd(ts.NewSeries("probe", probe))
	// near: a short near-copy of the probe, the only eligible close matches
	// once the probe itself is excluded (too few of them to fill k from the
	// promising groups alone).
	near := make([]float64, 9)
	for i := range near {
		near[i] = probe[i] + 0.002*rng.NormFloat64()
	}
	d.MustAdd(ts.NewSeries("near", near))
	// noise: many mutually-dissimilar series far from the probe, whose
	// groups the representative scoring prunes.
	for s := 0; s < 30; s++ {
		vals := make([]float64, 24)
		v := 0.15 + 0.01*float64(s)
		for i := range vals {
			v += rng.NormFloat64() * 0.04
			vals[i] = v
		}
		d.MustAdd(ts.NewSeries("noise"+strconv.Itoa(s), vals))
	}
	b, err := grouping.Build(d, grouping.Options{ST: 0.04, MinLength: 8, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: ModeApprox, LengthNorm: true})
	if err != nil {
		t.Fatal(err)
	}

	var st SearchStats
	ms, err := e.search(context.Background(), probe[0:8], 3,
		QueryConstraints{ExcludeSeries: map[int]bool{0: true}},
		Options{Band: -1, Mode: ModeApprox, LengthNorm: true, Workers: 1}, &st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("constrained query returned %d matches, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Ref.Series == 0 {
			t.Fatalf("excluded series returned: %+v", m.Ref)
		}
	}
	total := b.NumGroups()
	if st.GroupsRefined >= total/2 {
		t.Fatalf("fallback degenerated: refined %d of %d groups", st.GroupsRefined, total)
	}
	if st.GroupsRefined == 0 || st.Groups != total {
		t.Fatalf("implausible stats: %+v (total groups %d)", st, total)
	}
}

// TestParallelCancellation cancels live parallel scans (top-k, exact,
// range, seasonal) and requires each to surface ctx.Err() promptly — every
// worker polls per group / per member stride, so a cancelled scan may not
// run to completion.
func TestParallelCancellation(t *testing.T) {
	d, e := parallelWorld(t, ModeExact)
	q := d.Series[0].Values[0:20]
	for label, run := range map[string]func(ctx context.Context) error{
		"find": func(ctx context.Context) error {
			_, err := e.Find(ctx, q, FindOptions{
				Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true, Workers: 4}, K: 5,
			})
			return err
		},
		"range": func(ctx context.Context) error {
			_, err := e.Find(ctx, q, FindOptions{
				Options: Options{Band: -1, LengthNorm: true, Workers: 4}, Range: true, MaxDist: 0.5,
			})
			return err
		},
		"seasonal": func(ctx context.Context) error {
			_, err := e.SeasonalByIndexContext(ctx, 0, SeasonalOptions{Workers: 4}, nil)
			return err
		},
	} {
		// Pre-cancelled: no work may happen.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s pre-cancelled: err = %v, want context.Canceled", label, err)
		}
		// Cancelled mid-flight: must return within the test's patience.
		ctx, cancel = context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx) }()
		time.Sleep(500 * time.Microsecond)
		cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v, want nil or context.Canceled", label, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not return within 5s of cancellation", label)
		}
	}
}

// TestConcurrentParallelFinds drives many simultaneous Workers > 1 queries
// (plus mid-flight cancellations) against one engine; run with -race to
// make it meaningful.
func TestConcurrentParallelFinds(t *testing.T) {
	d, e := parallelWorld(t, ModeApprox)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := d.Series[w%len(d.Series)].Values[w : w+16]
			for i := 0; i < 4; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i == 3 {
					// The final round races a cancellation against the scan.
					ctx, cancel = context.WithCancel(ctx)
					go cancel()
				}
				_, err := e.Find(ctx, q, FindOptions{
					Options: Options{Band: -1, LengthNorm: true, Workers: 3}, K: 4,
				})
				if cancel != nil {
					cancel()
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
