package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// cancelWorld builds a deliberately large base (tens of thousands of
// windows across many lengths) so exact-mode scans have real work to
// abandon.
func cancelWorld(t testing.TB) (*ts.Dataset, *Engine) {
	t.Helper()
	d := gen.RandomWalks(gen.WalkOptions{Num: 10, Length: 128, Seed: 7})
	if err := ts.NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	b, err := grouping.Build(d, grouping.Options{ST: 0.15, MinLength: 8, MaxLength: 32})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: -1, Mode: ModeExact, LengthNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

// countingCtx reports cancellation after its Err method has been consulted
// limit times, simulating a context cancelled mid-search at an exact,
// reproducible point. It is not goroutine-safe, so every test using it
// pins Workers: 1 (parallel scans poll the context from several workers;
// their prompt-abort behaviour is covered by parallel_test.go).
type countingCtx struct {
	context.Context
	calls int
	limit int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

func TestFindPreCancelled(t *testing.T) {
	d, e := cancelWorld(t)
	q := d.Series[0].Values[0:24]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, fo := range []FindOptions{
		{Options: Options{Band: -1, Mode: ModeApprox, LengthNorm: true}, K: 3},
		{Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true}, K: 3},
		{Options: Options{Band: -1, LengthNorm: true}, Range: true, MaxDist: 0.5},
	} {
		res, err := e.Find(ctx, q, fo)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%+v: err = %v, want context.Canceled", fo, err)
		}
		if len(res.Matches) != 0 {
			t.Fatalf("%+v: cancelled search returned %d matches", fo, len(res.Matches))
		}
	}
}

// TestFindCancelsWithinOneRound flips the context to cancelled after a
// fixed number of Err checks (one check per group, plus one per member
// stride) and asserts the search returns immediately after observing it:
// the deterministic version of "a cancelled exact scan aborts within one
// pruning round".
func TestFindCancelsWithinOneRound(t *testing.T) {
	d, e := cancelWorld(t)
	q := d.Series[0].Values[0:24]
	for _, mode := range []Mode{ModeApprox, ModeExact} {
		ctx := &countingCtx{Context: context.Background(), limit: 10}
		_, err := e.Find(ctx, q, FindOptions{
			Options: Options{Band: -1, Mode: mode, LengthNorm: true, Workers: 1}, K: 3,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: err = %v, want context.Canceled", mode, err)
		}
		// The search must stop at the first check past the limit: no
		// further group/member rounds may run once Err flips.
		if ctx.calls != ctx.limit+1 {
			t.Fatalf("mode %v: search ran %d context checks past the cancellation point",
				mode, ctx.calls-ctx.limit-1)
		}
	}
	// Range flavour too.
	ctx := &countingCtx{Context: context.Background(), limit: 10}
	_, err := e.Find(ctx, q, FindOptions{
		Options: Options{Band: -1, LengthNorm: true, Workers: 1}, Range: true, MaxDist: 0.5,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("range: err = %v, want context.Canceled", err)
	}
	if ctx.calls != ctx.limit+1 {
		t.Fatalf("range: search ran %d context checks past the cancellation point",
			ctx.calls-ctx.limit-1)
	}
}

// TestAnalyticsPreCancelled verifies every analytics walk observes an
// already-dead context before doing work.
func TestAnalyticsPreCancelled(t *testing.T) {
	d, e := cancelWorld(t)
	q := d.Series[0].Values[0:24]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for label, run := range map[string]func() error{
		"seasonal": func() error {
			_, err := e.SeasonalByIndexContext(ctx, 0, SeasonalOptions{}, nil)
			return err
		},
		"common": func() error {
			_, err := e.CommonPatternsContext(ctx, CommonOptions{}, nil)
			return err
		},
		"sweep": func() error {
			_, err := e.SimilaritySweepContext(ctx, q, []float64{0.5}, QueryConstraints{}, e.Options(), nil)
			return err
		},
		"overview": func() error {
			_, err := e.OverviewContext(ctx, 0, 4, nil)
			return err
		},
		"members": func() error {
			_, err := e.GroupMembersContext(ctx, GroupRef{Length: 8, Index: 0}, nil)
			return err
		},
		"lengths": func() error {
			_, err := e.LengthSummariesContext(ctx, nil)
			return err
		},
		"recommend": func() error {
			_, err := RecommendThresholdsContext(ctx, d, ThresholdOptions{})
			return err
		},
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", label, err)
		}
	}
}

// TestAnalyticsCancelWithinOneRound flips the context to cancelled after a
// fixed number of Err checks and asserts each analytics walk returns
// immediately after observing it — the deterministic version of "a context
// cancelled mid-seasonal-mine or mid-sweep aborts within one pruning
// round". cancelWorld's base is large (tens of thousands of windows), so
// every walk has many rounds left when the cancellation lands.
func TestAnalyticsCancelWithinOneRound(t *testing.T) {
	d, e := cancelWorld(t)
	q := d.Series[0].Values[0:24]
	for label, run := range map[string]func(ctx context.Context) error{
		"seasonal": func(ctx context.Context) error {
			_, err := e.SeasonalByIndexContext(ctx, 0, SeasonalOptions{Workers: 1}, nil)
			return err
		},
		"common": func(ctx context.Context) error {
			_, err := e.CommonPatternsContext(ctx, CommonOptions{Workers: 1}, nil)
			return err
		},
		"sweep": func(ctx context.Context) error {
			opts := e.Options()
			opts.Workers = 1
			_, err := e.SimilaritySweepContext(ctx, q, []float64{0.5}, QueryConstraints{}, opts, nil)
			return err
		},
	} {
		ctx := &countingCtx{Context: context.Background(), limit: 10}
		if err := run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", label, err)
		}
		// The walk must stop at the first check past the limit: no further
		// group/member rounds may run once Err flips.
		if ctx.calls != ctx.limit+1 {
			t.Fatalf("%s: walk ran %d context checks past the cancellation point",
				label, ctx.calls-ctx.limit-1)
		}
	}
}

// TestSeasonalStatsAccumulate pins the statistics contract on the
// analytics side: a full mine reports the groups and members it visited.
func TestSeasonalStatsAccumulate(t *testing.T) {
	_, e := cancelWorld(t)
	var st SearchStats
	if _, err := e.SeasonalByIndexContext(context.Background(), 0, SeasonalOptions{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Groups != e.Base().NumGroups() {
		t.Fatalf("seasonal visited %d groups, base has %d", st.Groups, e.Base().NumGroups())
	}
	if st.Members != e.Base().NumSubsequences() {
		t.Fatalf("seasonal visited %d members, base has %d", st.Members, e.Base().NumSubsequences())
	}
}

// TestFindCancelledMidExactScan cancels a real context while a large
// exact-mode scan is in flight and requires the search to return promptly.
func TestFindCancelledMidExactScan(t *testing.T) {
	d, e := cancelWorld(t)
	q := d.Series[0].Values[0:32]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := e.Find(ctx, q, FindOptions{
			Options: Options{Band: -1, Mode: ModeExact, LengthNorm: true}, K: 5,
		})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// err == nil means the scan legitimately finished before the
		// cancel landed (fast machine); anything else must be ctx.Err().
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exact scan did not return within 5s of cancellation")
	}
}
