package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// CommonPattern is a shape that recurs across several different series:
// the "critical relationships between ... time series" of the paper's
// introduction, mined directly from the base (a group whose members span
// many series is a shared shape by construction).
type CommonPattern struct {
	// Group locates the similarity group.
	Group GroupRef
	// Length is the shape length.
	Length int
	// Rep is the shared shape (group representative).
	Rep []float64
	// SeriesCount is the number of distinct series represented.
	SeriesCount int
	// Occurrences holds one exemplar window per series (the member
	// closest to the representative), sorted by series index.
	Occurrences []ts.SubSeq
	// TotalMembers is the full group cardinality.
	TotalMembers int
}

// CommonOptions configures CommonPatterns.
type CommonOptions struct {
	// MinSeries is the smallest number of distinct series a shape must
	// span to be reported (default 2).
	MinSeries int
	// MinLength/MaxLength bound the shape lengths; zero means the base's
	// range.
	MinLength, MaxLength int
	// MaxPatterns caps the result list (default 16).
	MaxPatterns int
	// Workers bounds the worker pool the group scan is sharded across
	// (values < 1 select GOMAXPROCS, 1 forces the serial path). The mine is
	// a pure read of the base, so results and statistics are identical at
	// every worker count.
	Workers int
}

// CommonPatterns finds shapes shared across series, ranked by the number
// of distinct series spanned (descending), then by total cardinality. No
// distance computation is needed: the base already encodes the mutual
// similarity, so this is a pure scan of group membership.
func (e *Engine) CommonPatterns(opts CommonOptions) []CommonPattern {
	pats, _ := e.CommonPatternsContext(context.Background(), opts, nil)
	return pats
}

// CommonPatternsContext is CommonPatterns with cancellation and statistics:
// the context is checked once per group and every ctxCheckStride members
// (the per-member representative-ED scan is the expensive part), so a
// cancelled mine aborts within one pruning round with ctx.Err(). st, when
// non-nil, accumulates the groups and members visited.
func (e *Engine) CommonPatternsContext(ctx context.Context, opts CommonOptions, st *SearchStats) ([]CommonPattern, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, err := e.ds.Pin()
	if err != nil {
		return nil, fmt.Errorf("core: CommonPatterns: %w", err)
	}
	defer release()
	minSeries := opts.MinSeries
	if minSeries < 2 {
		minSeries = 2
	}
	minL, maxL := opts.MinLength, opts.MaxLength
	if minL <= 0 {
		minL = e.base.MinLength
	}
	if maxL <= 0 {
		maxL = e.base.MaxLength
	}
	maxPatterns := opts.MaxPatterns
	if maxPatterns <= 0 {
		maxPatterns = 16
	}

	type job struct {
		l, gi int
		g     *grouping.Group
	}
	var jobs []job
	for _, l := range e.base.Lengths() {
		if l < minL || l > maxL {
			continue
		}
		//onex:nopoll O(1) job enumeration per group; the scan that follows polls per group and per 64 members
		for gi, g := range e.base.GroupsOfLength(l) {
			jobs = append(jobs, job{l: l, gi: gi, g: g})
		}
	}
	// mineGroup reduces one group to its per-series exemplars; st may be a
	// worker-local accumulator.
	mineGroup := func(j job, st *SearchStats) (CommonPattern, bool, error) {
		if st != nil {
			st.Groups++
			st.Members += len(j.g.Members)
		}
		perSeries := map[int]ts.SubSeq{}
		perSeriesD := map[int]float64{}
		for mi, m := range j.g.Members {
			if mi%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return CommonPattern{}, false, err
				}
			}
			d := dist.ED(m.Values(e.ds), j.g.Rep)
			if prev, ok := perSeriesD[m.Series]; !ok || d < prev {
				perSeries[m.Series] = m
				perSeriesD[m.Series] = d
			}
		}
		if len(perSeries) < minSeries {
			return CommonPattern{}, false, nil
		}
		occ := make([]ts.SubSeq, 0, len(perSeries))
		//onex:detorder occ is sorted by Series immediately below, so iteration order cannot reach the output
		for _, m := range perSeries {
			occ = append(occ, m)
		}
		sort.Slice(occ, func(i, j int) bool { return occ[i].Series < occ[j].Series })
		return CommonPattern{
			Group:        GroupRef{Length: j.l, Index: j.gi},
			Length:       j.l,
			Rep:          j.g.Rep,
			SeriesCount:  len(perSeries),
			Occurrences:  occ,
			TotalMembers: len(j.g.Members),
		}, true, nil
	}

	out, err := scanGroups(ctx, opts.Workers, jobs, st, mineGroup)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SeriesCount != out[j].SeriesCount {
			return out[i].SeriesCount > out[j].SeriesCount
		}
		if out[i].TotalMembers != out[j].TotalMembers {
			return out[i].TotalMembers > out[j].TotalMembers
		}
		return out[i].Length > out[j].Length
	})
	if len(out) > maxPatterns {
		out = out[:maxPatterns]
	}
	return out, nil
}
