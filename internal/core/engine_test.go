package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dist"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// newTestWorld builds a deterministic dataset + base + engine for tests.
func newTestWorld(t testing.TB, numSeries, length int, st float64, minL, maxL int, mode Mode, band int) (*ts.Dataset, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(20170514))
	d := ts.NewDataset("coretest")
	for i := 0; i < numSeries; i++ {
		vals := make([]float64, length)
		switch i % 3 {
		case 0: // noisy sine
			for j := range vals {
				vals[j] = 0.5 + 0.4*math.Sin(float64(j)*0.5+float64(i)) + rng.NormFloat64()*0.02
			}
		case 1: // ramp
			for j := range vals {
				vals[j] = float64(j)/float64(length) + rng.NormFloat64()*0.02
			}
		default: // random walk
			v := 0.5
			for j := range vals {
				v += rng.NormFloat64() * 0.05
				vals[j] = v
			}
		}
		d.MustAdd(ts.NewSeries("s"+strconv.Itoa(i), vals))
	}
	b, err := grouping.Build(d, grouping.Options{ST: st, MinLength: minL, MaxLength: maxL})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, b, Options{Band: band, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func TestNewEngineChecksGuards(t *testing.T) {
	d, e := newTestWorld(t, 4, 24, 0.1, 4, 8, ModeApprox, -1)
	if _, err := NewEngine(nil, e.Base(), Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewEngine(d, nil, Options{}); err == nil {
		t.Fatal("nil base accepted")
	}
	other := d.Clone()
	other.Series[0].Values[0] += 1
	if _, err := NewEngine(other, e.Base(), Options{}); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

func TestBestMatchSelfQueryFindsItself(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	// A query copied from the dataset must be matched at distance 0.
	q := d.Series[2].Values[3:10] // length 7, in range
	m, err := e.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist != 0 {
		t.Fatalf("self query distance = %g, want 0", m.Dist)
	}
	if !m.Path.Valid(len(q), m.Ref.Length) {
		t.Fatal("result path invalid")
	}
}

func TestBestMatchExcludesOverlap(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	self := ts.SubSeq{Series: 2, Start: 3, Length: 7}
	q := self.Values(d)
	m, err := e.BestMatchConstrained(q, QueryConstraints{ExcludeOverlap: self})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ref.Overlaps(self) {
		t.Fatalf("excluded overlap returned: %+v", m.Ref)
	}
	m2, err := e.BestMatchConstrained(q, QueryConstraints{ExcludeSeries: map[int]bool{2: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Ref.Series == 2 {
		t.Fatal("excluded series returned")
	}
}

func TestKBestOrderingAndUniqueness(t *testing.T) {
	_, e := newTestWorld(t, 6, 30, 0.1, 5, 10, ModeApprox, -1)
	q := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	ms, err := e.KBestMatches(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	seen := make(map[ts.SubSeq]bool)
	for i, m := range ms {
		if seen[m.Ref] {
			t.Fatalf("duplicate match %v", m.Ref)
		}
		seen[m.Ref] = true
		if i > 0 && ms[i-1].Dist > m.Dist {
			t.Fatalf("matches out of order: %g before %g", ms[i-1].Dist, m.Dist)
		}
		if got := dist.DTW(q, m.Values); !almost(got, m.Dist, 1e-9) {
			t.Fatalf("reported dist %g, recomputed %g", m.Dist, got)
		}
	}
}

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestQueryValidation(t *testing.T) {
	_, e := newTestWorld(t, 4, 24, 0.1, 4, 8, ModeApprox, -1)
	if _, err := e.BestMatch([]float64{1}); err == nil {
		t.Fatal("length-1 query accepted")
	}
	if _, err := e.KBestMatches([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := e.BestMatchConstrained([]float64{1, 2, 3},
		QueryConstraints{MinLength: 100, MaxLength: 200}); err != ErrNoMatch {
		t.Fatal("impossible length constraints should yield ErrNoMatch")
	}
}

func TestLengthConstraintsHonored(t *testing.T) {
	_, e := newTestWorld(t, 5, 30, 0.1, 5, 10, ModeApprox, -1)
	q := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	ms, err := e.KBestMatchesConstrained(q, 3, QueryConstraints{MinLength: 6, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ref.Length != 6 {
			t.Fatalf("constraint violated: match length %d", m.Ref.Length)
		}
	}
}

// The central exactness property: ModeExact returns the same best distance
// as the brute-force scan over the same candidate population, for both
// banded and unbanded DTW.
func TestPropertyExactModeEqualsBruteForce(t *testing.T) {
	for _, band := range []int{-1, 3} {
		d, e := newTestWorld(t, 5, 26, 0.08, 4, 9, ModeExact, band)
		rng := rand.New(rand.NewSource(777))
		for trial := 0; trial < 12; trial++ {
			qlen := 4 + rng.Intn(6)
			q := make([]float64, qlen)
			v := rng.Float64()
			for i := range q {
				v += rng.NormFloat64() * 0.08
				q[i] = v
			}
			got, err := e.BestMatch(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := bruteforce.BestMatch(d, q, bruteforce.Options{
				Band:         band,
				MinLength:    e.Base().MinLength,
				MaxLength:    e.Base().MaxLength,
				EarlyAbandon: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !almost(got.Dist, want.Dist, 1e-9) {
				t.Fatalf("band %d trial %d: exact mode %g (ref %v) != brute force %g (ref %v)",
					band, trial, got.Dist, got.Ref, want.Dist, want.Ref)
			}
		}
	}
}

// Approx mode must return a genuinely indexed subsequence whose distance is
// consistent, and should usually agree with exact top-1 on easy data.
func TestApproxModeReturnsConsistentMatch(t *testing.T) {
	d, e := newTestWorld(t, 5, 26, 0.08, 4, 9, ModeApprox, -1)
	rng := rand.New(rand.NewSource(888))
	agree := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		qlen := 4 + rng.Intn(6)
		q := make([]float64, qlen)
		v := rng.Float64()
		for i := range q {
			v += rng.NormFloat64() * 0.08
			q[i] = v
		}
		got, err := e.BestMatch(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Ref.Validate(d); err != nil {
			t.Fatalf("approx match invalid ref: %v", err)
		}
		want, err := bruteforce.BestMatch(d, q, bruteforce.Options{
			Band: -1, MinLength: 4, MaxLength: 9, EarlyAbandon: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist < want.Dist-1e-9 {
			t.Fatalf("approx beat the oracle: %g < %g", got.Dist, want.Dist)
		}
		if almost(got.Dist, want.Dist, 1e-9) {
			agree++
		}
	}
	if agree == 0 {
		t.Fatalf("approx mode never matched exact top-1 in %d trials", trials)
	}
}

func TestOverview(t *testing.T) {
	_, e := newTestWorld(t, 6, 30, 0.1, 5, 10, ModeApprox, -1)
	ov := e.Overview(6, 4)
	if len(ov) == 0 {
		t.Fatal("empty overview")
	}
	if len(ov) > 4 {
		t.Fatalf("overview k not honored: %d", len(ov))
	}
	for i, gs := range ov {
		if gs.Count <= 0 || len(gs.Rep) != 6 {
			t.Fatalf("bad summary %+v", gs)
		}
		if i > 0 && ov[i-1].Count < gs.Count {
			t.Fatal("overview not sorted by cardinality")
		}
		if gs.MaxRadius > e.Base().HalfST(6)+1e-9 {
			t.Fatalf("summary radius %g exceeds ST*l/2", gs.MaxRadius)
		}
	}
	// Length 0 auto-selects.
	if ov0 := e.Overview(0, 3); len(ov0) == 0 {
		t.Fatal("auto-length overview empty")
	}
	// k<=0 returns all.
	if all := e.Overview(6, 0); len(all) < len(ov) {
		t.Fatal("k=0 should return all groups")
	}
}

func TestLengthSummaries(t *testing.T) {
	d, e := newTestWorld(t, 5, 30, 0.1, 5, 8, ModeApprox, -1)
	ls := e.LengthSummaries()
	if len(ls) != 4 {
		t.Fatalf("summaries = %d lengths, want 4", len(ls))
	}
	for i, s := range ls {
		if s.Groups <= 0 || s.Subsequences <= 0 {
			t.Fatalf("empty summary %+v", s)
		}
		if i > 0 && ls[i-1].Length >= s.Length {
			t.Fatal("summaries not ascending")
		}
		if want := d.NumSubsequences(s.Length, s.Length); s.Subsequences != want {
			t.Fatalf("length %d: %d subsequences, want %d", s.Length, s.Subsequences, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeApprox.String() != "approx" || ModeExact.String() != "exact" {
		t.Fatal("mode strings wrong")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
