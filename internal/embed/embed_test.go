package embed

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/ts"
)

func walkDataset(t testing.TB, n, length int, seed int64) *ts.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("emb")
	for i := 0; i < n; i++ {
		vals := make([]float64, length)
		v := rng.Float64()
		for j := range vals {
			v += rng.NormFloat64() * 0.1
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries("e"+strconv.Itoa(i), vals))
	}
	return d
}

func TestBuildShape(t *testing.T) {
	d := walkDataset(t, 4, 30, 1)
	ix, err := Build(d, []int{8, 12}, Options{NumRefs: 4, Refine: 5, Band: 3})
	if err != nil {
		t.Fatal(err)
	}
	ls := ix.Lengths()
	if len(ls) != 2 || ls[0] != 8 || ls[1] != 12 {
		t.Fatalf("Lengths = %v", ls)
	}
	if got, want := ix.NumWindows(8), 4*(30-8+1); got != want {
		t.Fatalf("NumWindows(8) = %d, want %d", got, want)
	}
	if ix.NumWindows(99) != 0 {
		t.Fatal("unindexed length should report 0 windows")
	}
}

func TestBuildErrors(t *testing.T) {
	d := walkDataset(t, 2, 10, 2)
	if _, err := Build(d, nil, Options{}); err == nil {
		t.Fatal("no lengths accepted")
	}
	if _, err := Build(d, []int{1}, Options{}); err == nil {
		t.Fatal("length 1 accepted")
	}
	if _, err := Build(d, []int{50}, Options{}); err == nil {
		t.Fatal("impossible length accepted")
	}
	if _, err := Build(ts.NewDataset("empty"), []int{4}, Options{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBestMatchSelfQuery(t *testing.T) {
	d := walkDataset(t, 4, 30, 3)
	ix, err := Build(d, []int{10}, Options{NumRefs: 6, Refine: 8, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := d.Series[1].Values[5:15]
	r, err := ix.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	// The query's own window embeds identically to itself (embedding
	// distance 0), so it always survives filtering and refines to 0.
	if r.Dist != 0 {
		t.Fatalf("self query dist = %g", r.Dist)
	}
}

func TestBestMatchErrors(t *testing.T) {
	d := walkDataset(t, 3, 20, 4)
	ix, err := Build(d, []int{8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.BestMatch(make([]float64, 9)); err == nil {
		t.Fatal("unindexed length accepted")
	}
}

// The method is approximate: it must never beat the exact oracle, and with
// a full refine budget it must equal it.
func TestApproximationSandwich(t *testing.T) {
	d := walkDataset(t, 5, 26, 5)
	const qlen = 9
	full := 5 * (26 - qlen + 1)
	ixSmall, err := Build(d, []int{qlen}, Options{NumRefs: 4, Refine: 3, Band: -1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ixFull, err := Build(d, []int{qlen}, Options{NumRefs: 4, Refine: full, Band: -1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, qlen)
		v := rng.Float64()
		for i := range q {
			v += rng.NormFloat64() * 0.1
			q[i] = v
		}
		oracle, err := bruteforce.BestMatch(d, q, bruteforce.Options{Band: -1, EarlyAbandon: true})
		if err != nil {
			t.Fatal(err)
		}
		small, err := ixSmall.BestMatch(q)
		if err != nil {
			t.Fatal(err)
		}
		if small.Dist < oracle.Dist-1e-9 {
			t.Fatalf("approximate beat the oracle: %g < %g", small.Dist, oracle.Dist)
		}
		fullRes, err := ixFull.BestMatch(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fullRes.Dist-oracle.Dist) > 1e-9 {
			t.Fatalf("full refine budget should be exact: %g vs %g", fullRes.Dist, oracle.Dist)
		}
		if small.Filtered != full-3 {
			t.Fatalf("Filtered = %d, want %d", small.Filtered, full-3)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	d := walkDataset(t, 3, 20, 8)
	a, err := Build(d, []int{6}, Options{NumRefs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(d, []int{6}, Options{NumRefs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.byLength[6], b.byLength[6]
	for i := range ta.emb {
		if ta.emb[i] != tb.emb[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}
