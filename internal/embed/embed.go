// Package embed implements an embedding-based approximate subsequence
// matcher in the style of Athitsos et al., "Approximate embedding-based
// subsequence matching of time series" (SIGMOD 2008) — reference [1] of
// the demo paper and the class of approximate competitors ONEX claims "up
// to 19% more accurate results" against (E2).
//
// Offline, every candidate window x of an indexed length is mapped to the
// vector F(x) = (DTW(x, r_1), ..., DTW(x, r_R)) of distances to R fixed
// reference sequences. Online, the query is mapped the same way (R DTW
// computations), the candidates are ranked by the L-infinity distance
// |F(q) - F(x)| in embedding space, and the best `Refine` candidates are
// re-scored with true DTW. Because DTW violates the triangle inequality,
// the embedding ranking carries no guarantee — which is precisely the
// accuracy gap the experiment measures.
package embed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/ts"
)

// Options configures index construction.
type Options struct {
	// NumRefs is the number of reference objects R (default 8).
	NumRefs int
	// Refine is the number of filter survivors re-scored with true DTW
	// (default 10). This is the knob E2 equalizes against ONEX's group
	// size for a fair accuracy comparison.
	Refine int
	// Band is the Sakoe-Chiba width used for all DTW (negative =
	// unconstrained).
	Band int
	// Seed fixes reference selection (0 means a package default).
	Seed int64
}

// Index is a built embedding index over a dataset.
type Index struct {
	ds   *ts.Dataset
	opts Options
	// refs are the reference sequences, one per embedding dimension.
	refs [][]float64
	// byLength caches per-candidate-length embedding tables.
	byLength map[int]*lengthTable
}

type lengthTable struct {
	windows []ts.SubSeq
	// emb is row-major: emb[w*R+k] = DTW(window w, ref k).
	emb []float64
}

// Result is one match.
type Result struct {
	Ref  ts.SubSeq
	Dist float64
	// Filtered is the number of candidates that were ranked without DTW.
	Filtered int
}

// ErrLengthNotIndexed is returned when the query length was not built.
var ErrLengthNotIndexed = errors.New("embed: query length not indexed")

// Build constructs an index for the given candidate lengths. References
// are random windows of the dataset resampled to a common pivot length;
// each candidate window is embedded with banded DTW against every
// reference (resampled to the candidate's length), which is the expensive
// offline step the method trades for fast online filtering.
func Build(d *ts.Dataset, lengths []int, opts Options) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("embed: Build: %w", err)
	}
	if len(lengths) == 0 {
		return nil, errors.New("embed: Build: no lengths requested")
	}
	numRefs := opts.NumRefs
	if numRefs <= 0 {
		numRefs = 8
	}
	refine := opts.Refine
	if refine <= 0 {
		refine = 10
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 2008
	}
	opts.NumRefs, opts.Refine, opts.Seed = numRefs, refine, seed
	rng := rand.New(rand.NewSource(seed))

	// Pick reference windows: random (series, start, length) draws, stored
	// at a pivot length so one reference serves every candidate length.
	pivot := 0
	for _, l := range lengths {
		pivot += l
	}
	pivot /= len(lengths)
	if pivot < 2 {
		pivot = 2
	}
	refs := make([][]float64, 0, numRefs)
	for len(refs) < numRefs {
		si := rng.Intn(d.Len())
		s := d.Series[si]
		if s.Len() < 2 {
			continue
		}
		l := 2 + rng.Intn(s.Len()-1)
		st := rng.Intn(s.Len() - l + 1)
		refs = append(refs, dist.Resample(s.Values[st:st+l], pivot))
	}

	ix := &Index{ds: d, opts: opts, refs: refs, byLength: make(map[int]*lengthTable)}
	for _, l := range lengths {
		if l < 2 {
			return nil, fmt.Errorf("embed: Build: candidate length %d too short", l)
		}
		if _, dup := ix.byLength[l]; dup {
			continue
		}
		tbl := &lengthTable{}
		// Resample references once per length.
		refsAtL := make([][]float64, len(refs))
		for k, r := range refs {
			refsAtL[k] = dist.Resample(r, l)
		}
		for si, s := range d.Series {
			for st := 0; st+l <= s.Len(); st++ {
				w := s.Values[st : st+l]
				tbl.windows = append(tbl.windows, ts.SubSeq{Series: si, Start: st, Length: l})
				for _, r := range refsAtL {
					tbl.emb = append(tbl.emb, dist.DTWBanded(w, r, opts.Band))
				}
			}
		}
		if len(tbl.windows) == 0 {
			return nil, fmt.Errorf("embed: Build: no windows of length %d", l)
		}
		ix.byLength[l] = tbl
	}
	return ix, nil
}

// Lengths returns the indexed candidate lengths, ascending.
func (ix *Index) Lengths() []int {
	out := make([]int, 0, len(ix.byLength))
	for l := range ix.byLength {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// NumWindows returns the candidate count for one length.
func (ix *Index) NumWindows(length int) int {
	if tbl, ok := ix.byLength[length]; ok {
		return len(tbl.windows)
	}
	return 0
}

// BestMatch runs filter-and-refine for a query whose length is indexed.
func (ix *Index) BestMatch(q []float64) (Result, error) {
	tbl, ok := ix.byLength[len(q)]
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrLengthNotIndexed, len(q))
	}
	R := len(ix.refs)
	// Embed the query.
	fq := make([]float64, R)
	for k, r := range ix.refs {
		fq[k] = dist.DTWBanded(q, dist.Resample(r, len(q)), ix.opts.Band)
	}
	// Rank candidates by L-infinity embedding distance.
	type scored struct {
		idx   int
		score float64
	}
	ranked := make([]scored, len(tbl.windows))
	for w := range tbl.windows {
		maxDiff := 0.0
		base := w * R
		for k := 0; k < R; k++ {
			diff := math.Abs(fq[k] - tbl.emb[base+k])
			if diff > maxDiff {
				maxDiff = diff
			}
		}
		ranked[w] = scored{idx: w, score: maxDiff}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score < ranked[j].score })

	refine := ix.opts.Refine
	if refine > len(ranked) {
		refine = len(ranked)
	}
	best := Result{Dist: math.Inf(1), Filtered: len(ranked) - refine}
	for _, cand := range ranked[:refine] {
		ref := tbl.windows[cand.idx]
		dd := dist.DTWEarlyAbandon(q, ref.Values(ix.ds), ix.opts.Band, best.Dist)
		if dd < best.Dist {
			best.Dist = dd
			best.Ref = ref
		}
	}
	if math.IsInf(best.Dist, 1) {
		return Result{}, errors.New("embed: refine stage found no candidate")
	}
	return best, nil
}
