// Package servecache is the serving tier's result cache: a byte-budgeted
// LRU map from canonicalized request keys to encoded response bodies.
//
// The cache itself is deliberately dumb — it knows nothing about queries,
// datasets, or staleness. Correctness under mutation comes entirely from
// keying: the HTTP layer prefixes every key with the DB's process-unique
// instance ID (onex.DB.ID, so replacing a dataset under the same name
// orphans the old incarnation's entries) and its monotone mutation
// version (onex.DB.Version, so an entry computed before an AddSeries is
// structurally unreachable afterwards). Stale generations are never
// served; they simply stop being referenced and age out of the LRU under
// byte pressure. That design keeps the cache free of invalidation races:
// there is no "flush" step to order against the mutation.
//
// Keys are produced by CanonicalQuery / CanonicalAnalysis (key.go), which
// map semantically equal requests — field order, whitespace, resolvable
// defaults — onto one deterministic string while keeping requests that
// can produce different response bytes on distinct strings. Workers is
// part of the key: it is echoed in the response's resolved request, so
// two values below the server's cap are distinct responses (the server
// caps it before keying, collapsing everything at or above the cap).
package servecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the bookkeeping cost of one entry (map slot,
// list element, entry header) charged against the byte budget on top of
// the key and value payloads, so a budget of N bytes bounds real memory
// within a small constant factor even for many tiny entries.
const entryOverhead = 128

// Cache is a concurrency-safe LRU cache with a byte budget. The zero value
// is not usable; construct with New.
type Cache struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type entry struct {
	key string
	val []byte
}

// New builds a cache bounded to maxBytes of keys+values+overhead. A
// non-positive budget yields a cache that stores nothing (every Get
// misses), which lets callers keep one code path for "cache disabled".
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
// The returned slice is shared with the cache and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	val := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key (replacing any previous value) and evicts
// least-recently-used entries until the cache fits its byte budget again.
// Values larger than the whole budget are silently not stored.
func (c *Cache) Put(key string, val []byte) {
	size := entrySize(key, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

// evictOldest removes the LRU entry. Callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= entrySize(e.key, e.val)
	c.evictions.Add(1)
}

func entrySize(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + entryOverhead
}

// Stats is a point-in-time snapshot of the cache's counters and occupancy.
type Stats struct {
	Hits      int64 // Get calls answered from the cache
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries dropped by byte pressure
	Entries   int   // live entries
	Bytes     int64 // charged bytes (keys + values + overhead)
	MaxBytes  int64 // configured budget
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes, maxBytes := len(c.items), c.bytes, c.maxBytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  maxBytes,
	}
}
