package servecache

import (
	"encoding/json"
	"testing"

	"repro/onex"
)

// FuzzCanonicalQuery feeds arbitrary JSON through the same decode step the
// HTTP layer uses and asserts the canonicalizer's contract: it never
// panics, it is deterministic, and it is stable under a JSON round trip of
// the decoded request (a re-sent request must hit the same entry).
func FuzzCanonicalQuery(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"values":[1,2,3],"k":2}`,
		`{"window":{"series":"MA","start":3,"length":8},"k":1,"mode":"exact"}`,
		`{"values":[0.5],"max_dist":0.25,"exclude":{"self":true,"series":["a","b"]}}`,
		`{"values":[1e308,-1e-308,0],"lengths":{"min":4,"max":10},"band":2}`,
		`{"values":[1,2],"length_norm":"raw","workers":4}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var q onex.Query
		if err := json.Unmarshal(data, &q); err != nil {
			return // not a decodable request; the handler rejects it first
		}
		key := CanonicalQuery(q)
		if key == "" {
			t.Fatal("empty key")
		}
		if again := CanonicalQuery(q); again != key {
			t.Fatalf("nondeterministic: %q vs %q", key, again)
		}
		// Round-trip the decoded struct: what a client would send on retry.
		reenc, err := json.Marshal(q)
		if err != nil {
			return // NaN/Inf values decoded from nonstandard JSON don't re-encode
		}
		var q2 onex.Query
		if err := json.Unmarshal(reenc, &q2); err != nil {
			t.Fatalf("re-decode %s: %v", reenc, err)
		}
		if CanonicalQuery(q2) != key {
			t.Fatalf("round trip changed key:\n was %q\n now %q", key, CanonicalQuery(q2))
		}
	})
}

// FuzzCanonicalAnalysis is FuzzCanonicalQuery for the analytics request.
func FuzzCanonicalAnalysis(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"kind":"overview","k":8}`,
		`{"kind":"seasonal","series":"MA","lengths":{"min":4,"max":10}}`,
		`{"kind":"common-patterns","min_series":3,"k":5}`,
		`{"kind":"similarity-sweep","values":[1,2,3],"thresholds":[0.1,0.2,0.4]}`,
		`{"kind":"group-members","length":8,"index":2}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var a onex.Analysis
		if err := json.Unmarshal(data, &a); err != nil {
			return
		}
		key := CanonicalAnalysis(a)
		if key == "" {
			t.Fatal("empty key")
		}
		if again := CanonicalAnalysis(a); again != key {
			t.Fatalf("nondeterministic: %q vs %q", key, again)
		}
		reenc, err := json.Marshal(a)
		if err != nil {
			return
		}
		var a2 onex.Analysis
		if err := json.Unmarshal(reenc, &a2); err != nil {
			t.Fatalf("re-decode %s: %v", reenc, err)
		}
		if CanonicalAnalysis(a2) != key {
			t.Fatalf("round trip changed key:\n was %q\n now %q", key, CanonicalAnalysis(a2))
		}
	})
}
