package servecache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Replacement keeps one entry and returns the new value.
	c.Put("a", []byte("beta"))
	got, _ = c.Get("a")
	if string(got) != "beta" {
		t.Fatalf("after replace Get = %q", got)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Budget fits exactly two entries (key 1 byte + val 1 byte + overhead).
	c := New(2 * (2 + entryOverhead))
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a") // a is now most recently used
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) evicted instead of b")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestByteBudgetBound(t *testing.T) {
	budget := int64(10 * (8 + 64 + entryOverhead))
	c := New(budget)
	for i := range 1000 {
		c.Put(fmt.Sprintf("key-%04d", i), make([]byte, 64))
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("after put %d: bytes %d over budget %d", i, st.Bytes, budget)
		}
	}
	st := c.Stats()
	if st.Entries == 0 || st.Entries > 10 {
		t.Fatalf("entries = %d, want 1..10", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 100x overflow")
	}
}

func TestOversizeValueNotStored(t *testing.T) {
	c := New(256)
	c.Put("big", make([]byte, 1024))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize value was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after oversize put = %+v", st)
	}
}

func TestReplaceAdjustsBytesAndEvicts(t *testing.T) {
	budget := int64(2*(1+4+entryOverhead)) + 8
	c := New(budget)
	c.Put("a", []byte("AAAA"))
	c.Put("b", []byte("BBBB"))
	// Growing a's value must push the cache over budget and evict b (LRU).
	c.Put("a", make([]byte, 4+entryOverhead))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived a replacement that exceeded the budget")
	}
	if st := c.Stats(); st.Bytes > budget {
		t.Fatalf("bytes %d over budget %d after replace", st.Bytes, budget)
	}
}

func TestNonPositiveBudgetStoresNothing(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := New(budget)
		c.Put("a", []byte("x"))
		if _, ok := c.Get("a"); ok {
			t.Fatalf("budget %d stored an entry", budget)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Exercised under -race in CI: mixed Get/Put/Stats from many
	// goroutines over a budget small enough to force constant eviction.
	c := New(20 * (8 + 16 + entryOverhead))
	var wg sync.WaitGroup
	for g := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 500 {
				key := fmt.Sprintf("key-%03d", (g*131+i)%50)
				if v, ok := c.Get(key); ok && len(v) != 16 {
					t.Errorf("corrupt value length %d", len(v))
					return
				}
				c.Put(key, make([]byte, 16))
				_ = c.Stats()
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d after concurrent churn", st.Bytes, st.MaxBytes)
	}
}
