package servecache

import (
	"strconv"
	"strings"

	"repro/onex"
)

// CanonicalQuery encodes a decoded onex.Query as a deterministic cache-key
// fragment. Two queries map to the same fragment exactly when the library
// is guaranteed to produce byte-identical responses for them (matches,
// stats, and the resolved-request echo alike); semantically distinct
// queries always map to distinct fragments.
//
// The encoding therefore applies precisely the default resolution
// DB.Find's echo applies — K < 1 means 1 outside range mode, the empty
// LengthNorm means "length" — and nothing more. Fields whose resolution
// depends on the DB configuration (Mode, Band) or on the base (Lengths)
// are kept verbatim: merging those would still return correct matches,
// but the conservative choice costs only a duplicate cache entry, never a
// wrong answer. Workers is expected to be pre-resolved by the caller (the
// server caps it per request before keying), so requests that resolve to
// the same pool size share an entry.
//
// Injectivity comes from the fixed field order, explicit tags, quoted
// strings, length-prefixed lists, and hex float formatting (every float64
// bit pattern except NaN has a unique representation).
func CanonicalQuery(q onex.Query) string {
	var b strings.Builder
	b.Grow(96 + 16*len(q.Values))
	b.WriteString("q1")
	writeFloats(&b, "vals", q.Values)
	writeWindow(&b, q.Window)
	k := q.K
	if q.MaxDist <= 0 && k < 1 {
		k = 1 // Find: top-K mode defaults K to 1 (echoed as 1)
	}
	writeInt(&b, "k", k)
	writeFloat(&b, "maxdist", q.MaxDist)
	writeBool(&b, "xself", q.Exclude.Self)
	writeStrings(&b, "xs", q.Exclude.Series)
	writeInt(&b, "lmin", q.Lengths.Min)
	writeInt(&b, "lmax", q.Lengths.Max)
	writeString(&b, "mode", string(q.Mode))
	writeInt(&b, "band", q.Band)
	norm := q.LengthNorm
	if norm == onex.NormDefault {
		norm = onex.NormLength // the documented default, echoed as "length"
	}
	writeString(&b, "norm", string(norm))
	writeInt(&b, "w", q.Workers)
	return b.String()
}

// CanonicalAnalysis is CanonicalQuery's analytics counterpart. It mirrors
// DB.Analyze's kind-specific default resolution — seasonal and
// common-patterns resolve K <= 0 to 16, MinOccurrences and MinSeries
// below 2 to 2 — and keeps every DB- or data-dependent field (Mode, Band,
// Lengths, overview's auto-selected Length) verbatim.
func CanonicalAnalysis(a onex.Analysis) string {
	var b strings.Builder
	b.Grow(96 + 16*(len(a.Values)+len(a.Thresholds)))
	b.WriteString("a1")
	writeString(&b, "kind", string(a.Kind))
	writeString(&b, "series", a.Series)
	writeFloats(&b, "vals", a.Values)
	writeWindow(&b, a.Window)
	writeInt(&b, "len", a.Length)
	writeInt(&b, "idx", a.Index)
	k, minOcc, minSer := a.K, a.MinOccurrences, a.MinSeries
	switch a.Kind {
	case onex.AnalysisSeasonal:
		if k <= 0 {
			k = 16
		}
		minOcc = max(minOcc, 2)
	case onex.AnalysisCommonPatterns:
		if k <= 0 {
			k = 16
		}
		minSer = max(minSer, 2)
	}
	writeInt(&b, "k", k)
	writeInt(&b, "lmin", a.Lengths.Min)
	writeInt(&b, "lmax", a.Lengths.Max)
	writeInt(&b, "minocc", minOcc)
	writeInt(&b, "minser", minSer)
	writeFloats(&b, "th", a.Thresholds)
	writeString(&b, "mode", string(a.Mode))
	writeInt(&b, "band", a.Band)
	writeInt(&b, "w", a.Workers)
	return b.String()
}

func writeInt(b *strings.Builder, tag string, v int) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	b.WriteString(strconv.Itoa(v))
}

func writeBool(b *strings.Builder, tag string, v bool) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	if v {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
}

// writeString quotes v, so separator bytes inside names cannot collide
// with the key structure.
func writeString(b *strings.Builder, tag string, v string) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	b.WriteString(strconv.Quote(v))
}

// writeFloat uses hex float formatting: exact (no rounding), injective on
// every bit pattern except NaN, and it cannot contain '|' or ','.
func writeFloat(b *strings.Builder, tag string, v float64) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
}

// writeFloats length-prefixes the list, so element boundaries are
// unambiguous and nil and empty encode identically to each other but
// differently from any non-empty list.
func writeFloats(b *strings.Builder, tag string, vs []float64) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	b.WriteString(strconv.Itoa(len(vs)))
	b.WriteByte(':')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
}

func writeStrings(b *strings.Builder, tag string, vs []string) {
	b.WriteByte('|')
	//onex:keyok tag is a compile-time literal chosen by this package's canonicalizers, never request data
	b.WriteString(tag)
	b.WriteByte('=')
	b.WriteString(strconv.Itoa(len(vs)))
	b.WriteByte(':')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(v))
	}
}

func writeWindow(b *strings.Builder, w onex.Window) {
	writeString(b, "ws", w.Series)
	writeInt(b, "wo", w.Start)
	writeInt(b, "wl", w.Length)
}
