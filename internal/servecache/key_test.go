package servecache

import (
	"encoding/json"
	"math"
	"testing"

	"repro/onex"
)

// TestCanonicalQueryEqualPairs: structurally different requests that the
// engine is contractually bound to answer byte-identically must share a key.
func TestCanonicalQueryEqualPairs(t *testing.T) {
	base := onex.Query{Values: []float64{1, 2, 3}, K: 1}
	tests := []struct {
		name string
		a, b onex.Query
	}{
		{"identical", base, base},
		{
			// Find resolves K < 1 to 1 in top-K mode and echoes 1.
			"k zero vs one",
			onex.Query{Values: []float64{1, 2, 3}},
			onex.Query{Values: []float64{1, 2, 3}, K: 1},
		},
		{
			"k negative vs one",
			onex.Query{Values: []float64{1, 2, 3}, K: -5},
			onex.Query{Values: []float64{1, 2, 3}, K: 1},
		},
		{
			// Empty LengthNorm is documented (and echoed) as "length".
			"norm default vs length",
			onex.Query{Values: []float64{1, 2, 3}, K: 1, LengthNorm: onex.NormDefault},
			onex.Query{Values: []float64{1, 2, 3}, K: 1, LengthNorm: onex.NormLength},
		},
		{
			// nil and empty slices are indistinguishable after JSON decode.
			"nil vs empty exclude list",
			onex.Query{Values: []float64{1, 2, 3}, K: 1, Exclude: onex.Exclude{Series: nil}},
			onex.Query{Values: []float64{1, 2, 3}, K: 1, Exclude: onex.Exclude{Series: []string{}}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := CanonicalQuery(tc.a), CanonicalQuery(tc.b)
			if ka != kb {
				t.Errorf("keys differ:\n a=%s\n b=%s", ka, kb)
			}
		})
	}
}

// TestCanonicalQueryDistinct: changing any semantic field must change the
// key — a collision here would serve one query's answer to another.
func TestCanonicalQueryDistinct(t *testing.T) {
	base := onex.Query{
		Values: []float64{1, 2, 3}, K: 2, MaxDist: 0, Band: 0,
		Lengths: onex.Lengths{Min: 4, Max: 8}, Mode: onex.ModeApprox,
	}
	mutations := map[string]onex.Query{}
	add := func(name string, mutate func(*onex.Query)) {
		q := base
		mutate(&q)
		mutations[name] = q
	}
	add("values element", func(q *onex.Query) { q.Values = []float64{1, 2, 4} })
	add("values shorter", func(q *onex.Query) { q.Values = []float64{1, 2} })
	add("values negzero", func(q *onex.Query) { q.Values = []float64{1, 2, math.Copysign(0, -1)} })
	add("window query", func(q *onex.Query) {
		q.Values = nil
		q.Window = onex.Window{Series: "MA", Start: 2, Length: 3}
	})
	add("k", func(q *onex.Query) { q.K = 3 })
	add("maxdist (range mode)", func(q *onex.Query) { q.MaxDist = 0.5 })
	add("exclude self", func(q *onex.Query) { q.Exclude.Self = true })
	add("exclude series", func(q *onex.Query) { q.Exclude.Series = []string{"MA"} })
	add("exclude series order", func(q *onex.Query) { q.Exclude.Series = []string{"NY", "MA"} })
	add("lengths min", func(q *onex.Query) { q.Lengths.Min = 5 })
	add("lengths max", func(q *onex.Query) { q.Lengths.Max = 9 })
	add("mode", func(q *onex.Query) { q.Mode = onex.ModeExact })
	add("band", func(q *onex.Query) { q.Band = 3 })
	add("norm", func(q *onex.Query) { q.LengthNorm = onex.NormRaw })
	add("workers", func(q *onex.Query) { q.Workers = 2 })

	baseKey := CanonicalQuery(base)
	seen := map[string]string{"base": baseKey}
	for name, q := range mutations {
		key := CanonicalQuery(q)
		if key == baseKey {
			t.Errorf("%s: mutated query collides with base", name)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: collides with %s", name, prev)
		}
		seen[key] = name
	}
}

// TestCanonicalQuerySeparatorInjection: series names containing the key's
// own separator bytes must not let two different requests collide.
func TestCanonicalQuerySeparatorInjection(t *testing.T) {
	a := onex.Query{Window: onex.Window{Series: `x|wo=1`, Start: 2, Length: 3}, K: 1}
	b := onex.Query{Window: onex.Window{Series: `x`, Start: 1, Length: 3}, K: 1}
	if CanonicalQuery(a) == CanonicalQuery(b) {
		t.Fatal("separator bytes in a series name forged another query's key")
	}
	c := onex.Query{Values: []float64{1}, K: 1, Exclude: onex.Exclude{Series: []string{`a","b`}}}
	d := onex.Query{Values: []float64{1}, K: 1, Exclude: onex.Exclude{Series: []string{`a`, `b`}}}
	if CanonicalQuery(c) == CanonicalQuery(d) {
		t.Fatal("quote bytes in an exclude name forged a two-element list")
	}
}

func TestCanonicalAnalysisEqualPairs(t *testing.T) {
	tests := []struct {
		name string
		a, b onex.Analysis
	}{
		{
			// Seasonal resolves K<=0 to 16 and MinOccurrences<2 to 2.
			"seasonal defaults",
			onex.Analysis{Kind: onex.AnalysisSeasonal, Series: "MA"},
			onex.Analysis{Kind: onex.AnalysisSeasonal, Series: "MA", K: 16, MinOccurrences: 2},
		},
		{
			"common-patterns defaults",
			onex.Analysis{Kind: onex.AnalysisCommonPatterns},
			onex.Analysis{Kind: onex.AnalysisCommonPatterns, K: 16, MinSeries: 2},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if ka, kb := CanonicalAnalysis(tc.a), CanonicalAnalysis(tc.b); ka != kb {
				t.Errorf("keys differ:\n a=%s\n b=%s", ka, kb)
			}
		})
	}
}

func TestCanonicalAnalysisDistinct(t *testing.T) {
	base := onex.Analysis{Kind: onex.AnalysisOverview, K: 8}
	mutations := []onex.Analysis{
		{Kind: onex.AnalysisLengthSummaries, K: 8},
		{Kind: onex.AnalysisOverview, K: 9},
		// Overview does NOT resolve K, so 0 and 16 stay distinct.
		{Kind: onex.AnalysisOverview},
		{Kind: onex.AnalysisOverview, K: 8, Length: 6},
		{Kind: onex.AnalysisOverview, K: 8, Series: "MA"},
		{Kind: onex.AnalysisOverview, K: 8, Mode: onex.ModeExact},
		{Kind: onex.AnalysisOverview, K: 8, Workers: 2},
		{Kind: onex.AnalysisSeasonal, Series: "MA", Index: 1, K: 8},
		{Kind: onex.AnalysisSeasonal, Series: "MA", Index: 2, K: 8},
		{Kind: onex.AnalysisSimilaritySweep, Thresholds: []float64{0.1, 0.2}, K: 8},
		{Kind: onex.AnalysisSimilaritySweep, Thresholds: []float64{0.2, 0.1}, K: 8},
	}
	seen := map[string]int{}
	baseKey := CanonicalAnalysis(base)
	for i, a := range mutations {
		key := CanonicalAnalysis(a)
		if key == baseKey {
			t.Errorf("mutation %d collides with base", i)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("mutation %d collides with mutation %d", i, prev)
		}
		seen[key] = i
	}
}

// TestCanonicalStableAcrossJSON: a request decoded from JSON (any field
// order, whitespace) must key identically to the literal struct — the
// property that makes retried and hand-written requests cache-compatible.
func TestCanonicalStableAcrossJSON(t *testing.T) {
	lit := onex.Query{Values: []float64{1.5, -2.25}, K: 2, Mode: onex.ModeExact}
	for _, raw := range []string{
		`{"values":[1.5,-2.25],"k":2,"mode":"exact"}`,
		`{"mode":"exact", "k": 2, "values": [1.5, -2.25]}`,
		`{"mode":"exact","k":2,"values":[1.5,-2.25],"unknown_field":true}`,
	} {
		var q onex.Query
		if err := json.Unmarshal([]byte(raw), &q); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if CanonicalQuery(q) != CanonicalQuery(lit) {
			t.Errorf("JSON %s keys differently from the literal struct", raw)
		}
	}
}
