// Package linttest runs lint analyzers over testdata fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files under
// testdata/src/<pkg>/ carry `// want "regexp"` comments on the lines where
// diagnostics are expected, and the harness fails the test on any missed or
// unexpected finding. Fixtures may import only the standard library (they
// are type-checked with the offline source importer).
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches one expectation inside a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run applies a to the fixture package at testdata/src/<pkg> beneath dir
// (usually analysistest-style: linttest.Run(t, "testdata", analyzer,
// "fixturepkg")) and compares diagnostics against the fixture's `// want`
// comments. The analyzer's Match function is NOT consulted: fixtures
// exercise Run directly, scope routing is the driver's concern.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkg string) {
	t.Helper()
	fixtureDir := filepath.Join(dir, "src", pkg)
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, e.Name())
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		t.Fatalf("linttest: no fixture files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	loaded, err := lint.ParseDir(fset, fixtureDir, pkg, filenames)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := lint.RunAnalyzer(a, loaded)
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, name := range filenames {
		full := filepath.Join(fixtureDir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(lineText, "// want ")
			if !ok {
				continue
			}
			k := key{file: full, line: i + 1}
			matches := wantRe.FindAllStringSubmatch(spec, -1)
			if len(matches) == 0 {
				t.Errorf("%s:%d: malformed want comment: %q", full, k.line, spec)
				continue
			}
			for _, m := range matches {
				pat := m[1]
				if m[2] != "" || pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", full, k.line, pat, err)
					continue
				}
				wants[k] = append(wants[k], re)
			}
		}
	}

	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		idx := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %s", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("%s", l)
	}
}
