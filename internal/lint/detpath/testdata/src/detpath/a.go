package a

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time\.Now in a scoring/pruning package`
	return t.Unix()
}

func wallDuration(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time\.Since in a scoring/pruning package`
}

func annotatedWallClock() time.Time {
	//onex:wallclock stats-only: feeds SearchStats.WallTime, never a score
	return time.Now()
}

func globalRand(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn uses the global random source`
}

func globalShuffle(xs []int) {
	//onex:nopoll wrong directive for this analyzer; it does not suppress detpath
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the global random source`
}

func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed)) // constructing the seeded source is the fix
	return rng.Intn(n)
}

func mapOrderIntoSlice(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration feeds an ordered output`
		out = append(out, v)
	}
	return out
}

func mapOrderIntoChannel(m map[string]float64, ch chan float64) {
	for _, v := range m { // want `map iteration feeds an ordered output`
		ch <- v
	}
}

func mapOrderIntoIndexedSlice(m map[int]float64, out []float64) {
	for k, v := range m { // want `map iteration feeds an ordered output`
		out[k] = v
	}
}

func annotatedMapOrder(m map[string]float64) []float64 {
	var out []float64
	//onex:detorder out is sorted below before anything consumes it
	for _, v := range m {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

func mapReduction(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // order-free reduction: not flagged
		sum += v
	}
	return sum
}

func timeConstructionIsFine(sec int64) time.Time {
	return time.Unix(sec, 0) // deterministic: built from an argument, not the clock
}
