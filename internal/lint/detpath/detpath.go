// Package detpath enforces ONEX's determinism contract on the scoring and
// pruning packages: search results must be identical at every worker
// count and across runs (the PR 4/5 invariant the equivalence tests pin),
// so the kernel and core packages may not consult the wall clock, draw
// from an unseeded random source, or let map iteration order reach an
// ordered output.
package detpath

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags nondeterminism sources in internal/dist and
// internal/core. Wall-time measurement that feeds stats (never scores)
// carries //onex:wallclock <reason>; a map iteration whose order provably
// cannot reach an ordered output carries //onex:detorder <reason>.
var Analyzer = &lint.Analyzer{
	Name:           "detpath",
	Directive:      "wallclock",
	MoreDirectives: []string{"detorder"},
	Doc: `check scoring/pruning code for nondeterminism

In internal/dist and internal/core: time.Now/time.Since are flagged
(annotate stats-only wall-time sites with //onex:wallclock <reason>);
math/rand package-level functions are flagged (use a rand.New(
rand.NewSource(seed)) so mining is reproducible); and a range over a map
that appends to a slice, sends to a channel, or writes an element of a
slice is flagged as map-order-into-ordered-output (annotate provably
order-free sites with //onex:detorder <reason>).`,
	Match: lint.MatchAny("internal/dist", "internal/core"),
	Run:   run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkClockAndRand(pass, v)
			case *ast.RangeStmt:
				checkMapRange(pass, v)
			}
			return true
		})
	}
	return nil
}

func checkClockAndRand(pass *lint.Pass, call *ast.CallExpr) {
	for _, name := range []string{"Now", "Since", "Until"} {
		if lint.PkgFuncCall(pass.TypesInfo, call, "time", name) {
			pass.Reportf(call.Pos(),
				"time.%s in a scoring/pruning package: wall time must not influence results (annotate stats-only sites with //onex:wallclock <reason>)", name)
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if (path == "math/rand" || path == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return // constructing a seeded source is the fix, not the bug
		}
		pass.Reportf(call.Pos(),
			"%s.%s uses the global random source: seed a local rand.New(rand.NewSource(seed)) so mining is reproducible", path, fn.Name())
	}
}

// checkMapRange flags map iterations whose body writes into an ordered
// sink (slice append, indexed slice write, channel send). The //onex:
// detorder annotation suppresses it via the secondary directive.
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ordered := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					ordered = true
				}
			}
		case *ast.SendStmt:
			ordered = true
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if xt := pass.TypesInfo.TypeOf(ix.X); xt != nil {
						if _, isSlice := xt.Underlying().(*types.Slice); isSlice {
							ordered = true
						}
					}
				}
			}
		}
		return !ordered
	})
	if !ordered {
		return
	}
	pass.ReportfDirective("detorder", rng.For,
		"map iteration feeds an ordered output: iteration order is randomized per run, breaking result determinism (sort keys first, or annotate //onex:detorder <reason>)")
}
