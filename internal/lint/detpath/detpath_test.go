package detpath_test

import (
	"testing"

	"repro/internal/lint/detpath"
	"repro/internal/lint/linttest"
)

func TestDetpath(t *testing.T) {
	linttest.Run(t, "testdata", detpath.Analyzer, "detpath")
}

func TestMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/dist":   true,
		"repro/internal/core":   true,
		"repro/internal/server": false,
		"repro/onex":            false,
	} {
		if got := detpath.Analyzer.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
