package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// Loader type-checks module packages using only the standard library: `go
// list` supplies the file sets, and imports outside the module are resolved
// by compiling the standard library from source (go/importer "source"),
// which works offline. Test files are not loaded — the invariants onexvet
// guards live in production code, and skipping them keeps the source
// importer's working set to the module's real dependency cone.
type Loader struct {
	Fset *token.FileSet

	dir    string // module root the go commands run in
	std    types.Importer
	listed map[string]*listedPkg
	loaded map[string]*Package
	module string // module path, e.g. "repro"
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		dir:    dir,
		std:    importer.ForCompiler(fset, "source", nil),
		listed: make(map[string]*listedPkg),
		loaded: make(map[string]*Package),
	}
}

// Load resolves the go-list patterns (e.g. "./...") and returns the matched
// packages, type-checked, in deterministic import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.module == "" {
		out, err := l.goList("list", "-m", "-f", "{{.Path}}")
		if err != nil {
			return nil, err
		}
		l.module = strings.TrimSpace(string(out))
	}
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Imports"}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		l.listed[p.ImportPath] = &p
		roots = append(roots, p.ImportPath)
	}
	sort.Strings(roots)
	pkgs := make([]*Package, 0, len(roots))
	for _, path := range roots {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// load type-checks one module package, memoized, recursing into its
// module-internal imports first.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		// An import of a module package that the initial pattern did not
		// match (e.g. loading ./internal/server pulls in ./internal/core):
		// list it on demand.
		out, err := l.goList("list", "-e", "-json=ImportPath,Dir,GoFiles,Imports", path)
		if err != nil {
			return nil, err
		}
		var p listedPkg
		if err := json.Unmarshal(out, &p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output for %s: %w", path, err)
		}
		lp = &p
		l.listed[path] = lp
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:      path,
		Dir:       lp.Dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-internal imports back through the loader and
// everything else (the standard library) to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// ParseDir parses and type-checks a directory of Go files as one package
// whose imports must resolve from the standard library alone. It is the
// fixture-loading path used by linttest; path becomes the package path seen
// by analyzers.
func ParseDir(fset *token.FileSet, dir, path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
