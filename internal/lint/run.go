package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Result is the outcome of a driver run.
type Result struct {
	// Diagnostics from every analyzer, sorted by position.
	Diagnostics []Diagnostic
	// ByPackage groups diagnostics pkg -> analyzer -> findings, mirroring
	// the JSON layout.
	ByPackage map[string]map[string][]Diagnostic
}

// Run loads the patterns and applies every analyzer whose Match accepts the
// package path, plus the package-level annotation-name validation.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*Result, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{ByPackage: make(map[string]map[string][]Diagnostic)}
	for _, pkg := range pkgs {
		record := func(name string, diags []Diagnostic) {
			if len(diags) == 0 {
				return
			}
			res.Diagnostics = append(res.Diagnostics, diags...)
			m := res.ByPackage[pkg.Path]
			if m == nil {
				m = make(map[string][]Diagnostic)
				res.ByPackage[pkg.Path] = m
			}
			m[name] = append(m[name], diags...)
		}
		record("annotations", validateDirectiveNames(pkg.Fset, pkg.Files))
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			record(a.Name, diags)
		}
	}
	sortDiagnostics(res.Diagnostics)
	return res, nil
}

// jsonDiagnostic matches the per-finding shape of x/tools' multichecker
// -json output, so existing tooling that consumes `go vet -json`-style
// findings can ingest onexvet's.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// WriteJSON emits the result in the x/tools multichecker JSON layout:
// {"<package>": {"<analyzer>": [{"posn": ..., "message": ...}, ...]}}.
func (r *Result) WriteJSON(w io.Writer) error {
	out := make(map[string]map[string][]jsonDiagnostic, len(r.ByPackage))
	for pkg, byAnalyzer := range r.ByPackage {
		m := make(map[string][]jsonDiagnostic, len(byAnalyzer))
		for name, diags := range byAnalyzer {
			js := make([]jsonDiagnostic, len(diags))
			for i, d := range diags {
				js[i] = jsonDiagnostic{Posn: d.Pos.String(), Message: d.Message}
			}
			m[name] = js
		}
		out[pkg] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// WriteText emits one "file:line:col: analyzer: message" line per finding.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
