// Package ctxloop enforces ONEX's cancellation invariant: every walk over
// groups or members in the query-processing packages must poll its
// context, so a cancelled search aborts within one pruning round instead
// of running to completion (the contract established in PRs 2-4 and
// load-bearing for the streaming and serving tiers).
package ctxloop

import (
	"go/ast"
	"regexp"

	"repro/internal/lint"
)

// Analyzer flags range loops over group/member collections whose body
// neither polls ctx.Err()/ctx.Done() nor hands the context to a callee.
// Annotate deliberate exceptions with //onex:nopoll <reason>.
var Analyzer = &lint.Analyzer{
	Name:      "ctxloop",
	Directive: "nopoll",
	Doc: `check that group/member walks poll their context

Range loops whose iterated expression names a group, member, or wave
collection must contain a ctx.Err() or ctx.Done() poll, or pass the
context to a function they call (which is then itself subject to this
check). Loops that are deliberately unpolled — O(1) bodies under an
outer per-round poll, or legacy context-free wrappers — carry an
//onex:nopoll <reason> annotation.`,
	Match: lint.MatchAny("internal/core", "internal/replica", "internal/server"),
	Run:   run,
}

// walkExprRe decides whether a range expression iterates a group/member
// collection: any identifier or selector in it mentioning groups, members,
// or refinement waves.
var walkExprRe = regexp.MustCompile(`(?i)group|member|wave`)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !mentionsWalkCollection(rng.X) {
				return true
			}
			if bodyPollsContext(pass, rng.Body) {
				return true
			}
			pass.Reportf(rng.For,
				"range over %s does not poll ctx.Err()/ctx.Done() or pass the context on; a cancelled walk must abort within one round (annotate //onex:nopoll <reason> if this loop is exempt)",
				exprString(rng.X))
			return true
		})
	}
	return nil
}

// mentionsWalkCollection reports whether any name inside e matches the
// group/member vocabulary.
func mentionsWalkCollection(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && walkExprRe.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// bodyPollsContext reports whether body contains a context poll — a call
// to .Err() or .Done() on a context.Context — or a call that receives a
// context.Context argument (the callee's own loops are checked when its
// package is analyzed).
func bodyPollsContext(pass *lint.Pass, body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !polls
		}
		for _, name := range []string{"Err", "Done"} {
			if recv, ok := lint.MethodCallNamed(call, name); ok && lint.IsContextExpr(pass.TypesInfo, recv) {
				polls = true
				return false
			}
		}
		for _, arg := range call.Args {
			if lint.IsContextExpr(pass.TypesInfo, arg) {
				polls = true
				return false
			}
		}
		return true
	})
	return polls
}

// exprString renders the range expression compactly for the diagnostic.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	default:
		return "group/member collection"
	}
}
