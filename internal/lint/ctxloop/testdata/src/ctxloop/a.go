package a

import "context"

type group struct {
	Members []int
}

func polls(ctx context.Context, groups []group) int {
	n := 0
	for _, g := range groups {
		if err := ctx.Err(); err != nil {
			return -1
		}
		n += len(g.Members)
	}
	return n
}

func pollsDone(ctx context.Context, groups []group) int {
	n := 0
	for _, g := range groups {
		select {
		case <-ctx.Done():
			return -1
		default:
		}
		n += len(g.Members)
	}
	return n
}

func pollsPerStride(ctx context.Context, members []int) int {
	n := 0
	for mi, m := range members {
		if mi%64 == 0 {
			if err := ctx.Err(); err != nil {
				return -1
			}
		}
		n += m
	}
	return n
}

func passesContextOn(ctx context.Context, groups []group) int {
	n := 0
	for _, g := range groups { // the callee is itself subject to the check
		n += scanGroup(ctx, g)
	}
	return n
}

func scanGroup(ctx context.Context, g group) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(g.Members)
}

func missesPoll(ctx context.Context, groups []group) int {
	n := 0
	for _, g := range groups { // want `range over groups does not poll`
		n += len(g.Members)
	}
	return n
}

func missesPollMembers(ctx context.Context, g group) int {
	n := 0
	for _, m := range g.Members { // want `range over g\.Members does not poll`
		n += m
	}
	return n
}

func noContextAtAll(groups []group) int {
	n := 0
	for _, g := range groups { // want `range over groups does not poll`
		n += len(g.Members)
	}
	return n
}

func annotated(groups []group) int {
	n := 0
	//onex:nopoll O(1) accumulation; fixture demonstrates the escape hatch
	for _, g := range groups {
		n += len(g.Members)
	}
	return n
}

func annotatedWithoutReason(groups []group) int {
	n := 0
	//onex:nopoll // want `annotation requires a reason`
	for _, g := range groups {
		n += len(g.Members)
	}
	return n
}

func unrelatedLoop(values []int) int {
	n := 0
	for _, v := range values { // not a group/member walk
		n += v
	}
	return n
}
