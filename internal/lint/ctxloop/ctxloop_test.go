package ctxloop_test

import (
	"testing"

	"repro/internal/lint/ctxloop"
	"repro/internal/lint/linttest"
)

func TestCtxloop(t *testing.T) {
	linttest.Run(t, "testdata", ctxloop.Analyzer, "ctxloop")
}

func TestMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":    true,
		"repro/internal/replica": true,
		"repro/internal/server":  true,
		"repro/internal/dist":    false,
		"repro/onex":             false,
	} {
		if got := ctxloop.Analyzer.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
