// Package lint is a dependency-free miniature of golang.org/x/tools'
// go/analysis framework, just large enough to host ONEX's project-specific
// invariant checkers (cmd/onexvet). The repo is intentionally zero-dep, so
// instead of importing x/tools the package re-implements the three pieces
// onexvet needs: an Analyzer/Pass/Diagnostic vocabulary (lint.go), a
// package loader that type-checks the module with only the standard
// library (load.go), and a driver with x/tools-compatible JSON output
// (run.go). Fixture-based tests live in the sibling linttest package.
//
// # Annotations
//
// Every analyzer has an escape hatch: a line comment of the form
//
//	//onex:<directive> <reason>
//
// on the flagged line (or the line directly above it) suppresses the
// diagnostic. The reason is mandatory — an annotation without one is
// itself reported — so every suppression documents why the invariant does
// not apply. The directives are:
//
//	//onex:nopoll    <why this group/member walk may skip ctx polling>
//	//onex:rawfs     <why this write may bypass internal/fsutil>
//	//onex:locksafe  <why this same-receiver call cannot self-deadlock>
//	//onex:keyok     <why this unquoted write keeps the key injective>
//	//onex:wallclock <why this time.Now is not on a scoring path>
//	//onex:detorder  <why this map iteration cannot reach ordered output>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is the one-paragraph description printed by onexvet -help.
	Doc string
	// Directive is the annotation suffix (e.g. "nopoll" for //onex:nopoll)
	// that suppresses this analyzer's diagnostics. Empty means the analyzer
	// has no escape hatch.
	Directive string
	// MoreDirectives lists additional annotation suffixes the analyzer owns
	// (used with Pass.ReportfDirective); their reasons are validated here
	// too.
	MoreDirectives []string
	// Match reports whether the analyzer applies to a package import path.
	// The driver consults it; test harnesses run analyzers unconditionally.
	Match func(pkgPath string) bool
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg and TypesInfo hold the go/types results. TypesInfo is always
	// non-nil; its maps are populated (Types, Defs, Uses, Selections).
	Pkg       *types.Package
	TypesInfo *types.Info

	diags       []Diagnostic
	annotations map[int]*annotation // line -> directive, per current run
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

type annotation struct {
	directive string
	reason    string
	line      int
}

// Reportf records a diagnostic at pos unless an //onex:<Directive>
// annotation on the same line or the line above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfDirective(p.Analyzer.Directive, pos, format, args...)
}

// ReportfDirective is Reportf with an explicit suppressing directive, for
// analyzers that host more than one annotation (detpath's wallclock and
// detorder).
func (p *Pass) ReportfDirective(directive string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if a := p.annotationFor(position.Line); a != nil && a.directive == directive {
		return // suppressed; reason presence is validated in collectAnnotations
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotationFor returns the annotation covering line: one written on the
// line itself or on the line directly above it.
func (p *Pass) annotationFor(line int) *annotation {
	if a, ok := p.annotations[line]; ok {
		return a
	}
	if a, ok := p.annotations[line-1]; ok {
		return a
	}
	return nil
}

// directivePrefix introduces a lint annotation comment.
const directivePrefix = "//onex:"

// knownDirectives lists every valid annotation suffix; an //onex: comment
// outside this set is reported as a typo rather than silently ignored.
var knownDirectives = map[string]bool{
	"nopoll":    true,
	"rawfs":     true,
	"locksafe":  true,
	"keyok":     true,
	"wallclock": true,
	"detorder":  true,
}

// collectAnnotations indexes //onex: directives by line and validates them:
// unknown directive names and reason-less annotations are themselves
// diagnostics (attributed to the running analyzer only when it owns the
// directive, so each problem is reported exactly once by the driver).
func (p *Pass) collectAnnotations(validate bool) {
	p.annotations = make(map[int]*annotation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				directive, reason, _ := strings.Cut(rest, " ")
				reason, _, _ = strings.Cut(reason, "//") // trailing comment is not a reason
				line := p.Fset.Position(c.Pos()).Line
				a := &annotation{directive: directive, reason: strings.TrimSpace(reason), line: line}
				p.annotations[line] = a
				owned := directive == p.Analyzer.Directive
				for _, d := range p.Analyzer.MoreDirectives {
					owned = owned || directive == d
				}
				if !validate || !owned {
					continue
				}
				if a.reason == "" {
					p.diags = append(p.diags, Diagnostic{
						Pos:      p.Fset.Position(c.Pos()),
						Analyzer: p.Analyzer.Name,
						Message:  fmt.Sprintf("//onex:%s annotation requires a reason", directive),
					})
				}
			}
		}
	}
}

// validateDirectiveNames reports //onex: comments whose directive is not a
// known annotation. It runs once per package (not per analyzer).
func validateDirectiveNames(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				directive, _, _ := strings.Cut(rest, " ")
				if !knownDirectives[directive] {
					out = append(out, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "annotations",
						Message:  fmt.Sprintf("unknown annotation //onex:%s (known: nopoll, rawfs, locksafe, keyok, wallclock, detorder)", directive),
					})
				}
			}
		}
	}
	return out
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// diagnostics sorted by position. Match is not consulted.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	pass.collectAnnotations(true)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// ---- shared AST helpers used by more than one analyzer ----

// IsContextExpr reports whether e's static type is context.Context.
func IsContextExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// PkgFuncCall reports whether call is pkgPath.name(...) — a call of a
// package-level function resolved through the type information (so import
// aliasing and shadowing are handled).
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// MethodCallNamed reports whether call invokes a method named name and, if
// so, returns its receiver expression.
func MethodCallNamed(call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	return sel.X, true
}

// HasSuffixPath reports whether pkgPath is path or ends in "/"+path —
// matching both the real module layout ("repro/internal/core") and bare
// fixture paths ("internal/core").
func HasSuffixPath(pkgPath, path string) bool {
	return pkgPath == path || strings.HasSuffix(pkgPath, "/"+path)
}

// MatchAny builds an Analyzer.Match from package path suffixes.
func MatchAny(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if HasSuffixPath(pkgPath, p) {
				return true
			}
		}
		return false
	}
}
