package a

import "sync"

type Store struct {
	mu sync.Mutex
	n  int
}

// Count acquires the mutex: calling it with mu held self-deadlocks.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *Store) countLocked() int { return s.n }

// Bad holds mu (the deferred unlock releases only at return) and calls a
// re-acquiring method.
func (s *Store) Bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Count() // want `Store\.Bad calls Store\.Count while holding mu`
}

// BadExplicitUnlock unlocks only after the re-acquiring call.
func (s *Store) BadExplicitUnlock() int {
	s.mu.Lock()
	n := s.Count() // want `Store\.BadExplicitUnlock calls Store\.Count while holding mu`
	s.mu.Unlock()
	return n
}

// GoodLockedHelper calls the _Locked variant, which does not re-acquire.
func (s *Store) GoodLockedHelper() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countLocked()
}

// GoodAfterUnlock releases before the call.
func (s *Store) GoodAfterUnlock() int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.Count()
}

// Annotated is the escape hatch: the call is flagged without the
// annotation (it happens while mu is lexically held).
func (s *Store) Annotated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	//onex:locksafe fixture-only: documents the annotation form; real code must not call Count here
	return s.Count()
}

// BranchJoin shows the tracking is lexical, not flow-sensitive: after the
// conditional re-lock both paths end unlocked, so no diagnostic fires.
func (s *Store) BranchJoin() int {
	s.mu.Lock()
	s.mu.Unlock()
	if s.n < 0 {
		s.mu.Lock()
		s.mu.Unlock()
	}
	return s.Count()
}

// ValueReceiver copies the mutex with the struct.
func (s Store) ValueReceiver() int { // want `Store\.ValueReceiver uses a value receiver`
	_ = s.mu
	return s.n
}

// LeakMutex hands the lock to callers outside the invariant.
func (s *Store) LeakMutex() *sync.Mutex { // want `LeakMutex returns a \*sync\.Mutex, leaking a lock`
	return &s.mu
}

type Reg struct {
	rw sync.RWMutex
	m  map[string]int
}

// Get RLocks: recursive RLock deadlocks against a queued writer.
func (r *Reg) Get(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.m[k]
}

func (r *Reg) BadSnapshot() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.Get("a") // want `Reg\.BadSnapshot calls Reg\.Get while holding rw`
}

func (r *Reg) GoodSnapshot() int {
	r.rw.RLock()
	n := r.m["a"]
	r.rw.RUnlock()
	return n + r.Get("b")
}

// Plain has no mutex; its methods are never checked.
type Plain struct{ n int }

func (p Plain) Value() int { return p.n }
