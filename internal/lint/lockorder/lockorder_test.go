package lockorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "lockorder")
}

func TestMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/onex":                true,
		"repro/internal/server":     true,
		"repro/internal/store":      true,
		"repro/internal/replica":    true,
		"repro/internal/servecache": true,
		"repro/internal/core":       false,
	} {
		if got := lockorder.Analyzer.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
