// Package lockorder enforces ONEX's locking discipline on the
// mutex-holding service types (onex.DB, server.Server, store.FileStore,
// replica.Follower, servecache.Cache): a method that holds the receiver's
// mutex must not call another method of the same receiver that re-acquires
// it (sync.Mutex self-deadlocks; recursive RLock deadlocks against a
// queued writer), mutexes must not be copied via value receivers, and
// mutexes must not leak out of their package by pointer.
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags lock-reentrancy hazards on mutex-holding types. The
// held-state tracking is lexical and flow-insensitive: within a method
// body, a non-deferred Lock/RLock on a receiver mutex field marks it held
// until a non-deferred Unlock/RUnlock on the same field; calling a method
// of the same receiver that itself acquires that field while it is marked
// held is a diagnostic. Annotate false positives (e.g. a call that is
// provably unreachable while locked) with //onex:locksafe <reason>.
var Analyzer = &lint.Analyzer{
	Name:      "lockorder",
	Directive: "locksafe",
	Doc: `check mutex-holding types for self-deadlock and lock leaks

For every named struct type with a sync.Mutex or sync.RWMutex field:
methods may not call other methods of the same receiver that re-acquire a
mutex the caller still holds; methods may not use a value receiver (which
copies the mutex); and functions may not return a pointer to a mutex
field. Annotate deliberate exceptions with //onex:locksafe <reason>.`,
	Match: lint.MatchAny("onex", "internal/server", "internal/store", "internal/replica", "internal/servecache"),
	Run:   run,
}

// mutexKind reports whether t is sync.Mutex or sync.RWMutex.
func mutexKind(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// methodInfo records one method body and which mutex fields it acquires.
type methodInfo struct {
	decl     *ast.FuncDecl
	recvObj  types.Object    // the receiver variable
	valueRcv bool            // receiver is by value (copies the lock)
	acquires map[string]bool // mutex field names this method Lock/RLocks (non-deferred anywhere)
}

func run(pass *lint.Pass) error {
	// Mutex-holding named struct types of this package -> their mutex field names.
	lockFields := map[string]map[string]bool{} // type name -> field set
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if mutexKind(f.Type()) {
				if lockFields[name] == nil {
					lockFields[name] = map[string]bool{}
				}
				lockFields[name][f.Name()] = true
			}
		}
	}
	if len(lockFields) == 0 {
		checkLeaks(pass)
		return nil
	}

	// Collect methods per mutex-holding type.
	methods := map[string]map[string]*methodInfo{} // type name -> method name -> info
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
				continue
			}
			recvType := fn.Recv.List[0].Type
			valueRcv := true
			if star, ok := recvType.(*ast.StarExpr); ok {
				recvType = star.X
				valueRcv = false
			}
			id, ok := recvType.(*ast.Ident)
			if !ok {
				continue // generic receivers don't occur in this module
			}
			fields, ok := lockFields[id.Name]
			if !ok {
				continue
			}
			var recvObj types.Object
			if names := fn.Recv.List[0].Names; len(names) == 1 {
				recvObj = pass.TypesInfo.Defs[names[0]]
			}
			mi := &methodInfo{decl: fn, recvObj: recvObj, valueRcv: valueRcv, acquires: map[string]bool{}}
			if recvObj != nil {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.DeferStmt); ok {
						return false // deferred acquires run at exit; ignore
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if field, op, ok := mutexOp(pass, call, recvObj); ok && (op == "Lock" || op == "RLock") && fields[field] {
						mi.acquires[field] = true
					}
					return true
				})
			}
			if methods[id.Name] == nil {
				methods[id.Name] = map[string]*methodInfo{}
			}
			methods[id.Name][fn.Name.Name] = mi
		}
	}

	for typeName, byName := range methods {
		for _, mi := range byName {
			if mi.valueRcv {
				pass.Reportf(mi.decl.Pos(),
					"method %s.%s uses a value receiver, copying its sync mutex; use a pointer receiver",
					typeName, mi.decl.Name.Name)
			}
			if mi.recvObj == nil {
				continue
			}
			checkReentry(pass, typeName, mi, byName)
		}
	}
	checkLeaks(pass)
	return nil
}

// checkReentry walks mi's body in source order, tracking which mutex
// fields are lexically held, and reports same-receiver calls into methods
// that re-acquire a held field.
func checkReentry(pass *lint.Pass, typeName string, mi *methodInfo, byName map[string]*methodInfo) {
	held := map[string]bool{}
	ast.Inspect(mi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			return false // deferred unlocks release at return, not here
		case *ast.FuncLit:
			return false // goroutine/closure bodies run under their own schedule
		case *ast.CallExpr:
			if field, op, ok := mutexOp(pass, v, mi.recvObj); ok {
				switch op {
				case "Lock", "RLock":
					held[field] = true
				case "Unlock", "RUnlock":
					held[field] = false
				}
				return true
			}
			callee, ok := sameReceiverCall(pass, v, mi.recvObj)
			if !ok {
				return true
			}
			ci, ok := byName[callee]
			if !ok {
				return true
			}
			for field := range ci.acquires {
				if held[field] {
					pass.Reportf(v.Pos(),
						"%s.%s calls %s.%s while holding %s, and the callee re-acquires it: self-deadlock (annotate //onex:locksafe <reason> if the lock is provably released on this path)",
						typeName, mi.decl.Name.Name, typeName, callee, field)
				}
			}
		}
		return true
	})
}

// mutexOp matches recv.<field>.<op>() and returns the field and op.
func mutexOp(pass *lint.Pass, call *ast.CallExpr, recvObj types.Object) (field, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := ast.Unparen(inner.X).(*ast.Ident)
	if !isIdent || pass.TypesInfo.Uses[id] != recvObj {
		return "", "", false
	}
	if !mutexKind(derefType(pass.TypesInfo.TypeOf(inner))) {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

// sameReceiverCall matches recv.Method(...) and returns the method name.
func sameReceiverCall(pass *lint.Pass, call *ast.CallExpr, recvObj types.Object) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		return "", false
	}
	return sel.Sel.Name, true
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return types.Typ[types.Invalid]
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// checkLeaks flags function signatures that return a bare mutex pointer —
// handing callers outside the type's invariant a handle on its lock.
func checkLeaks(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Type.Results == nil {
				continue
			}
			for _, res := range fn.Type.Results.List {
				t := pass.TypesInfo.TypeOf(res.Type)
				if t == nil {
					continue
				}
				if ptr, ok := t.Underlying().(*types.Pointer); ok && mutexKind(ptr.Elem()) {
					pass.Reportf(fn.Pos(),
						"%s returns a *sync.%s, leaking a lock out of its owning type (annotate //onex:locksafe <reason> if intentional)",
						fn.Name.Name, ptr.Elem().(*types.Named).Obj().Name())
				}
			}
		}
	}
}
