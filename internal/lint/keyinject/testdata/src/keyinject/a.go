package a

import (
	"fmt"
	"strconv"
	"strings"
)

func lossyVerbs(x any, f float64) {
	_ = fmt.Sprintf("%v", x)        // want `fmt verb "%v" is not injectivity-safe`
	_ = fmt.Sprintf("%g", f)        // want `fmt verb "%g" is not injectivity-safe`
	_ = fmt.Sprintf("%+v", x)       // want `fmt verb "%\+v" is not injectivity-safe`
	_ = fmt.Sprintf("%.17e", f)     // want `fmt verb "%\.17e" is not injectivity-safe`
	_ = fmt.Sprintf("%d|%s", 1, "") // integers and plain strings are fine here; quoting is rule 3's concern
	_ = fmt.Errorf("%w", errDummy)  // errors are not keys
}

var errDummy = fmt.Errorf("x")

func floatFormats(f float64) {
	_ = strconv.FormatFloat(f, 'g', -1, 64) // want `strconv\.FormatFloat must use the 'x'`
	_ = strconv.FormatFloat(f, 'f', 6, 64)  // want `strconv\.FormatFloat must use the 'x'`
	_ = strconv.FormatFloat(f, 'x', -1, 64)
	_ = strconv.AppendFloat(nil, f, 'e', -1, 64) // want `strconv\.AppendFloat must use the 'x'`
	_ = strconv.AppendFloat(nil, f, 'x', -1, 64)
}

func mapIteration(m map[string]int) int {
	n := 0
	for _, v := range m { // want `range over a map in a cache-key package`
		n += v
	}
	return n
}

func annotatedMapIteration(m map[string]int) int {
	n := 0
	//onex:keyok pure reduction; neither order nor result reaches a key
	for _, v := range m {
		n += v
	}
	return n
}

func builderWrites(b *strings.Builder, user string, k int) {
	b.WriteString("tag=")                // literal: fine
	b.WriteString(strconv.Quote(user))   // quoted: fine
	b.WriteString(strconv.Itoa(k))       // integer encoding: fine
	b.WriteString(user)                  // want `dynamic string written into a cache key without quoting`
	b.WriteString(user + "|")            // want `dynamic string written into a cache key without quoting`
	b.WriteString(strings.ToLower(user)) // want `dynamic string written into a cache key without quoting`
}

func annotatedBuilderWrite(b *strings.Builder, trusted string) {
	//onex:keyok trusted is a package-internal enum value, never request data
	b.WriteString(trusted)
}

const prefix = "q1"

func constWrite(b *strings.Builder) {
	b.WriteString(prefix) // constants are fine
}
