package keyinject_test

import (
	"testing"

	"repro/internal/lint/keyinject"
	"repro/internal/lint/linttest"
)

func TestKeyinject(t *testing.T) {
	linttest.Run(t, "testdata", keyinject.Analyzer, "keyinject")
}

func TestMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/servecache": true,
		"repro/internal/server":     false,
		"repro/internal/core":       false,
	} {
		if got := keyinject.Analyzer.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
