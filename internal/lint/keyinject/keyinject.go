// Package keyinject enforces the cache-key injectivity rules from the PR 6
// serving tier: internal/servecache's canonicalizers must produce one key
// per semantically distinct request (or a stale result is served as fresh)
// and the same key every time (or the hit rate collapses). Concretely:
// floats are hex-encoded, strings are quoted, lists are length-prefixed,
// and nothing iterates a map.
package keyinject

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"repro/internal/lint"
)

// Analyzer flags the four ways a canonicalizer edit can silently break
// injectivity: lossy fmt verbs, decimal float formatting, map iteration,
// and unquoted dynamic strings written into the key. Annotate deliberate
// exceptions with //onex:keyok <reason>.
var Analyzer = &lint.Analyzer{
	Name:      "keyinject",
	Directive: "keyok",
	Doc: `check cache-key canonicalizers for injectivity hazards

Inside internal/servecache: no fmt formatting with %v/%g/%e/%f (lossy or
representation-unstable), no strconv.FormatFloat/AppendFloat except with
the 'x' or 'b' formats (decimal shortest-form rounds), no range over a
map (iteration order would randomize the key), and strings.Builder
writes must be literals, constants, or strconv-quoted/encoded values —
never raw user strings (separator injection). Annotate deliberate
exceptions with //onex:keyok <reason>.`,
	Match: lint.MatchAny("internal/servecache"),
	Run:   run,
}

// lossyVerbRe matches fmt verbs that are not injective across values or
// not stable across representations: %v family, decimal floats.
var lossyVerbRe = regexp.MustCompile(`%[-+# 0-9.*\[\]]*[vgefGEF]`)

// printfFamily lists fmt functions whose first-or-second argument is a
// format string.
var printfFamily = map[string]int{ // name -> format-string arg index
	"Sprintf": 0, "Printf": 0, "Errorf": 0, "Appendf": 1, "Fprintf": 1,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(v.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(v.For,
							"range over a map in a cache-key package: iteration order would randomize the key (annotate //onex:keyok <reason> if order cannot reach the key)")
					}
				}
			case *ast.CallExpr:
				checkCall(pass, v)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	// Rule 1: lossy fmt verbs.
	for name, argIdx := range printfFamily {
		if !lint.PkgFuncCall(pass.TypesInfo, call, "fmt", name) || len(call.Args) <= argIdx {
			continue
		}
		if lit := stringLit(pass.TypesInfo, call.Args[argIdx]); lit != "" {
			if verb := lossyVerbRe.FindString(lit); verb != "" {
				pass.Reportf(call.Pos(),
					"fmt verb %q is not injectivity-safe for cache keys: use hex floats (strconv.FormatFloat 'x') and quoted strings (annotate //onex:keyok <reason> if this output cannot reach a key)", verb)
			}
		}
	}
	// Rule 2: decimal float formatting.
	for _, name := range []string{"FormatFloat", "AppendFloat"} {
		if !lint.PkgFuncCall(pass.TypesInfo, call, "strconv", name) {
			continue
		}
		fmtArg := 1
		if name == "AppendFloat" {
			fmtArg = 2
		}
		if len(call.Args) <= fmtArg {
			continue
		}
		if b, ok := byteLit(pass.TypesInfo, call.Args[fmtArg]); !ok || (b != 'x' && b != 'b') {
			pass.Reportf(call.Pos(),
				"strconv.%s must use the 'x' (or 'b') format in cache-key code: decimal shortest-form is not injective on all float64 bit patterns (annotate //onex:keyok <reason> if this value cannot reach a key)", name)
		}
	}
	// Rule 3: unquoted dynamic strings into a strings.Builder.
	if recv, ok := lint.MethodCallNamed(call, "WriteString"); ok && isStringsBuilder(pass.TypesInfo, recv) && len(call.Args) == 1 {
		if !injectiveStringArg(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"dynamic string written into a cache key without quoting: pass it through strconv.Quote or a strconv encoder so separators cannot be injected (annotate //onex:keyok <reason> if the value is trusted)")
		}
	}
}

// injectiveStringArg reports whether e is safe to splice into a key:
// a compile-time constant, or a call into strconv's quoting/encoding
// functions (whose own arguments are checked by the other rules).
func injectiveStringArg(pass *lint.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant, including literals
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, name := range []string{
		"Quote", "QuoteToASCII", "Itoa", "FormatInt", "FormatUint", "FormatBool", "FormatFloat",
	} {
		if lint.PkgFuncCall(pass.TypesInfo, call, "strconv", name) {
			return true
		}
	}
	return false
}

func isStringsBuilder(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Builder" && obj.Pkg() != nil && obj.Pkg().Path() == "strings"
}

// stringLit returns the value of a constant string expression, or "".
func stringLit(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[ast.Unparen(e)]; ok && tv.Value != nil {
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			return s
		}
	}
	return ""
}

// byteLit returns the value of a constant byte/rune expression.
func byteLit(info *types.Info, e ast.Expr) (byte, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if v, err := strconv.Unquote(tv.Value.ExactString()); err == nil && len(v) == 1 {
		return v[0], true
	}
	if v, err := strconv.Atoi(tv.Value.ExactString()); err == nil && v >= 0 && v < 256 {
		return byte(v), true
	}
	return 0, false
}
