package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestValidateDirectiveNames(t *testing.T) {
	fset, files := parseOne(t, `package p

//onex:nopoll fine, known
var a int

//onex:nosuchthing whatever
var b int

//onex:wallclock reasons
var c int
`)
	diags := validateDirectiveNames(fset, files)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "nosuchthing") {
		t.Errorf("diagnostic %q does not name the unknown directive", diags[0].Message)
	}
}

func TestAnnotationSuppressionAndReasons(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	var x int
	//onex:nopoll covered by the outer poll
	x++
	//onex:nopoll
	x++
	//onex:rawfs a different directive does not suppress
	x++
	_ = x
}
`)
	a := &Analyzer{Name: "test", Directive: "nopoll", Run: func(p *Pass) error { return nil }}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files}
	pass.collectAnnotations(true)
	if len(pass.diags) != 1 || !strings.Contains(pass.diags[0].Message, "requires a reason") {
		t.Fatalf("reason validation: got %v, want one requires-a-reason diagnostic", pass.diags)
	}

	// Line 6 (x++ under the reasoned annotation) suppressed; line 8
	// (reason-less, still a matching directive) suppressed — the
	// requires-a-reason diagnostic is the enforcement; line 10 (other
	// directive) reported.
	report := func(line int) {
		var pos token.Pos
		ast.Inspect(files[0], func(n ast.Node) bool {
			if n != nil && fset.Position(n.Pos()).Line == line && pos == token.NoPos {
				pos = n.Pos()
			}
			return true
		})
		if pos == token.NoPos {
			t.Fatalf("no node on line %d", line)
		}
		pass.Reportf(pos, "finding on line %d", line)
	}
	before := len(pass.diags)
	report(6)
	report(8)
	if len(pass.diags) != before {
		t.Errorf("annotated lines were not suppressed: %v", pass.diags[before:])
	}
	report(10)
	if len(pass.diags) != before+1 {
		t.Errorf("differently-annotated line was suppressed")
	}
}

func TestWriteJSONShape(t *testing.T) {
	res := &Result{
		ByPackage: map[string]map[string][]Diagnostic{
			"repro/internal/core": {
				"ctxloop": {{
					Pos:      token.Position{Filename: "engine.go", Line: 3, Column: 2},
					Analyzer: "ctxloop",
					Message:  "m",
				}},
			},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not the expected JSON shape: %v\n%s", err, buf.String())
	}
	got := decoded["repro/internal/core"]["ctxloop"]
	if len(got) != 1 || got[0].Posn != "engine.go:3:2" || got[0].Message != "m" {
		t.Errorf("unexpected JSON payload: %s", buf.String())
	}
}

func TestHasSuffixPath(t *testing.T) {
	for _, tc := range []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"repro/internal/corex", "internal/core", false},
		{"repro/xinternal/core", "internal/core", false},
		{"repro/onex", "onex", true},
		{"repro/onexload", "onex", false},
	} {
		if got := HasSuffixPath(tc.path, tc.suffix); got != tc.want {
			t.Errorf("HasSuffixPath(%q, %q) = %v, want %v", tc.path, tc.suffix, got, tc.want)
		}
	}
}

// TestLoaderSmoke type-checks one real module package offline (standard
// library via the source importer) and runs a trivial analyzer over it
// through the driver, exercising Load, Match routing, and RunAnalyzer.
func TestLoaderSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the source importer; skipped in -short")
	}
	seen := 0
	a := &Analyzer{
		Name:      "count",
		Directive: "nopoll",
		Match:     MatchAny("internal/fsutil"),
		Run: func(p *Pass) error {
			if p.Pkg.Path() != "repro/internal/fsutil" {
				t.Errorf("unexpected package %q", p.Pkg.Path())
			}
			if p.TypesInfo == nil || len(p.TypesInfo.Defs) == 0 {
				t.Errorf("no type information populated")
			}
			seen++
			return nil
		},
	}
	res, err := Run("../..", []*Analyzer{a}, "./internal/fsutil")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != 1 {
		t.Errorf("analyzer ran %d times, want 1", seen)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("unexpected diagnostics: %v", res.Diagnostics)
	}
}
