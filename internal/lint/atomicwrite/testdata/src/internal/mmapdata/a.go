// Package a proves internal/mmapdata is in the atomicwrite enforcement
// set: the mmap subsystem only ever reads snapshots, so a direct os.*
// write appearing in it must be flagged like in any persistence package.
package a

import "os"

func spoolDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile bypasses the crash-safe write path`
}

func createScratch(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the crash-safe write path`
	if err != nil {
		return err
	}
	return f.Close()
}

func swapUnsynced(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath) // want `direct os\.Rename bypasses the crash-safe write path`
}

func mappingReadsAreFine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
