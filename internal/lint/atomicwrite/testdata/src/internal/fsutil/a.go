// Package fsutil mirrors the real blessed-write-path package: direct os
// calls are allowed here, but a rename that commits data must still be
// preceded by an fsync.
package fsutil

import "os"

func atomicReplace(tmp *os.File, path string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func unsyncedReplace(tmp *os.File, path string) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // want `os\.Rename without a preceding \(\*os\.File\)\.Sync`
}

func annotatedUnsyncedReplace(tmp *os.File, path string) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	//onex:rawfs the caller synced the file before handing it over
	return os.Rename(tmp.Name(), path)
}
