package a

import "os"

func directCreate(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the crash-safe write path`
	if err != nil {
		return err
	}
	return f.Close()
}

func directWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile bypasses the crash-safe write path`
}

func directRename(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath) // want `direct os\.Rename bypasses the crash-safe write path`
}

func annotatedScratchWrite(path string, data []byte) error {
	//onex:rawfs scratch output for a bench harness; a torn file is re-generated on next run
	return os.WriteFile(path, data, 0o644)
}

func annotatedRename(oldPath, newPath string) error {
	//onex:rawfs both paths are temp files inside an already-synced commit
	return os.Rename(oldPath, newPath)
}

func readingIsFine(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func openForAppendIsFine(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}
