package atomicwrite_test

import (
	"testing"

	"repro/internal/lint/atomicwrite"
	"repro/internal/lint/linttest"
)

func TestAtomicwrite(t *testing.T) {
	linttest.Run(t, "testdata", atomicwrite.Analyzer, "atomicwrite")
}

// TestFsutilSyncRule runs the fixture whose package path ends in
// internal/fsutil: there the direct-call ban is lifted (it is the blessed
// implementation) but renames must still be preceded by an fsync.
func TestFsutilSyncRule(t *testing.T) {
	linttest.Run(t, "testdata", atomicwrite.Analyzer, "internal/fsutil")
}

// TestMmapdataEnforced proves the mmap subsystem is held to the same
// crash-safe write discipline as the rest of the persistence layer: the
// package is read-mostly (it maps snapshots), so any direct os.* write
// creeping in is a design smell the analyzer must flag.
func TestMmapdataEnforced(t *testing.T) {
	linttest.Run(t, "testdata", atomicwrite.Analyzer, "internal/mmapdata")
}

func TestMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/store":    true,
		"repro/internal/grouping": true,
		"repro/internal/replica":  true,
		"repro/internal/ts":       true,
		"repro/internal/fsutil":   true,
		"repro/internal/mmapdata": true,
		"repro/internal/core":     false,
		"repro/cmd/onexload":      false,
	} {
		if got := atomicwrite.Analyzer.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
