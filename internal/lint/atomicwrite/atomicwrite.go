// Package atomicwrite enforces ONEX's persistence invariant: data that
// must survive a crash is written via internal/fsutil's
// write-temp → fsync → atomic-rename path, never through bare os calls
// that can tear on power loss (the contract established with the PR 7
// store and relied on by replication).
package atomicwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags direct os.Rename/os.WriteFile/os.Create calls in the
// persistence packages, and os.Rename calls not preceded by an
// (*os.File).Sync in the same function (a rename that commits un-synced
// data is not crash-safe). internal/fsutil itself is exempt from the
// first rule — it is the blessed implementation — but not the second.
// Annotate deliberate exceptions with //onex:rawfs <reason>.
var Analyzer = &lint.Analyzer{
	Name:      "atomicwrite",
	Directive: "rawfs",
	Doc: `check that persistence writes go through internal/fsutil

In internal/store, internal/grouping, internal/replica, internal/ts, and
internal/mmapdata, calling os.Rename, os.WriteFile, or os.Create directly
is an error: those
paths can leave a torn file behind on crash. Use fsutil.WriteFileAtomic /
fsutil.CreateTemp instead. Additionally, every os.Rename that commits
data must be preceded by an (*os.File).Sync call in the same function.
Annotate deliberate exceptions with //onex:rawfs <reason>.`,
	Match: lint.MatchAny("internal/store", "internal/grouping", "internal/replica", "internal/ts", "internal/fsutil", "internal/mmapdata"),
	Run:   run,
}

// banned are the os entry points that bypass the atomic write path.
var banned = []string{"Rename", "WriteFile", "Create"}

func run(pass *lint.Pass) error {
	inFsutil := lint.HasSuffixPath(pass.Pkg.Path(), "internal/fsutil")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, inFsutil)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl, inFsutil bool) {
	var syncs []token.Pos // positions of (*os.File).Sync calls, in source order
	type rename struct {
		call   *ast.CallExpr
		direct bool // already reported as a direct-call violation
	}
	var renames []rename
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := lint.MethodCallNamed(call, "Sync"); ok && isOSFile(pass.TypesInfo, recv) {
			syncs = append(syncs, call.Pos())
			return true
		}
		for _, name := range banned {
			if !lint.PkgFuncCall(pass.TypesInfo, call, "os", name) {
				continue
			}
			direct := false
			if !inFsutil {
				pass.Reportf(call.Pos(),
					"direct os.%s bypasses the crash-safe write path; use internal/fsutil (annotate //onex:rawfs <reason> if this write need not survive a crash)",
					name)
				direct = true
			}
			if name == "Rename" {
				renames = append(renames, rename{call: call, direct: direct})
			}
		}
		return true
	})
	for _, r := range renames {
		if r.direct {
			continue // one finding per call is enough
		}
		synced := false
		for _, s := range syncs {
			if s < r.call.Pos() {
				synced = true
				break
			}
		}
		if !synced {
			pass.Reportf(r.call.Pos(),
				"os.Rename without a preceding (*os.File).Sync in this function: the rename may commit un-synced data (annotate //onex:rawfs <reason> if the data is synced elsewhere)")
		}
	}
}

// isOSFile reports whether e's static type is *os.File.
func isOSFile(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
