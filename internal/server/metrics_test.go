package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses samples into name{labels} -> value.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

// TestMetricsGolden drives one request of each class through a fully
// equipped server and asserts every exported family exists with sane
// values, and that the counters are monotone across scrapes.
func TestMetricsGolden(t *testing.T) {
	s, hts := newServingTestServer(t, WithCache(1<<20), WithRateLimit(1000, 1000), WithMaxInflight(4, 4))

	const q = `{"window":{"series":"MA","start":0,"length":8},"k":1}`
	postBody(t, hts.URL+"/api/v1/datasets/growth/query", q, nil) // miss
	postBody(t, hts.URL+"/api/v1/datasets/growth/query", q, nil) // hit
	postBody(t, hts.URL+"/api/v1/datasets/growth/analyze", `{"kind":"overview","k":4}`, nil)
	postBody(t, hts.URL+"/api/v1/datasets/growth/query/stream", q, nil)
	postBody(t, hts.URL+"/api/v1/datasets/growth/series", `{"series":"m1","values":[1,2,3,4,5,6,7,8,9,10,11,12]}`, nil)
	postBody(t, hts.URL+"/api/v1/datasets/growth/query", `{"bad json`, nil) // 400

	// Force one rejection of each kind for the onex_rejected_total family.
	s.metrics.reject("rate_limit")
	s.metrics.reject("overload")

	m := scrape(t, hts.URL)
	for sample, min := range map[string]float64{
		`onex_http_requests_total{endpoint="query",code="200"}`:                 2,
		`onex_http_requests_total{endpoint="query",code="400"}`:                 1,
		`onex_http_requests_total{endpoint="analyze",code="200"}`:               1,
		`onex_http_requests_total{endpoint="query_stream",code="200"}`:          1,
		`onex_http_requests_total{endpoint="ingest",code="200"}`:                1,
		`onex_http_request_duration_seconds_count{endpoint="query"}`:            3,
		`onex_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"}`: 3,
		`onex_rejected_total{reason="rate_limit"}`:                              1,
		`onex_rejected_total{reason="overload"}`:                                1,
		// 1 query miss + 1 stream bypass; the hit separately.
		`onex_cache_hits_total`:                  1,
		`onex_cache_misses_total`:                3, // query miss + analyze miss + stream bypass
		`onex_cache_capacity_bytes`:              1 << 20,
		`onex_cache_entries`:                     1,
		`onex_dataset_version{dataset="growth"}`: 2, // opened at 1, one ingest
	} {
		got, ok := m[sample]
		if !ok {
			t.Errorf("missing sample %s", sample)
			continue
		}
		if got < min {
			t.Errorf("%s = %g, want >= %g", sample, got, min)
		}
	}
	for _, gauge := range []string{"onex_inflight_requests", "onex_cache_bytes", "onex_cache_evictions_total"} {
		if _, ok := m[gauge]; !ok {
			t.Errorf("missing gauge %s", gauge)
		}
	}
	if m["onex_inflight_requests"] != 0 {
		t.Errorf("inflight gauge = %g at rest", m["onex_inflight_requests"])
	}

	// Histogram buckets are cumulative: each bound's count never below the
	// previous, ending at the +Inf total.
	var prev float64
	for _, b := range latencyBuckets {
		sample := fmt.Sprintf("onex_http_request_duration_seconds_bucket{endpoint=\"query\",le=%q}",
			strconv.FormatFloat(b, 'g', -1, 64))
		v, ok := m[sample]
		if !ok {
			t.Fatalf("missing bucket %s", sample)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g below previous %g (not cumulative)", sample, v, prev)
		}
		prev = v
	}
	if inf := m[`onex_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"}`]; inf < prev {
		t.Fatalf("+Inf bucket %g below last bound %g", inf, prev)
	}

	// Monotone counters: more requests strictly advance the counters. Two
	// repeats: the ingest above bumped the dataset version, so the first is
	// a (correct) miss that repopulates, the second a hit.
	postBody(t, hts.URL+"/api/v1/datasets/growth/query", q, nil)
	postBody(t, hts.URL+"/api/v1/datasets/growth/query", q, nil)
	m2 := scrape(t, hts.URL)
	if m2[`onex_http_requests_total{endpoint="query",code="200"}`] <= m[`onex_http_requests_total{endpoint="query",code="200"}`] {
		t.Fatal("request counter did not advance")
	}
	if m2[`onex_cache_hits_total`] <= m[`onex_cache_hits_total`] {
		t.Fatal("cache hit counter did not advance on a repeated query")
	}
}

// TestMetricsWithoutCache: with the cache off, the hit/miss counters are
// still exported (always zero misses recorded only by instrument-level
// code paths that don't run) and the occupancy gauges are absent.
func TestMetricsWithoutCache(t *testing.T) {
	_, hts := newServingTestServer(t)
	postBody(t, hts.URL+"/api/v1/datasets/growth/query",
		`{"window":{"series":"MA","start":0,"length":8},"k":1}`, nil)
	m := scrape(t, hts.URL)
	for _, want := range []string{"onex_cache_hits_total", "onex_cache_misses_total", "onex_inflight_requests"} {
		if _, ok := m[want]; !ok {
			t.Errorf("missing %s with cache disabled", want)
		}
	}
	if _, ok := m["onex_cache_capacity_bytes"]; ok {
		t.Error("cache occupancy exported with cache disabled")
	}
}
