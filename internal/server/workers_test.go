package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/onex"
)

// TestWorkersCappedPerRequest pins the server-side guard: a request asking
// for an enormous worker pool is clamped to the configured cap before it
// reaches the engine — visible in the echoed resolved request — and a
// request for 0 ("all cores") resolves to the cap, so one client can never
// claim more of the box than the operator allows.
func TestWorkersCappedPerRequest(t *testing.T) {
	s := New(WithMaxWorkers(2))
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	loadGrowth(t, hts)

	for name, req := range map[string]onex.Query{
		"oversized": {Window: onex.Window{Series: "MA", Start: 0, Length: 8}, Workers: 64},
		"all cores": {Window: onex.Window{Series: "MA", Start: 0, Length: 8}},
	} {
		resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/growth/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, raw)
		}
		res := decodeResult(t, raw)
		if res.Query.Workers != 2 {
			t.Fatalf("%s: executed with %d workers, want cap 2", name, res.Query.Workers)
		}
	}
	// Under the cap passes through untouched.
	resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window: onex.Window{Series: "MA", Start: 0, Length: 8}, Workers: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if res := decodeResult(t, raw); res.Query.Workers != 1 {
		t.Fatalf("executed with %d workers, want 1", res.Query.Workers)
	}
	// Negative values are still a client error, not silently clamped.
	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window: onex.Window{Series: "MA", Start: 0, Length: 8}, Workers: -1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative workers: status %d, want 400 (%s)", resp.StatusCode, raw)
	}

	// The analyze endpoint shares the cap.
	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/analyze", onex.Analysis{
		Kind: onex.AnalysisLengthSummaries, Workers: 64,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, raw)
	}
	var ares onex.AnalysisResult
	if err := json.Unmarshal(raw, &ares); err != nil {
		t.Fatal(err)
	}
	if ares.Request.Workers != 2 {
		t.Fatalf("analyze executed with %d workers, want cap 2", ares.Request.Workers)
	}
}

// TestWorkersDefaultCapIsGOMAXPROCS pins the no-option default: the cap is
// the box's GOMAXPROCS, so an unconfigured server still refuses a larger
// pool than it has cores.
func TestWorkersDefaultCapIsGOMAXPROCS(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window: onex.Window{Series: "MA", Start: 0, Length: 8}, Workers: 1 << 20,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if res := decodeResult(t, raw); res.Query.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("executed with %d workers, want GOMAXPROCS = %d",
			res.Query.Workers, runtime.GOMAXPROCS(0))
	}
}
