package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/replica"
	"repro/internal/store"
	"repro/onex"
)

// maxWALWait caps how long one WAL long-poll may hold its request open.
// Followers re-poll immediately after a 204, so the cap bounds resource
// held per idle follower, not replication latency.
const maxWALWait = 30 * time.Second

// WithLeader puts the server in serving-follower mode: the write endpoints
// (dataset load and series ingest) are rejected with 503 plus an
// X-Onex-Leader header naming the leader that accepts writes. Every read
// endpoint keeps serving — from replica DBs swapped in by the follower
// loops — which is the point of a read replica: scale queries without
// forking the write history.
func WithLeader(leaderURL string) Option {
	return func(s *Server) { s.leaderURL = leaderURL }
}

// WithReplicaStatus wires the follower's replication telemetry into
// /healthz and /metrics: fn is sampled at each scrape and should return
// the per-dataset replica.Status map (a serving follower passes a closure
// over its Follower set).
func WithReplicaStatus(fn func() map[string]replica.Status) Option {
	return func(s *Server) { s.replicaStatus = fn }
}

// rejectFollowerWrite answers a mutating request with 503 and the leader
// hint when the server is a read-only follower. Reports true when the
// request was consumed.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if s.leaderURL == "" {
		return false
	}
	w.Header().Set(replica.HeaderLeader, s.leaderURL)
	w.Header().Set("Retry-After", "0")
	writeErr(w, http.StatusServiceUnavailable, "read-only follower: writes go to the leader at %s", s.leaderURL)
	return true
}

// replicationSource resolves a dataset name to its replication view,
// writing the error response itself when it cannot.
func (s *Server) replicationSource(w http.ResponseWriter, r *http.Request) (store.ReplicationSource, *onex.DB, bool) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return nil, nil, false
	}
	rs, ok := db.ReplicationSource()
	if !ok {
		// The dataset exists but has no file store (in-memory, or itself a
		// replica): there is nothing durable to replicate from.
		writeErr(w, http.StatusNotImplemented, "dataset %q has no replication source (no file store attached)", r.PathValue("name"))
		return nil, nil, false
	}
	return rs, db, true
}

// handleReplSnapshot streams the dataset's current snapshot file verbatim
// (the exact bytes FileStore persists — a follower feeds them to
// onex.OpenReplica). The open file descriptor survives the atomic rename
// a concurrent compaction performs, so the response is always one complete,
// internally consistent snapshot: possibly superseded mid-transfer, never
// torn.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	src, db, ok := s.replicationSource(w, r)
	if !ok {
		return
	}
	blob, size, version, err := src.SnapshotBlob()
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, "dataset %q has no snapshot yet", r.PathValue("name"))
			return
		}
		writeErr(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	defer blob.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set(replica.HeaderSnapshotVersion, strconv.FormatUint(version, 10))
	w.Header().Set(replica.HeaderLeaderSeq, strconv.FormatUint(db.Version(), 10))
	_, _ = io.Copy(w, blob)
}

// handleReplWAL serves the seq-addressed WAL tail: ?from=S asks for every
// record with seq > S. 200 carries a WAL-magic-framed batch; 204 means
// "caught up" — after long-polling up to ?wait= for new records; 410 Gone
// is the compaction fence (the range was folded into a newer snapshot).
// Every response carries X-Onex-Leader-Seq so followers can report lag
// even when idle.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	src, _, ok := s.replicationSource(w, r)
	if !ok {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "wal: bad ?from=%q: must be a sequence number", r.URL.Query().Get("from"))
		return
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, err = time.ParseDuration(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "wal: bad ?wait=%q: %v", v, err)
			return
		}
	}
	wait = min(wait, maxWALWait)
	deadline := time.Now().Add(wait)

	for {
		// Grab the change channel before reading the tail: an append that
		// lands between TailSince and the select closes this channel, so the
		// long-poll can never sleep through the record it is waiting for.
		changed := src.Changed()
		recs, fence, err := src.TailSince(from)
		leaderSeq := strconv.FormatUint(src.LastSeq(), 10)
		switch {
		case err != nil:
			w.Header().Set(replica.HeaderLeaderSeq, leaderSeq)
			writeErr(w, http.StatusInternalServerError, "wal: %v", err)
			return
		case fence:
			w.Header().Set(replica.HeaderLeaderSeq, leaderSeq)
			writeErr(w, http.StatusGone, "wal: records after seq %d were compacted; re-ship the snapshot", from)
			return
		case len(recs) > 0:
			body := store.EncodeWALStream(recs)
			w.Header().Set(replica.HeaderLeaderSeq, leaderSeq)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			_, _ = w.Write(body)
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.Header().Set(replica.HeaderLeaderSeq, leaderSeq)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		timer := time.NewTimer(remaining)
		select {
		case <-changed:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

// replicationInfo samples the follower telemetry for /healthz (nil on a
// leader or before any follower has registered).
func (s *Server) replicationInfo() map[string]replica.Status {
	if s.replicaStatus == nil {
		return nil
	}
	return s.replicaStatus()
}

// writeReplicaMetrics appends the onex_replica_* families to a /metrics
// scrape. Like the store families, they appear only on processes actually
// following a leader, keeping scrapes stable elsewhere.
func (s *Server) writeReplicaMetrics(w http.ResponseWriter) {
	sts := s.replicationInfo()
	if len(sts) == 0 {
		return
	}
	names := make([]string, 0, len(sts))
	for n := range sts {
		names = append(names, n)
	}
	sort.Strings(names)

	emit := func(family, typ, help string, value func(replica.Status) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, typ)
		for _, n := range names {
			fmt.Fprintf(w, "%s{dataset=%q} %s\n", family, n, value(sts[n]))
		}
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	emit("onex_replica_applied_seq", "gauge",
		"Newest leader sequence applied by this follower, per dataset.",
		func(st replica.Status) string { return u(st.AppliedSeq) })
	emit("onex_replica_leader_seq", "gauge",
		"Leader's newest sequence as of the last poll, per dataset.",
		func(st replica.Status) string { return u(st.LeaderSeq) })
	emit("onex_replica_lag_records", "gauge",
		"Leader records not yet applied by this follower, per dataset.",
		func(st replica.Status) string { return u(st.LagRecords) })
	emit("onex_replica_seconds_since_record", "gauge",
		"Seconds since the follower last applied a record, per dataset (-1 before any).",
		func(st replica.Status) string { return strconv.FormatFloat(st.SecondsSinceRecord, 'g', -1, 64) })
	emit("onex_replica_reconnects_total", "counter",
		"Error-triggered reconnections to the leader, per dataset.",
		func(st replica.Status) string { return u(st.Reconnects) })
	emit("onex_replica_snapshots_shipped_total", "counter",
		"Full snapshot bootstraps (initial plus compaction fences), per dataset.",
		func(st replica.Status) string { return u(st.SnapshotsShipped) })
	emit("onex_replica_records_applied_total", "counter",
		"Leader WAL records applied since follower start, per dataset.",
		func(st replica.Status) string { return u(st.RecordsApplied) })
}
