package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/onex"
)

func newStoredServer(t *testing.T) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	s := New(WithStore(dir))
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		s.CloseStores()
	})
	return s, hts, dir
}

// TestWithStoreLoadPersists: loading a dataset on a store-backed server
// creates its store directory with a snapshot, and healthz reports it.
func TestWithStoreLoadPersists(t *testing.T) {
	_, hts, dir := newStoredServer(t)
	loadGrowth(t, hts)

	if _, err := os.Stat(filepath.Join(dir, "growth", "snapshot.onex")); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "growth", "wal.log")); err != nil {
		t.Fatalf("wal not created: %v", err)
	}

	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	info, ok := health.Persistence["growth"]
	if !ok {
		t.Fatalf("healthz missing persistence block: %+v", health)
	}
	if info.Kind != "filestore" || info.SnapshotAgeSeconds < 0 || info.WALRecords != 0 {
		t.Fatalf("persistence info = %+v", info)
	}
}

// TestHealthzReportsMemoryDatasets: without a store the persistence block
// labels datasets as in-memory rather than omitting them.
func TestHealthzReportsMemoryDatasets(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	if info, ok := health.Persistence["growth"]; !ok || info.Kind != "memory" {
		t.Fatalf("persistence = %+v", health.Persistence)
	}
}

// TestStoreMetricsFamilies: the onex_store_* families appear on a
// store-backed server and track WAL appends; a storeless server must not
// emit them at all (scrape stability).
func TestStoreMetricsFamilies(t *testing.T) {
	_, hts, _ := newStoredServer(t)
	loadGrowth(t, hts)

	resp, _ := postJSON(t, hts.URL+"/api/datasets/growth/series", AddSeriesRequest{
		Series: "ingest-1",
		Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	body := fetchMetrics(t, hts)
	for _, want := range []string{
		`onex_store_wal_appends_total{dataset="growth"} 1`,
		`onex_store_compactions_total{dataset="growth"} 1`,
		`onex_store_wal_pending_records{dataset="growth"} 1`,
		`onex_store_wal_bytes{dataset="growth"}`,
		`onex_store_snapshot_age_seconds{dataset="growth"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	_, plain := newTestServer(t)
	loadGrowth(t, plain)
	if strings.Contains(fetchMetrics(t, plain), "onex_store_") {
		t.Fatal("storeless server emits onex_store_* families")
	}
}

func fetchMetrics(t *testing.T, hts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestUnsafeDatasetNameRejected: with persistence on, dataset names become
// directory names, so traversal attempts must die at the API boundary.
func TestUnsafeDatasetNameRejected(t *testing.T) {
	_, hts, dir := newStoredServer(t)
	for _, name := range []string{"../evil", "a/b", ".hidden", "", "nul\x00byte", strings.Repeat("x", 200)} {
		resp, _ := postJSON(t, hts.URL+"/api/datasets/load", LoadRequest{
			Name: name, Source: "matters:GrowthRate", MinLength: 4, MaxLength: 10,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("name %q: status %d, want 400", name, resp.StatusCode)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("unsafe load left directories behind: %v", entries)
	}
	// The same names are fine without a store (no filesystem exposure) —
	// except the empty name, which is always invalid.
	_, plain := newTestServer(t)
	resp, _ := postJSON(t, plain.URL+"/api/datasets/load", LoadRequest{
		Name: "a/b", Source: "matters:GrowthRate", MinLength: 4, MaxLength: 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("storeless server rejected name a/b: %d", resp.StatusCode)
	}
}

// TestRestoreStoredRestart simulates a full process restart: load + ingest
// on server one, shut it down gracefully, then bring up a second server on
// the same store root and check it serves the same data — including the
// post-snapshot ingest — without any /datasets/load call.
func TestRestoreStoredRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := New(WithStore(dir))
	hts1 := httptest.NewServer(s1.Handler())
	loadGrowth(t, hts1)
	resp, _ := postJSON(t, hts1.URL+"/api/datasets/growth/series", AddSeriesRequest{
		Series: "survives-restart",
		Values: []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	// Graceful shutdown: fold WALs, release the directories.
	if err := s1.PersistAll(); err != nil {
		t.Fatal(err)
	}
	s1.CloseStores()
	hts1.Close()

	s2 := New(WithStore(dir))
	restored, err := s2.RestoreStored()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "growth" {
		t.Fatalf("restored = %v", restored)
	}
	hts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		hts2.Close()
		s2.CloseStores()
	})

	var names []string
	getJSON(t, hts2.URL+"/api/datasets/growth/series", &names)
	if len(names) != 51 {
		t.Fatalf("%d series after restart, want 51 (50 + ingest)", len(names))
	}
	found := false
	for _, n := range names {
		found = found || n == "survives-restart"
	}
	if !found {
		t.Fatalf("ingested series lost across restart: %v", names)
	}
	// And it keeps accepting durable ingests.
	resp, _ = postJSON(t, hts2.URL+"/api/datasets/growth/series", AddSeriesRequest{
		Series: "post-restart",
		Values: []float64{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart ingest status = %d", resp.StatusCode)
	}
}

// TestRestoreStoredSkipsEmptyDirs: a directory without a snapshot (crash
// before the initial snapshot) is a cold-start signal, not a restore error;
// stray files are ignored.
func TestRestoreStoredSkipsEmptyDirs(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "empty-crashed"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(WithStore(dir))
	restored, err := s.RestoreStored()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored = %v, want none", restored)
	}
}

// TestAddDBClosesReplaced: re-registering a dataset name must close the old
// DB's engine, or the new one could never own the store directory.
func TestAddDBClosesReplaced(t *testing.T) {
	dir := t.TempDir()
	s := New()

	db1 := openStoredDB(t, filepath.Join(dir, "d"))
	s.AddDB("d", db1)
	db2 := openStoredDB(t, filepath.Join(dir, "d2"))
	s.AddDB("d", db2)
	t.Cleanup(func() { _ = db2.Close() })

	// db1's engine must be closed now: its durable ingest path refuses.
	if err := db1.AddSeries("x", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("replaced DB still accepts durable ingest (engine not closed)")
	}
	if err := db2.AddSeries("x", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("current DB ingest failed: %v", err)
	}
}

// openStoredDB builds a store-backed DB over the small fixture dataset in
// its own directory.
func openStoredDB(t *testing.T, dir string) *onex.DB {
	t.Helper()
	eng, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(d, onex.Config{MinLength: 4, MaxLength: 10, Store: eng})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	return db
}
