package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/onex"
)

// newLeaderServer builds a server with one store-backed dataset "walks"
// (the replication source) registered directly, the way cmd wiring does.
func newLeaderServer(t *testing.T) (*Server, *httptest.Server, *onex.DB) {
	t.Helper()
	eng, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.RandomWalks(gen.WalkOptions{Num: 6, Length: 64, Seed: 5})
	db, err := onex.Open(ds, onex.Config{Store: eng, MaxLength: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AddDB("walks", db)
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		db.Close()
	})
	return s, hts, db
}

// TestReplSnapshotEndpoint: the snapshot endpoint streams a decodable
// snapshot with version and leader-seq headers matching the DB.
func TestReplSnapshotEndpoint(t *testing.T) {
	_, hts, db := newLeaderServer(t)
	resp, err := http.Get(hts.URL + replica.SnapshotPath("walks"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(replica.HeaderSnapshotVersion); got != strconv.FormatUint(db.Version(), 10) {
		t.Fatalf("%s = %q, want %d", replica.HeaderSnapshotVersion, got, db.Version())
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("shipped snapshot does not decode: %v", err)
	}
	if st.Version != db.Version() {
		t.Fatalf("snapshot version = %d, leader at %d", st.Version, db.Version())
	}
}

// TestReplWALEndpoint covers the three response shapes: 204 when caught
// up, 200 with a DecodeWAL-parsable batch after ingests, 410 when the
// cursor predates the snapshot boundary.
func TestReplWALEndpoint(t *testing.T) {
	_, hts, db := newLeaderServer(t)
	v := db.Version()

	// Caught up, no wait: 204 with the leader-seq header.
	resp, err := http.Get(hts.URL + replica.WALPath("walks") + "?from=" + strconv.FormatUint(v, 10))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up status = %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get(replica.HeaderLeaderSeq); got != strconv.FormatUint(v, 10) {
		t.Fatalf("%s = %q, want %d", replica.HeaderLeaderSeq, got, v)
	}

	// Ingest two series: the same cursor now yields a WAL-framed batch.
	if err := db.AddSeries("x1", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddSeries("x2", []float64{2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hts.URL + replica.WALPath("walks") + "?from=" + strconv.FormatUint(v, 10))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	recs, report, err := store.DecodeWAL(body)
	if err != nil || report.DiscardedBytes > 0 {
		t.Fatalf("batch does not decode cleanly: %v (%s)", err, report)
	}
	if len(recs) != 2 || recs[0].Seq != v+1 || recs[0].Name != "x1" || recs[1].Name != "x2" {
		t.Fatalf("batch = %+v, want x1/x2 from seq %d", recs, v+1)
	}

	// A cursor from before the initial snapshot: fenced with 410.
	resp, err = http.Get(hts.URL + replica.WALPath("walks") + "?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pre-snapshot cursor status = %d, want 410", resp.StatusCode)
	}
}

// TestReplWALLongPoll: a waiting request is woken by an ingest rather than
// held for the full wait.
func TestReplWALLongPoll(t *testing.T) {
	_, hts, db := newLeaderServer(t)
	v := db.Version()
	done := make(chan []store.Record, 1)
	go func() {
		resp, err := http.Get(hts.URL + replica.WALPath("walks") +
			"?from=" + strconv.FormatUint(v, 10) + "&wait=10s")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		recs, _, _ := store.DecodeWAL(body)
		done <- recs
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	if err := db.AddSeries("wake", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 || recs[0].Name != "wake" {
			t.Fatalf("long-poll woke with %+v, want the wake record", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on ingest")
	}
}

// TestReplEndpointErrors: unknown dataset 404, in-memory dataset 501, bad
// cursor 400.
func TestReplEndpointErrors(t *testing.T) {
	s, hts, _ := newLeaderServer(t)
	mem, err := onex.Open(gen.RandomWalks(gen.WalkOptions{Num: 4, Length: 32, Seed: 9}), onex.Config{MaxLength: 12})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("mem", mem)

	for _, tc := range []struct {
		url  string
		want int
	}{
		{replica.SnapshotPath("nope"), http.StatusNotFound},
		{replica.WALPath("nope") + "?from=1", http.StatusNotFound},
		{replica.SnapshotPath("mem"), http.StatusNotImplemented},
		{replica.WALPath("mem") + "?from=1", http.StatusNotImplemented},
		{replica.WALPath("walks") + "?from=banana", http.StatusBadRequest},
		{replica.WALPath("walks") + "?from=1&wait=banana", http.StatusBadRequest},
	} {
		resp, err := http.Get(hts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

// TestFollowerRejectsWrites: with WithLeader, the write endpoints answer
// 503 and name the leader; reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	s := New(WithLeader("http://leader:8080"))
	mem, err := onex.Open(gen.RandomWalks(gen.WalkOptions{Num: 4, Length: 32, Seed: 9}), onex.Config{MaxLength: 12})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("walks", mem)
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()

	body, _ := json.Marshal(AddSeriesRequest{Series: "w", Values: []float64{1, 2, 3, 4}})
	resp, err := http.Post(hts.URL+"/api/v1/datasets/walks/series", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower ingest status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(replica.HeaderLeader); got != "http://leader:8080" {
		t.Fatalf("%s = %q, want the leader URL", replica.HeaderLeader, got)
	}

	lbody, _ := json.Marshal(LoadRequest{Name: "x", Source: "walks"})
	resp, err = http.Post(hts.URL+"/api/v1/datasets/load", "application/json", bytes.NewReader(lbody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower load status = %d, want 503", resp.StatusCode)
	}

	// Reads still serve.
	resp, err = http.Get(hts.URL + "/api/v1/datasets/walks/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read status = %d, want 200", resp.StatusCode)
	}
}

// TestReplicaTelemetrySurfaces: WithReplicaStatus feeds both the healthz
// replication block and the onex_replica_* metric families.
func TestReplicaTelemetrySurfaces(t *testing.T) {
	sample := replica.Status{
		Dataset: "walks", Leader: "http://leader:8080", State: "streaming",
		AppliedSeq: 7, LeaderSeq: 9, LagRecords: 2, SecondsSinceRecord: 0.5,
		Reconnects: 1, SnapshotsShipped: 2, RecordsApplied: 6,
	}
	s := New(
		WithLeader("http://leader:8080"),
		WithReplicaStatus(func() map[string]replica.Status {
			return map[string]replica.Status{"walks": sample}
		}),
	)
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()

	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	if health.Leader != "http://leader:8080" {
		t.Fatalf("healthz leader = %q", health.Leader)
	}
	st, ok := health.Replication["walks"]
	if !ok || st.AppliedSeq != 7 || st.LeaderSeq != 9 || st.LagRecords != 2 {
		t.Fatalf("healthz replication block = %+v", health.Replication)
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`onex_replica_applied_seq{dataset="walks"} 7`,
		`onex_replica_leader_seq{dataset="walks"} 9`,
		`onex_replica_lag_records{dataset="walks"} 2`,
		`onex_replica_seconds_since_record{dataset="walks"} 0.5`,
		`onex_replica_reconnects_total{dataset="walks"} 1`,
		`onex_replica_snapshots_shipped_total{dataset="walks"} 2`,
		`onex_replica_records_applied_total{dataset="walks"} 6`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHealthzRecoveryDetail: the persistence block carries the structured
// recovery report (snapshot version, records replayed) for store-backed
// datasets.
func TestHealthzRecoveryDetail(t *testing.T) {
	dir := t.TempDir()
	eng, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.RandomWalks(gen.WalkOptions{Num: 4, Length: 48, Seed: 13})
	db, err := onex.Open(ds, onex.Config{Store: eng, MaxLength: 12})
	if err != nil {
		t.Fatal(err)
	}
	openVersion := db.Version()
	if err := db.AddSeries("extra", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := onex.OpenStore(dir, onex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AddDB("walks", re)
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		re.Close()
	})

	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	info, ok := health.Persistence["walks"]
	if !ok || info.RecoveryDetail == nil {
		t.Fatalf("persistence block missing recovery detail: %+v", health.Persistence)
	}
	det := info.RecoveryDetail
	if det.SnapshotVersion != openVersion || det.RecordsReplayed != 1 || det.WALBytesTruncated != 0 {
		t.Fatalf("recovery detail = %+v, want snapshotVersion=%d recordsReplayed=1", det, openVersion)
	}
}
