package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/onex"
)

// fuzzServer builds one cached server per fuzz process, shared across
// executions (the handlers are concurrency-safe; rebuilding the index per
// input would dominate the fuzz budget). ServeHTTP is driven directly so a
// handler panic fails the fuzz target instead of being swallowed by
// net/http's connection recover.
var fuzzServer = sync.OnceValue(func() *Server {
	db, err := onex.Open(gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 12}),
		onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		panic(err)
	}
	s := New(WithCache(1 << 18))
	s.AddDB("growth", db)
	return s
})

// fuzzPost runs one in-process POST and checks the decoder contract: no
// panic, and a status from the endpoint's documented set.
func fuzzPost(t *testing.T, path string, body []byte) {
	s := fuzzServer()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
	default:
		t.Fatalf("status %d for body %q", rec.Code, body)
	}
	if rec.Body.Len() == 0 {
		t.Fatalf("empty response body for %q", body)
	}
}

// FuzzQueryDecode throws arbitrary bytes at the unified query endpoint:
// the decode-validate-execute path (including cache keying) must never
// panic and must answer with a documented status.
func FuzzQueryDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`not json at all`,
		`{"values":[1,2,3],"k":2}`,
		`{"window":{"series":"MA","start":0,"length":8},"k":1,"mode":"exact"}`,
		`{"values":[1e309]}`,
		`{"values":[0.1,0.2],"max_dist":-3,"band":-1,"workers":-2}`,
		`{"window":{"series":"no-such-series","start":-5,"length":999}}`,
		`{"values":[1,2,3],"lengths":{"min":9,"max":4}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/api/v1/datasets/growth/query", body)
	})
}

// FuzzAnalyzeDecode is FuzzQueryDecode for the analytics endpoint.
func FuzzAnalyzeDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"kind":"overview","k":4}`,
		`{"kind":"seasonal","series":"MA","min_occurrences":-1}`,
		`{"kind":"group-members","length":6,"index":9999}`,
		`{"kind":"similarity-sweep","values":[1,2],"thresholds":[0.5,-0.5]}`,
		`{"kind":"zzz"}`,
		`[1,2,3]`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/api/v1/datasets/growth/analyze", body)
	})
}
