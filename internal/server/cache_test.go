package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/onex"
)

// newServingTestServer builds a server over a small in-process dataset
// (bypassing the HTTP load endpoint: these tests hammer the query path and
// want cheap setup) with the given serving-tier options.
func newServingTestServer(t testing.TB, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	db, err := onex.Open(gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16}),
		onex.Config{MinLength: 4, MaxLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := New(opts...)
	s.AddDB("growth", db)
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	return s, hts
}

// postBody POSTs raw JSON and returns status and body.
func postBody(t testing.TB, url, body string, header http.Header) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

var (
	wallMicrosRE  = regexp.MustCompile(`"wall_micros":\d+`)
	buildMillisRE = regexp.MustCompile(`"BuildMillis":\d+`)
)

// stripWall zeroes the measured wall times (query wall_micros, ingest
// BuildMillis), the only nondeterministic response fields; everything else
// is contractually deterministic.
func stripWall(b []byte) []byte {
	b = wallMicrosRE.ReplaceAll(b, []byte(`"wall_micros":0`))
	return buildMillisRE.ReplaceAll(b, []byte(`"BuildMillis":0`))
}

// TestCacheHitByteIdentical: a repeated query must be answered from the
// cache with the exact bytes of the first response — including wall_micros,
// proving it never re-ran the search.
func TestCacheHitByteIdentical(t *testing.T) {
	s, hts := newServingTestServer(t, WithCache(1<<20))
	url := hts.URL + "/api/v1/datasets/growth/query"
	const q = `{"window":{"series":"MA","start":0,"length":8},"k":2,"exclude":{"self":true}}`
	st1, body1 := postBody(t, url, q, nil)
	st2, body2 := postBody(t, url, q, nil)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("statuses = %d, %d", st1, st2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from original:\n%s\n%s", body1, body2)
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit 1 miss", st)
	}
}

// TestCacheCanonicalizationAcrossWireForms: structurally different request
// bodies for the same semantic query must share one cache entry.
func TestCacheCanonicalizationAcrossWireForms(t *testing.T) {
	s, hts := newServingTestServer(t, WithCache(1<<20))
	url := hts.URL + "/api/v1/datasets/growth/query"
	forms := []string{
		`{"window":{"series":"MA","start":0,"length":8}}`,                                   // K defaulted
		`{"window":{"series":"MA","start":0,"length":8},"k":1}`,                             // K explicit
		`{"k":1,"window":{"length":8,"series":"MA","start":0}}`,                             // field order
		`{ "window" : {"series":"MA","start":0,"length":8}, "k":1, "length_norm":"length"}`, // norm explicit
		`{"window":{"series":"MA","start":0,"length":8},"k":1,"unknown":true}`,              // unknown field
	}
	var first []byte
	for i, form := range forms {
		st, body := postBody(t, url, form, nil)
		if st != 200 {
			t.Fatalf("form %d status = %d (%s)", i, st, body)
		}
		if i == 0 {
			first = body
			continue
		}
		if !bytes.Equal(body, first) {
			t.Errorf("form %d not served from the shared entry:\n%s\n%s", i, body, first)
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 || st.Hits != int64(len(forms)-1) {
		t.Fatalf("cache stats = %+v, want 1 miss %d hits", st, len(forms)-1)
	}

	// A semantically different request must not be served from that entry.
	st, _ := postBody(t, url, `{"window":{"series":"MA","start":0,"length":8},"k":2}`, nil)
	if st != 200 {
		t.Fatalf("k=2 status = %d", st)
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Fatalf("k=2 did not miss: %+v", st)
	}
}

// TestCacheInvalidationOnIngest is the core staleness test: after an
// AddSeries that changes a query's answer, the cached pre-ingest response
// must never be served again.
func TestCacheInvalidationOnIngest(t *testing.T) {
	_, hts := newServingTestServer(t, WithCache(1<<20))
	qURL := hts.URL + "/api/v1/datasets/growth/query"

	// Query in exact mode so the answer is fully determined by the data.
	var sv struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, hts.URL+"/api/v1/datasets/growth/series/MA", &sv)
	qv, _ := json.Marshal(sv.Values[:8])
	query := fmt.Sprintf(`{"values":%s,"k":1,"mode":"exact","exclude":{"series":["MA"]}}`, qv)

	st, before := postBody(t, qURL, query, nil)
	if st != 200 {
		t.Fatalf("pre-ingest status = %d (%s)", st, before)
	}
	st, cached := postBody(t, qURL, query, nil)
	if st != 200 || !bytes.Equal(before, cached) {
		t.Fatal("warm-up hit not served")
	}

	// Ingest a near-exact clone of the query window: the new best match.
	clone := make([]float64, 8)
	for i, v := range sv.Values[:8] {
		clone[i] = v + 1e-9
	}
	cv, _ := json.Marshal(clone)
	st, body := postBody(t, hts.URL+"/api/v1/datasets/growth/series",
		fmt.Sprintf(`{"series":"clone","values":%s}`, cv), nil)
	if st != 200 {
		t.Fatalf("ingest status = %d (%s)", st, body)
	}

	st, after := postBody(t, qURL, query, nil)
	if st != 200 {
		t.Fatalf("post-ingest status = %d", st)
	}
	if bytes.Equal(stripWall(before), stripWall(after)) {
		t.Fatal("post-ingest query served the stale pre-ingest answer")
	}
	var res onex.Result
	if err := json.Unmarshal(after, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].Series != "clone" {
		t.Fatalf("post-ingest best match = %+v, want the ingested clone", res.Matches)
	}

	// And the post-ingest answer is itself cached and hit on repeat.
	st, again := postBody(t, qURL, query, nil)
	if st != 200 || !bytes.Equal(after, again) {
		t.Fatal("post-ingest answer not served from cache on repeat")
	}
}

// TestCacheInvalidationOnDatasetReload: replacing a dataset under the same
// name (what the load endpoint's AddDB does) must orphan every cached
// entry of the old incarnation, even though the fresh DB's mutation
// version starts back at 1 — the key carries the instance ID precisely so
// (name, version) collisions across incarnations cannot serve stale data.
func TestCacheInvalidationOnDatasetReload(t *testing.T) {
	s, hts := newServingTestServer(t, WithCache(1<<20))
	qURL := hts.URL + "/api/v1/datasets/growth/query"

	var sv struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, hts.URL+"/api/v1/datasets/growth/series/MA", &sv)
	qv, _ := json.Marshal(sv.Values[:8])
	query := fmt.Sprintf(`{"values":%s,"k":1,"mode":"exact"}`, qv)

	st, before := postBody(t, qURL, query, nil)
	if st != 200 {
		t.Fatalf("pre-reload status = %d (%s)", st, before)
	}
	st, cached := postBody(t, qURL, query, nil)
	if st != 200 || !bytes.Equal(before, cached) {
		t.Fatal("warm-up hit not served")
	}

	// Replace "growth" with entirely different data. Both incarnations
	// report Version() == 1, so only the instance ID separates their keys.
	walks, err := onex.Open(gen.RandomWalks(gen.WalkOptions{Num: 5, Length: 32}),
		onex.Config{MinLength: 4, MaxLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("growth", walks)

	st, after := postBody(t, qURL, query, nil)
	if st != 200 {
		t.Fatalf("post-reload status = %d (%s)", st, after)
	}
	if bytes.Equal(stripWall(before), stripWall(after)) {
		t.Fatal("post-reload query served the old incarnation's cached answer")
	}
	var res onex.Result
	if err := json.Unmarshal(after, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || !strings.HasPrefix(res.Matches[0].Series, "walk-") {
		t.Fatalf("post-reload best match = %+v, want a series of the reloaded dataset", res.Matches)
	}

	// The new incarnation's answer is itself cached and hit on repeat.
	st, again := postBody(t, qURL, query, nil)
	if st != 200 || !bytes.Equal(after, again) {
		t.Fatal("post-reload answer not served from cache on repeat")
	}
}

// TestNoCacheHeaderRevalidates: Cache-Control: no-cache must bypass the
// cache read (recomputing fresh) while still agreeing with the cached
// answer when the data hasn't changed.
func TestNoCacheHeaderRevalidates(t *testing.T) {
	s, hts := newServingTestServer(t, WithCache(1<<20))
	url := hts.URL + "/api/v1/datasets/growth/query"
	const q = `{"window":{"series":"MA","start":2,"length":8},"k":1}`
	_, cached := postBody(t, url, q, nil)
	_, cached2 := postBody(t, url, q, nil)
	if !bytes.Equal(cached, cached2) {
		t.Fatal("warm-up hit failed")
	}
	hits := s.cache.Stats().Hits
	_, fresh := postBody(t, url, q, http.Header{"Cache-Control": []string{"no-cache"}})
	if s.cache.Stats().Hits != hits {
		t.Fatal("no-cache request was served from the cache")
	}
	if !bytes.Equal(stripWall(cached), stripWall(fresh)) {
		t.Fatalf("fresh recomputation disagrees with cached answer:\n%s\n%s", cached, fresh)
	}
}

// TestCachedServerEquivalence replays one randomized interleaving of
// queries, analyses, and ingests against a cache-enabled and a
// cache-disabled server and requires byte-identical behaviour (status and
// body, wall time normalized) on every single response — the acceptance
// bar for the serving tier.
func TestCachedServerEquivalence(t *testing.T) {
	_, cachedS := newServingTestServer(t, WithCache(1<<20))
	_, plainS := newServingTestServer(t)

	rng := rand.New(rand.NewSource(7))
	queries := []string{
		`{"window":{"series":"MA","start":0,"length":8},"k":2}`,
		`{"window":{"series":"CT","start":3,"length":6},"k":1,"mode":"exact"}`,
		`{"window":{"series":"MA","start":0,"length":8},"k":2,"exclude":{"self":true}}`,
		`{"window":{"series":"NY","start":1,"length":5},"max_dist":0.4}`,
		`{"window":{"series":"MA","start":9,"length":200},"k":1}`, // invalid: both must 400 alike
	}
	analyses := []string{
		`{"kind":"overview","k":6}`,
		`{"kind":"length-summaries"}`,
		`{"kind":"seasonal","series":"MA"}`,
		`{"kind":"bogus"}`, // invalid: both must 400 alike
	}
	ingestN := 0
	for step := range 120 {
		var path, body string
		switch r := rng.Float64(); {
		case r < 0.55:
			path, body = "/api/v1/datasets/growth/query", queries[rng.Intn(len(queries))]
		case r < 0.80:
			path, body = "/api/v1/datasets/growth/analyze", analyses[rng.Intn(len(analyses))]
		default:
			// Identical ingest on both servers keeps their datasets equal.
			ingestN++
			vals := make([]float64, 12)
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			vb, _ := json.Marshal(vals)
			path, body = "/api/v1/datasets/growth/series",
				fmt.Sprintf(`{"series":"extra-%d","values":%s}`, ingestN, vb)
		}
		stC, bodyC := postBody(t, cachedS.URL+path, body, nil)
		stP, bodyP := postBody(t, plainS.URL+path, body, nil)
		if stC != stP {
			t.Fatalf("step %d %s: status diverged cached=%d plain=%d (%s)", step, path, stC, stP, body)
		}
		if !bytes.Equal(stripWall(bodyC), stripWall(bodyP)) {
			t.Fatalf("step %d %s %s:\ncached: %s\nplain:  %s", step, path, body, bodyC, bodyP)
		}
	}
}

// TestCacheConcurrentIngestNoStaleRead races cached queries against
// ingests under heavy eviction pressure (a tiny byte budget) and asserts
// the linearizability oracle: with a fixed exact-mode probe, each client's
// observed best distance never increases, because ingest only ever adds
// candidates. Run under -race in CI.
func TestCacheConcurrentIngestNoStaleRead(t *testing.T) {
	_, hts := newServingTestServer(t, WithCache(8<<10)) // small: constant eviction
	qURL := hts.URL + "/api/v1/datasets/growth/query"

	var sv struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, hts.URL+"/api/v1/datasets/growth/series/MA", &sv)
	probeVals := sv.Values[:8]
	pv, _ := json.Marshal(probeVals)
	probe := fmt.Sprintf(`{"values":%s,"k":1,"mode":"exact"}`, pv)

	const (
		clients = 4
		rounds  = 25
		ingests = 12
	)
	var wg sync.WaitGroup
	// Ingester: progressively closer clones of the probe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ingests {
			clone := make([]float64, len(probeVals))
			for j, v := range probeVals {
				clone[j] = v + 0.3/float64(i+1)
			}
			cv, _ := json.Marshal(clone)
			st, body := postBody(t, hts.URL+"/api/v1/datasets/growth/series",
				fmt.Sprintf(`{"series":"race-%d","values":%s}`, i, cv), nil)
			if st != 200 {
				t.Errorf("ingest %d status = %d (%s)", i, st, body)
				return
			}
		}
	}()
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			best := -1.0
			for r := range rounds {
				st, body := postBody(t, qURL, probe, nil)
				if st != 200 {
					t.Errorf("client %d round %d status = %d", c, r, st)
					return
				}
				var res onex.Result
				if err := json.Unmarshal(body, &res); err != nil || len(res.Matches) == 0 {
					t.Errorf("client %d round %d bad body: %v", c, r, err)
					return
				}
				d := res.Matches[0].Dist
				if best >= 0 && d > best+1e-9 {
					t.Errorf("client %d round %d: STALE READ — distance rose %g -> %g", c, r, best, d)
					return
				}
				best = d
			}
		}()
	}
	wg.Wait()
}
