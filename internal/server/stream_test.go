package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/onex"
)

// loadWalks registers a base large enough that an exact walk spans several
// refinement waves, so the stream endpoint emits a real sequence.
func loadWalks(t *testing.T, s *Server) {
	t.Helper()
	d := gen.RandomWalks(gen.WalkOptions{Num: 8, Length: 96, Seed: 11})
	db, err := onex.Open(d, onex.Config{ST: 0.12, MinLength: 8, MaxLength: 20, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("walks", db)
}

func streamQuery(t *testing.T, s *Server) onex.Query {
	t.Helper()
	db, ok := s.db("walks")
	if !ok {
		t.Fatal("walks not loaded")
	}
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		t.Fatal(err)
	}
	// Workers: 1 keeps the full statistics block deterministic, so the
	// final stream line can be compared field-for-field against the
	// one-shot endpoint (at Workers > 1 the LB/DTW split is
	// scheduling-dependent by the documented parallel contract).
	return onex.Query{Values: raw[0:16], K: 4, Workers: 1}
}

func TestQueryStreamEndpoint(t *testing.T) {
	s, hts := newTestServer(t)
	loadWalks(t, s)
	q := streamQuery(t, s)

	body, _ := json.Marshal(q)
	resp, err := http.Post(hts.URL+"/api/v1/datasets/walks/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	var updates []onex.Update
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var u onex.Update
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line: %v (%s)", err, sc.Text())
		}
		updates = append(updates, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(updates) < 3 {
		t.Fatalf("%d updates; want approx + waves + final", len(updates))
	}
	first, last := updates[0], updates[len(updates)-1]
	if first.Seq != 0 || first.Wave != 0 || first.Final {
		t.Fatalf("first line seq=%d wave=%d final=%v", first.Seq, first.Wave, first.Final)
	}
	if !last.Final || last.GroupsRemaining != 0 {
		t.Fatalf("last line final=%v remaining=%d", last.Final, last.GroupsRemaining)
	}

	// The final line equals what the one-shot endpoint returns in exact
	// mode (wall time aside).
	exactQ := q
	exactQ.Mode = onex.ModeExact
	resp2, raw := postJSON(t, hts.URL+"/api/v1/datasets/walks/query", exactQ)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("one-shot status = %d (%s)", resp2.StatusCode, raw)
	}
	oneShot := decodeResult(t, raw)
	if len(last.Matches) != len(oneShot.Matches) {
		t.Fatalf("final line %d matches, one-shot %d", len(last.Matches), len(oneShot.Matches))
	}
	for i := range last.Matches {
		a, b := last.Matches[i], oneShot.Matches[i]
		if a.Series != b.Series || a.Start != b.Start || a.Length != b.Length || a.Dist != b.Dist {
			t.Fatalf("final line match %d %+v != one-shot %+v", i, a, b)
		}
	}
	st, ost := last.Stats, oneShot.Stats
	st.WallMicros, ost.WallMicros = 0, 0
	if st != ost {
		t.Fatalf("final line stats %+v != one-shot %+v", st, ost)
	}
}

func TestQueryStreamValidation(t *testing.T) {
	s, hts := newTestServer(t)
	loadWalks(t, s)

	// Unknown dataset: 404 before any streaming.
	resp, _ := postJSON(t, hts.URL+"/api/v1/datasets/nope/query/stream", onex.Query{Values: []float64{1, 2, 3}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d", resp.StatusCode)
	}
	// Range queries are not streamable: 400 with a JSON error.
	resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/walks/query/stream", onex.Query{Values: []float64{1, 2, 3}, MaxDist: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("range query status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "not streamable") {
		t.Fatalf("range query error body = %s", raw)
	}
	// Malformed body: 400.
	resp2, err := http.Post(hts.URL+"/api/v1/datasets/walks/query/stream", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp2.StatusCode)
	}
}

// TestQueryStreamClientDisconnect is the mid-stream cancellation test for
// the HTTP layer: a client that reads the first update and drops the
// connection must stop the core walk within one pruning round, leaving no
// goroutines behind.
func TestQueryStreamClientDisconnect(t *testing.T) {
	s, hts := newTestServer(t)
	loadWalks(t, s)
	q := streamQuery(t, s)
	baseline := runtime.NumGoroutine()

	body, _ := json.Marshal(q)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hts.URL+"/api/v1/datasets/walks/query/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read just the first line, then hang up.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first update before disconnect")
	}
	var first onex.Update
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first line: %v", err)
	}
	if first.Final {
		t.Fatal("first line already final; disconnect test needs a longer walk")
	}
	cancel()
	resp.Body.Close()

	// goleak-style drain check: the handler goroutine, the stream
	// goroutine, and the worker pool must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after client disconnect: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	s, hts := newTestServer(t)
	for _, path := range []string{"/healthz", "/api/v1/healthz", "/api/healthz"} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		var h HealthResponse
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatalf("%s: %v (%s)", path, err, raw)
		}
		if h.Status != "ok" || h.GoVersion == "" || h.Version == "" {
			t.Fatalf("%s payload = %+v", path, h)
		}
		if h.Datasets != 0 {
			t.Fatalf("%s datasets = %d before any load", path, h.Datasets)
		}
	}
	loadWalks(t, s)
	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Datasets != 1 {
		t.Fatalf("datasets = %d after load, want 1", h.Datasets)
	}
}
