package server

import (
	"fmt"
	"html/template"
	"net/http"

	"repro/internal/dist"
	"repro/internal/viz"
	"repro/onex"
)

func (s *Server) handleVizOverview(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	length := queryInt(r, "length", 0)
	k := queryInt(r, "k", 12)
	res, err := db.Analyze(r.Context(), onex.Analysis{Kind: onex.AnalysisOverview, Length: max(length, 0), K: k})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := make([]viz.OverviewCell, len(res.Groups))
	//onex:nopoll rendering an already-computed overview of at most k tiles; the walk polled inside Analyze
	for i, g := range res.Groups {
		cells[i] = viz.OverviewCell{
			Rep:   g.Rep,
			Count: g.Count,
			Label: fmt.Sprintf("len %d · n=%d", g.Length, g.Count),
		}
	}
	writeSVG(w, viz.OverviewGrid("ONEX similarity groups — "+r.PathValue("name"), cells, 4, 120, 72))
}

func (s *Server) handleVizMatch(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	series := r.URL.Query().Get("series")
	start := queryInt(r, "start", 0)
	length := queryInt(r, "len", 0)
	if series == "" || length <= 0 {
		writeErr(w, http.StatusBadRequest, "series and len are required")
		return
	}
	m, err := db.BestMatchForSeries(series, start, length)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	vals, err := db.SeriesValues(series)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := vals[start : start+length]
	path := make(dist.WarpPath, len(m.Path))
	for i, p := range m.Path {
		path[i] = dist.PathStep{I: p[0], J: p[1]}
	}
	title := fmt.Sprintf("best match: %s[%d:%d) vs %s[%d:%d), DTW=%.4f",
		series, start, start+length, m.Series, m.Start, m.Start+m.Length, m.Dist)
	writeSVG(w, viz.WarpChart(title,
		viz.NamedSeries{Name: series, Values: q},
		viz.NamedSeries{Name: m.Series, Values: m.Values},
		path, 640, 280))
}

func (s *Server) handleVizRadial(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	a, b, err := twoSeries(db, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeSVG(w, viz.RadialChart("radial — "+r.PathValue("name"), a, b, 360))
}

func (s *Server) handleVizScatter(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	a, b, err := twoSeries(db, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeSVG(w, viz.ConnectedScatter("connected scatter — "+r.PathValue("name"), a, b, nil, 360))
}

func twoSeries(db interface {
	SeriesValues(string) ([]float64, error)
}, r *http.Request) (viz.NamedSeries, viz.NamedSeries, error) {
	an := r.URL.Query().Get("a")
	bn := r.URL.Query().Get("b")
	if an == "" || bn == "" {
		return viz.NamedSeries{}, viz.NamedSeries{}, fmt.Errorf("a and b series are required")
	}
	av, err := db.SeriesValues(an)
	if err != nil {
		return viz.NamedSeries{}, viz.NamedSeries{}, err
	}
	bv, err := db.SeriesValues(bn)
	if err != nil {
		return viz.NamedSeries{}, viz.NamedSeries{}, err
	}
	return viz.NamedSeries{Name: an, Values: av}, viz.NamedSeries{Name: bn, Values: bv}, nil
}

func (s *Server) handleVizSeasonal(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	series := r.URL.Query().Get("series")
	if series == "" {
		writeErr(w, http.StatusBadRequest, "series is required")
		return
	}
	length := queryInt(r, "len", 0)
	pats, err := db.Seasonal(series, length, length, 2)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	vals, err := db.SeriesValues(series)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var segs []viz.SeasonalSegment
	title := fmt.Sprintf("seasonal — %s (no pattern)", series)
	if len(pats) > 0 {
		p := pats[0]
		for _, st := range p.Starts {
			segs = append(segs, viz.SeasonalSegment{Start: st, Length: p.Length})
		}
		title = fmt.Sprintf("seasonal — %s: %d occurrences of a length-%d pattern (mean gap %.1f)",
			series, p.Occurrences, p.Length, p.MeanGap)
	}
	writeSVG(w, viz.SeasonalView(title, vals, segs, 760, 260))
}

var indexTemplate = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>ONEX — Online Exploration of Time Series</title>
<style>
 body { font-family: sans-serif; margin: 2em; color: #222; max-width: 60em; }
 code { background: #f4f4f4; padding: 1px 4px; }
 td, th { padding: 4px 10px; border-bottom: 1px solid #ddd; text-align: left; }
</style></head>
<body>
<h1>ONEX — Online Exploration of Time Series</h1>
<p>Go reproduction of the SIGMOD'17 demo. Load a dataset (triggers server-side
preprocessing into the ONEX base), then explore via the JSON API or the SVG views.</p>
<h2>Loaded datasets</h2>
<table><tr><th>name</th><th>series</th><th>subsequences</th><th>groups</th><th>compaction</th><th>ST</th><th>views</th></tr>
{{range .}}<tr><td>{{.Name}}</td><td>{{.Stats.Series}}</td><td>{{.Stats.Subsequences}}</td>
<td>{{.Stats.Groups}}</td><td>{{printf "%.1f" .Stats.CompactionRatio}}</td><td>{{printf "%.4f" .ST}}</td>
<td><a href="/explore/{{.Name}}">explore</a> · <a href="/viz/{{.Name}}/overview.svg">overview</a></td></tr>
{{else}}<tr><td colspan="7"><i>none yet — POST /api/datasets/load</i></td></tr>{{end}}
</table>
<h2>API</h2>
<pre>
POST /api/datasets/load                  {"name":"growth","source":"matters:GrowthRate"}
GET  /api/datasets
GET  /api/datasets/{name}/series
GET  /api/datasets/{name}/overview?length=0&k=12
POST /api/datasets/{name}/query/similarity  {"series":"MA","start":0,"length":12}
POST /api/datasets/{name}/query/seasonal    {"series":"household-00","min_length":12}
GET  /api/datasets/{name}/thresholds
GET  /viz/{name}/match.svg?series=MA&start=0&len=12
GET  /viz/{name}/radial.svg?a=MA&b=AR      /viz/{name}/scatter.svg?a=MA&b=AR
GET  /viz/{name}/seasonal.svg?series=household-00&len=12
</pre>
</body></html>
`))

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	s.mu.RUnlock()
	infos := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		if db, ok := s.db(n); ok {
			infos = append(infos, DatasetInfo{Name: n, Stats: db.Stats(), ST: db.ST()})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTemplate.Execute(w, infos)
}
