// Package server exposes the ONEX engine over HTTP, reproducing the demo's
// client-server architecture (paper §4): loading a dataset triggers server-
// side preprocessing into the ONEX base, after which the analyst explores
// via near-real-time JSON queries and SVG chart endpoints.
//
// Endpoints (all JSON unless noted). Every /api/v1 route is also served
// under the unversioned /api prefix for compatibility:
//
//	GET  /                                        demo HTML page
//	GET  /healthz (also /api/v1/healthz)          liveness: build info + dataset count
//	GET  /metrics                                 Prometheus text metrics (requests, latency, cache, admission)
//	GET  /api/v1/datasets                         loaded datasets + stats
//	POST /api/v1/datasets/load                    load+preprocess (see LoadRequest)
//	GET  /api/v1/datasets/{name}/series           series names
//	POST /api/v1/datasets/{name}/series           append + index a series
//	GET  /api/v1/datasets/{name}/series/{series}  one series' values
//	GET  /api/v1/datasets/{name}/overview         group summaries ?length=&k=
//	GET  /api/v1/datasets/{name}/lengths          per-length base stats
//	GET  /api/v1/datasets/{name}/groups/{l}/{i}   group drill-down
//	POST /api/v1/datasets/{name}/query            unified query (onex.Query → onex.Result)
//	POST /api/v1/datasets/{name}/query/stream     progressive query (onex.Query → NDJSON onex.Update lines)
//	POST /api/v1/datasets/{name}/analyze          unified analytics (onex.Analysis → onex.AnalysisResult)
//	POST /api/v1/datasets/{name}/query/similarity legacy similarity alias (QueryRequest)
//	POST /api/v1/datasets/{name}/query/range      legacy range alias (RangeRequest)
//	POST /api/v1/datasets/{name}/query/seasonal   seasonal query (SeasonalRequest)
//	GET  /api/v1/datasets/{name}/thresholds       ST recommendations
//	GET  /viz/{name}/overview.svg                 overview grid     ?length=&k=
//	GET  /viz/{name}/match.svg                    warp chart        ?series=&start=&len=
//	GET  /viz/{name}/radial.svg                   radial chart      ?a=&b=
//	GET  /viz/{name}/scatter.svg                  connected scatter ?a=&b=
//	GET  /viz/{name}/seasonal.svg                 seasonal view     ?series=&len=
//
// The unified query and analyze endpoints are the primary API: their
// bodies map 1:1 onto onex.Query and onex.Analysis, their responses are
// the full onex.Result / onex.AnalysisResult (payload, resolved request,
// stats), and cancelling the HTTP request cancels the underlying walk.
// Under load they are defended by the serving tier: WithCache answers
// repeated requests from a dataset-version-keyed result cache, WithRateLimit
// and WithMaxInflight shed excess traffic with 429/503 + Retry-After, and
// GET /metrics exports the whole picture in Prometheus text format.
// The query/stream endpoint is the progressive variant: the same body,
// answered as NDJSON — the approximate top-k first, one line per
// certified refinement wave, terminating with the exact result — with a
// flush per update, so a client renders the answer while it refines. The
// per-scenario legacy routes remain as thin aliases over the same
// execution paths, so every analytics route honours request-context
// cancellation too.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gen"
	"repro/internal/replica"
	"repro/internal/servecache"
	"repro/internal/ts"
	"repro/onex"
)

// Server holds the loaded ONEX databases. Safe for concurrent use.
type Server struct {
	mu         sync.RWMutex
	dbs        map[string]*onex.DB
	mux        *http.ServeMux
	dataDir    string // when set, "file:" load sources must resolve inside it
	maxWorkers int    // per-request cap on Query/Analysis Workers (0 = GOMAXPROCS)
	storeDir   string // when set, loaded datasets persist under storeDir/<name> (WithStore)
	fsyncEvery int    // WAL group-commit stride for store-backed datasets (WithFsyncEvery)
	mmapValues bool   // RestoreStored opens datasets with mmap-backed values (WithMmap)

	// Serving tier (see docs/ARCHITECTURE.md, "serving tier"): a versioned
	// result cache, per-client rate limiting, concurrent-query admission
	// control, and the /metrics registry. cache, limiter, and gate are nil
	// when the corresponding option is off; metrics is always live.
	cache      *servecache.Cache
	limiter    *rateLimiter
	gate       *gate
	metrics    *metrics
	trustProxy bool // rate-limit on X-Forwarded-For (WithTrustedProxy)

	// Replication (see replication.go): leaderURL marks a serving follower
	// (writes 503 there); replicaStatus samples follower telemetry for
	// /healthz and the onex_replica_* metric families.
	leaderURL     string
	replicaStatus func() map[string]replica.Status
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithDataDir restricts POST /api/v1/datasets/load "file:" sources to
// paths inside dir: requests escaping it (via "..", absolute paths, or any
// other traversal) are rejected with 403. The default — no data directory
// — keeps the historical behaviour of loading any server-readable path,
// which is only appropriate when the operator and the analyst are the same
// person (the CLI demo).
func WithDataDir(dir string) Option {
	return func(s *Server) { s.dataDir = dir }
}

// WithMaxWorkers caps the per-request Workers knob on the query and
// analyze endpoints at n, so a single request cannot monopolize the box
// under concurrent traffic. The default cap is GOMAXPROCS; requests asking
// for 0 ("all cores") or more than the cap are clamped to it, requests
// asking for less keep their value.
func WithMaxWorkers(n int) Option {
	return func(s *Server) { s.maxWorkers = n }
}

// capWorkers clamps a request's Workers field to the server's per-request
// limit. Negative values pass through so the library rejects them with its
// own validation error.
func (s *Server) capWorkers(w int) int {
	limit := s.maxWorkers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if w == 0 || w > limit {
		return limit
	}
	return w
}

// WithCache enables the versioned result cache for the unified query and
// analyze endpoints, bounded to maxBytes of encoded responses. Entries are
// keyed by (dataset, DB instance ID, dataset version, canonicalized
// request), so an ingest — which bumps the dataset version — makes every
// earlier entry unreachable, and reloading a dataset under the same name —
// which produces a fresh instance ID — orphans the old incarnation's
// entries wholesale: a stale answer is never served, with no flush to race
// against. Streaming responses are never cached (each is consumed once)
// but count as cache misses in /metrics. maxBytes <= 0 leaves caching off.
func WithCache(maxBytes int64) Option {
	return func(s *Server) {
		if maxBytes > 0 {
			s.cache = servecache.New(maxBytes)
		}
	}
}

// WithRateLimit applies a per-client token bucket to the query-class
// endpoints (query, query/stream, analyze, and the legacy query aliases):
// each client accrues rps tokens per second up to burst, and a request
// with no token available is rejected with 429 and a Retry-After header.
// Clients are keyed by their remote IP; behind a reverse proxy (where
// every connection shares the proxy's IP) add WithTrustedProxy to key on
// the forwarded client address instead. rps <= 0 leaves rate limiting
// off; burst < 1 is raised to 1.
func WithRateLimit(rps float64, burst int) Option {
	return func(s *Server) {
		if rps > 0 {
			s.limiter = newRateLimiter(rps, burst)
		}
	}
}

// WithTrustedProxy keys rate limiting on the first X-Forwarded-For hop
// instead of the remote IP. Enable it only when the server sits behind a
// proxy that overwrites (not appends to) client-supplied X-Forwarded-For
// headers: the header is otherwise attacker-controlled, and trusting it
// from directly-connected clients lets anyone bypass the limiter by
// rotating values. The default is to ignore the header entirely.
func WithTrustedProxy() Option {
	return func(s *Server) { s.trustProxy = true }
}

// WithMaxInflight bounds concurrent query-class execution to n slots with
// a wait queue of queue requests layered on top: requests beyond n wait
// their turn (bounded by their own context), and requests beyond n+queue
// are rejected immediately with 503 and a Retry-After header. Combined
// with WithMaxWorkers this caps the server's total query parallelism at
// n * maxWorkers regardless of offered load. n <= 0 leaves admission
// control off; queue < 0 is treated as 0.
func WithMaxInflight(n, queue int) Option {
	return func(s *Server) {
		if n > 0 {
			s.gate = newGate(n, max(queue, 0))
		}
	}
}

// New builds an empty server.
func New(opts ...Option) *Server {
	s := &Server{dbs: make(map[string]*onex.DB), mux: http.NewServeMux(), metrics: newMetrics()}
	for _, opt := range opts {
		opt(s)
	}
	s.routes()
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AddDB registers an already-opened database under a name (used by cmd
// wiring and tests). Replacing a registered dataset releases the old
// incarnation's persistence engine: two live engines on one store directory
// would mean two WAL writers. The replaced DB itself keeps serving any
// in-flight queries from memory.
func (s *Server) AddDB(name string, db *onex.DB) {
	s.mu.Lock()
	old := s.dbs[name]
	s.dbs[name] = db
	s.mu.Unlock()
	if old != nil && old != db {
		_ = old.Close()
	}
}

func (s *Server) db(name string) (*onex.DB, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.dbs[name]
	return db, ok
}

// api registers an API handler under both the versioned /api/v1 prefix
// (the documented surface) and the legacy unversioned /api prefix.
func (s *Server) api(method, path string, h http.HandlerFunc) {
	s.mux.HandleFunc(method+" /api/v1"+path, h)
	s.mux.HandleFunc(method+" /api"+path, h)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.api("GET", "/datasets", s.instrument("meta", false, s.handleListDatasets))
	s.api("POST", "/datasets/load", s.instrument("load", false, s.handleLoad))
	s.api("GET", "/datasets/{name}/series", s.instrument("meta", false, s.handleSeriesNames))
	s.api("POST", "/datasets/{name}/series", s.instrument("ingest", false, s.handleAddSeries))
	s.api("GET", "/datasets/{name}/series/{series}", s.instrument("meta", false, s.handleSeriesValues))
	s.api("GET", "/datasets/{name}/overview", s.instrument("explore", false, s.handleOverview))
	s.api("GET", "/datasets/{name}/lengths", s.instrument("explore", false, s.handleLengths))
	s.api("GET", "/datasets/{name}/groups/{length}/{index}", s.instrument("explore", false, s.handleGroupMembers))
	// The query-class endpoints carry the heavy walks: they are the ones
	// rate limiting and admission control defend.
	s.api("POST", "/datasets/{name}/query", s.instrument("query", true, s.handleQuery))
	s.api("POST", "/datasets/{name}/query/stream", s.instrument("query_stream", true, s.handleQueryStream))
	s.api("POST", "/datasets/{name}/analyze", s.instrument("analyze", true, s.handleAnalyze))
	s.api("GET", "/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Leader replication surface: snapshot shipping plus the seq-addressed
	// WAL tail followers long-poll (see replication.go). Deliberately
	// outside /api — this is a peer protocol, not an analyst API.
	s.mux.HandleFunc("GET /replication/v1/datasets/{name}/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /replication/v1/datasets/{name}/wal", s.handleReplWAL)
	s.api("POST", "/datasets/{name}/query/similarity", s.instrument("legacy_query", true, s.handleSimilarity))
	s.api("POST", "/datasets/{name}/query/range", s.instrument("legacy_query", true, s.handleRange))
	s.api("POST", "/datasets/{name}/query/seasonal", s.instrument("legacy_query", true, s.handleSeasonal))
	s.api("GET", "/datasets/{name}/thresholds", s.instrument("explore", false, s.handleThresholds))
	s.mux.HandleFunc("GET /viz/{name}/overview.svg", s.handleVizOverview)
	s.mux.HandleFunc("GET /viz/{name}/match.svg", s.handleVizMatch)
	s.mux.HandleFunc("GET /viz/{name}/radial.svg", s.handleVizRadial)
	s.mux.HandleFunc("GET /viz/{name}/scatter.svg", s.handleVizScatter)
	s.mux.HandleFunc("GET /viz/{name}/seasonal.svg", s.handleVizSeasonal)
	s.mux.HandleFunc("GET /viz/{name}/thresholds.svg", s.handleVizThresholds)
	s.mux.HandleFunc("GET /explore/{name}", s.handleExplore)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeSVG(w http.ResponseWriter, svg string) {
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(svg))
}

// LoadRequest asks the server to load and preprocess a dataset.
type LoadRequest struct {
	// Name registers the dataset under this key.
	Name string `json:"name"`
	// Source selects the data: "matters:<Indicator>", "electricity",
	// "cbf", "walks", or "file:<path>".
	Source string `json:"source"`
	// ST, MinLength, MaxLength, Band, Exact forward to onex.Config; zero
	// values take the library defaults.
	ST        float64 `json:"st,omitempty"`
	MinLength int     `json:"min_length,omitempty"`
	MaxLength int     `json:"max_length,omitempty"`
	Band      int     `json:"band,omitempty"`
	Exact     bool    `json:"exact,omitempty"`
}

// LoadResponse reports the preprocessing outcome.
type LoadResponse struct {
	Name  string     `json:"name"`
	Stats onex.Stats `json:"stats"`
	ST    float64    `json:"st"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Source == "" {
		writeErr(w, http.StatusBadRequest, "name and source are required")
		return
	}
	if err := s.allowSource(req.Source); err != nil {
		writeErr(w, http.StatusForbidden, "%v", err)
		return
	}
	if s.storeDir != "" && !safeDatasetName(req.Name) {
		// The name becomes a directory under the store root; reject anything
		// outside the safe alphabet before it touches the filesystem.
		writeErr(w, http.StatusBadRequest, "load: dataset name %q not allowed with persistence enabled (use letters, digits, '.', '-', '_')", req.Name)
		return
	}
	ds, err := DatasetForSource(req.Source)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := onex.Config{
		ST:         req.ST,
		MinLength:  req.MinLength,
		MaxLength:  req.MaxLength,
		Band:       req.Band,
		Exact:      req.Exact,
		FsyncEvery: s.fsyncEvery,
	}
	if s.storeDir != "" {
		eng, err := s.openStoreFor(req.Name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "store: %v", err)
			return
		}
		cfg.Store = eng
	}
	db, err := onex.Open(ds, cfg)
	if err != nil {
		if cfg.Store != nil {
			cfg.Store.Close()
		}
		writeErr(w, http.StatusInternalServerError, "preprocess: %v", err)
		return
	}
	s.AddDB(req.Name, db)
	writeJSON(w, http.StatusOK, LoadResponse{Name: req.Name, Stats: db.Stats(), ST: db.ST()})
}

// allowSource enforces the optional data-directory allowlist on "file:"
// load sources. Symlinks inside the data directory are resolved before the
// containment check, so a link pointing outside cannot smuggle a path in.
func (s *Server) allowSource(source string) error {
	path, ok := strings.CutPrefix(source, "file:")
	if !ok || s.dataDir == "" {
		return nil
	}
	root, err := filepath.Abs(s.dataDir)
	if err != nil {
		return fmt.Errorf("load: data directory: %v", err)
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return fmt.Errorf("load: %v", err)
	}
	// Resolve symlinks where possible (the file may not exist yet at check
	// time; EvalSymlinks of an existing ancestor still normalizes the root).
	if r, err := filepath.EvalSymlinks(root); err == nil {
		root = r
	}
	if a, err := filepath.EvalSymlinks(abs); err == nil {
		abs = a
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return fmt.Errorf("load: path %q escapes the data directory", path)
	}
	return nil
}

// DatasetForSource resolves a load-request source specifier into a
// dataset: "matters:<Indicator>", "electricity", "cbf", "walks", "ecg",
// or "file:<path>". Shared by the load endpoint and cmd/onexd preloading.
func DatasetForSource(source string) (*ts.Dataset, error) {
	switch {
	case strings.HasPrefix(source, "matters:"):
		ind, ok := indicatorByName(strings.TrimPrefix(source, "matters:"))
		if !ok {
			return nil, fmt.Errorf("unknown indicator %q", strings.TrimPrefix(source, "matters:"))
		}
		return gen.Matters(gen.MattersOptions{Indicator: ind}), nil
	case source == "electricity":
		return gen.ElectricityLoad(gen.ElectricityOptions{Households: 3, Days: 90, SamplesPerDay: 12}), nil
	case source == "cbf":
		return gen.CBF(gen.CBFOptions{PerClass: 8, Length: 64}), nil
	case source == "walks":
		return gen.RandomWalks(gen.WalkOptions{Num: 20, Length: 64}), nil
	case source == "ecg":
		return gen.ECG(gen.ECGOptions{Num: 6, Beats: 16, Arrhythmic: true}), nil
	case strings.HasPrefix(source, "file:"):
		return onex.LoadDataset(strings.TrimPrefix(source, "file:"))
	default:
		return nil, fmt.Errorf("unknown source %q", source)
	}
}

func indicatorByName(name string) (gen.Indicator, bool) {
	for _, ind := range []gen.Indicator{
		gen.GrowthRate, gen.UnemploymentRate, gen.TechEmployment, gen.MedianIncome, gen.TaxBurden,
	} {
		if ind.String() == name {
			return ind, true
		}
	}
	return 0, false
}

// DatasetInfo is one row of the dataset listing.
type DatasetInfo struct {
	Name  string     `json:"name"`
	Stats onex.Stats `json:"stats"`
	ST    float64    `json:"st"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		db, _ := s.db(n)
		out = append(out, DatasetInfo{Name: n, Stats: db.Stats(), ST: db.ST()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSeriesNames(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, db.SeriesNames())
}

func (s *Server) handleSeriesValues(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	vals, err := db.SeriesValues(r.PathValue("series"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": r.PathValue("series"), "values": vals})
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	length := queryInt(r, "length", 0)
	if length < 0 {
		// This route has always answered nonsense lengths with an empty
		// list rather than an error; keep that contract.
		writeJSON(w, http.StatusOK, []onex.GroupInfo{})
		return
	}
	res, err := db.Analyze(r.Context(), onex.Analysis{
		Kind:   onex.AnalysisOverview,
		Length: length,
		K:      queryInt(r, "k", 12),
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Groups)
}

// handleAnalyze is the unified, versioned analytics endpoint: the request
// body is an onex.Analysis verbatim, the response an onex.AnalysisResult
// (payload plus the resolved request and walk statistics). Cancelling the
// HTTP request cancels the walk. The per-scenario analytics routes
// (overview, lengths, groups, seasonal, thresholds) are thin aliases over
// the same execution path, preserving their historical wire formats.
//
// With WithCache, successful responses are cached under (dataset, DB
// instance ID, dataset version, canonical analysis) and repeats are
// answered byte-identically from memory; see handleQuery for the
// versioning discipline.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var a onex.Analysis
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	a.Workers = s.capWorkers(a.Workers)
	var (
		key string
		ver uint64
	)
	if s.cache != nil {
		ver = db.Version()
		key = cacheKey("a", r.PathValue("name"), db.ID(), ver, servecache.CanonicalAnalysis(a))
		if body, ok := s.cacheLookup(r, key); ok {
			writeJSONBody(w, body)
			return
		}
	}
	res, err := db.Analyze(r.Context(), a)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := encodeJSONBody(res)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	if s.cache != nil && db.Version() == ver {
		s.cache.Put(key, body)
	}
	writeJSONBody(w, body)
}

// handleQuery is the unified, versioned query endpoint: the request body
// is an onex.Query verbatim, the response an onex.Result (matches plus the
// resolved query and search statistics). Cancelling the HTTP request
// cancels the search.
//
// With WithCache, successful responses are cached under (dataset, DB
// instance ID, dataset version, canonical query). The version is read
// before the search and re-checked before the store: if an ingest slipped
// between the two, the freshly computed answer may reflect the newer data
// and is not stored under the older version's key. (Serving it to this
// requester is still linearizable — the request overlapped the ingest.)
// The instance ID ties the entry to the exact *DB that computed it, so a
// concurrent dataset replacement under the same name cannot cross-wire
// answers between incarnations.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var q onex.Query
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q.Workers = s.capWorkers(q.Workers)
	var (
		key string
		ver uint64
	)
	if s.cache != nil {
		ver = db.Version()
		key = cacheKey("q", r.PathValue("name"), db.ID(), ver, servecache.CanonicalQuery(q))
		if body, ok := s.cacheLookup(r, key); ok {
			writeJSONBody(w, body)
			return
		}
	}
	res, err := db.Find(r.Context(), q)
	switch {
	case errors.Is(err, onex.ErrNoMatch):
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := encodeJSONBody(res)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	if s.cache != nil && db.Version() == ver {
		s.cache.Put(key, body)
	}
	writeJSONBody(w, body)
}

// QueryRequest is a similarity query over a loaded dataset (the legacy
// wire format; new clients should POST an onex.Query to
// /api/v1/datasets/{name}/query instead).
type QueryRequest struct {
	// Series/Start/Length select the query window (the demo flow), or
	// Values supplies an ad-hoc query in original units.
	Series string    `json:"series,omitempty"`
	Start  int       `json:"start,omitempty"`
	Length int       `json:"length,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// K requests the top-K matches (default 1).
	K int `json:"k,omitempty"`
	// ExcludeSource excludes the whole source series rather than just the
	// overlapping windows.
	ExcludeSource bool `json:"exclude_source,omitempty"`
}

// query translates the legacy request shape onto the unified Query type.
func (req QueryRequest) query() (onex.Query, error) {
	switch {
	case len(req.Values) > 0:
		k := req.K
		if k <= 0 {
			k = 1
		}
		return onex.Query{Values: req.Values, K: k}, nil
	case req.Series != "":
		q := onex.Query{
			Window:  onex.Window{Series: req.Series, Start: req.Start, Length: req.Length},
			Exclude: onex.Exclude{Self: true},
		}
		if req.ExcludeSource {
			q.Exclude = onex.Exclude{Series: []string{req.Series}}
		}
		return q, nil
	default:
		return onex.Query{}, errors.New("provide either values or series+start+length")
	}
}

func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := req.query()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.Workers = s.capWorkers(q.Workers)
	res, err := db.Find(r.Context(), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Matches)
}

// SeasonalRequest is a seasonal query.
type SeasonalRequest struct {
	Series         string `json:"series"`
	MinLength      int    `json:"min_length,omitempty"`
	MaxLength      int    `json:"max_length,omitempty"`
	MinOccurrences int    `json:"min_occurrences,omitempty"`
}

func (s *Server) handleSeasonal(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var req SeasonalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// This route has always treated non-positive bounds as "the indexed
	// range" and an empty intersection as an empty result; Analysis spells
	// the former 0 and rejects the latter, so translate both.
	bounds := onex.Lengths{Min: max(req.MinLength, 0), Max: max(req.MaxLength, 0)}
	if bounds.Max > 0 && bounds.Min > bounds.Max {
		writeJSON(w, http.StatusOK, []onex.Pattern{})
		return
	}
	res, err := db.Analyze(r.Context(), onex.Analysis{
		Kind:           onex.AnalysisSeasonal,
		Series:         req.Series,
		Lengths:        bounds,
		MinOccurrences: req.MinOccurrences,
		Workers:        s.capWorkers(0),
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Patterns)
}

func (s *Server) handleThresholds(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	res, err := db.Analyze(r.Context(), onex.Analysis{Kind: onex.AnalysisThresholds})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Thresholds.Recommendations)
}

// AddSeriesRequest appends one series to a loaded dataset and indexes it
// incrementally (no rebuild).
type AddSeriesRequest struct {
	Series string    `json:"series"`
	Values []float64 `json:"values"`
}

func (s *Server) handleAddSeries(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var req AddSeriesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// DB.AddSeries serializes against that dataset's queries internally;
	// requests for other datasets proceed untouched.
	if err := db.AddSeries(req.Series, req.Values); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"series": req.Series, "stats": db.Stats()})
}

// RangeRequest is a within-threshold query (the legacy wire format; new
// clients should POST an onex.Query with max_dist to
// /api/v1/datasets/{name}/query instead).
type RangeRequest struct {
	Series  string    `json:"series,omitempty"`
	Start   int       `json:"start,omitempty"`
	Length  int       `json:"length,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	MaxDist float64   `json:"max_dist"`
	Limit   int       `json:"limit,omitempty"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var req RangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q := req.Values
	if len(q) == 0 && req.Series != "" {
		vals, err := db.SeriesValues(req.Series)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		if req.Start < 0 || req.Length <= 0 || req.Start+req.Length > len(vals) {
			writeErr(w, http.StatusBadRequest, "window [%d,%d) out of range", req.Start, req.Start+req.Length)
			return
		}
		q = vals[req.Start : req.Start+req.Length]
	}
	if len(q) == 0 {
		writeErr(w, http.StatusBadRequest, "provide either values or series+start+length")
		return
	}
	var (
		ms  []onex.Match
		err error
	)
	if req.MaxDist > 0 {
		// Route through Find so a disconnecting client cancels the scan.
		var res onex.Result
		res, err = db.Find(r.Context(), onex.Query{
			Values: q, MaxDist: req.MaxDist, K: req.Limit,
			Workers: s.capWorkers(0),
		})
		ms = res.Matches
	} else {
		// MaxDist = 0 ("exact matches only") keeps its legacy range
		// semantics via the wrapper. Query cannot express a zero-threshold
		// range, so this branch runs uncancellable — acceptable: a zero
		// threshold LB-prunes almost every candidate immediately.
		ms, err = db.WithinThreshold(q, req.MaxDist, req.Limit)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *Server) handleGroupMembers(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	length, err1 := strconv.Atoi(r.PathValue("length"))
	index, err2 := strconv.Atoi(r.PathValue("index"))
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, "length and index must be integers")
		return
	}
	res, err := db.Analyze(r.Context(), onex.Analysis{
		Kind:   onex.AnalysisGroupMembers,
		Length: length,
		Index:  index,
	})
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Members)
}

func (s *Server) handleLengths(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	res, err := db.Analyze(r.Context(), onex.Analysis{Kind: onex.AnalysisLengthSummaries})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.LengthSummaries)
}

func queryInt(r *http.Request, key string, def int) int {
	if v := r.URL.Query().Get(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}
