package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/ts"
	"repro/onex"
)

// newHTTPServer serves an already-built Server (the fixtures here need
// construction options).
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	return hts.URL
}

func decodeAnalysis(t *testing.T, raw []byte) onex.AnalysisResult {
	t.Helper()
	var res onex.AnalysisResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode analysis result: %v (%s)", err, raw)
	}
	return res
}

func analyze(t *testing.T, hts string, a onex.Analysis) onex.AnalysisResult {
	t.Helper()
	resp, raw := postJSON(t, hts+"/api/v1/datasets/growth/analyze", a)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze %+v status = %d: %s", a, resp.StatusCode, raw)
	}
	return decodeAnalysis(t, raw)
}

// TestAnalyzeRouteParity answers every analytics fixture through the
// legacy per-scenario routes and the unified /api/v1 analyze endpoint and
// requires identical payloads.
func TestAnalyzeRouteParity(t *testing.T) {
	s, hts := newTestServer(t)
	loadGrowth(t, hts)

	// Overview, fixed length.
	var legacyGroups []onex.GroupInfo
	getJSON(t, hts.URL+"/api/v1/datasets/growth/overview?length=6&k=3", &legacyGroups)
	res := analyze(t, hts.URL, onex.Analysis{Kind: onex.AnalysisOverview, Length: 6, K: 3})
	if len(legacyGroups) != 3 || !reflect.DeepEqual(legacyGroups, res.Groups) {
		t.Fatalf("overview: legacy %d groups != analyze %d", len(legacyGroups), len(res.Groups))
	}
	if res.Request.Kind != onex.AnalysisOverview || res.Stats.Groups != 3 {
		t.Fatalf("analyze envelope incomplete: %+v %+v", res.Request, res.Stats)
	}

	// Length summaries.
	var legacyLens []onex.LengthSummary
	getJSON(t, hts.URL+"/api/v1/datasets/growth/lengths", &legacyLens)
	res = analyze(t, hts.URL, onex.Analysis{Kind: onex.AnalysisLengthSummaries})
	if len(legacyLens) == 0 || !reflect.DeepEqual(legacyLens, res.LengthSummaries) {
		t.Fatalf("lengths: legacy %+v != analyze %+v", legacyLens, res.LengthSummaries)
	}

	// Group drill-down.
	var legacyMembers []onex.Member
	getJSON(t, hts.URL+"/api/v1/datasets/growth/groups/6/0", &legacyMembers)
	res = analyze(t, hts.URL, onex.Analysis{Kind: onex.AnalysisGroupMembers, Length: 6})
	if len(legacyMembers) == 0 || !reflect.DeepEqual(legacyMembers, res.Members) {
		t.Fatalf("groups: legacy %d members != analyze %d", len(legacyMembers), len(res.Members))
	}

	// Seasonal.
	resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/growth/query/seasonal",
		SeasonalRequest{Series: "NY", MinLength: 4, MaxLength: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy seasonal status = %d: %s", resp.StatusCode, raw)
	}
	var legacyPats []onex.Pattern
	if err := json.Unmarshal(raw, &legacyPats); err != nil {
		t.Fatal(err)
	}
	res = analyze(t, hts.URL, onex.Analysis{
		Kind: onex.AnalysisSeasonal, Series: "NY", Lengths: onex.Lengths{Min: 4, Max: 8},
	})
	if len(legacyPats) == 0 || !reflect.DeepEqual(legacyPats, res.Patterns) {
		t.Fatalf("seasonal: legacy %+v != analyze %+v", legacyPats, res.Patterns)
	}

	// Threshold recommendations.
	var legacyRecs []onex.Recommendation
	getJSON(t, hts.URL+"/api/v1/datasets/growth/thresholds", &legacyRecs)
	res = analyze(t, hts.URL, onex.Analysis{Kind: onex.AnalysisThresholds})
	if len(legacyRecs) == 0 || !reflect.DeepEqual(legacyRecs, res.Thresholds.Recommendations) {
		t.Fatalf("thresholds: legacy %+v != analyze %+v", legacyRecs, res.Thresholds)
	}
	if len(res.Thresholds.Sample) == 0 || res.Thresholds.ProbeLength <= 0 {
		t.Fatalf("thresholds: distribution missing: %+v", res.Thresholds)
	}

	// Sweep and common-patterns have no legacy route; parity against the
	// library on the server's own DB.
	db, ok := s.db("growth")
	if !ok {
		t.Fatal("growth not registered")
	}
	libSweep, err := db.SimilaritySweep(mustSeries(t, db, "MA")[0:8], []float64{0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res = analyze(t, hts.URL, onex.Analysis{
		Kind:       onex.AnalysisSimilaritySweep,
		Window:     onex.Window{Series: "MA", Start: 0, Length: 8},
		Thresholds: []float64{0.05, 0.1},
	})
	if !reflect.DeepEqual(libSweep, res.Sweep) {
		t.Fatalf("sweep: library %+v != analyze %+v", libSweep, res.Sweep)
	}

	libCommon := db.CommonPatterns(3, 0, 0, 4)
	res = analyze(t, hts.URL, onex.Analysis{Kind: onex.AnalysisCommonPatterns, MinSeries: 3, K: 4})
	if len(libCommon) == 0 || !reflect.DeepEqual(libCommon, res.Common) {
		t.Fatalf("common: library %d != analyze %d", len(libCommon), len(res.Common))
	}

	// The analyze endpoint answers under the unversioned prefix too.
	resp, raw = postJSON(t, hts.URL+"/api/datasets/growth/analyze",
		onex.Analysis{Kind: onex.AnalysisLengthSummaries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api alias status = %d: %s", resp.StatusCode, raw)
	}
	if got := decodeAnalysis(t, raw); !reflect.DeepEqual(got.LengthSummaries, legacyLens) {
		t.Fatal("/api alias returned a different payload")
	}
}

func mustSeries(t *testing.T, db *onex.DB, name string) []float64 {
	t.Helper()
	vals, err := db.SeriesValues(name)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestLegacyRoutesTolerateSloppyBounds pins the historical contract of
// the per-scenario routes: non-positive or inverted length bounds answer
// 200 with the indexed-range/empty result, never a validation error —
// even though the unified analyze endpoint rejects them.
func TestLegacyRoutesTolerateSloppyBounds(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	resp, raw := postJSON(t, hts.URL+"/api/datasets/growth/query/seasonal",
		SeasonalRequest{Series: "NY", MinLength: -1, MaxLength: -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seasonal negative bounds status = %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, hts.URL+"/api/datasets/growth/query/seasonal",
		SeasonalRequest{Series: "NY", MinLength: 20, MaxLength: 10})
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(raw)) != "[]" {
		t.Fatalf("seasonal inverted bounds: status %d, body %s", resp.StatusCode, raw)
	}
	var groups []onex.GroupInfo
	if got := getJSON(t, hts.URL+"/api/datasets/growth/overview?length=-5", &groups); got.StatusCode != http.StatusOK {
		t.Fatalf("overview negative length status = %d", got.StatusCode)
	}
	if len(groups) != 0 {
		t.Fatalf("overview negative length returned %d groups, want none", len(groups))
	}

	// The unified endpoint, by contrast, surfaces the typed rejection.
	resp, _ = postJSON(t, hts.URL+"/api/v1/datasets/growth/analyze",
		onex.Analysis{Kind: onex.AnalysisSeasonal, Series: "NY", Lengths: onex.Lengths{Min: -1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("analyze negative bounds status = %d, want 400", resp.StatusCode)
	}
}

func TestAnalyzeRouteErrors(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	for _, bad := range []string{
		`{`,
		`{}`,
		`{"kind":"bogus"}`,
		`{"kind":"seasonal"}`,
		`{"kind":"similarity-sweep","values":[1,2,3]}`,
		`{"kind":"seasonal","series":"ghost"}`,
	} {
		resp, err := http.Post(hts.URL+"/api/v1/datasets/growth/analyze", "application/json",
			strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Post(hts.URL+"/api/v1/datasets/ghost/analyze", "application/json",
		strings.NewReader(`{"kind":"overview"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost dataset status = %d, want 404", resp.StatusCode)
	}
}

// TestLoadDataDirAllowlist covers the load endpoint's optional data
// directory: servers built with WithDataDir reject file sources escaping
// it, servers without one keep the historical load-anything behaviour.
func TestLoadDataDirAllowlist(t *testing.T) {
	dataDir := t.TempDir()
	outside := t.TempDir()
	d := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 12})
	inside := filepath.Join(dataDir, "growth.csv")
	if err := ts.SaveFile(inside, d); err != nil {
		t.Fatal(err)
	}
	escaped := filepath.Join(outside, "secret.csv")
	if err := ts.SaveFile(escaped, d); err != nil {
		t.Fatal(err)
	}

	s := New(WithDataDir(dataDir))
	hts := newHTTPServer(t, s)

	load := func(source string) int {
		body, _ := json.Marshal(LoadRequest{Name: "x", Source: source, MinLength: 4, MaxLength: 8})
		resp, err := http.Post(hts+"/api/v1/datasets/load", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := load("file:" + inside); got != http.StatusOK {
		t.Fatalf("inside path status = %d, want 200", got)
	}
	if got := load("file:" + escaped); got != http.StatusForbidden {
		t.Fatalf("outside path status = %d, want 403", got)
	}
	if got := load("file:" + filepath.Join(dataDir, "..", filepath.Base(outside), "secret.csv")); got != http.StatusForbidden {
		t.Fatalf("traversal path status = %d, want 403", got)
	}
	if got := load("file:/etc/hostname"); got != http.StatusForbidden {
		t.Fatalf("absolute path status = %d, want 403", got)
	}
	// Generator sources are unaffected by the allowlist.
	if got := load("walks"); got != http.StatusOK {
		t.Fatalf("generator source status = %d, want 200", got)
	}
	// A symlink inside the data directory pointing outside is rejected.
	link := filepath.Join(dataDir, "link.csv")
	if err := os.Symlink(escaped, link); err == nil {
		if got := load("file:" + link); got != http.StatusForbidden {
			t.Fatalf("symlink escape status = %d, want 403", got)
		}
	}

	// Default New keeps the historical behaviour.
	open := New()
	openURL := newHTTPServer(t, open)
	body, _ := json.Marshal(LoadRequest{Name: "x", Source: "file:" + escaped, MinLength: 4, MaxLength: 8})
	resp, err := http.Post(openURL+"/api/v1/datasets/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unrestricted server status = %d, want 200", resp.StatusCode)
	}
}
