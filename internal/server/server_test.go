package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/onex"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	return s, hts
}

func loadGrowth(t *testing.T, hts *httptest.Server) {
	t.Helper()
	body, _ := json.Marshal(LoadRequest{
		Name:      "growth",
		Source:    "matters:GrowthRate",
		MinLength: 4,
		MaxLength: 10,
	})
	resp, err := http.Post(hts.URL+"/api/datasets/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status = %d", resp.StatusCode)
	}
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.Stats.Groups == 0 || lr.ST <= 0 {
		t.Fatalf("load response incomplete: %+v", lr)
	}
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestLoadAndListFlow(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	var infos []DatasetInfo
	getJSON(t, hts.URL+"/api/datasets", &infos)
	if len(infos) != 1 || infos[0].Name != "growth" {
		t.Fatalf("datasets = %+v", infos)
	}

	var names []string
	getJSON(t, hts.URL+"/api/datasets/growth/series", &names)
	if len(names) != 50 {
		t.Fatalf("series = %d", len(names))
	}

	var sv struct {
		Name   string    `json:"name"`
		Values []float64 `json:"values"`
	}
	getJSON(t, hts.URL+"/api/datasets/growth/series/MA", &sv)
	if sv.Name != "MA" || len(sv.Values) == 0 {
		t.Fatalf("series values = %+v", sv)
	}
}

func TestLoadValidation(t *testing.T) {
	_, hts := newTestServer(t)
	for _, body := range []string{
		`{`, // malformed
		`{"name":"x"}`,
		`{"name":"x","source":"bogus"}`,
		`{"name":"x","source":"matters:Bogus"}`,
		`{"name":"x","source":"file:/does/not/exist.csv"}`,
	} {
		resp, err := http.Post(hts.URL+"/api/datasets/load", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("body %q accepted", body)
		}
	}
}

func TestSimilarityEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	body, _ := json.Marshal(QueryRequest{Series: "MA", Start: 0, Length: 8})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similarity status = %d", resp.StatusCode)
	}
	var ms []onex.Match
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Length == 0 || len(ms[0].Path) == 0 {
		t.Fatalf("match = %+v", ms)
	}

	// Exclude-source variant.
	body2, _ := json.Marshal(QueryRequest{Series: "MA", Start: 0, Length: 8, ExcludeSource: true})
	resp2, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ms2 []onex.Match
	if err := json.NewDecoder(resp2.Body).Decode(&ms2); err != nil {
		t.Fatal(err)
	}
	if ms2[0].Series == "MA" {
		t.Fatal("exclude_source ignored")
	}

	// Ad-hoc values query.
	body3, _ := json.Marshal(QueryRequest{Values: []float64{2, 2.5, 3, 2.5, 2}, K: 3})
	resp3, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(body3))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var ms3 []onex.Match
	if err := json.NewDecoder(resp3.Body).Decode(&ms3); err != nil {
		t.Fatal(err)
	}
	if len(ms3) == 0 {
		t.Fatal("values query returned nothing")
	}

	// Bad requests.
	for _, bad := range []string{`{`, `{}`, `{"series":"ghost","length":8}`} {
		respB, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		respB.Body.Close()
		if respB.StatusCode == http.StatusOK {
			t.Fatalf("bad body %q accepted", bad)
		}
	}
}

func TestSeasonalEndpoint(t *testing.T) {
	s, hts := newTestServer(t)
	db, err := onex.Open(gen.ElectricityLoad(gen.ElectricityOptions{
		Households: 1, Days: 14, SamplesPerDay: 12,
	}), onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("power", db)

	body, _ := json.Marshal(SeasonalRequest{Series: "household-00", MinLength: 12, MaxLength: 12})
	resp, err := http.Post(hts.URL+"/api/datasets/power/query/seasonal", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seasonal status = %d", resp.StatusCode)
	}
	var pats []onex.Pattern
	if err := json.NewDecoder(resp.Body).Decode(&pats); err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no patterns from daily-cycle data")
	}
}

func TestThresholdsEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	var recs []onex.Recommendation
	getJSON(t, hts.URL+"/api/datasets/growth/thresholds", &recs)
	if len(recs) != 3 {
		t.Fatalf("recommendations = %d", len(recs))
	}
}

func TestNotFoundPaths(t *testing.T) {
	_, hts := newTestServer(t)
	for _, path := range []string{
		"/api/datasets/ghost/series",
		"/api/datasets/ghost/overview",
		"/api/datasets/ghost/thresholds",
		"/viz/ghost/overview.svg",
	} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestVizEndpoints(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	urls := []string{
		"/viz/growth/overview.svg?k=6",
		"/viz/growth/match.svg?series=MA&start=0&len=8",
		"/viz/growth/radial.svg?a=MA&b=CT",
		"/viz/growth/scatter.svg?a=MA&b=CT",
	}
	for _, u := range urls {
		resp, err := http.Get(hts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d: %s", u, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("%s content type = %q", u, ct)
		}
		if !strings.HasPrefix(raw, "<svg") {
			t.Fatalf("%s is not SVG", u)
		}
	}
	// Missing params rejected.
	for _, u := range []string{
		"/viz/growth/match.svg",
		"/viz/growth/radial.svg?a=MA",
		"/viz/growth/seasonal.svg",
	} {
		resp, err := http.Get(hts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s accepted without params", u)
		}
	}
}

func TestVizSeasonalEndpoint(t *testing.T) {
	s, hts := newTestServer(t)
	db, err := onex.Open(gen.ElectricityLoad(gen.ElectricityOptions{
		Households: 1, Days: 10, SamplesPerDay: 12,
	}), onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.AddDB("power", db)
	resp, err := http.Get(hts.URL + "/viz/power/seasonal.svg?series=household-00&len=12")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(raw, "<svg") {
		t.Fatalf("seasonal svg: %d %s", resp.StatusCode, raw[:minInt(len(raw), 80)])
	}
}

func TestIndexPage(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	resp, err := http.Get(hts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	if !strings.Contains(raw, "ONEX") || !strings.Contains(raw, "growth") {
		t.Fatal("index page missing content")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, mustRead(t, resp)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func mustRead(t *testing.T, resp *http.Response) string {
	t.Helper()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
