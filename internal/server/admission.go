package server

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// errOverloaded is the gate's "slots and queue both full" verdict, mapped
// to 503 + Retry-After at the HTTP layer.
var errOverloaded = errors.New("server at capacity")

// gate is the concurrent-query admission controller: n executing slots
// plus a bounded wait queue layered on top of them. It bounds the
// server-side cost of a traffic burst — at most n query-class requests
// execute at once (each itself capped at WithMaxWorkers workers), at most
// maxQueue more wait, and everything beyond that is turned away
// immediately instead of piling onto the box.
type gate struct {
	slots    chan struct{} // buffered to n; holding a token = executing
	maxQueue int64
	queued   atomic.Int64
}

func newGate(n, queue int) *gate {
	return &gate{slots: make(chan struct{}, n), maxQueue: int64(queue)}
}

// admit blocks until a slot frees up (bounded by the wait queue and the
// request context) or reports errOverloaded when the queue is full too.
// Callers must release() after a nil return.
func (g *gate) admit(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return errOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// rateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and every admitted request spends one.
// Clients are keyed by clientKey (remote IP, or the first X-Forwarded-For
// hop when the operator opted in via WithTrustedProxy).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds the limiter's memory: past it, buckets that
// have fully refilled (i.e. idle long enough to be indistinguishable from
// new clients) are swept before admitting a new one.
const maxTrackedClients = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clients: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token for client, reporting how long until a token is
// available when the bucket is empty.
func (rl *rateLimiter) allow(client string) (retryAfter time.Duration, ok bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.clients[client]
	if b == nil {
		if len(rl.clients) >= maxTrackedClients {
			rl.sweep(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[client] = b
	}
	b.tokens = min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / rl.rate * float64(time.Second)), false
}

// sweep drops buckets that would be full after refill — idle clients whose
// state carries no information. Callers hold rl.mu.
func (rl *rateLimiter) sweep(now time.Time) {
	for k, b := range rl.clients {
		if b.tokens+now.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.clients, k)
		}
	}
}

// clientKey identifies the client for rate limiting. By default it is the
// remote IP: X-Forwarded-For is client-supplied, so honouring it from a
// directly-connected client would let anyone dodge the limiter (and bloat
// the bucket map) by rotating header values. Only with trustProxy — the
// operator's assertion that a fronting proxy sets the header and strips
// client values — does the first X-Forwarded-For hop take precedence; a
// blank first hop still falls back to the remote IP so malformed headers
// cannot funnel unrelated clients into one shared bucket.
func clientKey(r *http.Request, trustProxy bool) string {
	if trustProxy {
		first, _, _ := strings.Cut(r.Header.Get("X-Forwarded-For"), ",")
		if first = strings.TrimSpace(first); first != "" {
			return first
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// statusWriter records the terminal status code for metrics while staying
// transparent to streaming: it forwards Flush and unwraps for
// http.ResponseController (the NDJSON handler re-arms write deadlines
// through it).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the serving tier's cross-cutting
// concerns: request/latency metrics for every endpoint class, and — for
// the heavy query-class endpoints — per-client rate limiting (429 +
// Retry-After), admission control (503 + Retry-After when the slots and
// queue are both full), and the inflight gauge. Rejected requests never
// reach the handler, so a burst cannot stack walks behind the DB locks.
func (s *Server) instrument(endpoint string, heavy bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			code := sw.status
			if code == 0 {
				code = http.StatusOK // handler wrote nothing: implicit 200
			}
			s.metrics.observe(endpoint, code, time.Since(start))
		}()
		if heavy {
			if s.limiter != nil {
				if wait, ok := s.limiter.allow(clientKey(r, s.trustProxy)); !ok {
					s.metrics.reject("rate_limit")
					sw.Header().Set("Retry-After", retryAfterSeconds(wait))
					writeErr(sw, http.StatusTooManyRequests,
						"rate limit exceeded for this client; retry in %s", retryAfterSeconds(wait)+"s")
					return
				}
			}
			if s.gate != nil {
				if err := s.gate.admit(r.Context()); err != nil {
					if errors.Is(err, errOverloaded) {
						s.metrics.reject("overload")
						sw.Header().Set("Retry-After", "1")
						writeErr(sw, http.StatusServiceUnavailable,
							"server at capacity (%d executing, %d queued); retry shortly",
							cap(s.gate.slots), s.gate.maxQueue)
					} else {
						// The client gave up while queued; nothing useful to say.
						writeErr(sw, http.StatusServiceUnavailable, "canceled while queued: %v", err)
					}
					return
				}
				defer s.gate.release()
			}
			s.metrics.inflight.Add(1)
			defer s.metrics.inflight.Add(-1)
		}
		h(sw, r)
	}
}

// retryAfterSeconds renders a wait as a Retry-After value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
