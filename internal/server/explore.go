package server

import (
	"fmt"
	"html/template"
	"net/http"

	"repro/internal/dist"
	"repro/internal/viz"
	"repro/onex"
)

// The explore page is the server-rendered form of the demo's Similarity
// View (paper Fig 2): overview pane, query selection (stacked lines),
// query preview, results pane with warped-point matching, and the
// threshold sweep — one page per dataset, parameterized by query window.
//
//	GET /explore/{name}?series=MA&start=0&len=12

var explorePage = template.Must(template.New("explore").Parse(`<!doctype html>
<html><head><title>ONEX — {{.Name}}</title>
<style>
 body { font-family: sans-serif; margin: 1.5em; color: #222; }
 .row { display: flex; flex-wrap: wrap; gap: 16px; margin-bottom: 16px; }
 .pane { border: 1px solid #ddd; padding: 8px; border-radius: 4px; }
 form { margin-bottom: 1em; }
 td, th { padding: 2px 10px; border-bottom: 1px solid #eee; text-align: right; }
 h2 { font-size: 1.05em; }
</style></head>
<body>
<h1>Similarity View — {{.Name}}</h1>
<form method="GET">
 series <input name="series" value="{{.Series}}" size="8">
 start <input name="start" value="{{.Start}}" size="4">
 len <input name="len" value="{{.Len}}" size="4">
 <input type="submit" value="explore">
</form>
{{if .Error}}<p style="color:#b00">{{.Error}}</p>{{end}}
<div class="row">
 <div class="pane"><h2>Overview — similarity groups</h2>{{.Overview}}</div>
 <div class="pane"><h2>Query selection</h2>{{.Selection}}</div>
</div>
<div class="row">
 <div class="pane"><h2>Query preview</h2>{{.Preview}}</div>
 <div class="pane"><h2>Results — best match (warped points)</h2>{{.Results}}</div>
</div>
<div class="row">
 <div class="pane"><h2>Similarity vs threshold</h2>
 <table><tr><th>max dist</th><th>matches</th></tr>
 {{range .Sweep}}<tr><td>{{printf "%.4f" .MaxDist}}</td><td>{{.Matches}}</td></tr>{{end}}
 </table></div>
</div>
</body></html>
`))

type exploreData struct {
	Name      string
	Series    string
	Start     int
	Len       int
	Error     string
	Overview  template.HTML
	Selection template.HTML
	Preview   template.HTML
	Results   template.HTML
	Sweep     []sweepRow
}

type sweepRow struct {
	MaxDist float64
	Matches int
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	names := db.SeriesNames()
	data := exploreData{
		Name:   r.PathValue("name"),
		Series: r.URL.Query().Get("series"),
		Start:  queryInt(r, "start", 0),
		Len:    queryInt(r, "len", 0),
	}
	if data.Series == "" && len(names) > 0 {
		data.Series = names[0]
	}

	// Overview pane. The walk is context-aware, so closing the browser tab
	// cancels it instead of leaving it running to completion.
	ovr, err := db.Analyze(r.Context(), onex.Analysis{Kind: onex.AnalysisOverview, K: 8})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := make([]viz.OverviewCell, len(ovr.Groups))
	//onex:nopoll rendering an already-computed overview of at most 8 tiles; the walk polled inside Analyze
	for i, g := range ovr.Groups {
		cells[i] = viz.OverviewCell{Rep: g.Rep, Count: g.Count,
			Label: fmt.Sprintf("len %d · n=%d", g.Length, g.Count)}
	}
	data.Overview = template.HTML(viz.OverviewGrid("", cells, 4, 104, 64))

	// Query selection pane: the chosen series plus a few neighbors.
	var stacked []viz.NamedSeries
	for i, n := range names {
		if n == data.Series || len(stacked) < 5 && i < 5 {
			vals, err := db.SeriesValues(n)
			if err == nil {
				stacked = append(stacked, viz.NamedSeries{Name: n, Values: vals})
			}
		}
	}
	data.Selection = template.HTML(viz.StackedLineChart("", stacked, 420, 40))

	// Preview + results, only when a window is selected.
	vals, err := db.SeriesValues(data.Series)
	if err != nil {
		data.Error = err.Error()
		renderExplore(w, data)
		return
	}
	if data.Len <= 0 {
		data.Len = len(vals) / 2
		data.Start = len(vals) - data.Len
	}
	if data.Start < 0 || data.Start+data.Len > len(vals) {
		data.Error = fmt.Sprintf("window [%d,%d) out of range", data.Start, data.Start+data.Len)
		renderExplore(w, data)
		return
	}
	q := vals[data.Start : data.Start+data.Len]
	data.Preview = template.HTML(viz.LineChart("", []viz.NamedSeries{
		{Name: fmt.Sprintf("%s[%d:%d)", data.Series, data.Start, data.Start+data.Len), Values: q},
	}, 420, 180))

	m, err := db.BestMatchForSeries(data.Series, data.Start, data.Len)
	if err != nil {
		data.Error = err.Error()
		renderExplore(w, data)
		return
	}
	path := make(dist.WarpPath, len(m.Path))
	for i, p := range m.Path {
		path[i] = dist.PathStep{I: p[0], J: p[1]}
	}
	data.Results = template.HTML(viz.WarpChart(
		fmt.Sprintf("%s vs %s[%d:%d), DTW=%.4f", data.Series, m.Series, m.Start, m.Start+m.Length, m.Dist),
		viz.NamedSeries{Name: data.Series, Values: q},
		viz.NamedSeries{Name: m.Series, Values: m.Values},
		path, 520, 240))

	// Threshold sweep around the found distance.
	baseD := m.Dist
	if baseD <= 0 {
		baseD = db.ST() / 4
	}
	thresholds := []float64{baseD, baseD * 1.5, baseD * 2, baseD * 3, baseD * 5}
	if pts, err := db.SimilaritySweep(q, thresholds); err == nil {
		for _, p := range pts {
			data.Sweep = append(data.Sweep, sweepRow{MaxDist: p.MaxDist, Matches: p.Matches})
		}
	}
	renderExplore(w, data)
}

func renderExplore(w http.ResponseWriter, data exploreData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = explorePage.Execute(w, data)
}

func (s *Server) handleVizThresholds(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	dists, probe, recs, err := db.ThresholdDistribution()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	markers := make([]viz.HistogramMarker, len(recs))
	for i, rec := range recs {
		markers[i] = viz.HistogramMarker{Value: rec.ST, Label: rec.Label}
	}
	writeSVG(w, viz.Histogram(
		fmt.Sprintf("pairwise ED per point — %s (probe length %d)", r.PathValue("name"), probe),
		dists, 40, markers, 560, 240))
}
