package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateInflightNeverExceedsCap hammers the gate from many goroutines
// and asserts the structural invariant: concurrent holders never exceed
// the slot count. Run under -race in CI.
func TestGateInflightNeverExceedsCap(t *testing.T) {
	const slots = 4
	g := newGate(slots, 64)
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for range 32 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				if err := g.admit(context.Background()); err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inflight.Add(-1)
				g.release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("peak inflight %d exceeded %d slots", p, slots)
	}
}

// TestGateOverflowAndQueue: with the slots held, admissions fill the queue
// and the next one is rejected with errOverloaded; a queued waiter is
// released by its context.
func TestGateOverflowAndQueue(t *testing.T) {
	g := newGate(1, 1)
	if err := g.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- g.admit(ctx) }()
	// Wait until the waiter occupies the queue slot.
	for g.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: immediate overload.
	if err := g.admit(context.Background()); err != errOverloaded {
		t.Fatalf("admit with full queue = %v, want errOverloaded", err)
	}
	// The queued waiter honours its context.
	cancel()
	if err := <-waiterErr; err != context.Canceled {
		t.Fatalf("canceled waiter got %v", err)
	}
	// Releasing the slot admits fresh arrivals again.
	g.release()
	if err := g.admit(context.Background()); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

// TestRateLimiterRefill drives the token bucket on a fake clock: burst
// spends down to rejection, time refills at the configured rate, and
// distinct clients have independent buckets.
func TestRateLimiterRefill(t *testing.T) {
	rl := newRateLimiter(2, 2) // 2 rps, burst 2
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	for i := range 2 {
		if _, ok := rl.allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	wait, ok := rl.allow("a")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("retry wait = %v, want (0, 500ms]", wait)
	}
	// Another client is unaffected.
	if _, ok := rl.allow("b"); !ok {
		t.Fatal("independent client rejected")
	}
	// Half a second at 2 rps refills one token.
	now = now.Add(500 * time.Millisecond)
	if _, ok := rl.allow("a"); !ok {
		t.Fatal("refilled token not granted")
	}
	if _, ok := rl.allow("a"); ok {
		t.Fatal("second token granted after refilling only one")
	}
}

// TestRateLimiterSweep: at the tracking cap, idle (fully refilled) buckets
// are dropped so new clients can still be admitted.
func TestRateLimiterSweep(t *testing.T) {
	rl := newRateLimiter(100, 1)
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }
	for i := 0; i < maxTrackedClients; i++ {
		rl.allow(string(rune('a')) + string(rune(i)))
	}
	now = now.Add(time.Minute) // everyone refills
	if _, ok := rl.allow("fresh-client"); !ok {
		t.Fatal("fresh client rejected at tracking cap")
	}
	if n := len(rl.clients); n >= maxTrackedClients {
		t.Fatalf("sweep kept %d buckets", n)
	}
}

func TestClientKey(t *testing.T) {
	for _, tc := range []struct {
		remote, xff string
		trustProxy  bool
		want        string
	}{
		{"10.0.0.9:1234", "", false, "10.0.0.9"},
		{"not-host-port", "", false, "not-host-port"},
		// Untrusted (the default): client-supplied X-Forwarded-For is
		// ignored — honouring it would let a direct client dodge the
		// limiter by rotating values.
		{"10.0.0.9:1234", "203.0.113.7", false, "10.0.0.9"},
		{"10.0.0.9:1234", "203.0.113.7, 10.0.0.1", false, "10.0.0.9"},
		// Trusted proxy: the first hop wins.
		{"10.0.0.9:1234", "203.0.113.7", true, "203.0.113.7"},
		{"10.0.0.9:1234", "203.0.113.7, 10.0.0.1", true, "203.0.113.7"},
		{"10.0.0.9:1234", "", true, "10.0.0.9"},
		// A blank first hop falls back to the remote IP rather than
		// pooling unrelated clients under the empty-string bucket.
		{"10.0.0.9:1234", ",1.2.3.4", true, "10.0.0.9"},
		{"10.0.0.9:1234", "   ", true, "10.0.0.9"},
	} {
		r := httptest.NewRequest(http.MethodPost, "/x", nil)
		r.RemoteAddr = tc.remote
		if tc.xff != "" {
			r.Header.Set("X-Forwarded-For", tc.xff)
		}
		if got := clientKey(r, tc.trustProxy); got != tc.want {
			t.Errorf("clientKey(remote=%q, xff=%q, trust=%v) = %q, want %q",
				tc.remote, tc.xff, tc.trustProxy, got, tc.want)
		}
	}
}

// TestRateLimitHTTP429: past the burst, the query endpoint answers 429
// with a Retry-After header, and /metrics counts the rejection.
func TestRateLimitHTTP429(t *testing.T) {
	s, hts := newServingTestServer(t, WithRateLimit(0.001, 2))
	now := time.Unix(1000, 0)
	s.limiter.now = func() time.Time { return now }
	url := hts.URL + "/api/v1/datasets/growth/query"
	const q = `{"window":{"series":"MA","start":0,"length":8},"k":1}`

	for i := range 2 {
		if st, body := postBody(t, url, q, nil); st != http.StatusOK {
			t.Fatalf("burst request %d status = %d (%s)", i, st, body)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Meta endpoints stay reachable: rate limiting only guards heavy routes.
	if st := func() int {
		r, err := http.Get(hts.URL + "/api/v1/datasets/growth/series")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}(); st != http.StatusOK {
		t.Fatalf("meta endpoint status under rate limiting = %d", st)
	}
}

// TestAdmissionHTTP503: with the single slot held, an unqueueable request
// is rejected 503 + Retry-After without reaching the engine, and the
// inflight gauge never exceeds the cap.
func TestAdmissionHTTP503(t *testing.T) {
	s, hts := newServingTestServer(t, WithMaxInflight(1, 0))
	url := hts.URL + "/api/v1/datasets/growth/query"

	// Occupy the only slot directly; HTTP requests must now overflow.
	if err := s.gate.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status with full gate = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	s.gate.release()

	// With the slot free, many concurrent requests all eventually succeed
	// or shed, and the inflight gauge never exceeds the cap.
	var wg sync.WaitGroup
	var maxSeen atomic.Int64
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 5 {
				st, _ := postBody(t, url, `{"window":{"series":"MA","start":0,"length":8},"k":1}`, nil)
				if st != http.StatusOK && st != http.StatusServiceUnavailable {
					t.Errorf("status = %d", st)
				}
				if n := s.metrics.inflight.Load(); n > maxSeen.Load() {
					maxSeen.Store(n)
				}
			}
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 1 {
		t.Fatalf("inflight gauge reached %d with a 1-slot gate", m)
	}
}
