package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/onex"
)

func TestAddSeriesEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	// Fetch MA, post a near-clone, and verify it becomes MA's best match.
	var sv struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, hts.URL+"/api/datasets/growth/series/MA", &sv)
	clone := make([]float64, len(sv.Values))
	for i, v := range sv.Values {
		clone[i] = v + 0.0001
	}
	body, _ := json.Marshal(AddSeriesRequest{Series: "MA2", Values: clone})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/series", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add series status = %d", resp.StatusCode)
	}

	qbody, _ := json.Marshal(QueryRequest{Series: "MA", Start: 0, Length: 8, ExcludeSource: true})
	qresp, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var ms []onex.Match
	if err := json.NewDecoder(qresp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].Series != "MA2" {
		t.Fatalf("inserted clone not found as best match: %+v", ms)
	}

	// Bad requests.
	for _, bad := range []string{`{`, `{}`, `{"series":"MA","values":[1,2]}`} {
		r2, err := http.Post(hts.URL+"/api/datasets/growth/series", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			t.Fatalf("bad add-series body %q accepted", bad)
		}
	}
	// Unknown dataset.
	r3, err := http.Post(hts.URL+"/api/datasets/ghost/series", "application/json",
		strings.NewReader(`{"series":"x","values":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost dataset add status = %d", r3.StatusCode)
	}
}

func TestRangeEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	body, _ := json.Marshal(RangeRequest{Series: "MA", Start: 0, Length: 8, MaxDist: 0.2, Limit: 10})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/query/range", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range status = %d", resp.StatusCode)
	}
	var ms []onex.Match
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("range query found nothing within a generous threshold")
	}
	if len(ms) > 10 {
		t.Fatal("limit ignored")
	}
	for _, m := range ms {
		if m.Dist > 0.2+1e-9 {
			t.Fatalf("match beyond threshold: %g", m.Dist)
		}
	}

	// Ad-hoc values variant.
	body2, _ := json.Marshal(RangeRequest{Values: []float64{2, 2.5, 3, 2.5, 2}, MaxDist: 5})
	resp2, err := http.Post(hts.URL+"/api/datasets/growth/query/range", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("values range status = %d", resp2.StatusCode)
	}

	// Bad requests.
	for _, bad := range []string{`{`, `{"max_dist":1}`, `{"series":"MA","start":0,"length":9999,"max_dist":1}`} {
		r2, err := http.Post(hts.URL+"/api/datasets/growth/query/range", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			t.Fatalf("bad range body %q accepted", bad)
		}
	}
}

func TestExplorePage(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	resp, err := http.Get(hts.URL + "/explore/growth?series=MA&start=2&len=8")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d", resp.StatusCode)
	}
	for _, want := range []string{"Similarity View", "<svg", "Results", "max dist"} {
		if !strings.Contains(body, want) {
			t.Fatalf("explore page missing %q", want)
		}
	}
	// Defaults (no query params) still render: picks the first series and
	// brushes its second half.
	resp2, err := http.Get(hts.URL + "/explore/growth")
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(body2, "<svg") {
		t.Fatalf("default explore failed: %d", resp2.StatusCode)
	}
	// Bad window reports the error inline, not a 500.
	resp3, err := http.Get(hts.URL + "/explore/growth?series=MA&start=9999&len=8")
	if err != nil {
		t.Fatal(err)
	}
	body3 := readAll(t, resp3)
	if !strings.Contains(body3, "out of range") {
		t.Fatal("window error not surfaced")
	}
	// Unknown dataset 404s.
	resp4, err := http.Get(hts.URL + "/explore/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatal("ghost explore should 404")
	}
}

func TestVizThresholdsEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	resp, err := http.Get(hts.URL + "/viz/growth/thresholds.svg")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(body, "<svg") {
		t.Fatalf("thresholds svg: %d", resp.StatusCode)
	}
	for _, want := range []string{"tight", "balanced", "loose"} {
		if !strings.Contains(body, want) {
			t.Fatalf("threshold markers missing %q", want)
		}
	}
}

func TestGroupMembersEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	// Find a real group via the overview, then drill into it.
	var groups []onex.GroupInfo
	getJSON(t, hts.URL+"/api/datasets/growth/overview?length=6&k=1", &groups)
	if len(groups) == 0 {
		t.Fatal("no overview groups")
	}
	var members []onex.Member
	getJSON(t, hts.URL+"/api/datasets/growth/groups/6/0", &members)
	if len(members) != groups[0].Count {
		t.Fatalf("drill-down members %d != overview count %d", len(members), groups[0].Count)
	}
	for _, m := range members {
		if m.Series == "" || m.Length != 6 || len(m.Values) != 6 {
			t.Fatalf("malformed member %+v", m)
		}
	}
	// Bad addresses.
	for _, path := range []string{
		"/api/datasets/growth/groups/6/99999",
		"/api/datasets/growth/groups/999/0",
		"/api/datasets/growth/groups/x/y",
		"/api/datasets/ghost/groups/6/0",
	} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s accepted", path)
		}
	}
}

func TestLengthsEndpoint(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	var ls []onex.LengthSummary
	getJSON(t, hts.URL+"/api/datasets/growth/lengths", &ls)
	if len(ls) == 0 {
		t.Fatal("no length summaries")
	}
	for i, s := range ls {
		if s.Groups <= 0 || s.Subsequences <= 0 {
			t.Fatalf("empty summary %+v", s)
		}
		if i > 0 && ls[i-1].Length >= s.Length {
			t.Fatal("summaries not ascending")
		}
	}
	resp, err := http.Get(hts.URL + "/api/datasets/ghost/lengths")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatal("ghost dataset lengths should 404")
	}
}
