package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/replica"
	"repro/onex"
)

// streamWriteTimeout bounds how long one NDJSON update may take to reach
// the client; the deadline is re-armed per update, so slow-but-alive
// clients keep their stream while dead ones are cut within one update.
// It is deliberately below onex's 30s consumer-stall bound: the HTTP
// layer severs a non-reading client first (failing the Encode, which
// Closes the exploration cleanly), leaving the library stall valve as a
// backstop rather than the operative cut.
const streamWriteTimeout = 20 * time.Second

// handleQueryStream is the progressive query endpoint: the request body is
// an onex.Query (like /query), the response is NDJSON — one onex.Update
// per line, flushed as emitted. The first line is the approximate answer,
// then one line per certified refinement wave, and the last line is the
// exact result (final=true), identical to what POST /query returns in
// exact mode. Closing the request — a disconnecting client — cancels the
// underlying walk within one pruning round.
//
// Errors before the first update (unknown dataset, malformed query) are
// ordinary JSON error responses. Once streaming has begun the status is
// committed, so a mid-stream failure is reported as a terminating
// `{"error": "..."}` line instead.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	db, ok := s.db(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not loaded", r.PathValue("name"))
		return
	}
	var q onex.Query
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q.Workers = s.capWorkers(q.Workers)
	if s.cache != nil {
		// Streams bypass the result cache (each response is consumed as it
		// is produced) but are counted as misses, so the hit-rate metric
		// reflects the whole query-class workload.
		s.metrics.cacheMisses.Add(1)
	}
	x, err := db.Stream(r.Context(), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer x.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// The server's global WriteTimeout fixes one deadline for the whole
	// response, which would sever a long walk mid-stream; re-arm it per
	// update instead, so the timeout bounds per-update stalls rather than
	// total stream duration. (SetWriteDeadline errors — e.g. under a
	// recording ResponseWriter in tests — just leave the global deadline
	// in place.)
	rc := http.NewResponseController(w)
	for u := range x.Updates() {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if err := enc.Encode(u); err != nil {
			// The client is gone; Close cancels the walk.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := x.Err(); err != nil {
		_ = enc.Encode(map[string]string{"error": err.Error()})
	}
}

// HealthResponse is the healthz payload: enough for a load balancer to
// gate traffic on, and for an operator to tell which build is running.
type HealthResponse struct {
	Status    string `json:"status"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Datasets  int    `json:"datasets"`
	// Persistence reports each dataset's durability state (engine kind,
	// snapshot age, WAL backlog); see PersistenceInfo. Empty with no
	// datasets loaded.
	Persistence map[string]PersistenceInfo `json:"persistence,omitempty"`
	// Leader is set on serving followers: the URL writes should go to.
	Leader string `json:"leader,omitempty"`
	// Replication reports each followed dataset's lag and stream health
	// (only on serving followers; see replica.Status).
	Replication map[string]replica.Status `json:"replication,omitempty"`
}

// buildVersion resolves the module build version once; it cannot change
// for the lifetime of the process, and health probes arrive continuously.
var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "devel"
})

// handleHealthz serves GET /healthz (and /api/v1/healthz): build/version
// information, the loaded-dataset count, and each dataset's persistence
// state. It takes no locks beyond the dataset map read and runs no queries
// (StoreStatus is a counter read plus one stat call), so it stays responsive
// while the server preprocesses a large load.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Version:     buildVersion(),
		GoVersion:   runtime.Version(),
		Datasets:    n,
		Persistence: s.persistenceInfo(),
		Leader:      s.leaderURL,
		Replication: s.replicationInfo(),
	})
}
