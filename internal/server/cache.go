package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// encodeJSONBody renders v exactly as writeJSON's json.Encoder would
// (compact, HTML-escaped, trailing newline), so cached responses are
// byte-identical to uncached ones.
func encodeJSONBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// cacheKey assembles a full cache key: endpoint kind, dataset name, the
// DB instance's process-unique ID, its mutation version, and the
// canonicalized request. Keying is the whole invalidation story — an
// AddSeries bumps the version, making every pre-ingest entry unreachable,
// and replacing a dataset under the same name (the load endpoint's AddDB)
// changes the instance ID, making every entry of the old incarnation
// unreachable even though the fresh instance's version starts back at 1.
// A stale answer can thus never be served; orphaned generations age out
// of the LRU under byte pressure rather than being flushed. The name is
// redundant next to the unique ID but kept for debuggability.
func cacheKey(kind, dataset string, id, version uint64, canonical string) string {
	return kind + "|" + strconv.Quote(dataset) + "|" + strconv.FormatUint(id, 10) +
		"@" + strconv.FormatUint(version, 10) + "|" + canonical
}

// noCacheRequest reports whether the client opted out of a cache read for
// this request (Cache-Control: no-cache). The response is still computed
// fresh and stored, mirroring HTTP revalidation semantics; the load
// harness uses this to cross-check cached answers against fresh ones.
func noCacheRequest(r *http.Request) bool {
	return strings.Contains(strings.ToLower(r.Header.Get("Cache-Control")), "no-cache")
}

// cacheLookup consults the result cache and maintains the hit/miss
// counters. It returns the cached response body on a hit.
func (s *Server) cacheLookup(r *http.Request, key string) ([]byte, bool) {
	if noCacheRequest(r) {
		s.metrics.cacheMisses.Add(1)
		return nil, false
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		return body, true
	}
	s.metrics.cacheMisses.Add(1)
	return nil, false
}

// writeJSONBody writes a pre-encoded JSON response body (as produced by
// encodeJSONBody), byte-identical to what writeJSON would emit for the
// same value.
func writeJSONBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
