package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/onex"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeMatches(t *testing.T, raw []byte) []onex.Match {
	t.Helper()
	var ms []onex.Match
	if err := json.Unmarshal(raw, &ms); err != nil {
		t.Fatalf("decode matches: %v (%s)", err, raw)
	}
	return ms
}

func decodeResult(t *testing.T, raw []byte) onex.Result {
	t.Helper()
	var res onex.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode result: %v (%s)", err, raw)
	}
	return res
}

func requireSameMatches(t *testing.T, label string, legacy, unified []onex.Match) {
	t.Helper()
	if len(legacy) != len(unified) {
		t.Fatalf("%s: legacy %d matches, unified %d", label, len(legacy), len(unified))
	}
	for i := range legacy {
		l, u := legacy[i], unified[i]
		if l.Series != u.Series || l.Start != u.Start || l.Length != u.Length {
			t.Fatalf("%s: match %d differs: %+v vs %+v", label, i, l, u)
		}
		if math.Abs(l.Dist-u.Dist) > 1e-12 {
			t.Fatalf("%s: match %d dist %g vs %g", label, i, l.Dist, u.Dist)
		}
	}
}

// TestUnifiedQueryParity answers the same similarity and range fixtures
// through the legacy routes and the unified /api/v1 query endpoint and
// requires identical matches.
func TestUnifiedQueryParity(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	// Window similarity (self-overlap excluded), legacy vs unified.
	resp, raw := postJSON(t, hts.URL+"/api/datasets/growth/query/similarity",
		QueryRequest{Series: "MA", Start: 0, Length: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy similarity status = %d: %s", resp.StatusCode, raw)
	}
	legacy := decodeMatches(t, raw)

	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window:  onex.Window{Series: "MA", Start: 0, Length: 8},
		Exclude: onex.Exclude{Self: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unified query status = %d: %s", resp.StatusCode, raw)
	}
	res := decodeResult(t, raw)
	requireSameMatches(t, "similarity", legacy, res.Matches)
	if res.Query.Mode != onex.ModeApprox || res.Query.K != 1 {
		t.Fatalf("unified response lacks resolved query: %+v", res.Query)
	}
	if res.Stats.Groups <= 0 || res.Stats.DTWs <= 0 {
		t.Fatalf("unified response lacks stats: %+v", res.Stats)
	}

	// Exclude-source variant.
	resp, raw = postJSON(t, hts.URL+"/api/datasets/growth/query/similarity",
		QueryRequest{Series: "MA", Start: 0, Length: 8, ExcludeSource: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy exclude-source status = %d", resp.StatusCode)
	}
	legacy = decodeMatches(t, raw)
	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window:  onex.Window{Series: "MA", Start: 0, Length: 8},
		Exclude: onex.Exclude{Series: []string{"MA"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unified exclude-source status = %d: %s", resp.StatusCode, raw)
	}
	requireSameMatches(t, "exclude-source", legacy, decodeResult(t, raw).Matches)

	// Range, legacy vs unified (max_dist switches Find to range semantics).
	resp, raw = postJSON(t, hts.URL+"/api/datasets/growth/query/range",
		RangeRequest{Series: "MA", Start: 0, Length: 8, MaxDist: 0.2, Limit: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy range status = %d", resp.StatusCode)
	}
	legacy = decodeMatches(t, raw)
	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window:  onex.Window{Series: "MA", Start: 0, Length: 8},
		MaxDist: 0.2,
		K:       10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unified range status = %d: %s", resp.StatusCode, raw)
	}
	requireSameMatches(t, "range", legacy, decodeResult(t, raw).Matches)

	// Ad-hoc values top-k.
	resp, raw = postJSON(t, hts.URL+"/api/datasets/growth/query/similarity",
		QueryRequest{Values: []float64{2, 2.5, 3, 2.5, 2}, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy values status = %d", resp.StatusCode)
	}
	legacy = decodeMatches(t, raw)
	resp, raw = postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Values: []float64{2, 2.5, 3, 2.5, 2}, K: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unified values status = %d: %s", resp.StatusCode, raw)
	}
	requireSameMatches(t, "values", legacy, decodeResult(t, raw).Matches)
}

func TestUnifiedQueryOverridesAndErrors(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)

	// Per-query exact mode is accepted and echoed in the resolved query.
	resp, raw := postJSON(t, hts.URL+"/api/v1/datasets/growth/query", onex.Query{
		Window:  onex.Window{Series: "MA", Start: 0, Length: 8},
		Exclude: onex.Exclude{Self: true},
		Mode:    onex.ModeExact,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact-mode query status = %d: %s", resp.StatusCode, raw)
	}
	if res := decodeResult(t, raw); res.Query.Mode != onex.ModeExact {
		t.Fatalf("mode override not echoed: %+v", res.Query)
	}

	// Bad requests 400, unknown dataset 404.
	for _, bad := range []string{
		`{`,
		`{}`,
		`{"values":[1,2,3],"window":{"series":"MA","start":0,"length":8}}`,
		`{"values":[1,2,3],"mode":"bogus"}`,
		`{"window":{"series":"ghost","start":0,"length":8}}`,
	} {
		resp, err := http.Post(hts.URL+"/api/v1/datasets/growth/query", "application/json",
			strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp2, err := http.Post(hts.URL+"/api/v1/datasets/ghost/query", "application/json",
		strings.NewReader(`{"values":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost dataset status = %d, want 404", resp2.StatusCode)
	}
}

// TestV1Aliases verifies every GET route answers identically under /api
// and /api/v1.
func TestV1Aliases(t *testing.T) {
	_, hts := newTestServer(t)
	loadGrowth(t, hts)
	for _, path := range []string{
		"/datasets",
		"/datasets/growth/series",
		"/datasets/growth/series/MA",
		"/datasets/growth/overview?length=6&k=3",
		"/datasets/growth/lengths",
		"/datasets/growth/groups/6/0",
		"/datasets/growth/thresholds",
	} {
		for _, prefix := range []string{"/api", "/api/v1"} {
			resp, err := http.Get(hts.URL + prefix + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s%s status = %d", prefix, path, resp.StatusCode)
			}
		}
	}
}
