package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/store"
	"repro/onex"
)

// WithStore makes every dataset loaded through POST /datasets/load durable:
// each gets a FileStore under dir/<dataset-name> (an initial snapshot at
// load, a fsynced WAL record per ingest, automatic compaction). Pair it with
// Server.RestoreStored at startup to warm-open everything persisted earlier,
// and Server.PersistAll at shutdown to fold the WALs into fresh snapshots.
//
// Dataset names double as directory names under dir, so with a store
// attached names are restricted to a conservative filesystem-safe alphabet;
// offending load requests are rejected with 400.
func WithStore(dir string) Option {
	return func(s *Server) { s.storeDir = dir }
}

// StoreDir returns the configured store root ("" when persistence is off).
func (s *Server) StoreDir() string { return s.storeDir }

// WithMmap makes RestoreStored warm-open every persisted dataset with
// mmap-backed values (onex.Config.MmapValues): series values are served as
// zero-copy views over the read-only mapped snapshot and page in on
// demand, so a restored fleet larger than RAM stays larger than RAM.
// /healthz reports each dataset's mapped and resident bytes and /metrics
// grows the onex_mmap_* families. Requires WithStore.
func WithMmap() Option {
	return func(s *Server) { s.mmapValues = true }
}

// WithFsyncEvery sets the WAL group-commit stride for every store-backed
// dataset the server opens (load endpoint and RestoreStored): the WAL is
// fsynced once per n ingests instead of per ingest. n > 1 trades
// durability for ingest throughput — a crash can lose up to n-1 of the
// most recently acknowledged ingests (always a clean suffix; the WAL's
// longest-valid-prefix recovery guarantees earlier records survive).
// n <= 1 keeps the durable default of one fsync per ingest.
func WithFsyncEvery(n int) Option {
	return func(s *Server) { s.fsyncEvery = max(n, 1) }
}

// safeDatasetName reports whether name can be used as a store directory
// name: ASCII letters, digits, dot, dash, and underscore, no leading dot
// (hides the directory and admits "..") and at most 128 bytes. This is a
// path-traversal defense: dataset names arrive from the network.
func safeDatasetName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// openStoreFor opens the persistence engine for one dataset name. Callers
// own the returned engine until they hand it to onex (via Config.Store or
// OpenStore).
func (s *Server) openStoreFor(name string) (*store.FileStore, error) {
	return store.Open(filepath.Join(s.storeDir, name))
}

// RestoreStored warm-opens every dataset persisted under the store root and
// registers it, returning the restored names. Directories without a
// snapshot yet (a crash before the initial snapshot completed) are skipped,
// not errors; a directory that has a snapshot but fails to open aborts the
// restore so the operator sees the damage instead of silently serving a
// partial fleet.
func (s *Server) RestoreStored() ([]string, error) {
	if s.storeDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.storeDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("restore: %w", err)
	}
	var restored []string
	for _, e := range entries {
		if !e.IsDir() || !safeDatasetName(e.Name()) {
			continue
		}
		name := e.Name()
		db, err := onex.OpenStore(filepath.Join(s.storeDir, name), onex.Config{FsyncEvery: s.fsyncEvery, MmapValues: s.mmapValues})
		if err == onex.ErrNoSnapshot {
			continue
		}
		if err != nil {
			return restored, fmt.Errorf("restore %q: %w", name, err)
		}
		s.AddDB(name, db)
		restored = append(restored, name)
	}
	sort.Strings(restored)
	return restored, nil
}

// PersistAll snapshots every store-backed dataset (folding its WAL), for
// graceful shutdown. In-memory datasets are skipped. The first error is
// returned but does not stop the sweep — every dataset gets its chance.
func (s *Server) PersistAll() error {
	s.mu.RLock()
	dbs := make(map[string]*onex.DB, len(s.dbs))
	for n, db := range s.dbs {
		dbs[n] = db
	}
	s.mu.RUnlock()
	var first error
	for n, db := range dbs {
		if err := db.Snapshot(); err != nil && err != onex.ErrNoStore {
			if first == nil {
				first = fmt.Errorf("persist %q: %w", n, err)
			}
		}
	}
	return first
}

// CloseStores releases every dataset's persistence engine (WAL file
// handles). The datasets keep serving queries from memory.
func (s *Server) CloseStores() {
	s.mu.RLock()
	dbs := make([]*onex.DB, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	s.mu.RUnlock()
	for _, db := range dbs {
		_ = db.Close()
	}
}

// PersistenceInfo is one dataset's persistence block in the healthz payload.
type PersistenceInfo struct {
	// Kind names the engine ("filestore"); datasets without a store are
	// reported as "memory".
	Kind string `json:"kind"`
	// SnapshotAgeSeconds is the age of the newest snapshot (-1 when none
	// exists yet).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// SnapshotVersion is the mutation version the snapshot holds.
	SnapshotVersion uint64 `json:"snapshot_version,omitempty"`
	// WALRecords and WALBytes measure ingests not yet folded into the
	// snapshot.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	// Recovery describes what the last open had to discard ("clean" when
	// nothing).
	Recovery string `json:"recovery,omitempty"`
	// RecoveryDetail is the structured form of Recovery: exactly what the
	// last open truncated and replayed, so an operator can audit a crash
	// from /healthz instead of logs.
	RecoveryDetail *RecoveryDetail `json:"recovery_detail,omitempty"`
	// LastError surfaces the most recent background persistence failure.
	LastError string `json:"last_error,omitempty"`
	// Values names the value residency when the dataset was opened with
	// mmap-backed values: "mmap" (zero-copy views over the mapped
	// snapshot) or "mmap-fallback" (platform without mmap; eager copy
	// behind the same interface). Empty for ordinary heap-resident
	// datasets.
	Values string `json:"values,omitempty"`
	// MappedBytes and MappedResidentBytes size the mapped snapshot and the
	// share of it currently resident in physical memory (-1 when the
	// platform cannot tell). Only set when Values is.
	MappedBytes         int64 `json:"mapped_bytes,omitempty"`
	MappedResidentBytes int64 `json:"mapped_resident_bytes,omitempty"`
}

// RecoveryDetail is the structured crash-recovery report for one dataset:
// the persistence block's machine-readable account of the last open.
type RecoveryDetail struct {
	// WALBytesTruncated counts WAL bytes discarded after the longest valid
	// record prefix (0 on a clean open).
	WALBytesTruncated int64 `json:"wal_bytes_truncated"`
	// TruncateReason says why the tail was cut ("" when nothing was).
	TruncateReason string `json:"truncate_reason,omitempty"`
	// RecordsReplayed counts the WAL records re-applied on top of the
	// snapshot at open.
	RecordsReplayed int `json:"records_replayed"`
	// SnapshotVersion is the mutation version of the snapshot recovery
	// started from (0 when the store held none).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// TempFilesRemoved counts leftover in-progress files (torn snapshot or
	// WAL swaps) deleted at open.
	TempFilesRemoved int `json:"temp_files_removed,omitempty"`
}

// persistenceInfo assembles the healthz persistence block: one entry per
// dataset, store-backed or not.
func (s *Server) persistenceInfo() map[string]PersistenceInfo {
	s.mu.RLock()
	dbs := make(map[string]*onex.DB, len(s.dbs))
	for n, db := range s.dbs {
		dbs[n] = db
	}
	s.mu.RUnlock()
	if len(dbs) == 0 {
		return nil
	}
	out := make(map[string]PersistenceInfo, len(dbs))
	for n, db := range dbs {
		st, ok := db.StoreStatus()
		if !ok {
			out[n] = PersistenceInfo{Kind: "memory", SnapshotAgeSeconds: -1}
			continue
		}
		info := PersistenceInfo{
			Kind:               st.Kind,
			SnapshotAgeSeconds: -1,
			SnapshotVersion:    st.SnapshotVersion,
			WALRecords:         st.WALRecords,
			WALBytes:           st.WALBytes,
			Recovery:           st.Recovery.String(),
			RecoveryDetail: &RecoveryDetail{
				WALBytesTruncated: st.Recovery.DiscardedBytes,
				TruncateReason:    st.Recovery.DiscardedReason,
				RecordsReplayed:   st.Recovery.ReplayedRecords,
				SnapshotVersion:   st.Recovery.SnapshotVersion,
				TempFilesRemoved:  len(st.Recovery.TempFilesRemoved),
			},
			LastError: st.LastError,
		}
		if st.ValuesKind != "" {
			info.Values = st.ValuesKind
			info.MappedBytes = st.MappedBytes
			info.MappedResidentBytes = st.MappedResidentBytes
		}
		if st.HasSnapshot && !st.SnapshotTime.IsZero() {
			info.SnapshotAgeSeconds = time.Since(st.SnapshotTime).Seconds()
		}
		out[n] = info
	}
	return out
}

// writeStoreMetrics appends the persistence metric families to a /metrics
// scrape. To keep the scrape stable for deployments that never enable
// persistence, the families appear only once at least one store-backed
// dataset is registered.
func (s *Server) writeStoreMetrics(w http.ResponseWriter) {
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	type row struct {
		name string
		st   store.Status
	}
	rows := make([]row, 0, len(names))
	for _, n := range names {
		if st, ok := s.dbs[n].StoreStatus(); ok {
			rows = append(rows, row{n, st})
		}
	}
	s.mu.RUnlock()
	if len(rows) == 0 {
		return
	}

	fmt.Fprintf(w, "# HELP onex_store_wal_appends_total WAL records durably appended since process start, per dataset.\n")
	fmt.Fprintf(w, "# TYPE onex_store_wal_appends_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "onex_store_wal_appends_total{dataset=%q} %d\n", r.name, r.st.Appends)
	}
	fmt.Fprintf(w, "# HELP onex_store_compactions_total Snapshots written (WAL foldings) since process start, per dataset.\n")
	fmt.Fprintf(w, "# TYPE onex_store_compactions_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "onex_store_compactions_total{dataset=%q} %d\n", r.name, r.st.Compactions)
	}
	fmt.Fprintf(w, "# HELP onex_store_wal_pending_records Ingests not yet folded into the snapshot, per dataset.\n")
	fmt.Fprintf(w, "# TYPE onex_store_wal_pending_records gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "onex_store_wal_pending_records{dataset=%q} %d\n", r.name, r.st.WALRecords)
	}
	fmt.Fprintf(w, "# HELP onex_store_wal_bytes Write-ahead-log size in bytes, per dataset.\n")
	fmt.Fprintf(w, "# TYPE onex_store_wal_bytes gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "onex_store_wal_bytes{dataset=%q} %d\n", r.name, r.st.WALBytes)
	}
	fmt.Fprintf(w, "# HELP onex_store_snapshot_age_seconds Age of the current snapshot, per dataset (-1 when none).\n")
	fmt.Fprintf(w, "# TYPE onex_store_snapshot_age_seconds gauge\n")
	for _, r := range rows {
		age := -1.0
		if r.st.HasSnapshot && !r.st.SnapshotTime.IsZero() {
			age = time.Since(r.st.SnapshotTime).Seconds()
		}
		fmt.Fprintf(w, "onex_store_snapshot_age_seconds{dataset=%q} %g\n", r.name, age)
	}

	// The mmap families appear only once at least one dataset actually
	// serves mapped values, mirroring how the store families gate on a
	// store being attached.
	mapped := rows[:0:0]
	for _, r := range rows {
		if r.st.ValuesKind != "" {
			mapped = append(mapped, r)
		}
	}
	if len(mapped) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP onex_mmap_mapped_bytes Size of the mapped snapshot backing the dataset's values, per dataset.\n")
	fmt.Fprintf(w, "# TYPE onex_mmap_mapped_bytes gauge\n")
	for _, r := range mapped {
		fmt.Fprintf(w, "onex_mmap_mapped_bytes{dataset=%q,kind=%q} %d\n", r.name, r.st.ValuesKind, r.st.MappedBytes)
	}
	fmt.Fprintf(w, "# HELP onex_mmap_resident_bytes Mapped snapshot bytes currently resident in physical memory, per dataset (-1 when unknown).\n")
	fmt.Fprintf(w, "# TYPE onex_mmap_resident_bytes gauge\n")
	for _, r := range mapped {
		fmt.Fprintf(w, "onex_mmap_resident_bytes{dataset=%q} %d\n", r.name, r.st.MappedResidentBytes)
	}
}
