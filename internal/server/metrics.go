package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning cache hits (sub-millisecond) through cold exact-mode scans.
// An implicit +Inf bucket follows the last bound.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the server's observability state, exported by GET /metrics in
// Prometheus text format without external dependencies. Counters are
// cumulative since process start; gauges are sampled at scrape time.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64 // onex_http_requests_total{endpoint,code}
	latency  map[string]*histogram // onex_http_request_duration_seconds{endpoint}
	rejected map[string]uint64     // onex_rejected_total{reason}

	cacheHits   atomic.Uint64 // cache decisions, including stream bypasses
	cacheMisses atomic.Uint64
	inflight    atomic.Int64 // admitted heavy requests currently executing
}

type requestKey struct {
	endpoint string
	code     int
}

// histogram is a fixed-bucket latency histogram. Guarded by metrics.mu.
type histogram struct {
	counts []uint64 // one per bucket bound, plus a final +Inf slot
	sum    float64
	total  uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[requestKey]uint64),
		latency:  make(map[string]*histogram),
		rejected: make(map[string]uint64),
	}
}

// observe records one finished request: its terminal status code and wall
// time, bucketed per endpoint class.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
		m.latency[endpoint] = h
	}
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

// reject counts one request turned away before execution (rate_limit or
// overload).
func (m *metrics) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// handleMetrics serves GET /metrics: the request/latency/rejection state
// above plus cache occupancy and per-dataset versions sampled at scrape
// time. Families and label sets are emitted in sorted order, so the output
// is deterministic for a fixed state (the golden test relies on that).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	m.mu.Lock()
	fmt.Fprintf(w, "# HELP onex_http_requests_total HTTP requests served, by endpoint class and status code.\n")
	fmt.Fprintf(w, "# TYPE onex_http_requests_total counter\n")
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(w, "onex_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP onex_http_request_duration_seconds Request wall time, by endpoint class.\n")
	fmt.Fprintf(w, "# TYPE onex_http_request_duration_seconds histogram\n")
	endpoints := make([]string, 0, len(m.latency))
	for e := range m.latency {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		h := m.latency[e]
		var cum uint64
		for i, bound := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "onex_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				e, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "onex_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, h.total)
		fmt.Fprintf(w, "onex_http_request_duration_seconds_sum{endpoint=%q} %g\n", e, h.sum)
		fmt.Fprintf(w, "onex_http_request_duration_seconds_count{endpoint=%q} %d\n", e, h.total)
	}

	fmt.Fprintf(w, "# HELP onex_rejected_total Requests rejected by admission control, by reason.\n")
	fmt.Fprintf(w, "# TYPE onex_rejected_total counter\n")
	reasons := make([]string, 0, len(m.rejected))
	for r := range m.rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "onex_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP onex_cache_hits_total Result-cache lookups answered from the cache.\n")
	fmt.Fprintf(w, "# TYPE onex_cache_hits_total counter\n")
	fmt.Fprintf(w, "onex_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "# HELP onex_cache_misses_total Result-cache lookups that executed the request (streaming bypasses count as misses).\n")
	fmt.Fprintf(w, "# TYPE onex_cache_misses_total counter\n")
	fmt.Fprintf(w, "onex_cache_misses_total %d\n", m.cacheMisses.Load())
	if s.cache != nil {
		cs := s.cache.Stats()
		fmt.Fprintf(w, "# HELP onex_cache_evictions_total Result-cache entries dropped by byte-budget pressure.\n")
		fmt.Fprintf(w, "# TYPE onex_cache_evictions_total counter\n")
		fmt.Fprintf(w, "onex_cache_evictions_total %d\n", cs.Evictions)
		fmt.Fprintf(w, "# HELP onex_cache_bytes Result-cache occupancy in bytes (keys + values + overhead).\n")
		fmt.Fprintf(w, "# TYPE onex_cache_bytes gauge\n")
		fmt.Fprintf(w, "onex_cache_bytes %d\n", cs.Bytes)
		fmt.Fprintf(w, "# HELP onex_cache_entries Live result-cache entries.\n")
		fmt.Fprintf(w, "# TYPE onex_cache_entries gauge\n")
		fmt.Fprintf(w, "onex_cache_entries %d\n", cs.Entries)
		fmt.Fprintf(w, "# HELP onex_cache_capacity_bytes Configured result-cache byte budget.\n")
		fmt.Fprintf(w, "# TYPE onex_cache_capacity_bytes gauge\n")
		fmt.Fprintf(w, "onex_cache_capacity_bytes %d\n", cs.MaxBytes)
	}

	fmt.Fprintf(w, "# HELP onex_inflight_requests Admitted query-class requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE onex_inflight_requests gauge\n")
	fmt.Fprintf(w, "onex_inflight_requests %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP onex_dataset_version Monotone mutation counter per loaded dataset (bumped by every ingest).\n")
	fmt.Fprintf(w, "# TYPE onex_dataset_version gauge\n")
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	dbs := make(map[string]uint64, len(names))
	for _, n := range names {
		dbs[n] = s.dbs[n].Version()
	}
	s.mu.RUnlock()
	for _, n := range names {
		fmt.Fprintf(w, "onex_dataset_version{dataset=%q} %d\n", n, dbs[n])
	}

	// Persistence families (onex_store_*) appear only once a store-backed
	// dataset is registered, and replication families (onex_replica_*) only
	// on serving followers, keeping scrapes stable elsewhere.
	s.writeStoreMetrics(w)
	s.writeReplicaMetrics(w)
}
