package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	write := func(content string) error {
		return WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := write("first"); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	if err := write("second, longer than before"); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second, longer than before" {
		t.Fatalf("content after replace = %q", got)
	}
}

func TestWriteFileAtomicFailureLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "keep me")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, _ = io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "keep me" {
		t.Fatalf("original clobbered: %q", got)
	}
	// The failed attempt must not leave its temp file behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.bin" {
			t.Fatalf("leftover file %q after failed write", e.Name())
		}
	}
}

func TestIsTempFor(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), TempPattern("snapshot.onex"))
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	name := filepath.Base(tmp.Name())
	if !IsTempFor(name, "snapshot.onex") {
		t.Fatalf("IsTempFor(%q, snapshot.onex) = false", name)
	}
	if IsTempFor("snapshot.onex", "snapshot.onex") {
		t.Fatal("the real file must not match its own temp pattern")
	}
	if IsTempFor(name, "wal.log") {
		t.Fatalf("IsTempFor(%q, wal.log) = true", name)
	}
	if !strings.HasPrefix(name, "snapshot.onex.tmp-") {
		t.Fatalf("temp name %q does not follow the documented pattern", name)
	}
}
