// Package fsutil holds small filesystem helpers shared by the persistence
// layers (the grouping base writer and the internal/store engine): atomic
// file replacement and directory syncing.
package fsutil

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// TempPattern returns the os.CreateTemp pattern used for in-progress writes
// of the named destination file. Crash-recovery scans match leftovers with
// IsTempFor.
func TempPattern(base string) string { return base + ".tmp-*" }

// IsTempFor reports whether name is an in-progress temp file for the
// destination file base (both are bare names, not paths).
func IsTempFor(name, base string) bool {
	return strings.HasPrefix(name, base+".tmp-")
}

// WriteFileAtomic writes a file so that path always holds either the old
// content or the complete new content, never a torn mix: the payload goes to
// a temp file in the same directory, is fsynced, and is renamed over path;
// the directory itself is then synced so the rename survives a crash. On any
// error the temp file is removed and path is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, TempPattern(base))
	if err != nil {
		return fmt.Errorf("fsutil: WriteFileAtomic: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: WriteFileAtomic %s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: WriteFileAtomic %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: WriteFileAtomic %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-completed rename or create in it is
// durable. Filesystems that do not support directory fsync (some network or
// overlay mounts) make it a no-op rather than an error.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsutil: SyncDir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Filesystems without directory fsync (some network and overlay
		// mounts) report EINVAL or ENOTSUP; the rename itself succeeded and
		// non-crash correctness does not depend on the sync, so tolerate it.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return fmt.Errorf("fsutil: SyncDir: %w", err)
	}
	return nil
}
