package viz

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// NamedSeries pairs a label with values for multi-series charts.
type NamedSeries struct {
	Name   string
	Values []float64
}

// LineChart renders one or more series as overlaid lines with a legend and
// a light frame; the demo's basic preview/selection chart.
func LineChart(title string, series []NamedSeries, width, height float64) string {
	c := NewCanvas(width, height)
	const mL, mR, mT, mB = 46, 12, 28, 20
	plotW := width - mL - mR
	plotH := height - mT - mB

	var all [][]float64
	maxLen := 1
	for _, s := range series {
		all = append(all, s.Values)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	lo, hi := minMaxAll(all...)
	x := NewScale(0, float64(maxLen-1), mL, mL+plotW, 0)
	y := NewScale(lo, hi, mT+plotH, mT, 0.06)

	frame(c, mL, mT, plotW, plotH, lo, hi, y)
	c.Text(width/2, 16, "middle", "#222222", 13, title)

	for i, s := range series {
		drawSeries(c, s.Values, x, y, Style{Stroke: PaletteColor(i), StrokeWidth: 1.6})
		// Legend swatch.
		lx := mL + 8 + float64(i)*110
		c.Line(lx, mT+8, lx+16, mT+8, Style{Stroke: PaletteColor(i), StrokeWidth: 2})
		c.Text(lx+20, mT+12, "", "#333333", 10, s.Name)
	}
	return c.String()
}

// WarpChart renders the demo's "multiple lines" result view (Fig 2, top
// right): the query and its best match on one plot, with dotted lines
// connecting the warped point pairs of the DTW alignment so the analyst
// sees which points matched.
func WarpChart(title string, q NamedSeries, m NamedSeries, path dist.WarpPath, width, height float64) string {
	c := NewCanvas(width, height)
	const mL, mR, mT, mB = 46, 12, 28, 20
	plotW := width - mL - mR
	plotH := height - mT - mB

	lo, hi := minMaxAll(q.Values, m.Values)
	maxLen := len(q.Values)
	if len(m.Values) > maxLen {
		maxLen = len(m.Values)
	}
	xq := NewScale(0, float64(maxLen-1), mL, mL+plotW, 0)
	y := NewScale(lo, hi, mT+plotH, mT, 0.06)

	frame(c, mL, mT, plotW, plotH, lo, hi, y)
	c.Text(width/2, 16, "middle", "#222222", 13, title)

	// Dotted warping connections first, underneath the lines.
	for _, stp := range path {
		if stp.I >= len(q.Values) || stp.J >= len(m.Values) {
			continue
		}
		c.Line(xq.Apply(float64(stp.I)), y.Apply(q.Values[stp.I]),
			xq.Apply(float64(stp.J)), y.Apply(m.Values[stp.J]),
			Style{Stroke: "#999999", StrokeWidth: 0.7, Dash: "2,3", Opacity: 0.8})
	}
	drawSeries(c, q.Values, xq, y, Style{Stroke: PaletteColor(0), StrokeWidth: 1.8})
	drawSeries(c, m.Values, xq, y, Style{Stroke: PaletteColor(2), StrokeWidth: 1.8})

	c.Line(mL+8, mT+8, mL+24, mT+8, Style{Stroke: PaletteColor(0), StrokeWidth: 2})
	c.Text(mL+28, mT+12, "", "#333333", 10, q.Name)
	c.Line(mL+120, mT+8, mL+136, mT+8, Style{Stroke: PaletteColor(2), StrokeWidth: 2})
	c.Text(mL+140, mT+12, "", "#333333", 10, m.Name)
	return c.String()
}

// RadialChart compacts two series onto a shared polar display (Fig 3a):
// angle encodes time, radius encodes value. Close shapes wind around each
// other tightly.
func RadialChart(title string, a, b NamedSeries, size float64) string {
	c := NewCanvas(size, size)
	cx, cy := size/2, size/2+8
	maxR := size/2 - 36
	lo, hi := minMaxAll(a.Values, b.Values)

	c.Text(size/2, 16, "middle", "#222222", 13, title)
	// Reference rings.
	for _, f := range []float64{0.33, 0.66, 1.0} {
		c.Circle(cx, cy, maxR*f, Style{Stroke: "#dddddd"})
	}
	for i, s := range []NamedSeries{a, b} {
		xs, ys := radialPoints(s.Values, cx, cy, maxR, lo, hi)
		// Close the loop.
		if len(xs) > 1 {
			xs = append(xs, xs[0])
			ys = append(ys, ys[0])
		}
		c.Polyline(xs, ys, Style{Stroke: PaletteColor(i * 2), StrokeWidth: 1.6})
		c.Line(20, size-28+float64(i)*12, 36, size-28+float64(i)*12,
			Style{Stroke: PaletteColor(i * 2), StrokeWidth: 2})
		c.Text(40, size-24+float64(i)*12, "", "#333333", 10, s.Name)
	}
	return c.String()
}

func radialPoints(vals []float64, cx, cy, maxR, lo, hi float64) (xs, ys []float64) {
	span := hi - lo
	for i, v := range vals {
		t := 0.5
		if span > 0 {
			t = (v - lo) / span
		}
		r := maxR * (0.2 + 0.8*t)
		theta := 2*math.Pi*float64(i)/float64(len(vals)) - math.Pi/2
		xs = append(xs, cx+r*math.Cos(theta))
		ys = append(ys, cy+r*math.Sin(theta))
	}
	return xs, ys
}

// ConnectedScatter plots series a against series b point by point in time
// order, connecting consecutive points (Fig 3b). Points hugging the
// diagonal mean the two series take near-identical values; the diagonal is
// drawn for reference. Series of different lengths are compared via the
// DTW alignment path when provided, else by linear resampling.
func ConnectedScatter(title string, a, b NamedSeries, path dist.WarpPath, size float64) string {
	c := NewCanvas(size, size)
	const m = 44
	plot := size - 2*m

	// Build the (a_i, b_j) pairs.
	var pa, pb []float64
	if len(path) > 0 {
		for _, stp := range path {
			if stp.I < len(a.Values) && stp.J < len(b.Values) {
				pa = append(pa, a.Values[stp.I])
				pb = append(pb, b.Values[stp.J])
			}
		}
	} else {
		n := len(a.Values)
		bb := b.Values
		if len(bb) != n {
			bb = dist.Resample(bb, n)
		}
		pa = append(pa, a.Values...)
		pb = append(pb, bb...)
	}
	lo, hi := minMaxAll(pa, pb)
	sc := NewScale(lo, hi, 0, plot, 0.06)

	c.Text(size/2, 16, "middle", "#222222", 13, title)
	done := c.Group(m, m)
	c.Rect(0, 0, plot, plot, Style{Stroke: "#cccccc"})
	// The x=y reference diagonal (SVG y is flipped).
	c.Line(0, plot, plot, 0, Style{Stroke: "#bbbbbb", Dash: "4,4"})
	xs := make([]float64, len(pa))
	ys := make([]float64, len(pa))
	for i := range pa {
		xs[i] = sc.Apply(pa[i])
		ys[i] = plot - sc.Apply(pb[i])
	}
	c.Polyline(xs, ys, Style{Stroke: PaletteColor(4), StrokeWidth: 1.2, Opacity: 0.9})
	for i := range xs {
		c.Circle(xs[i], ys[i], 2.2, Style{Fill: PaletteColor(4)})
	}
	done()
	c.Text(size/2, size-6, "middle", "#666666", 10, a.Name)
	c.Text(12, size/2, "middle", "#666666", 10, b.Name)
	return c.String()
}

// OverviewCell is one group representative for the overview grid.
type OverviewCell struct {
	Rep   []float64
	Count int
	Label string
}

// OverviewGrid renders the demo's overview pane (Fig 2, top left): a small
// multiple per similarity-group representative, tinted so that color
// intensity grows with group cardinality.
func OverviewGrid(title string, cells []OverviewCell, columns int, cellW, cellH float64) string {
	if columns <= 0 {
		columns = 4
	}
	rows := (len(cells) + columns - 1) / columns
	if rows == 0 {
		rows = 1
	}
	const pad = 8
	width := float64(columns)*(cellW+pad) + pad
	height := float64(rows)*(cellH+pad) + pad + 26
	c := NewCanvas(width, height)
	c.Text(width/2, 16, "middle", "#222222", 13, title)

	maxCount := 1
	for _, cell := range cells {
		if cell.Count > maxCount {
			maxCount = cell.Count
		}
	}
	for i, cell := range cells {
		col := i % columns
		row := i / columns
		x0 := pad + float64(col)*(cellW+pad)
		y0 := 26 + pad + float64(row)*(cellH+pad)
		t := float64(cell.Count) / float64(maxCount)
		done := c.Group(x0, y0)
		c.Rect(0, 0, cellW, cellH, Style{Stroke: "#cccccc", Fill: HeatColor(t)})
		lo, hi := minMax(cell.Rep)
		xsc := NewScale(0, float64(maxI(len(cell.Rep)-1, 1)), 4, cellW-4, 0)
		ysc := NewScale(lo, hi, cellH-14, 6, 0.1)
		stroke := "#1f3b70"
		if t > 0.6 {
			stroke = "#ffffff" // keep the sparkline visible on dark tiles
		}
		drawSeries(c, cell.Rep, xsc, ysc, Style{Stroke: stroke, StrokeWidth: 1.4})
		label := cell.Label
		if label == "" {
			label = fmt.Sprintf("n=%d", cell.Count)
		}
		labelFill := "#444444"
		if t > 0.6 {
			labelFill = "#e8eefc"
		}
		c.Text(cellW/2, cellH-3, "middle", labelFill, 9, label)
		done()
	}
	return c.String()
}

// SeasonalSegment is one motif occurrence for the seasonal view.
type SeasonalSegment struct {
	Start, Length int
}

// SeasonalView renders the demo's seasonal pane (Fig 4): the full series
// in grey with the recurring pattern's occurrences overdrawn in
// alternating blue and green, clarifying consecutive instances.
func SeasonalView(title string, values []float64, segments []SeasonalSegment, width, height float64) string {
	c := NewCanvas(width, height)
	const mL, mR, mT, mB = 46, 12, 28, 18
	plotW := width - mL - mR
	plotH := height - mT - mB
	lo, hi := minMax(values)
	x := NewScale(0, float64(maxI(len(values)-1, 1)), mL, mL+plotW, 0)
	y := NewScale(lo, hi, mT+plotH, mT, 0.06)

	frame(c, mL, mT, plotW, plotH, lo, hi, y)
	c.Text(width/2, 16, "middle", "#222222", 13, title)
	drawSeries(c, values, x, y, Style{Stroke: "#bbbbbb", StrokeWidth: 1})

	colors := []string{PaletteColor(0), PaletteColor(1)} // alternating blue/green
	for k, seg := range segments {
		if seg.Start < 0 || seg.Start+seg.Length > len(values) {
			continue
		}
		sub := values[seg.Start : seg.Start+seg.Length]
		xs := make([]float64, len(sub))
		ys := make([]float64, len(sub))
		for i, v := range sub {
			xs[i] = x.Apply(float64(seg.Start + i))
			ys[i] = y.Apply(v)
		}
		c.Polyline(xs, ys, Style{Stroke: colors[k%2], StrokeWidth: 2})
		// Soft band behind each occurrence.
		c.Rect(x.Apply(float64(seg.Start)), mT,
			x.Apply(float64(seg.Start+seg.Length-1))-x.Apply(float64(seg.Start)), plotH,
			Style{Fill: colors[k%2], Opacity: 0.08})
	}
	return c.String()
}

// HistogramMarker annotates a vertical reference line on a histogram
// (used to show recommended thresholds over the distance distribution).
type HistogramMarker struct {
	Value float64
	Label string
}

// Histogram renders a value distribution as bars with optional vertical
// markers; the threshold-recommendation view draws the pairwise-distance
// distribution with the tight/balanced/loose cut points.
func Histogram(title string, values []float64, bins int, markers []HistogramMarker, width, height float64) string {
	c := NewCanvas(width, height)
	const mL, mR, mT, mB = 46, 12, 28, 24
	plotW := width - mL - mR
	plotH := height - mT - mB
	c.Text(width/2, 16, "middle", "#222222", 13, title)
	c.Rect(mL, mT, plotW, plotH, Style{Stroke: "#cccccc"})
	if len(values) == 0 || bins <= 0 {
		return c.String()
	}
	lo, hi := minMax(values)
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxCount := 1
	for _, ct := range counts {
		if ct > maxCount {
			maxCount = ct
		}
	}
	barW := plotW / float64(bins)
	for b, ct := range counts {
		if ct == 0 {
			continue
		}
		h := plotH * float64(ct) / float64(maxCount)
		c.Rect(mL+float64(b)*barW, mT+plotH-h, barW*0.92, h,
			Style{Fill: "#9ecae1", Stroke: "#6baed6", StrokeWidth: 0.5})
	}
	x := NewScale(lo, hi, mL, mL+plotW, 0)
	for i, mk := range markers {
		px := x.Apply(mk.Value)
		if px < mL || px > mL+plotW {
			continue
		}
		c.Line(px, mT, px, mT+plotH, Style{Stroke: PaletteColor(2 + i), StrokeWidth: 1.5, Dash: "5,3"})
		c.Text(px+3, mT+12+float64(i)*12, "", PaletteColor(2+i), 10, mk.Label)
	}
	c.Text(mL, mT+plotH+14, "", "#666666", 9, fmt.Sprintf("%.3g", lo))
	c.Text(mL+plotW, mT+plotH+14, "end", "#666666", 9, fmt.Sprintf("%.3g", hi))
	return c.String()
}

// StackedLineChart renders the demo's "stacked lines" view (§3.4): each
// series gets its own horizontal band, aligned on a shared time axis, so
// many series can be compared at once without overplotting. Each band is
// scaled independently (shape comparison, not magnitude comparison), with
// the series name at the left edge.
func StackedLineChart(title string, series []NamedSeries, width, bandH float64) string {
	const mL, mR, mT = 72, 12, 28
	height := mT + float64(len(series))*bandH + 10
	c := NewCanvas(width, height)
	c.Text(width/2, 16, "middle", "#222222", 13, title)
	plotW := width - mL - mR

	maxLen := 1
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	x := NewScale(0, float64(maxI(maxLen-1, 1)), mL, mL+plotW, 0)
	for i, s := range series {
		y0 := mT + float64(i)*bandH
		done := c.Group(0, y0)
		c.Line(mL, bandH, mL+plotW, bandH, Style{Stroke: "#eeeeee"})
		lo, hi := minMax(s.Values)
		y := NewScale(lo, hi, bandH-4, 4, 0.05)
		drawSeries(c, s.Values, x, y, Style{Stroke: PaletteColor(i), StrokeWidth: 1.3})
		c.Text(mL-6, bandH/2+4, "end", "#444444", 10, s.Name)
		done()
	}
	return c.String()
}

// drawSeries polylines values through the given scales.
func drawSeries(c *Canvas, values []float64, x, y Scale, st Style) {
	if len(values) == 0 {
		return
	}
	xs := make([]float64, len(values))
	ys := make([]float64, len(values))
	for i, v := range values {
		xs[i] = x.Apply(float64(i))
		ys[i] = y.Apply(v)
	}
	if len(values) == 1 {
		c.Circle(xs[0], ys[0], 2, Style{Fill: st.Stroke})
		return
	}
	c.Polyline(xs, ys, st)
}

// frame draws the plot border and min/max y tick labels.
func frame(c *Canvas, mL, mT, plotW, plotH, lo, hi float64, y Scale) {
	c.Rect(mL, mT, plotW, plotH, Style{Stroke: "#cccccc"})
	c.Text(mL-4, y.Apply(hi)+4, "end", "#666666", 9, fmt.Sprintf("%.3g", hi))
	c.Text(mL-4, y.Apply(lo)+4, "end", "#666666", 9, fmt.Sprintf("%.3g", lo))
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
