// Package viz renders the ONEX demo's visualizations (paper §3.4, Figs
// 2-4) as standalone SVG documents: multiple-lines charts with dotted
// warped-point connections, radial charts, connected scatter plots, the
// overview grid of group representatives color-coded by cardinality, and
// the seasonal view with alternating colored repeated segments.
//
// The original system renders these in a web browser; producing
// deterministic SVG files keeps the reproduction dependency-free while
// preserving every visual element the demo narrates.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Canvas is a minimal SVG document builder. Create one with NewCanvas,
// draw, then WriteTo/String. All coordinates are in pixels.
type Canvas struct {
	w, h float64
	b    strings.Builder
}

// NewCanvas starts an SVG document of the given pixel size with a white
// background.
func NewCanvas(width, height float64) *Canvas {
	c := &Canvas{w: width, h: height}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`,
		width, height, width, height)
	c.b.WriteByte('\n')
	fmt.Fprintf(&c.b, `<rect x="0" y="0" width="%g" height="%g" fill="#ffffff"/>`, width, height)
	c.b.WriteByte('\n')
	return c
}

// Width and Height return the canvas dimensions.
func (c *Canvas) Width() float64 { return c.w }

// Height returns the canvas height.
func (c *Canvas) Height() float64 { return c.h }

// Style bundles the stroke/fill attributes shared by the draw calls.
type Style struct {
	Stroke      string  // stroke color; "" omits
	StrokeWidth float64 // 0 means 1
	Fill        string  // fill color; "" means none
	Dash        string  // stroke-dasharray; "" omits
	Opacity     float64 // 0 means fully opaque (1)
}

func (s Style) attrs() string {
	var b strings.Builder
	if s.Stroke != "" {
		fmt.Fprintf(&b, ` stroke="%s"`, s.Stroke)
		w := s.StrokeWidth
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(&b, ` stroke-width="%g"`, w)
	}
	if s.Fill != "" {
		fmt.Fprintf(&b, ` fill="%s"`, s.Fill)
	} else {
		b.WriteString(` fill="none"`)
	}
	if s.Dash != "" {
		fmt.Fprintf(&b, ` stroke-dasharray="%s"`, s.Dash)
	}
	if s.Opacity > 0 && s.Opacity < 1 {
		fmt.Fprintf(&b, ` opacity="%g"`, s.Opacity)
	}
	return b.String()
}

// Line draws a segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, st Style) {
	fmt.Fprintf(&c.b, `<line x1="%s" y1="%s" x2="%s" y2="%s"%s/>`,
		fnum(x1), fnum(y1), fnum(x2), fnum(y2), st.attrs())
	c.b.WriteByte('\n')
}

// Polyline draws a connected series of points.
func (c *Canvas) Polyline(xs, ys []float64, st Style) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return
	}
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		pts.WriteString(fnum(xs[i]))
		pts.WriteByte(',')
		pts.WriteString(fnum(ys[i]))
	}
	fmt.Fprintf(&c.b, `<polyline points="%s"%s/>`, pts.String(), st.attrs())
	c.b.WriteByte('\n')
}

// Circle draws a circle.
func (c *Canvas) Circle(cx, cy, r float64, st Style) {
	fmt.Fprintf(&c.b, `<circle cx="%s" cy="%s" r="%s"%s/>`, fnum(cx), fnum(cy), fnum(r), st.attrs())
	c.b.WriteByte('\n')
}

// Rect draws a rectangle.
func (c *Canvas) Rect(x, y, w, h float64, st Style) {
	fmt.Fprintf(&c.b, `<rect x="%s" y="%s" width="%s" height="%s"%s/>`,
		fnum(x), fnum(y), fnum(w), fnum(h), st.attrs())
	c.b.WriteByte('\n')
}

// Text draws a label. anchor is "start", "middle" or "end" ("" = start).
func (c *Canvas) Text(x, y float64, anchor, fill string, size float64, text string) {
	if anchor == "" {
		anchor = "start"
	}
	if fill == "" {
		fill = "#333333"
	}
	if size == 0 {
		size = 11
	}
	fmt.Fprintf(&c.b, `<text x="%s" y="%s" text-anchor="%s" fill="%s" font-size="%g" font-family="sans-serif">%s</text>`,
		fnum(x), fnum(y), anchor, fill, size, EscapeText(text))
	c.b.WriteByte('\n')
}

// Group opens a translated <g> element; the returned func closes it.
func (c *Canvas) Group(tx, ty float64) func() {
	fmt.Fprintf(&c.b, `<g transform="translate(%s,%s)">`, fnum(tx), fnum(ty))
	c.b.WriteByte('\n')
	return func() {
		c.b.WriteString("</g>\n")
	}
}

// String finalizes and returns the document.
func (c *Canvas) String() string {
	return c.b.String() + "</svg>\n"
}

// WriteTo writes the finalized document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, c.String())
	return int64(n), err
}

// EscapeText escapes the XML-significant characters of a text node.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// fnum formats a coordinate compactly (2 decimal places, trimmed).
func fnum(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Scale maps a data interval onto a pixel interval (possibly inverted for
// the SVG y axis).
type Scale struct {
	DomainMin, DomainMax float64
	RangeMin, RangeMax   float64
}

// Apply maps a data value to pixels; a degenerate domain maps to the range
// midpoint.
func (s Scale) Apply(v float64) float64 {
	span := s.DomainMax - s.DomainMin
	if span == 0 {
		return (s.RangeMin + s.RangeMax) / 2
	}
	t := (v - s.DomainMin) / span
	return s.RangeMin + t*(s.RangeMax-s.RangeMin)
}

// NewScale builds a scale with a small domain padding so lines do not
// touch the plot border.
func NewScale(dmin, dmax, rmin, rmax, padFrac float64) Scale {
	span := dmax - dmin
	pad := span * padFrac
	if span == 0 {
		pad = 1
	}
	return Scale{DomainMin: dmin - pad, DomainMax: dmax + pad, RangeMin: rmin, RangeMax: rmax}
}

// Palette is the demo's line color cycle.
var Palette = []string{
	"#1f77b4", // blue
	"#2ca02c", // green
	"#d62728", // red
	"#ff7f0e", // orange
	"#9467bd", // purple
	"#8c564b", // brown
	"#17becf", // cyan
	"#e377c2", // pink
}

// PaletteColor returns the i-th palette color, cycling.
func PaletteColor(i int) string { return Palette[((i%len(Palette))+len(Palette))%len(Palette)] }

// HeatColor maps t in [0,1] to a white->deep-blue intensity ramp, the
// overview pane's "color intensity increases with cardinality" encoding.
func HeatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Interpolate #f0f4ff -> #08306b.
	r := int(240 + t*(8-240))
	g := int(244 + t*(48-244))
	b := int(255 + t*(107-255))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// minMax returns the extrema of values (0,0 for empty).
func minMax(values []float64) (float64, float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// minMaxAll returns the extrema across several slices.
func minMaxAll(series ...[]float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}
