package viz

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

func checkSVG(t *testing.T, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("missing <svg prefix")
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("missing </svg> suffix")
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("nested svg roots")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("non-finite coordinates leaked into SVG")
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(100, 50)
	c.Line(0, 0, 10, 10, Style{Stroke: "#000000"})
	c.Polyline([]float64{0, 5, 10}, []float64{1, 2, 3}, Style{Stroke: "red"})
	c.Circle(5, 5, 2, Style{Fill: "blue"})
	c.Rect(1, 1, 8, 8, Style{Stroke: "green", Dash: "2,2", Opacity: 0.5})
	c.Text(10, 10, "middle", "", 0, "hi & <bye>")
	done := c.Group(3, 4)
	c.Line(0, 0, 1, 1, Style{Stroke: "#abc"})
	done()
	svg := c.String()
	checkSVG(t, svg)
	for _, want := range []string{"<line", "<polyline", "<circle", "<rect", "<text", "<g transform", "hi &amp; &lt;bye&gt;"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if c.Width() != 100 || c.Height() != 50 {
		t.Fatal("dimensions wrong")
	}
}

func TestPolylineIgnoresBadInput(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Polyline(nil, nil, Style{Stroke: "red"})
	c.Polyline([]float64{1}, []float64{1, 2}, Style{Stroke: "red"})
	if strings.Contains(c.String(), "<polyline") {
		t.Fatal("bad polyline input emitted")
	}
}

func TestFnumHandlesNonFinite(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Line(math.NaN(), math.Inf(1), 1, 1, Style{Stroke: "red"})
	checkSVG(t, c.String())
}

func TestScale(t *testing.T) {
	s := NewScale(0, 10, 100, 200, 0)
	if got := s.Apply(5); got != 150 {
		t.Fatalf("Apply(5) = %g", got)
	}
	// Inverted range (SVG y axis).
	inv := NewScale(0, 10, 200, 100, 0)
	if got := inv.Apply(0); got != 200 {
		t.Fatalf("inverted Apply(0) = %g", got)
	}
	// Degenerate domain maps to the midpoint.
	deg := Scale{DomainMin: 5, DomainMax: 5, RangeMin: 0, RangeMax: 10}
	if got := deg.Apply(5); got != 5 {
		t.Fatalf("degenerate Apply = %g", got)
	}
}

func TestHeatColorRamp(t *testing.T) {
	lowR := HeatColor(0)
	highR := HeatColor(1)
	if lowR == highR {
		t.Fatal("heat ramp is flat")
	}
	if HeatColor(-1) != lowR || HeatColor(2) != highR {
		t.Fatal("heat ramp not clamped")
	}
	if !strings.HasPrefix(lowR, "#") || len(lowR) != 7 {
		t.Fatalf("bad color format %q", lowR)
	}
}

func TestPaletteColorCycles(t *testing.T) {
	if PaletteColor(0) != PaletteColor(len(Palette)) {
		t.Fatal("palette does not cycle")
	}
	if PaletteColor(-1) == "" {
		t.Fatal("negative index should still map")
	}
}

func TestLineChart(t *testing.T) {
	svg := LineChart("growth", []NamedSeries{
		{Name: "MA", Values: []float64{1, 2, 3, 2, 4}},
		{Name: "RI", Values: []float64{2, 2, 2, 3, 3}},
	}, 400, 200)
	checkSVG(t, svg)
	if !strings.Contains(svg, "MA") || !strings.Contains(svg, "growth") {
		t.Fatal("labels missing")
	}
	if strings.Count(svg, "<polyline") < 2 {
		t.Fatal("expected two series lines")
	}
}

func TestWarpChartDrawsConnections(t *testing.T) {
	q := []float64{0, 1, 2, 1, 0}
	m := []float64{0, 0, 1, 2, 1, 0}
	_, path := dist.DTWPath(q, m, -1)
	svg := WarpChart("match", NamedSeries{Name: "query", Values: q},
		NamedSeries{Name: "best", Values: m}, path, 480, 240)
	checkSVG(t, svg)
	// One dotted connector per path step.
	if got := strings.Count(svg, `stroke-dasharray="2,3"`); got != len(path) {
		t.Fatalf("connector count = %d, want %d", got, len(path))
	}
}

func TestRadialChart(t *testing.T) {
	svg := RadialChart("tech employment", NamedSeries{Name: "MA", Values: []float64{1, 2, 3, 4}},
		NamedSeries{Name: "AR", Values: []float64{1.1, 2.1, 2.9, 4.2}}, 300)
	checkSVG(t, svg)
	if strings.Count(svg, "<circle") < 3 {
		t.Fatal("reference rings missing")
	}
	if strings.Count(svg, "<polyline") < 2 {
		t.Fatal("two radial traces expected")
	}
}

func TestConnectedScatter(t *testing.T) {
	a := NamedSeries{Name: "MA", Values: []float64{1, 2, 3, 4, 5}}
	b := NamedSeries{Name: "AR", Values: []float64{1, 2, 3, 4, 5}}
	svg := ConnectedScatter("close match", a, b, nil, 300)
	checkSVG(t, svg)
	if !strings.Contains(svg, `stroke-dasharray="4,4"`) {
		t.Fatal("diagonal reference missing")
	}
	// Identical series: every point sits on the diagonal y = x (in plot
	// coordinates, y flipped).
	// Structural check only: 5 scatter points drawn.
	if got := strings.Count(svg, "<circle"); got != 5 {
		t.Fatalf("scatter points = %d, want 5", got)
	}

	// With an explicit path, pairs follow the alignment.
	q := []float64{0, 1, 2}
	mm := []float64{0, 0, 1, 2}
	_, path := dist.DTWPath(q, mm, -1)
	svg2 := ConnectedScatter("warped", NamedSeries{Name: "q", Values: q},
		NamedSeries{Name: "m", Values: mm}, path, 300)
	checkSVG(t, svg2)
	if got := strings.Count(svg2, "<circle"); got != len(path) {
		t.Fatalf("path scatter points = %d, want %d", got, len(path))
	}
	// Different lengths without a path resample instead of failing.
	svg3 := ConnectedScatter("resampled", NamedSeries{Name: "q", Values: q},
		NamedSeries{Name: "m", Values: mm}, nil, 300)
	checkSVG(t, svg3)
}

func TestOverviewGrid(t *testing.T) {
	cells := []OverviewCell{
		{Rep: []float64{1, 2, 3}, Count: 10, Label: "g0"},
		{Rep: []float64{3, 2, 1}, Count: 5},
		{Rep: []float64{2, 2, 2}, Count: 1},
	}
	svg := OverviewGrid("overview", cells, 2, 90, 60)
	checkSVG(t, svg)
	if !strings.Contains(svg, "g0") {
		t.Fatal("cell label missing")
	}
	if !strings.Contains(svg, "n=5") {
		t.Fatal("default cell label missing")
	}
	// Distinct intensities for distinct cardinalities.
	if HeatColor(1) == HeatColor(0.1) {
		t.Fatal("cardinality encoding flat")
	}
	// Zero columns defaults sanely.
	checkSVG(t, OverviewGrid("o", cells, 0, 90, 60))
	// Empty grid is a valid document.
	checkSVG(t, OverviewGrid("empty", nil, 4, 90, 60))
}

func TestSeasonalView(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 5)
	}
	segs := []SeasonalSegment{{Start: 0, Length: 10}, {Start: 30, Length: 10}, {Start: 45, Length: 10}}
	svg := SeasonalView("patterns", vals, segs, 500, 200)
	checkSVG(t, svg)
	// Base line + 3 occurrence overlays.
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Fatalf("polylines = %d, want 4", got)
	}
	// Alternating colors: both palette colors appear.
	if !strings.Contains(svg, PaletteColor(0)) || !strings.Contains(svg, PaletteColor(1)) {
		t.Fatal("alternating segment colors missing")
	}
	// Out-of-range segments are skipped, not drawn.
	svg2 := SeasonalView("oob", vals, []SeasonalSegment{{Start: 55, Length: 20}}, 500, 200)
	if got := strings.Count(svg2, "<polyline"); got != 1 {
		t.Fatalf("out-of-range segment drawn: %d polylines", got)
	}
}

func TestSingleValueSeries(t *testing.T) {
	svg := LineChart("dot", []NamedSeries{{Name: "x", Values: []float64{5}}}, 200, 100)
	checkSVG(t, svg)
}

func TestHistogram(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i % 17)
	}
	svg := Histogram("distances", vals, 12, []HistogramMarker{
		{Value: 4, Label: "tight"},
		{Value: 9, Label: "loose"},
	}, 420, 220)
	checkSVG(t, svg)
	if !strings.Contains(svg, "tight") || !strings.Contains(svg, "loose") {
		t.Fatal("markers missing")
	}
	// Bars present (at least one rect beyond background + frame).
	if strings.Count(svg, "<rect") < 5 {
		t.Fatal("too few bars")
	}
	// Degenerate inputs still render.
	checkSVG(t, Histogram("empty", nil, 10, nil, 200, 100))
	checkSVG(t, Histogram("const", []float64{3, 3, 3}, 5, nil, 200, 100))
	// Out-of-range markers are skipped silently.
	svg2 := Histogram("m", []float64{1, 2, 3}, 3, []HistogramMarker{{Value: 99, Label: "far"}}, 200, 100)
	if strings.Contains(svg2, "far") {
		t.Fatal("out-of-range marker drawn")
	}
}

func TestStackedLineChart(t *testing.T) {
	series := []NamedSeries{
		{Name: "MA", Values: []float64{1, 2, 3, 2}},
		{Name: "CT", Values: []float64{5, 5, 6, 7}},
		{Name: "RI", Values: []float64{0.1, 0.2, 0.1, 0.3}},
	}
	svg := StackedLineChart("stacked", series, 500, 48)
	checkSVG(t, svg)
	for _, want := range []string{"MA", "CT", "RI", "stacked"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// One band line + one polyline per series.
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Fatalf("polylines = %d, want 3", got)
	}
	// Empty input still renders a document.
	checkSVG(t, StackedLineChart("empty", nil, 300, 40))
}
