package ts

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/fsutil"
)

// LoadUCR reads the UCR archive text format: one series per line, fields
// separated by whitespace or commas, where the first field is a class label
// and the rest are the observations. Series are named name<row> and the
// class label is stored in Meta["class"].
func LoadUCR(r io.Reader, name string) (*Dataset, error) {
	d := NewDataset(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitUCRFields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ts: LoadUCR %s line %d: need a label and at least one value", name, row+1)
		}
		label := fields[0]
		values := make([]float64, 0, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ts: LoadUCR %s line %d field %d: %w", name, row+1, i+2, err)
			}
			values = append(values, v)
		}
		s := &Series{Name: fmt.Sprintf("%s-%d", name, row), Values: values}
		s.SetLabel("class", label)
		if err := d.Add(s); err != nil {
			return nil, err
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ts: LoadUCR %s: %w", name, err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ts: LoadUCR %s: no series found", name)
	}
	return d, nil
}

func splitUCRFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

// SaveUCR writes the dataset in the UCR text format (class label first,
// space separated). Series without a class label get label "0".
func SaveUCR(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, s := range d.Series {
		label := s.Label("class")
		if label == "" {
			label = "0"
		}
		if _, err := bw.WriteString(label); err != nil {
			return fmt.Errorf("ts: SaveUCR: %w", err)
		}
		for _, v := range s.Values {
			if _, err := fmt.Fprintf(bw, " %g", v); err != nil {
				return fmt.Errorf("ts: SaveUCR: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("ts: SaveUCR: %w", err)
		}
	}
	return bw.Flush()
}

// LoadCSV reads a row-oriented CSV: header row, then one series per row
// with the series name in the first column and observations in the rest.
// Empty trailing cells are permitted so variable-length series can share a
// file (the MATTERS export convention: one row per state, one column per
// year, with missing years blank).
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow ragged rows
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("ts: LoadCSV %s: %w", name, err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("ts: LoadCSV %s: need a header and at least one series row", name)
	}
	d := NewDataset(name)
	for ri, row := range rows[1:] {
		if len(row) == 0 {
			continue
		}
		sname := strings.TrimSpace(row[0])
		if sname == "" {
			return nil, fmt.Errorf("ts: LoadCSV %s row %d: empty series name", name, ri+2)
		}
		values := make([]float64, 0, len(row)-1)
		for ci, cell := range row[1:] {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue // ragged/missing tail
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("ts: LoadCSV %s row %d col %d: %w", name, ri+2, ci+2, err)
			}
			values = append(values, v)
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("ts: LoadCSV %s row %d (%s): no values", name, ri+2, sname)
		}
		if err := d.Add(&Series{Name: sname, Values: values}); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ts: LoadCSV %s: no series found", name)
	}
	return d, nil
}

// SaveCSV writes the row-oriented CSV format readable by LoadCSV. The
// header enumerates t0..t<max-1>.
func SaveCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	maxLen := d.MaxLen()
	header := make([]string, maxLen+1)
	header[0] = "name"
	for i := 0; i < maxLen; i++ {
		header[i+1] = "t" + strconv.Itoa(i)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("ts: SaveCSV: %w", err)
	}
	for _, s := range d.Series {
		row := make([]string, len(s.Values)+1)
		row[0] = s.Name
		for i, v := range s.Values {
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("ts: SaveCSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonDataset is the on-disk JSON representation.
type jsonDataset struct {
	Name   string       `json:"name"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name   string            `json:"name"`
	Values []float64         `json:"values"`
	Meta   map[string]string `json:"meta,omitempty"`
}

// LoadJSON reads the dataset JSON format produced by SaveJSON.
func LoadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("ts: LoadJSON: %w", err)
	}
	d := NewDataset(jd.Name)
	for _, js := range jd.Series {
		s := &Series{Name: js.Name, Values: js.Values, Meta: js.Meta}
		if err := d.Add(s); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ts: LoadJSON: dataset %q has no series", jd.Name)
	}
	return d, nil
}

// SaveJSON writes the dataset as indented JSON.
func SaveJSON(w io.Writer, d *Dataset) error {
	jd := jsonDataset{Name: d.Name, Series: make([]jsonSeries, 0, d.Len())}
	for _, s := range d.Series {
		jd.Series = append(jd.Series, jsonSeries{Name: s.Name, Values: s.Values, Meta: s.Meta})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jd); err != nil {
		return fmt.Errorf("ts: SaveJSON: %w", err)
	}
	return nil
}

// LoadFile dispatches on the file extension: .csv, .json, anything else is
// treated as UCR text. The dataset name is derived from the base name.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ts: LoadFile: %w", err)
	}
	defer f.Close()
	name := baseName(path)
	switch {
	case strings.HasSuffix(path, ".csv"):
		return LoadCSV(f, name)
	case strings.HasSuffix(path, ".json"):
		return LoadJSON(f)
	default:
		return LoadUCR(f, name)
	}
}

// SaveFile writes the dataset in the format implied by the extension. The
// write is atomic (temp file + fsync + rename via internal/fsutil), so a
// crash mid-save leaves any previous file intact instead of a torn one.
func SaveFile(path string, d *Dataset) error {
	err := fsutil.WriteFileAtomic(path, func(w io.Writer) error {
		switch {
		case strings.HasSuffix(path, ".csv"):
			return SaveCSV(w, d)
		case strings.HasSuffix(path, ".json"):
			return SaveJSON(w, d)
		default:
			return SaveUCR(w, d)
		}
	})
	if err != nil {
		return fmt.Errorf("ts: SaveFile: %w", err)
	}
	return nil
}

func baseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if j := strings.LastIndex(base, "."); j > 0 {
		base = base[:j]
	}
	return base
}
