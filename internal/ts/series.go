// Package ts provides the time-series substrate for the ONEX reproduction:
// series and dataset types, subsequence references, loaders and writers for
// common on-disk formats, normalization, and summary statistics.
//
// A Dataset is an ordered collection of named, variable-length series. All
// higher layers (grouping, query processing, baselines) address raw data
// through this package, usually via SubSeq references so that no subsequence
// values are ever copied during index construction.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single named time series. Values are stored in temporal order
// with a uniform (but unspecified) sampling period. Meta carries free-form
// annotations such as the unit, source, or class label.
type Series struct {
	Name   string
	Values []float64
	Meta   map[string]string
}

// NewSeries builds a Series over a defensive copy of values.
func NewSeries(name string, values []float64) *Series {
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{Name: name, Values: v}
}

// Len returns the number of observations in the series.
func (s *Series) Len() int { return len(s.Values) }

// Label returns the Meta value for key, or "" when absent.
func (s *Series) Label(key string) string {
	if s.Meta == nil {
		return ""
	}
	return s.Meta[key]
}

// SetLabel sets a Meta annotation, allocating the map on first use.
func (s *Series) SetLabel(key, value string) {
	if s.Meta == nil {
		s.Meta = make(map[string]string)
	}
	s.Meta[key] = value
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := NewSeries(s.Name, s.Values)
	if s.Meta != nil {
		c.Meta = make(map[string]string, len(s.Meta))
		for k, v := range s.Meta {
			c.Meta[k] = v
		}
	}
	return c
}

// Slice returns the value window [start, start+length) without copying.
// It panics when the window is out of range; use SubSeq.Validate for a
// checked variant.
func (s *Series) Slice(start, length int) []float64 {
	return s.Values[start : start+length]
}

// Dataset is an ordered collection of series plus bookkeeping about the
// normalization that has been applied to it. The zero value is an empty,
// unnamed, unnormalized dataset ready for Add.
type Dataset struct {
	Name   string
	Series []*Series

	// Norm records the normalization applied to Values, if any.
	Norm NormInfo

	// Source, when non-nil, is the refcounted backing storage the series
	// value slices alias (a memory-mapped snapshot); see ValueSource. nil
	// means every value slice is an ordinary heap allocation. Series added
	// after construction always live on the heap regardless.
	Source ValueSource

	byName map[string]int
}

// NewDataset creates an empty dataset with the given name.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name}
}

// Add appends a series. Adding a second series with a duplicate name is an
// error: downstream panes and APIs address series by name.
func (d *Dataset) Add(s *Series) error {
	if s == nil {
		return errors.New("ts: Add: nil series")
	}
	if s.Name == "" {
		return errors.New("ts: Add: series must be named")
	}
	if _, dup := d.index()[s.Name]; dup {
		return fmt.Errorf("ts: Add: duplicate series name %q", s.Name)
	}
	d.Series = append(d.Series, s)
	d.byName[s.Name] = len(d.Series) - 1
	return nil
}

// Remove deletes the named series and reports whether it was present.
// Subsequent series shift down one position, so any SubSeq references
// into the dataset are invalidated; callers (e.g. insert rollback) must
// only remove series no index refers to. The name index is repaired
// eagerly — deferring a rebuild to the (read-only, possibly concurrent)
// lookup paths would race.
func (d *Dataset) Remove(name string) bool {
	i, ok := d.index()[name]
	if !ok {
		return false
	}
	d.Series = append(d.Series[:i], d.Series[i+1:]...)
	delete(d.byName, name)
	for n, j := range d.byName {
		if j > i {
			d.byName[n] = j - 1
		}
	}
	return true
}

// MustAdd is Add for construction paths where a duplicate name is a bug.
func (d *Dataset) MustAdd(s *Series) {
	if err := d.Add(s); err != nil {
		panic(err)
	}
}

func (d *Dataset) index() map[string]int {
	if d.byName == nil {
		d.byName = make(map[string]int, len(d.Series))
		for i, s := range d.Series {
			d.byName[s.Name] = i
		}
	}
	return d.byName
}

// Len returns the number of series in the dataset.
func (d *Dataset) Len() int { return len(d.Series) }

// At returns the i-th series.
func (d *Dataset) At(i int) *Series { return d.Series[i] }

// ByName returns the series with the given name.
func (d *Dataset) ByName(name string) (*Series, bool) {
	i, ok := d.index()[name]
	if !ok {
		return nil, false
	}
	return d.Series[i], true
}

// IndexOf returns the position of the named series, or -1.
func (d *Dataset) IndexOf(name string) int {
	if i, ok := d.index()[name]; ok {
		return i
	}
	return -1
}

// TotalValues returns the number of observations across all series.
func (d *Dataset) TotalValues() int {
	n := 0
	for _, s := range d.Series {
		n += len(s.Values)
	}
	return n
}

// MinLen and MaxLen return the extreme series lengths; both return 0 for an
// empty dataset.
func (d *Dataset) MinLen() int {
	if len(d.Series) == 0 {
		return 0
	}
	m := math.MaxInt
	for _, s := range d.Series {
		if s.Len() < m {
			m = s.Len()
		}
	}
	return m
}

// MaxLen returns the length of the longest series, or 0 when empty.
func (d *Dataset) MaxLen() int {
	m := 0
	for _, s := range d.Series {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// NumSubsequences returns the number of distinct subsequence windows of
// length within [minLen, maxLen] over all series. This is the candidate
// population the ONEX base compacts.
func (d *Dataset) NumSubsequences(minLen, maxLen int) int {
	if minLen < 1 {
		minLen = 1
	}
	total := 0
	for _, s := range d.Series {
		hi := maxLen
		if hi > s.Len() {
			hi = s.Len()
		}
		for l := minLen; l <= hi; l++ {
			total += s.Len() - l + 1
		}
	}
	return total
}

// Clone returns a deep copy of the dataset (series values and meta
// included). The copy is fully heap-resident: it does not inherit d's
// value Source, so it stays valid after the source is released.
func (d *Dataset) Clone() *Dataset {
	c := NewDataset(d.Name)
	c.Norm = d.Norm
	for _, s := range d.Series {
		c.MustAdd(s.Clone())
	}
	return c
}

// Validate checks structural health: named series, finite values, non-empty.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return fmt.Errorf("ts: dataset %q has no series", d.Name)
	}
	for i, s := range d.Series {
		if s.Name == "" {
			return fmt.Errorf("ts: dataset %q: series %d unnamed", d.Name, i)
		}
		if len(s.Values) == 0 {
			return fmt.Errorf("ts: dataset %q: series %q empty", d.Name, s.Name)
		}
		for j, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ts: dataset %q: series %q value %d is not finite", d.Name, s.Name, j)
			}
		}
	}
	return nil
}

// SubSeq identifies the window [Start, Start+Length) of series Series in
// some dataset. It is a value type: cheap to copy, usable as a map key.
type SubSeq struct {
	Series int
	Start  int
	Length int
}

// Values resolves the reference against d without copying.
func (r SubSeq) Values(d *Dataset) []float64 {
	return d.Series[r.Series].Values[r.Start : r.Start+r.Length]
}

// End returns the exclusive end offset of the window.
func (r SubSeq) End() int { return r.Start + r.Length }

// Overlaps reports whether two references into the same series share any
// sample. References to different series never overlap.
func (r SubSeq) Overlaps(o SubSeq) bool {
	if r.Series != o.Series {
		return false
	}
	return r.Start < o.End() && o.Start < r.End()
}

// Validate checks the reference against the dataset bounds.
func (r SubSeq) Validate(d *Dataset) error {
	if r.Series < 0 || r.Series >= len(d.Series) {
		return fmt.Errorf("ts: subseq series index %d out of range [0,%d)", r.Series, len(d.Series))
	}
	if r.Length <= 0 {
		return fmt.Errorf("ts: subseq length %d must be positive", r.Length)
	}
	if r.Start < 0 || r.End() > d.Series[r.Series].Len() {
		return fmt.Errorf("ts: subseq [%d,%d) out of range for series %q of length %d",
			r.Start, r.End(), d.Series[r.Series].Name, d.Series[r.Series].Len())
	}
	return nil
}

// String renders the reference as name[start:end] when resolvable.
func (r SubSeq) String() string {
	return fmt.Sprintf("series %d [%d:%d)", r.Series, r.Start, r.End())
}

// Describe renders the reference with the series name from d.
func (r SubSeq) Describe(d *Dataset) string {
	if r.Series < 0 || r.Series >= len(d.Series) {
		return r.String()
	}
	return fmt.Sprintf("%s[%d:%d)", d.Series[r.Series].Name, r.Start, r.End())
}
