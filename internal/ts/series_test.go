package ts

import (
	"strings"
	"testing"
)

func mustDataset(t *testing.T, name string, series map[string][]float64) *Dataset {
	t.Helper()
	d := NewDataset(name)
	// Deterministic order: sort keys.
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		if err := d.Add(NewSeries(k, series[k])); err != nil {
			t.Fatalf("Add(%q): %v", k, err)
		}
	}
	return d
}

func TestDatasetAddAndLookup(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{
		"a": {1, 2, 3},
		"b": {4, 5},
	})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	s, ok := d.ByName("a")
	if !ok || s.Len() != 3 {
		t.Fatalf("ByName(a) = %v ok=%v", s, ok)
	}
	if _, ok := d.ByName("zz"); ok {
		t.Fatal("ByName(zz) found a ghost series")
	}
	if got := d.IndexOf("b"); got != 1 {
		t.Fatalf("IndexOf(b) = %d, want 1", got)
	}
	if got := d.IndexOf("zz"); got != -1 {
		t.Fatalf("IndexOf(zz) = %d, want -1", got)
	}
}

func TestDatasetAddRejectsDuplicatesAndNil(t *testing.T) {
	d := NewDataset("demo")
	if err := d.Add(NewSeries("a", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(NewSeries("a", []float64{2})); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := d.Add(nil); err == nil {
		t.Fatal("nil series accepted")
	}
	if err := d.Add(&Series{Values: []float64{1}}); err == nil {
		t.Fatal("unnamed series accepted")
	}
}

func TestNewSeriesCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	s := NewSeries("x", src)
	src[0] = 99
	if s.Values[0] != 1 {
		t.Fatalf("NewSeries aliased caller slice: %v", s.Values)
	}
}

func TestSeriesLabels(t *testing.T) {
	s := NewSeries("x", []float64{1})
	if got := s.Label("class"); got != "" {
		t.Fatalf("Label on empty meta = %q", got)
	}
	s.SetLabel("class", "7")
	if got := s.Label("class"); got != "7" {
		t.Fatalf("Label = %q, want 7", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{"a": {1, 2}})
	d.Series[0].SetLabel("k", "v")
	c := d.Clone()
	c.Series[0].Values[0] = 42
	c.Series[0].SetLabel("k", "other")
	if d.Series[0].Values[0] != 1 {
		t.Fatal("Clone shares values")
	}
	if d.Series[0].Label("k") != "v" {
		t.Fatal("Clone shares meta")
	}
}

func TestMinMaxLenAndTotals(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {1, 2},
	})
	if d.MinLen() != 2 || d.MaxLen() != 4 {
		t.Fatalf("MinLen/MaxLen = %d/%d, want 2/4", d.MinLen(), d.MaxLen())
	}
	if d.TotalValues() != 6 {
		t.Fatalf("TotalValues = %d, want 6", d.TotalValues())
	}
	empty := NewDataset("e")
	if empty.MinLen() != 0 || empty.MaxLen() != 0 {
		t.Fatal("empty dataset extremes should be 0")
	}
}

func TestNumSubsequences(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{
		"a": {1, 2, 3, 4}, // len 4
		"b": {1, 2},       // len 2
	})
	// lengths 2..3: a contributes (4-2+1)+(4-3+1)=3+2=5, b contributes (2-2+1)=1
	if got := d.NumSubsequences(2, 3); got != 6 {
		t.Fatalf("NumSubsequences(2,3) = %d, want 6", got)
	}
	// minLen clamps to 1.
	if got := d.NumSubsequences(0, 1); got != 6 {
		t.Fatalf("NumSubsequences(0,1) = %d, want 6 (4+2 windows of len 1)", got)
	}
}

func TestSubSeq(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{"a": {10, 20, 30, 40}})
	r := SubSeq{Series: 0, Start: 1, Length: 2}
	if err := r.Validate(d); err != nil {
		t.Fatal(err)
	}
	got := r.Values(d)
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("Values = %v", got)
	}
	if r.End() != 3 {
		t.Fatalf("End = %d", r.End())
	}
	if !strings.Contains(r.Describe(d), "a[1:3)") {
		t.Fatalf("Describe = %q", r.Describe(d))
	}
	for _, bad := range []SubSeq{
		{Series: -1, Start: 0, Length: 1},
		{Series: 1, Start: 0, Length: 1},
		{Series: 0, Start: 3, Length: 2},
		{Series: 0, Start: 0, Length: 0},
		{Series: 0, Start: -1, Length: 2},
	} {
		if err := bad.Validate(d); err == nil {
			t.Fatalf("Validate(%+v) accepted invalid ref", bad)
		}
	}
}

func TestSubSeqOverlaps(t *testing.T) {
	a := SubSeq{Series: 0, Start: 0, Length: 4}
	cases := []struct {
		b    SubSeq
		want bool
	}{
		{SubSeq{Series: 0, Start: 3, Length: 2}, true},
		{SubSeq{Series: 0, Start: 4, Length: 2}, false},
		{SubSeq{Series: 1, Start: 0, Length: 4}, false},
		{SubSeq{Series: 0, Start: 0, Length: 1}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %+v", c.b)
		}
	}
}

func TestValidateDataset(t *testing.T) {
	if err := NewDataset("empty").Validate(); err == nil {
		t.Fatal("empty dataset validated")
	}
	d := NewDataset("demo")
	d.Series = append(d.Series, &Series{Name: "", Values: []float64{1}})
	if err := d.Validate(); err == nil {
		t.Fatal("unnamed series validated")
	}
	d2 := NewDataset("demo2")
	d2.MustAdd(NewSeries("a", []float64{1, 2}))
	if err := d2.Validate(); err != nil {
		t.Fatalf("healthy dataset rejected: %v", err)
	}
	d2.Series[0].Values[1] = nan()
	if err := d2.Validate(); err == nil {
		t.Fatal("NaN value validated")
	}
}

func nan() float64 {
	var z float64
	return z / z
}
