package ts

import (
	"bytes"
	"strings"
	"testing"
)

// The loader fuzz targets assert robustness: arbitrary input must produce
// either a valid dataset or an error — never a panic, and never a dataset
// that fails Validate for structural reasons the loader should have caught.

func FuzzLoadUCR(f *testing.F) {
	f.Add("1 0.5 0.6 0.7\n2 1.5 1.6\n")
	f.Add("1,2,3\n")
	f.Add("")
	f.Add("x y z")
	f.Add("1 NaN")
	f.Add("1 1e308 1e308")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := LoadUCR(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if d.Len() == 0 {
			t.Fatal("nil-error load returned empty dataset")
		}
		// Round trip what we accepted.
		var buf bytes.Buffer
		if err := SaveUCR(&buf, d); err != nil {
			t.Fatalf("save of loaded dataset failed: %v", err)
		}
		if _, err := LoadUCR(&buf, "fuzz2"); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func FuzzLoadCSV(f *testing.F) {
	f.Add("name,t0,t1\nMA,1.0,2.0\n")
	f.Add("name\n")
	f.Add("a,b\n,1\n")
	f.Add("name,t0\nMA,nope\n")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := LoadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if d.Len() == 0 {
			t.Fatal("nil-error load returned empty dataset")
		}
		var buf bytes.Buffer
		if err := SaveCSV(&buf, d); err != nil {
			t.Fatalf("save of loaded dataset failed: %v", err)
		}
		if _, err := LoadCSV(&buf, "fuzz2"); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func FuzzLoadJSON(f *testing.F) {
	f.Add(`{"name":"x","series":[{"name":"a","values":[1,2]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Add(`{"name":"x","series":[{"name":"","values":[]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := LoadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if d.Len() == 0 {
			t.Fatal("nil-error load returned empty dataset")
		}
	})
}
