package ts

import (
	"math"
	"sort"
)

// Stats summarizes a block of observations.
type Stats struct {
	N          int
	Min, Max   float64
	Mean       float64
	Std        float64 // population standard deviation
	Sum        float64
	SumSquares float64
}

// Summarize computes summary statistics over values. For an empty slice it
// returns the zero Stats (N == 0).
func Summarize(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	st := Stats{
		N:   len(values),
		Min: values[0],
		Max: values[0],
	}
	for _, v := range values {
		st.Sum += v
		st.SumSquares += v * v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = st.Sum / float64(st.N)
	variance := st.SumSquares/float64(st.N) - st.Mean*st.Mean
	if variance < 0 {
		variance = 0 // guard the floating-point cancellation case
	}
	st.Std = math.Sqrt(variance)
	return st
}

// Range returns Max - Min, the span used by min-max normalization.
func (s Stats) Range() float64 { return s.Max - s.Min }

// DatasetStats aggregates statistics over every value in the dataset.
func DatasetStats(d *Dataset) Stats {
	agg := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, s := range d.Series {
		for _, v := range s.Values {
			agg.N++
			agg.Sum += v
			agg.SumSquares += v * v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
	}
	if agg.N == 0 {
		return Stats{}
	}
	agg.Mean = agg.Sum / float64(agg.N)
	variance := agg.SumSquares/float64(agg.N) - agg.Mean*agg.Mean
	if variance < 0 {
		variance = 0
	}
	agg.Std = math.Sqrt(variance)
	return agg
}

// Quantile returns the q-th quantile (0 <= q <= 1) of values using linear
// interpolation between closest ranks. The input is not modified.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesSorted computes several quantiles over one shared sort.
func QuantilesSorted(values []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
