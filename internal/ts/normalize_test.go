package ts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestNormalizeMinMaxBoundsAndRoundTrip(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{
		"a": {-5, 0, 5, 15},
		"b": {2, 3},
	})
	orig := d.Clone()
	if err := NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	if d.Norm.Kind != NormMinMax || d.Norm.Min != -5 || d.Norm.Max != 15 {
		t.Fatalf("norm info = %+v", d.Norm)
	}
	for _, s := range d.Series {
		for _, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("value %g outside [0,1]", v)
			}
		}
	}
	// Extremes map to 0 and 1.
	if d.Series[0].Values[0] != 0 || d.Series[0].Values[3] != 1 {
		t.Fatalf("extremes wrong: %v", d.Series[0].Values)
	}
	if err := Denormalize(d); err != nil {
		t.Fatal(err)
	}
	for si := range d.Series {
		for i := range d.Series[si].Values {
			if !almostEqual(d.Series[si].Values[i], orig.Series[si].Values[i], 1e-9) {
				t.Fatalf("round trip mismatch at %d/%d: %g vs %g",
					si, i, d.Series[si].Values[i], orig.Series[si].Values[i])
			}
		}
	}
	if d.Norm.Kind != NormNone {
		t.Fatal("Denormalize did not clear norm info")
	}
}

func TestNormalizeMinMaxConstantDataset(t *testing.T) {
	d := mustDataset(t, "const", map[string][]float64{"a": {7, 7, 7}})
	if err := NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Series[0].Values {
		if v != 0 {
			t.Fatalf("constant dataset should map to zeros, got %v", d.Series[0].Values)
		}
	}
}

func TestNormalizeRejectsDouble(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{"a": {1, 2}})
	if err := NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	if err := NormalizeMinMax(d); err != ErrAlreadyNormalized {
		t.Fatalf("double normalize: err = %v", err)
	}
	if err := NormalizeZScore(d); err != ErrAlreadyNormalized {
		t.Fatalf("mixed normalize: err = %v", err)
	}
}

func TestNormalizeZScoreAndRoundTrip(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{
		"a": {1, 2, 3, 4, 5},
		"b": {100, 100, 100},
	})
	orig := d.Clone()
	if err := NormalizeZScore(d); err != nil {
		t.Fatal(err)
	}
	sa := Summarize(d.Series[0].Values)
	if !almostEqual(sa.Mean, 0, 1e-12) || !almostEqual(sa.Std, 1, 1e-12) {
		t.Fatalf("z-norm series a: mean=%g std=%g", sa.Mean, sa.Std)
	}
	for _, v := range d.Series[1].Values {
		if v != 0 {
			t.Fatal("constant series should z-map to zeros")
		}
	}
	if err := Denormalize(d); err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Series[0].Values {
		if !almostEqual(v, orig.Series[0].Values[i], 1e-9) {
			t.Fatalf("z round trip mismatch: %g vs %g", v, orig.Series[0].Values[i])
		}
	}
}

func TestDenormalizeValues(t *testing.T) {
	d := mustDataset(t, "demo", map[string][]float64{"a": {0, 10, 20}})
	if err := NormalizeMinMax(d); err != nil {
		t.Fatal(err)
	}
	back, err := DenormalizeValues(d, 0, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 10, 20}
	for i := range want {
		if !almostEqual(back[i], want[i], 1e-9) {
			t.Fatalf("DenormalizeValues = %v, want %v", back, want)
		}
	}
}

func TestZNormalizeWindow(t *testing.T) {
	w := []float64{2, 4, 6}
	out := ZNormalizeWindow(w, nil)
	st := Summarize(out)
	if !almostEqual(st.Mean, 0, 1e-12) || !almostEqual(st.Std, 1, 1e-12) {
		t.Fatalf("ZNormalizeWindow mean=%g std=%g", st.Mean, st.Std)
	}
	// Reuses dst when capacity suffices.
	dst := make([]float64, 0, 8)
	out2 := ZNormalizeWindow(w, dst)
	if cap(out2) != 8 {
		t.Fatal("ZNormalizeWindow reallocated despite sufficient capacity")
	}
	// Constant window -> zeros, no NaN.
	for _, v := range ZNormalizeWindow([]float64{3, 3, 3}, nil) {
		if v != 0 {
			t.Fatal("constant window should z-map to zeros")
		}
	}
}

// Property: min-max normalization always lands in [0,1] and round-trips.
func TestQuickMinMaxRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp quick's wild doubles into a sane, finite range.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e6)
		}
		d := NewDataset("q")
		d.MustAdd(NewSeries("s", vals))
		if err := NormalizeMinMax(d); err != nil {
			return false
		}
		for _, v := range d.Series[0].Values {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		if err := Denormalize(d); err != nil {
			return false
		}
		span := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > span {
				span = a
			}
		}
		tol := 1e-9 * (1 + span)
		for i, v := range d.Series[0].Values {
			if !almostEqual(v, vals[i], tol) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4})
	if st.N != 4 || st.Min != 1 || st.Max != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if !almostEqual(st.Mean, 2.5, 1e-12) {
		t.Fatalf("mean = %g", st.Mean)
	}
	if !almostEqual(st.Std, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("std = %g", st.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty Summarize should be zero")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if q := Quantile(vals, 0); q != 1 {
		t.Fatalf("q0 = %g", q)
	}
	if q := Quantile(vals, 1); q != 4 {
		t.Fatalf("q1 = %g", q)
	}
	if q := Quantile(vals, 0.5); !almostEqual(q, 2.5, 1e-12) {
		t.Fatalf("median = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	qs := QuantilesSorted(vals, []float64{0, 0.5, 1})
	if qs[0] != 1 || !almostEqual(qs[1], 2.5, 1e-12) || qs[2] != 4 {
		t.Fatalf("QuantilesSorted = %v", qs)
	}
	// Input untouched.
	if vals[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Fatalf("Mean = %g", m)
	}
}

func TestMinMaxScale(t *testing.T) {
	out := MinMaxScale([]float64{10, 20, 30})
	if out[0] != 0 || out[2] != 1 || !almostEqual(out[1], 0.5, 1e-12) {
		t.Fatalf("MinMaxScale = %v", out)
	}
	for _, v := range MinMaxScale([]float64{5, 5}) {
		if v != 0 {
			t.Fatal("constant MinMaxScale should be zeros")
		}
	}
}
