package ts

// ValueSource is the backing storage of a dataset's series values when they
// are not ordinary heap slices — today, zero-copy views over a read-only
// memory-mapped snapshot (internal/mmapdata). A Dataset with a nil Source is
// fully heap-resident and needs no lifetime management; one with a Source
// must keep the source alive for as long as any value slice may be
// dereferenced.
//
// Sources are refcounted. Every walk that dereferences value slices must
// Retain the source first and Release when done, so the owner releasing its
// reference (onex.DB.Close) — or a compaction swapping in a newer snapshot
// incarnation — can never unmap storage under an in-flight scan: readers
// pin the incarnation they started on until their walk ends, and the
// storage is reclaimed only when the last reference drops.
type ValueSource interface {
	// Retain pins the storage for one walk. It fails once the owner's
	// reference has been released and the storage reclaimed; callers must
	// treat that as "the dataset is gone", not retry.
	Retain() error
	// Release undoes one successful Retain (or the owner's initial
	// reference). The last Release reclaims the storage.
	Release()
	// Kind names the backing for status endpoints: "mmap" when the values
	// are served from a page-cache-backed mapping, "mmap-fallback" when the
	// platform forced an eager in-heap copy behind the same interface.
	Kind() string
	// MappedBytes is the total size of the backing region.
	MappedBytes() int64
	// ResidentBytes is the portion of the region currently resident in
	// physical memory, or -1 when the platform cannot tell.
	ResidentBytes() int64
}

// Pin retains the dataset's value source for the duration of a walk and
// returns the matching release function (never nil — heap datasets return a
// no-op). Callers that are about to dereference series values outside the
// constructor must hold the pin until the last dereference:
//
//	release, err := d.Pin()
//	if err != nil { return err }
//	defer release()
func (d *Dataset) Pin() (release func(), err error) {
	if d.Source == nil {
		return func() {}, nil
	}
	if err := d.Source.Retain(); err != nil {
		return nil, err
	}
	return d.Source.Release, nil
}

// ShareValues returns a dataset that shares d's value slices (and value
// source) but owns its structural bookkeeping: fresh *Series headers, a
// fresh name index, and copied Meta maps. The mmap open path uses it when
// the engine view is bit-identical to the raw view (no normalization): both
// datasets then reference the same mapped values without materializing
// either, while AddSeries can still grow each side independently.
func (d *Dataset) ShareValues() *Dataset {
	c := NewDataset(d.Name)
	c.Norm = d.Norm
	c.Source = d.Source
	for _, s := range d.Series {
		ns := &Series{Name: s.Name, Values: s.Values}
		if s.Meta != nil {
			ns.Meta = make(map[string]string, len(s.Meta))
			for k, v := range s.Meta {
				ns.Meta[k] = v
			}
		}
		c.MustAdd(ns)
	}
	return c
}
