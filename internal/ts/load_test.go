package ts

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadUCRSpaceSeparated(t *testing.T) {
	in := "1 0.5 0.6 0.7\n2 1.5 1.6 1.7 1.8\n\n"
	d, err := LoadUCR(strings.NewReader(in), "toy")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Series[0].Label("class") != "1" || d.Series[1].Label("class") != "2" {
		t.Fatalf("class labels wrong: %v %v", d.Series[0].Meta, d.Series[1].Meta)
	}
	if d.Series[1].Len() != 4 {
		t.Fatalf("second series len = %d", d.Series[1].Len())
	}
}

func TestLoadUCRCommaSeparated(t *testing.T) {
	in := "1,0.5,0.6\n-1,2.5,2.6\n"
	d, err := LoadUCR(strings.NewReader(in), "toy")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Series[1].Label("class") != "-1" {
		t.Fatalf("comma UCR parse wrong: %+v", d)
	}
}

func TestLoadUCRErrors(t *testing.T) {
	if _, err := LoadUCR(strings.NewReader(""), "empty"); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := LoadUCR(strings.NewReader("1"), "short"); err == nil {
		t.Fatal("label-only line accepted")
	}
	if _, err := LoadUCR(strings.NewReader("1 abc"), "bad"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestUCRRoundTrip(t *testing.T) {
	d := NewDataset("rt")
	s := NewSeries("rt-0", []float64{1.5, 2.25, -3})
	s.SetLabel("class", "9")
	d.MustAdd(s)
	d.MustAdd(NewSeries("rt-1", []float64{0, 1}))
	var buf bytes.Buffer
	if err := SaveUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadUCR(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip Len = %d", back.Len())
	}
	if back.Series[0].Label("class") != "9" {
		t.Fatal("class label lost")
	}
	if back.Series[1].Label("class") != "0" {
		t.Fatal("default class label missing")
	}
	for i, v := range []float64{1.5, 2.25, -3} {
		if back.Series[0].Values[i] != v {
			t.Fatalf("values mismatch: %v", back.Series[0].Values)
		}
	}
}

func TestLoadCSVRagged(t *testing.T) {
	in := "name,t0,t1,t2\nMA,1.0,2.0,3.0\nRI,4.0,5.0,\n"
	d, err := LoadCSV(strings.NewReader(in), "states")
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := d.ByName("MA")
	ri, _ := d.ByName("RI")
	if ma == nil || ri == nil {
		t.Fatalf("missing series: %+v", d.Series)
	}
	if ma.Len() != 3 || ri.Len() != 2 {
		t.Fatalf("lengths = %d/%d, want 3/2", ma.Len(), ri.Len())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader("name,t0\n"), "x"); err == nil {
		t.Fatal("header-only CSV accepted")
	}
	if _, err := LoadCSV(strings.NewReader("name,t0\n,1.0\n"), "x"); err == nil {
		t.Fatal("empty series name accepted")
	}
	if _, err := LoadCSV(strings.NewReader("name,t0\nMA,\n"), "x"); err == nil {
		t.Fatal("valueless row accepted")
	}
	if _, err := LoadCSV(strings.NewReader("name,t0\nMA,xyz\n"), "x"); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset("rt")
	d.MustAdd(NewSeries("MA", []float64{1.25, 2.5, 3}))
	d.MustAdd(NewSeries("RI", []float64{-1, 0}))
	var buf bytes.Buffer
	if err := SaveCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := back.ByName("MA")
	if ma == nil || ma.Len() != 3 || ma.Values[0] != 1.25 {
		t.Fatalf("CSV round trip wrong: %+v", ma)
	}
	ri, _ := back.ByName("RI")
	if ri == nil || ri.Len() != 2 {
		t.Fatalf("ragged series damaged: %+v", ri)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := NewDataset("jj")
	s := NewSeries("a", []float64{1, 2})
	s.SetLabel("unit", "percent")
	d.MustAdd(s)
	var buf bytes.Buffer
	if err := SaveJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "jj" || back.Len() != 1 {
		t.Fatalf("JSON round trip: %+v", back)
	}
	if back.Series[0].Label("unit") != "percent" {
		t.Fatal("meta lost in JSON round trip")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := LoadJSON(strings.NewReader(`{"name":"x","series":[]}`)); err == nil {
		t.Fatal("empty series list accepted")
	}
}

func TestLoadSaveFileDispatch(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset("disk")
	d.MustAdd(NewSeries("a", []float64{3, 1, 4}))

	for _, ext := range []string{".csv", ".json", ".txt"} {
		path := filepath.Join(dir, "data"+ext)
		if err := SaveFile(path, d); err != nil {
			t.Fatalf("SaveFile(%s): %v", ext, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", ext, err)
		}
		if back.Len() != 1 || back.Series[0].Len() != 3 {
			t.Fatalf("LoadFile(%s) shape wrong", ext)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Name derivation drops directory and extension.
	path := filepath.Join(dir, "growth.csv")
	if err := SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "growth" {
		t.Fatalf("dataset name = %q, want growth", back.Name)
	}
	_ = os.Remove(path)
}
