package ts

import (
	"errors"
	"fmt"
	"math"
)

// NormKind identifies a normalization scheme applied to a dataset.
type NormKind int

// Supported normalization schemes.
const (
	// NormNone marks raw, untouched values.
	NormNone NormKind = iota
	// NormMinMax rescales the whole dataset linearly so that the global
	// minimum maps to 0 and the global maximum to 1. This is the scheme the
	// ONEX papers use before grouping: similarity thresholds ST are then
	// expressed in dataset-independent [0,1] units.
	NormMinMax
	// NormZScore centers each series on its own mean and divides by its own
	// standard deviation. This is the per-window convention of the UCR Suite
	// baseline; at the dataset level it is applied per series.
	NormZScore
)

// String implements fmt.Stringer.
func (k NormKind) String() string {
	switch k {
	case NormNone:
		return "none"
	case NormMinMax:
		return "minmax"
	case NormZScore:
		return "zscore"
	default:
		return fmt.Sprintf("NormKind(%d)", int(k))
	}
}

// NormInfo records how a dataset's values were normalized so the
// transformation can be inverted for display.
type NormInfo struct {
	Kind NormKind
	// Min and Max hold the pre-normalization global extrema for NormMinMax.
	Min, Max float64
	// PerSeries holds per-series (mean, std) pairs for NormZScore, indexed
	// like Dataset.Series.
	PerSeries []MeanStd
}

// MeanStd is a (mean, standard deviation) pair for one series.
type MeanStd struct{ Mean, Std float64 }

// ErrAlreadyNormalized is returned when a normalization is requested on a
// dataset that has already been normalized.
var ErrAlreadyNormalized = errors.New("ts: dataset already normalized")

// NormalizeMinMax rescales every value of d into [0,1] using the global
// dataset extrema, recording the inverse transform in d.Norm. A dataset
// whose values are all identical maps to all zeros (range collapses).
func NormalizeMinMax(d *Dataset) error {
	if d.Norm.Kind != NormNone {
		return ErrAlreadyNormalized
	}
	st := DatasetStats(d)
	if st.N == 0 {
		return fmt.Errorf("ts: NormalizeMinMax: dataset %q is empty", d.Name)
	}
	span := st.Range()
	for _, s := range d.Series {
		for i, v := range s.Values {
			if span == 0 {
				s.Values[i] = 0
			} else {
				s.Values[i] = (v - st.Min) / span
			}
		}
	}
	d.Norm = NormInfo{Kind: NormMinMax, Min: st.Min, Max: st.Max}
	return nil
}

// NormalizeZScore z-normalizes each series independently (x-mean)/std and
// records the inverse transform. A constant series maps to all zeros.
func NormalizeZScore(d *Dataset) error {
	if d.Norm.Kind != NormNone {
		return ErrAlreadyNormalized
	}
	if d.Len() == 0 {
		return fmt.Errorf("ts: NormalizeZScore: dataset %q is empty", d.Name)
	}
	per := make([]MeanStd, d.Len())
	for si, s := range d.Series {
		st := Summarize(s.Values)
		per[si] = MeanStd{Mean: st.Mean, Std: st.Std}
		for i, v := range s.Values {
			if st.Std == 0 {
				s.Values[i] = 0
			} else {
				s.Values[i] = (v - st.Mean) / st.Std
			}
		}
	}
	d.Norm = NormInfo{Kind: NormZScore, PerSeries: per}
	return nil
}

// Denormalize inverts the recorded normalization in place, restoring the
// original units (up to floating-point rounding).
func Denormalize(d *Dataset) error {
	switch d.Norm.Kind {
	case NormNone:
		return nil
	case NormMinMax:
		span := d.Norm.Max - d.Norm.Min
		for _, s := range d.Series {
			for i, v := range s.Values {
				s.Values[i] = d.Norm.Min + v*span
			}
		}
	case NormZScore:
		if len(d.Norm.PerSeries) != d.Len() {
			return fmt.Errorf("ts: Denormalize: norm info for %d series, dataset has %d",
				len(d.Norm.PerSeries), d.Len())
		}
		for si, s := range d.Series {
			ms := d.Norm.PerSeries[si]
			for i, v := range s.Values {
				s.Values[i] = ms.Mean + v*ms.Std
			}
		}
	default:
		return fmt.Errorf("ts: Denormalize: unknown normalization %v", d.Norm.Kind)
	}
	d.Norm = NormInfo{}
	return nil
}

// DenormalizeValues maps a slice of normalized values (e.g. a query result
// in a min-max normalized dataset) back to original units without touching
// the dataset. The seriesIdx is only consulted for per-series schemes.
func DenormalizeValues(d *Dataset, seriesIdx int, values []float64) ([]float64, error) {
	out := make([]float64, len(values))
	switch d.Norm.Kind {
	case NormNone:
		copy(out, values)
	case NormMinMax:
		span := d.Norm.Max - d.Norm.Min
		for i, v := range values {
			out[i] = d.Norm.Min + v*span
		}
	case NormZScore:
		if seriesIdx < 0 || seriesIdx >= len(d.Norm.PerSeries) {
			return nil, fmt.Errorf("ts: DenormalizeValues: series %d has no norm info", seriesIdx)
		}
		ms := d.Norm.PerSeries[seriesIdx]
		for i, v := range values {
			out[i] = ms.Mean + v*ms.Std
		}
	default:
		return nil, fmt.Errorf("ts: DenormalizeValues: unknown normalization %v", d.Norm.Kind)
	}
	return out, nil
}

// ZNormalizeWindow z-normalizes a window into dst (allocating when dst is
// short) and returns it. It is the per-candidate transform used by the UCR
// Suite baseline; a constant window yields zeros.
func ZNormalizeWindow(window []float64, dst []float64) []float64 {
	if cap(dst) < len(window) {
		dst = make([]float64, len(window))
	}
	dst = dst[:len(window)]
	st := Summarize(window)
	if st.Std == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, v := range window {
		dst[i] = (v - st.Mean) / st.Std
	}
	return dst
}

// MinMaxScale linearly rescales values so min->0 and max->1 using the
// slice's own extrema; used for presentation-layer scaling. A constant
// slice maps to zeros.
func MinMaxScale(values []float64) []float64 {
	out := make([]float64, len(values))
	st := Summarize(values)
	span := st.Range()
	if span == 0 || math.IsNaN(span) {
		return out
	}
	for i, v := range values {
		out[i] = (v - st.Min) / span
	}
	return out
}
