package ts

import "testing"

// Remove must keep the name index coherent: the rollback path in
// onex.AddSeries depends on a removed name being re-addable and on the
// remaining series still resolving to the right positions.
func TestDatasetRemove(t *testing.T) {
	d := NewDataset("rm")
	d.MustAdd(NewSeries("a", []float64{1, 2, 3}))
	d.MustAdd(NewSeries("b", []float64{4, 5, 6}))
	d.MustAdd(NewSeries("c", []float64{7, 8, 9}))

	if d.Remove("nope") {
		t.Fatal("removed a series that does not exist")
	}
	if !d.Remove("b") {
		t.Fatal("failed to remove existing series")
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d after remove", d.Len())
	}
	// Index rebuilt: b gone, c shifted down.
	if _, ok := d.ByName("b"); ok {
		t.Fatal("removed series still resolvable")
	}
	if i := d.IndexOf("c"); i != 1 {
		t.Fatalf("IndexOf(c) = %d after shift, want 1", i)
	}
	if s, ok := d.ByName("c"); !ok || s.Values[0] != 7 {
		t.Fatal("shifted series resolves to wrong values")
	}
	// The removed name is immediately reusable (the rollback scenario).
	if err := d.Add(NewSeries("b", []float64{10, 11})); err != nil {
		t.Fatalf("re-adding removed name: %v", err)
	}
	if i := d.IndexOf("b"); i != 2 {
		t.Fatalf("re-added series at %d, want 2", i)
	}
	// Removing the last series leaves a clean tail.
	if !d.Remove("b") {
		t.Fatal("failed to remove tail series")
	}
	if d.Len() != 2 || d.Series[d.Len()-1].Name != "c" {
		t.Fatal("tail removal corrupted ordering")
	}
}
