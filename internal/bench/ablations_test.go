package bench

import (
	"strings"
	"testing"
)

func TestRunA1RepairAblation(t *testing.T) {
	rows, err := RunA1(71)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var on, off A1Row
	for _, r := range rows {
		switch r.Config {
		case "repair=on":
			on = r
		case "repair=off":
			off = r
		}
	}
	if on.Violations != 0 {
		t.Fatalf("repaired base has %d violations", on.Violations)
	}
	if off.Violations == 0 {
		t.Log("note: raw clustering happened to satisfy the invariant on this seed")
	}
	if on.Groups < off.Groups {
		t.Fatalf("repair should not reduce group count: %d < %d", on.Groups, off.Groups)
	}
	if !strings.Contains(TableA1(rows), "violations") {
		t.Fatal("table missing header")
	}
}

func TestRunA2BandSweep(t *testing.T) {
	rows, err := RunA2(73)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.QueryUs <= 0 {
			t.Fatalf("missing timing: %+v", r)
		}
		if r.DistRatio < 1-1e-9 {
			t.Fatalf("approximate beat exact at band %d: %g", r.Band, r.DistRatio)
		}
		if r.Top1 < 0 || r.Top1 > 1 {
			t.Fatalf("bad top1: %+v", r)
		}
	}
	// The last row is the unconstrained band.
	if rows[len(rows)-1].Band != -1 {
		t.Fatal("unconstrained band missing")
	}
	if !strings.Contains(TableA2(rows), "inf") {
		t.Fatal("unconstrained band not rendered")
	}
}

func TestRunA3CascadeStats(t *testing.T) {
	rows, err := RunA3(79)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		total := r.PrunedKim + r.PrunedKeoghQ + r.PrunedKeoghC + r.DTWComputed
		if total < 0.999 || total > 1.001 {
			t.Fatalf("cascade fractions do not partition the windows: %+v (sum %g)", r, total)
		}
		if r.DTWComputed > 0.9 {
			t.Fatalf("cascade pruned almost nothing: %+v", r)
		}
		if r.DTWAbandoned > r.DTWComputed {
			t.Fatalf("more abandoned than computed: %+v", r)
		}
	}
	if !strings.Contains(TableA3(rows), "keoghQ_pruned") {
		t.Fatal("table missing header")
	}
}
