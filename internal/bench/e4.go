package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ts"
)

// E4Row is one threshold recommendation for one indicator (paper §3.3:
// "the similarity in growth rate percentages may require very small
// thresholds, whereas similarity between unemployment figures ... uses
// higher thresholds").
type E4Row struct {
	Indicator  string
	Unit       string
	Label      string
	ST         float64
	Percentile float64
	EstGroups  int
	Compaction float64
}

// RunE4 produces data-driven threshold recommendations for two MATTERS
// indicators with deliberately different unit scales, demonstrating that
// the recommended ST tracks the data rather than a fixed constant.
func RunE4(seed int64) ([]E4Row, error) {
	if seed == 0 {
		seed = 4
	}
	indicators := []gen.Indicator{gen.GrowthRate, gen.TechEmployment, gen.MedianIncome}
	var rows []E4Row
	for _, ind := range indicators {
		d := gen.Matters(gen.MattersOptions{Indicator: ind, Seed: seed})
		unit := d.Series[0].Label("unit")
		recs, err := core.RecommendThresholds(d, core.ThresholdOptions{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("bench: E4 %v: %w", ind, err)
		}
		for _, r := range recs {
			rows = append(rows, E4Row{
				Indicator:  ind.String(),
				Unit:       unit,
				Label:      r.Label,
				ST:         r.ST,
				Percentile: r.Percentile,
				EstGroups:  r.EstGroups,
				Compaction: r.EstCompaction,
			})
		}
	}
	return rows, nil
}

// RunE4Normalized repeats the recommendation on min-max normalized copies,
// the configuration the engine actually queries in; thresholds then live
// in comparable [0,1]-range units across indicators.
func RunE4Normalized(seed int64) ([]E4Row, error) {
	if seed == 0 {
		seed = 4
	}
	indicators := []gen.Indicator{gen.GrowthRate, gen.TechEmployment, gen.MedianIncome}
	var rows []E4Row
	for _, ind := range indicators {
		d := gen.Matters(gen.MattersOptions{Indicator: ind, Seed: seed})
		if err := ts.NormalizeMinMax(d); err != nil {
			return nil, err
		}
		recs, err := core.RecommendThresholds(d, core.ThresholdOptions{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("bench: E4 %v: %w", ind, err)
		}
		for _, r := range recs {
			rows = append(rows, E4Row{
				Indicator:  ind.String(),
				Unit:       "normalized",
				Label:      r.Label,
				ST:         r.ST,
				Percentile: r.Percentile,
				EstGroups:  r.EstGroups,
				Compaction: r.EstCompaction,
			})
		}
	}
	return rows, nil
}

// TableE4 renders E4 rows.
func TableE4(rows []E4Row) string {
	tb := NewTable("indicator", "unit", "label", "ST", "percentile", "est_groups", "compaction")
	for _, r := range rows {
		tb.AddRow(r.Indicator, r.Unit, r.Label, r.ST, r.Percentile, r.EstGroups, r.Compaction)
	}
	return tb.String()
}
