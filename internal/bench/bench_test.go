package bench

import (
	"strings"
	"testing"
)

// Small configurations keep the harness tests fast while exercising every
// code path; the real experiment sizes live in cmd/onexbench and
// EXPERIMENTS.md.

func TestRunE1SmallShape(t *testing.T) {
	rows, err := RunE1(E1Config{
		SeriesCounts: []int{5, 10},
		SeriesLen:    48,
		QueryLen:     12,
		Queries:      3,
		Band:         3,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Windows == 0 || r.Groups == 0 {
			t.Fatalf("empty row %+v", r)
		}
		if r.ONEXQueryUs <= 0 || r.UCRQueryUs <= 0 || r.BruteQueryUs <= 0 {
			t.Fatalf("missing timings %+v", r)
		}
		if r.Top1Agree < 0 || r.Top1Agree > 1 {
			t.Fatalf("bad agreement %+v", r)
		}
		if r.DistRatio < 1-1e-9 {
			t.Fatalf("approximate beat exact: ratio %g", r.DistRatio)
		}
	}
	// Bigger collections -> more candidate windows.
	if rows[1].Windows <= rows[0].Windows {
		t.Fatal("window count did not grow with N")
	}
	out := TableE1(rows)
	if !strings.Contains(out, "speedup_ucr") {
		t.Fatal("table missing header")
	}
}

// TestRunE1Modes exercises the exact and stream query paths: both drive
// the certified search, so their answers must equal the brute-force
// baseline, and stream mode must report a first-update latency.
func TestRunE1Modes(t *testing.T) {
	base := E1Config{
		SeriesCounts: []int{5},
		SeriesLen:    48,
		QueryLen:     12,
		Queries:      3,
		Band:         3,
		Seed:         1,
		Workers:      2,
	}
	for _, mode := range []string{"exact", "stream"} {
		cfg := base
		cfg.Mode = mode
		rows, err := RunE1(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		r := rows[0]
		if r.DistRatio < 1-1e-9 || r.DistRatio > 1+1e-9 {
			t.Fatalf("%s mode is not exact: dist ratio %g", mode, r.DistRatio)
		}
		if mode == "stream" && r.FirstUs <= 0 {
			t.Fatalf("stream mode reported no first-update latency: %+v", r)
		}
		if mode == "exact" && r.FirstUs != 0 {
			t.Fatalf("one-shot mode reported a first-update latency: %+v", r)
		}
	}
	bogus := base
	bogus.Mode = "bogus"
	if _, err := RunE1(bogus); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestRunE1Defaults(t *testing.T) {
	cfg := DefaultE1()
	if len(cfg.SeriesCounts) == 0 || cfg.QueryLen == 0 {
		t.Fatal("default E1 config empty")
	}
}

func TestRunE2SmallShape(t *testing.T) {
	rows, err := RunE2(E2Config{QueryLen: 16, Queries: 4, Band: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Dataset == "" || r.Windows == 0 || r.RefineBudget == 0 {
			t.Fatalf("empty row %+v", r)
		}
		if r.ONEXTop1 < 0 || r.ONEXTop1 > 1 || r.EmbedTop1 < 0 || r.EmbedTop1 > 1 {
			t.Fatalf("bad accuracy %+v", r)
		}
		if r.ONEXRatio < 1-1e-9 || r.EmbedRatio < 1-1e-9 {
			t.Fatalf("impossible ratios %+v", r)
		}
	}
	if !strings.Contains(TableE2(rows), "accuracy_gain_%") {
		t.Fatal("table missing header")
	}
}

func TestRunE3Shapes(t *testing.T) {
	cfg := E3Config{
		SeriesCounts: []int{5, 10},
		STFactors:    []float64{0.5, 2},
		SeriesLen:    32,
		MinLen:       6,
		MaxLen:       10,
		Seed:         3,
	}
	sizes, err := RunE3Sizes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[1].Windows <= sizes[0].Windows {
		t.Fatalf("size sweep wrong: %+v", sizes)
	}
	ths, err := RunE3Thresholds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ths) != 2 {
		t.Fatalf("threshold sweep wrong: %+v", ths)
	}
	// Looser threshold -> fewer or equal groups.
	if ths[1].Groups > ths[0].Groups {
		t.Fatalf("looser ST grew groups: %+v", ths)
	}
	if !strings.Contains(TableE3(sizes), "compaction") {
		t.Fatal("table missing header")
	}
}

func TestRunE4(t *testing.T) {
	rows, err := RunE4(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 indicators x 3 labels
		t.Fatalf("rows = %d", len(rows))
	}
	// Raw-unit recommendations must track indicator scale: MedianIncome
	// thresholds dwarf GrowthRate thresholds.
	var growthBalanced, incomeBalanced float64
	for _, r := range rows {
		if r.Label == "balanced" {
			switch r.Indicator {
			case "GrowthRate":
				growthBalanced = r.ST
			case "MedianIncome":
				incomeBalanced = r.ST
			}
		}
	}
	if incomeBalanced < growthBalanced*100 {
		t.Fatalf("scale tracking broken: income %g vs growth %g", incomeBalanced, growthBalanced)
	}
	norm, err := RunE4Normalized(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range norm {
		if r.ST <= 0 || r.ST > 1.5 {
			t.Fatalf("normalized ST out of range: %+v", r)
		}
	}
	if !strings.Contains(TableE4(rows), "indicator") {
		t.Fatal("table missing header")
	}
}

func TestRunE5Small(t *testing.T) {
	rows, err := RunE5(E5Config{DaysSweep: []int{10, 20}, SamplesPerDay: 12, ST: 0.15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Patterns == 0 {
			t.Fatalf("no patterns found: %+v", r)
		}
		if !r.PeriodHit {
			t.Fatalf("planted daily period not recovered: %+v", r)
		}
		if r.Recall < 0.5 {
			t.Fatalf("recall %g too low: %+v", r.Recall, r)
		}
	}
	if !strings.Contains(TableE5(rows), "period_hit") {
		t.Fatal("table missing header")
	}
}

func TestRunE6BoundHolds(t *testing.T) {
	row, err := RunE6(E6Config{Queries: 6, GroupsPerQuery: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if row.Violations != 0 {
		t.Fatalf("certified bound violated %d times", row.Violations)
	}
	if row.Pairs == 0 {
		t.Fatal("no pairs checked")
	}
	if row.MeanSlackRatio < 0 || row.MeanSlackRatio > 1 {
		t.Fatalf("slack ratio out of range: %+v", row)
	}
	if !strings.Contains(TableE6(row), "violations") {
		t.Fatal("table missing header")
	}
}

func TestPerturbedQueries(t *testing.T) {
	rows, err := RunE1(E1Config{SeriesCounts: []int{3}, SeriesLen: 32, QueryLen: 8, Queries: 2, Band: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("a", "longheader")
	tb.AddRow(1, 2.5)
	tb.AddRow("xx", 0.00001)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatal("separator missing")
	}
	if !strings.Contains(out, "0.00001") {
		t.Fatal("small float formatting wrong")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow(1, 2.5)
	tb.AddRow("a,b", 3) // comma must be quoted
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Fatal("comma cell not quoted")
	}
}

func TestTimer(t *testing.T) {
	tm := &Timer{}
	tm.Time(func() {})
	tm.Time(func() {})
	if tm.N() != 2 {
		t.Fatalf("N = %d", tm.N())
	}
	if tm.MeanMicros() < 0 {
		t.Fatal("negative mean")
	}
	empty := &Timer{}
	if empty.MeanMicros() != 0 {
		t.Fatal("empty timer mean should be 0")
	}
}
