// Package bench is the experiment harness of the reproduction: it
// regenerates, as printable tables, every quantitative claim and behaviour
// the demo paper reports (see DESIGN.md §4 for the experiment index).
//
//	E1  query latency: ONEX vs UCR-Suite-style exact vs naive DTW scan
//	E2  match accuracy: ONEX vs embedding filter-and-refine
//	E3  base construction cost and compaction
//	E4  data-driven threshold recommendation
//	E5  seasonal-query recall on planted periodic data
//	E6  certified transfer bound: empirical soundness and tightness
//
// Each experiment returns typed rows and can render itself as an aligned
// text table; cmd/onexbench wires them to the command line, and the
// repository-root bench_test.go exposes the same workloads as testing.B
// benchmarks.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/ts"
)

// Timer measures wall-clock durations of repeated operations, retaining
// per-operation samples so tail latency is reportable (interactivity is a
// tail property, not a mean property).
type Timer struct {
	total   time.Duration
	samples []time.Duration
}

// Time runs f once and records its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	d := time.Since(start)
	t.total += d
	t.samples = append(t.samples, d)
}

// MeanMicros returns the mean duration per operation in microseconds.
func (t *Timer) MeanMicros() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return float64(t.total.Microseconds()) / float64(len(t.samples))
}

// PercentileMicros returns the p-th percentile (0..1) latency in
// microseconds (nearest-rank).
func (t *Timer) PercentileMicros(p float64) float64 {
	if len(t.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(t.samples))
	copy(sorted, t.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds())
}

// TotalMillis returns the accumulated duration in milliseconds.
func (t *Timer) TotalMillis() float64 { return float64(t.total.Microseconds()) / 1000 }

// N returns the number of timed operations.
func (t *Timer) N() int { return len(t.samples) }

// NormalizeInto maps raw values into d's normalized value space (d must be
// min-max normalized); used to bring held-out queries into engine units.
func NormalizeInto(d *ts.Dataset, vals []float64) []float64 {
	out := make([]float64, len(vals))
	span := d.Norm.Max - d.Norm.Min
	for i, v := range vals {
		if span == 0 {
			out[i] = 0
		} else {
			out[i] = (v - d.Norm.Min) / span
		}
	}
	return out
}

// HeldOutQueries slices numQ random windows of length qlen out of a
// held-out dataset (fresh draws from the same generator family, unseen by
// the index) and maps them into the indexed dataset's normalized space.
// This is the UCR-style evaluation protocol: the query is a new instance
// whose nearest indexed neighbor is a class-mate, not a near-duplicate.
func HeldOutQueries(indexed, heldOut *ts.Dataset, numQ, qlen int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, 0, numQ)
	for len(out) < numQ {
		s := heldOut.Series[rng.Intn(heldOut.Len())]
		if s.Len() < qlen {
			continue
		}
		st := rng.Intn(s.Len() - qlen + 1)
		out = append(out, NormalizeInto(indexed, s.Values[st:st+qlen]))
	}
	return out
}

// PerturbedQueries draws numQ windows of length qlen from the dataset and
// perturbs them with Gaussian noise of the given magnitude (relative to the
// dataset's value range), yielding realistic queries that have meaningful
// near-neighbors without being exact copies.
func PerturbedQueries(d *ts.Dataset, numQ, qlen int, noiseFrac float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	span := ts.DatasetStats(d).Range()
	if span == 0 {
		span = 1
	}
	sigma := span * noiseFrac
	out := make([][]float64, 0, numQ)
	for len(out) < numQ {
		s := d.Series[rng.Intn(d.Len())]
		if s.Len() < qlen {
			continue
		}
		st := rng.Intn(s.Len() - qlen + 1)
		q := make([]float64, qlen)
		for i, v := range s.Values[st : st+qlen] {
			q[i] = v + rng.NormFloat64()*sigma
		}
		out = append(out, q)
	}
	return out
}

// Table is an aligned text table builder for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are Sprint-formatted.
func (tb *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	tb.rows = append(tb.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// WriteCSV writes the table as CSV, for external plotting of the
// experiment curves.
func (tb *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.header); err != nil {
		return fmt.Errorf("bench: WriteCSV: %w", err)
	}
	for _, row := range tb.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: WriteCSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table with aligned columns.
func (tb *Table) String() string {
	widths := make([]int, len(tb.header))
	for i, h := range tb.header {
		widths[i] = len(h)
	}
	for _, row := range tb.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(tb.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range tb.rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
