package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grouping"
)

// E5Config parameterizes the seasonal-query evaluation (paper §3.3 and
// Fig 4: repeated patterns in household electricity usage).
type E5Config struct {
	// DaysSweep sweeps the series length in days.
	DaysSweep []int
	// SamplesPerDay fixes the sampling rate; the planted period is one
	// day = SamplesPerDay samples.
	SamplesPerDay int
	// ST for the base build.
	ST float64
	// Seed fixes generation.
	Seed int64
}

// DefaultE5 is the configuration the EXPERIMENTS.md table uses. ST is per
// point in raw kW units: daily windows repeat to within a few hundredths
// of a kW per sample plus seasonal drift.
func DefaultE5() E5Config {
	return E5Config{DaysSweep: []int{14, 28, 56}, SamplesPerDay: 12, ST: 0.15, Seed: 5}
}

// E5Row is one seasonal measurement.
type E5Row struct {
	Days      int
	SeriesLen int
	BuildMs   float64
	QueryUs   float64
	Patterns  int     // patterns reported
	BestCount int     // occurrences of the top pattern
	BestGap   float64 // mean gap of the top pattern (samples)
	// PeriodHit reports whether some pattern recovers the planted daily
	// cycle: occurrences cover at least half the days at a mean spacing
	// below two days (groups legitimately hold phase-shifted copies of
	// the daily shape, so gaps land in [1, 2) days rather than exactly 1).
	PeriodHit bool
	// Recall is the best qualifying pattern's occurrence count over the
	// number of planted days (capped at 1).
	Recall float64
}

// RunE5 builds a base over one household's consumption at the daily window
// length and checks that seasonal queries recover the planted daily cycle:
// the top pattern's mean gap should equal the day length and its
// occurrence count should approach the number of days.
func RunE5(cfg E5Config) ([]E5Row, error) {
	if len(cfg.DaysSweep) == 0 {
		cfg = DefaultE5()
	}
	rows := make([]E5Row, 0, len(cfg.DaysSweep))
	for _, days := range cfg.DaysSweep {
		row, err := runE5One(cfg, days)
		if err != nil {
			return nil, fmt.Errorf("bench: E5 days=%d: %w", days, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE5One(cfg E5Config, days int) (E5Row, error) {
	d := gen.ElectricityLoad(gen.ElectricityOptions{
		Households: 1, Days: days, SamplesPerDay: cfg.SamplesPerDay, Seed: cfg.Seed,
	})
	period := cfg.SamplesPerDay
	var base *grouping.Base
	var err error
	bt := &Timer{}
	bt.Time(func() {
		base, err = grouping.Build(d, grouping.Options{
			ST: cfg.ST, MinLength: period, MaxLength: period,
		})
	})
	if err != nil {
		return E5Row{}, err
	}
	engine, err := core.NewEngine(d, base, core.Options{Band: 2, Mode: core.ModeApprox})
	if err != nil {
		return E5Row{}, err
	}
	var pats []core.Pattern
	qt := &Timer{}
	qt.Time(func() {
		pats, err = engine.SeasonalByIndex(0, core.SeasonalOptions{
			MinLength: period, MaxLength: period, MinOccurrences: 3, MaxPatterns: 8,
		})
	})
	if err != nil {
		return E5Row{}, err
	}
	row := E5Row{
		Days:      days,
		SeriesLen: days * cfg.SamplesPerDay,
		BuildMs:   bt.TotalMillis(),
		QueryUs:   qt.MeanMicros(),
		Patterns:  len(pats),
	}
	if len(pats) > 0 {
		best := pats[0]
		row.BestCount = best.Count()
		row.BestGap = best.MeanGap
	}
	// A pattern recovers the daily cycle when its occurrences cover at
	// least half the days at a mean spacing under two days.
	minCount := days / 2
	if minCount < 3 {
		minCount = 3
	}
	for _, p := range pats {
		if p.Count() >= minCount && p.MeanGap <= 2*float64(period) {
			row.PeriodHit = true
			recall := math.Min(1, float64(p.Count())/float64(days))
			if recall > row.Recall {
				row.Recall = recall
			}
		}
	}
	return row, nil
}

// TableE5 renders E5 rows.
func TableE5(rows []E5Row) string {
	tb := NewTable("days", "len", "build_ms", "query_us", "patterns", "best_count", "best_gap", "period_hit", "recall")
	for _, r := range rows {
		tb.AddRow(r.Days, r.SeriesLen, r.BuildMs, r.QueryUs, r.Patterns, r.BestCount, r.BestGap, r.PeriodHit, r.Recall)
	}
	return tb.String()
}
