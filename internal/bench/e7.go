package bench

import (
	"fmt"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// E7Config parameterizes the 1-NN classification experiment: the standard
// UCR-archive protocol for judging whether a similarity search returns
// *useful* neighbors, extending the demo's accuracy story (the analyst
// trusts ONEX matches to behave like exact DTW matches).
type E7Config struct {
	// TrainPerClass / TestPerClass size the labelled splits.
	TrainPerClass, TestPerClass int
	// Length is the series length (queries use full series).
	Length int
	// Band shared by all systems.
	Band int
	// ST for the ONEX base.
	ST float64
	// Seed fixes generation.
	Seed int64
}

// DefaultE7 is the configuration the EXPERIMENTS.md table uses. The train
// split must be large enough for grouping to matter: below ~100 candidates
// the exact scan is already trivially fast and the base only adds
// indirection.
func DefaultE7() E7Config {
	return E7Config{TrainPerClass: 80, TestPerClass: 8, Length: 64, Band: 4, ST: 0.16, Seed: 7}
}

// E7Row is one dataset's classification outcome.
type E7Row struct {
	Dataset  string
	Train    int
	Test     int
	ONEXAcc  float64 // 1-NN accuracy using ONEX approximate retrieval
	ExactAcc float64 // 1-NN accuracy using exact DTW retrieval
	ONEXUs   float64 // mean per-query retrieval latency
	ExactUs  float64
	Speedup  float64
}

// RunE7 runs 1-NN classification on CBF and warped sines: each test series
// is classified by the label of its nearest *whole-series* neighbor in the
// train split, once with ONEX (approximate) retrieval and once with an
// exact scan. The claim shape: ONEX's classification accuracy matches the
// exact classifier's while answering much faster.
func RunE7(cfg E7Config) ([]E7Row, error) {
	if cfg.TrainPerClass == 0 {
		cfg = DefaultE7()
	}
	type split struct {
		name        string
		train, test *ts.Dataset
	}
	splits := []split{
		{
			name:  "cbf",
			train: gen.CBF(gen.CBFOptions{PerClass: cfg.TrainPerClass, Length: cfg.Length, Seed: cfg.Seed}),
			test:  gen.CBF(gen.CBFOptions{PerClass: cfg.TestPerClass, Length: cfg.Length, Seed: cfg.Seed + 500}),
		},
		{
			name:  "warpedsines",
			train: gen.WarpedSines(gen.SineOptions{PerClass: cfg.TrainPerClass, Length: cfg.Length, Classes: 3, Seed: cfg.Seed + 1}),
			test:  gen.WarpedSines(gen.SineOptions{PerClass: cfg.TestPerClass, Length: cfg.Length, Classes: 3, Seed: cfg.Seed + 501}),
		},
	}
	rows := make([]E7Row, 0, len(splits))
	for _, sp := range splits {
		row, err := runE7One(cfg, sp.name, sp.train, sp.test)
		if err != nil {
			return nil, fmt.Errorf("bench: E7 %s: %w", sp.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE7One(cfg E7Config, name string, train, test *ts.Dataset) (E7Row, error) {
	if err := ts.NormalizeMinMax(train); err != nil {
		return E7Row{}, err
	}
	// Whole-series 1-NN: index only full-length windows.
	base, err := grouping.Build(train, grouping.Options{
		ST: cfg.ST, MinLength: cfg.Length, MaxLength: cfg.Length,
	})
	if err != nil {
		return E7Row{}, err
	}
	engine, err := core.NewEngine(train, base, core.Options{Band: cfg.Band, Mode: core.ModeApprox})
	if err != nil {
		return E7Row{}, err
	}
	row := E7Row{Dataset: name, Train: train.Len(), Test: test.Len()}
	var onexT, exactT Timer
	onexHits, exactHits := 0, 0
	for _, s := range test.Series {
		q := NormalizeInto(train, s.Values)
		want := s.Label("class")

		var om core.Match
		onexT.Time(func() {
			om, err = engine.BestMatch(q)
		})
		if err != nil {
			return E7Row{}, err
		}
		if train.Series[om.Ref.Series].Label("class") == want {
			onexHits++
		}
		var br bruteforce.Result
		exactT.Time(func() {
			br, err = bruteforce.BestMatch(train, q, bruteforce.Options{
				Band: cfg.Band, EarlyAbandon: true,
			})
		})
		if err != nil {
			return E7Row{}, err
		}
		if train.Series[br.Ref.Series].Label("class") == want {
			exactHits++
		}
	}
	n := float64(test.Len())
	row.ONEXAcc = float64(onexHits) / n
	row.ExactAcc = float64(exactHits) / n
	row.ONEXUs = onexT.MeanMicros()
	row.ExactUs = exactT.MeanMicros()
	if row.ONEXUs > 0 {
		row.Speedup = row.ExactUs / row.ONEXUs
	}
	return row, nil
}

// TableE7 renders E7 rows.
func TableE7(rows []E7Row) string {
	tb := NewTable("dataset", "train", "test", "onex_acc", "exact_acc", "onex_us", "exact_us", "speedup")
	for _, r := range rows {
		tb.AddRow(r.Dataset, r.Train, r.Test, r.ONEXAcc, r.ExactAcc, r.ONEXUs, r.ExactUs, r.Speedup)
	}
	return tb.String()
}
