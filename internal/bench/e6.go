package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// E6Config parameterizes the empirical check of the certified transfer
// bound (paper §3.2: "the proven insight of a triangle inequality between
// ED and DTW").
type E6Config struct {
	// Queries is the number of random queries tested.
	Queries int
	// GroupsPerQuery bounds how many groups each query is checked against.
	GroupsPerQuery int
	// Seed fixes generation.
	Seed int64
}

// DefaultE6 is the configuration the EXPERIMENTS.md table uses.
func DefaultE6() E6Config { return E6Config{Queries: 20, GroupsPerQuery: 10, Seed: 6} }

// E6Row summarizes the bound check.
type E6Row struct {
	Pairs          int     // (query, member) pairs checked
	Violations     int     // upper-bound violations (must be 0)
	MeanSlackRatio float64 // mean (bound - actual) / bound; smaller = tighter
	MaxMu          int     // largest path multiplicity observed
}

// RunE6 verifies, over random queries and base groups, that the certified
// upper bound DTW(q,s) <= DTW(q,rep) + mu*ST/2 holds for every group
// member s, and reports how tight the bound is in practice.
func RunE6(cfg E6Config) (E6Row, error) {
	if cfg.Queries == 0 {
		cfg = DefaultE6()
	}
	d := gen.RandomWalks(gen.WalkOptions{Num: 20, Length: 64, Seed: cfg.Seed})
	if err := ts.NormalizeMinMax(d); err != nil {
		return E6Row{}, err
	}
	const minL, maxL = 8, 16
	const st = 0.05 // per-point threshold
	base, err := grouping.Build(d, grouping.Options{ST: st, MinLength: minL, MaxLength: maxL})
	if err != nil {
		return E6Row{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))

	var row E6Row
	var slackSum float64
	lengths := base.Lengths()
	for qi := 0; qi < cfg.Queries; qi++ {
		qlen := minL + rng.Intn(maxL-minL+1)
		q := make([]float64, qlen)
		v := rng.Float64()
		for i := range q {
			v += rng.NormFloat64() * 0.05
			q[i] = v
		}
		for gi := 0; gi < cfg.GroupsPerQuery; gi++ {
			l := lengths[rng.Intn(len(lengths))]
			groups := base.GroupsOfLength(l)
			g := groups[rng.Intn(len(groups))]
			dqr, path := dist.DTWPath(q, g.Rep, -1)
			mu := path.MaxMultiplicityJ()
			if mu > row.MaxMu {
				row.MaxMu = mu
			}
			bound := dqr + float64(mu)*base.HalfST(l)
			for _, m := range g.Members {
				actual := dist.DTW(q, m.Values(d))
				row.Pairs++
				if actual > bound+1e-9 {
					row.Violations++
				}
				if bound > 0 {
					slackSum += (bound - actual) / bound
				}
			}
		}
	}
	if row.Pairs > 0 {
		row.MeanSlackRatio = slackSum / float64(row.Pairs)
	}
	if row.Violations > 0 {
		return row, fmt.Errorf("bench: E6: %d certified-bound violations", row.Violations)
	}
	return row, nil
}

// TableE6 renders the E6 summary.
func TableE6(r E6Row) string {
	tb := NewTable("pairs", "violations", "mean_slack_ratio", "max_mu")
	tb.AddRow(r.Pairs, r.Violations, r.MeanSlackRatio, r.MaxMu)
	return tb.String()
}
