package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// E3Config parameterizes base-construction measurements (paper §3.1/§4:
// "Loading a new dataset ... triggers the preprocessing of this data").
type E3Config struct {
	// SeriesCounts sweeps collection size at fixed ST.
	SeriesCounts []int
	// STFactors sweeps the threshold (multiples of the default ST) at
	// fixed collection size.
	STFactors []float64
	// SeriesLen, MinLen, MaxLen shape the subsequence population.
	SeriesLen, MinLen, MaxLen int
	// Seed fixes generation.
	Seed int64
}

// DefaultE3 is the configuration the EXPERIMENTS.md table uses.
func DefaultE3() E3Config {
	return E3Config{
		SeriesCounts: []int{25, 50, 100},
		STFactors:    []float64{0.25, 0.5, 1, 2, 4},
		SeriesLen:    64,
		MinLen:       8,
		MaxLen:       24,
		Seed:         3,
	}
}

// E3Row is one construction measurement.
type E3Row struct {
	Label      string // "N=50" or "ST=0.16"
	Windows    int
	Groups     int
	Compaction float64
	BuildMs    float64
	EDComputed int
	Rehomed    int
}

// RunE3Sizes measures construction against collection size.
func RunE3Sizes(cfg E3Config) ([]E3Row, error) {
	if len(cfg.SeriesCounts) == 0 {
		cfg = DefaultE3()
	}
	st := baseST(cfg)
	rows := make([]E3Row, 0, len(cfg.SeriesCounts))
	for _, n := range cfg.SeriesCounts {
		d := gen.RandomWalks(gen.WalkOptions{Num: n, Length: cfg.SeriesLen, Seed: cfg.Seed})
		if err := ts.NormalizeMinMax(d); err != nil {
			return nil, err
		}
		row, err := buildRow(fmt.Sprintf("N=%d", n), d, st, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunE3Thresholds measures construction against the similarity threshold.
func RunE3Thresholds(cfg E3Config) ([]E3Row, error) {
	if len(cfg.STFactors) == 0 {
		cfg = DefaultE3()
	}
	st := baseST(cfg)
	n := 50
	if len(cfg.SeriesCounts) > 0 {
		n = cfg.SeriesCounts[len(cfg.SeriesCounts)/2]
	}
	d := gen.RandomWalks(gen.WalkOptions{Num: n, Length: cfg.SeriesLen, Seed: cfg.Seed})
	if err := ts.NormalizeMinMax(d); err != nil {
		return nil, err
	}
	rows := make([]E3Row, 0, len(cfg.STFactors))
	for _, f := range cfg.STFactors {
		row, err := buildRow(fmt.Sprintf("ST=%.3f", st*f), d, st*f, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func baseST(cfg E3Config) float64 {
	return 0.05 // per-point threshold (see grouping.Options.ST)
}

func buildRow(label string, d *ts.Dataset, st float64, cfg E3Config) (E3Row, error) {
	var base *grouping.Base
	var err error
	t := &Timer{}
	t.Time(func() {
		base, err = grouping.Build(d, grouping.Options{
			ST: st, MinLength: cfg.MinLen, MaxLength: cfg.MaxLen,
		})
	})
	if err != nil {
		return E3Row{}, fmt.Errorf("bench: E3 %s: %w", label, err)
	}
	return E3Row{
		Label:      label,
		Windows:    base.NumSubsequences(),
		Groups:     base.NumGroups(),
		Compaction: base.CompactionRatio(),
		BuildMs:    t.TotalMillis(),
		EDComputed: base.BuildStats.EDComputed,
		Rehomed:    base.BuildStats.Rehomed + base.BuildStats.Reseeded,
	}, nil
}

// TableE3 renders E3 rows.
func TableE3(rows []E3Row) string {
	tb := NewTable("config", "windows", "groups", "compaction", "build_ms", "ed_computed", "repaired")
	for _, r := range rows {
		tb.AddRow(r.Label, r.Windows, r.Groups, r.Compaction, r.BuildMs, r.EDComputed, r.Rehomed)
	}
	return tb.String()
}
