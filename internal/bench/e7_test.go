package bench

import (
	"strings"
	"testing"
)

func TestRunE7SmallShape(t *testing.T) {
	rows, err := RunE7(E7Config{TrainPerClass: 6, TestPerClass: 4, Length: 48, Band: 3, ST: 0.16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Train != 18 || r.Test != 12 {
			t.Fatalf("split sizes wrong: %+v", r)
		}
		if r.ONEXAcc < 0 || r.ONEXAcc > 1 || r.ExactAcc < 0 || r.ExactAcc > 1 {
			t.Fatalf("bad accuracy: %+v", r)
		}
		// On these cleanly separated synthetic classes both classifiers
		// should do far better than the 1/3 chance level.
		if r.ExactAcc < 0.7 {
			t.Fatalf("exact classifier failed sanity: %+v", r)
		}
		if r.ONEXAcc < r.ExactAcc-0.35 {
			t.Fatalf("ONEX classification collapsed vs exact: %+v", r)
		}
		if r.ONEXUs <= 0 || r.ExactUs <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
	}
	if !strings.Contains(TableE7(rows), "onex_acc") {
		t.Fatal("table missing header")
	}
}

func TestRunE7Defaults(t *testing.T) {
	cfg := DefaultE7()
	if cfg.TrainPerClass == 0 || cfg.Length == 0 {
		t.Fatal("default E7 config empty")
	}
}
