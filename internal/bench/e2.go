package bench

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// E2Config parameterizes the accuracy comparison (paper claim: "up to 19%
// more accurate results [than approximate embedding methods]").
type E2Config struct {
	// QueryLen is the query/candidate length.
	QueryLen int
	// Queries per dataset.
	Queries int
	// Band shared by all systems.
	Band int
	// ST for the ONEX base (0 = auto like E1).
	ST float64
	// Refine budget for the embedding baseline; 0 matches it to the ONEX
	// base's mean group size, equalizing the refine work.
	Refine int
	// NumRefs is the embedding dimensionality (default 8).
	NumRefs int
	// Seed fixes generation.
	Seed int64
}

// DefaultE2 is the configuration the EXPERIMENTS.md table uses.
func DefaultE2() E2Config {
	return E2Config{QueryLen: 32, Queries: 15, Band: 4, Seed: 2}
}

// E2Row is one dataset's accuracy outcome.
type E2Row struct {
	Dataset      string
	Windows      int
	RefineBudget int     // candidates each approximate method re-scores
	ONEXTop1     float64 // fraction where ONEX returned the exact best
	EmbedTop1    float64 // same for the embedding baseline
	ONEXRatio    float64 // mean returned/exact distance (1 = perfect)
	EmbedRatio   float64
	AccuracyGain float64 // (ONEXTop1 - EmbedTop1) / max(EmbedTop1, eps) * 100
}

// RunE2 measures top-1 agreement with the exact DTW answer for ONEX
// (approximate mode) and the embedding filter-and-refine baseline on the
// labelled synthetic families, at an equalized refinement budget.
func RunE2(cfg E2Config) ([]E2Row, error) {
	if cfg.QueryLen == 0 {
		cfg = DefaultE2()
	}
	datasets := []*ts.Dataset{
		gen.CBF(gen.CBFOptions{PerClass: 12, Length: 96, Seed: cfg.Seed}),
		gen.WarpedSines(gen.SineOptions{PerClass: 12, Length: 96, Classes: 3, Seed: cfg.Seed + 1}),
	}
	rows := make([]E2Row, 0, len(datasets))
	for _, d := range datasets {
		row, err := runE2One(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("bench: E2 %s: %w", d.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE2One(cfg E2Config, d *ts.Dataset) (E2Row, error) {
	if err := ts.NormalizeMinMax(d); err != nil {
		return E2Row{}, err
	}
	st := cfg.ST
	if st <= 0 {
		st = 0.16 // per-point threshold sized to CBF noise (see E1)
	}
	base, err := grouping.Build(d, grouping.Options{
		ST: st, MinLength: cfg.QueryLen, MaxLength: cfg.QueryLen,
	})
	if err != nil {
		return E2Row{}, err
	}
	engine, err := core.NewEngine(d, base, core.Options{Band: cfg.Band, Mode: core.ModeApprox})
	if err != nil {
		return E2Row{}, err
	}
	refine := cfg.Refine
	if refine <= 0 {
		refine = int(math.Ceil(base.CompactionRatio()))
		if refine < 1 {
			refine = 1
		}
	}
	numRefs := cfg.NumRefs
	if numRefs <= 0 {
		numRefs = 8
	}
	ix, err := embed.Build(d, []int{cfg.QueryLen}, embed.Options{
		NumRefs: numRefs, Refine: refine, Band: cfg.Band, Seed: cfg.Seed + 5,
	})
	if err != nil {
		return E2Row{}, err
	}
	// Held-out instances from the same generator family (fresh seed), the
	// UCR-style evaluation protocol; see E1.
	heldOut := regenerate(d, cfg)
	queries := HeldOutQueries(d, heldOut, cfg.Queries, cfg.QueryLen, cfg.Seed+9)

	row := E2Row{
		Dataset:      d.Name,
		Windows:      d.NumSubsequences(cfg.QueryLen, cfg.QueryLen),
		RefineBudget: refine,
	}
	var onexHits, embedHits int
	var onexRatio, embedRatio float64
	for _, q := range queries {
		exact, err := bruteforce.BestMatch(d, q, bruteforce.Options{Band: cfg.Band, EarlyAbandon: true})
		if err != nil {
			return E2Row{}, err
		}
		om, err := engine.BestMatch(q)
		if err != nil {
			return E2Row{}, err
		}
		em, err := ix.BestMatch(q)
		if err != nil {
			return E2Row{}, err
		}
		if math.Abs(om.Dist-exact.Dist) <= 1e-9 {
			onexHits++
		}
		if math.Abs(em.Dist-exact.Dist) <= 1e-9 {
			embedHits++
		}
		onexRatio += safeRatio(om.Dist, exact.Dist)
		embedRatio += safeRatio(em.Dist, exact.Dist)
	}
	nq := float64(len(queries))
	row.ONEXTop1 = float64(onexHits) / nq
	row.EmbedTop1 = float64(embedHits) / nq
	row.ONEXRatio = onexRatio / nq
	row.EmbedRatio = embedRatio / nq
	denom := row.EmbedTop1
	if denom < 1e-9 {
		denom = 1 / nq // avoid div-by-zero; gain relative to one hit
	}
	row.AccuracyGain = (row.ONEXTop1 - row.EmbedTop1) / denom * 100
	return row, nil
}

// regenerate produces a held-out dataset of the same family as d (raw
// units; HeldOutQueries handles the normalization mapping).
func regenerate(d *ts.Dataset, cfg E2Config) *ts.Dataset {
	if d.Name == "cbf" {
		return gen.CBF(gen.CBFOptions{PerClass: 12, Length: 96, Seed: cfg.Seed + 1000})
	}
	return gen.WarpedSines(gen.SineOptions{PerClass: 12, Length: 96, Classes: 3, Seed: cfg.Seed + 1001})
}

func safeRatio(got, exact float64) float64 {
	if exact <= 0 {
		if got <= 1e-12 {
			return 1
		}
		return 2 // arbitrary penalty: exact found a zero-distance match, we didn't
	}
	return got / exact
}

// TableE2 renders E2 rows.
func TableE2(rows []E2Row) string {
	tb := NewTable("dataset", "windows", "refine", "onex_top1", "embed_top1",
		"onex_ratio", "embed_ratio", "accuracy_gain_%")
	for _, r := range rows {
		tb.AddRow(r.Dataset, r.Windows, r.RefineBudget, r.ONEXTop1, r.EmbedTop1,
			r.ONEXRatio, r.EmbedRatio, r.AccuracyGain)
	}
	return tb.String()
}
