package bench

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
	"repro/internal/ucrsuite"
)

// The ablations quantify the design choices DESIGN.md §5 calls out:
//
//	A1  the repair pass (invariant enforcement) — cost and effect
//	A2  the Sakoe-Chiba band — latency/accuracy trade-off
//	A3  the lower-bound cascade — what each filter stage prunes

// A1Row measures one build configuration.
type A1Row struct {
	Config     string
	BuildMs    float64
	Groups     int
	Violations int     // members beyond ST*l/2 of their representative
	MaxExcess  float64 // worst violation as a fraction of the radius bound
}

// RunA1 builds the same dataset with and without the repair pass and
// counts invariant violations in each result. The paper's construction
// argument (§3.1) requires the ST/2 radius bound; raw online clustering
// violates it for early members after centroid drift.
func RunA1(seed int64) ([]A1Row, error) {
	if seed == 0 {
		seed = 71
	}
	d := gen.RandomWalks(gen.WalkOptions{Num: 40, Length: 64, Seed: seed})
	if err := ts.NormalizeMinMax(d); err != nil {
		return nil, err
	}
	rows := make([]A1Row, 0, 2)
	for _, skip := range []bool{false, true} {
		label := "repair=on"
		if skip {
			label = "repair=off"
		}
		var base *grouping.Base
		var err error
		tm := &Timer{}
		tm.Time(func() {
			base, err = grouping.Build(d, grouping.Options{
				ST: 0.05, MinLength: 8, MaxLength: 16, SkipRepair: skip,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("bench: A1 %s: %w", label, err)
		}
		row := A1Row{Config: label, BuildMs: tm.TotalMillis(), Groups: base.NumGroups()}
		for _, l := range base.Lengths() {
			half := base.HalfST(l)
			for _, g := range base.GroupsOfLength(l) {
				for _, m := range g.Members {
					r := dist.ED(m.Values(d), g.Rep)
					if r > half+1e-9 {
						row.Violations++
						if excess := (r - half) / half; excess > row.MaxExcess {
							row.MaxExcess = excess
						}
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableA1 renders A1 rows.
func TableA1(rows []A1Row) string {
	tb := NewTable("config", "build_ms", "groups", "violations", "max_excess")
	for _, r := range rows {
		tb.AddRow(r.Config, r.BuildMs, r.Groups, r.Violations, r.MaxExcess)
	}
	return tb.String()
}

// A2Row measures one band width.
type A2Row struct {
	Band      int // -1 = unconstrained
	QueryUs   float64
	DistRatio float64 // returned / exact-at-same-band distance
	Top1      float64
}

// RunA2 sweeps the Sakoe-Chiba band width on the E1 workload, measuring
// latency and retrieval quality at each width. Exactness is judged against
// a brute-force scan *at the same band*, isolating the approximation error
// of the base from the modelling choice of the band itself.
func RunA2(seed int64) ([]A2Row, error) {
	if seed == 0 {
		seed = 73
	}
	const n, seriesLen, qlen = 50, 128, 32
	full := gen.CBF(gen.CBFOptions{PerClass: (n + 2) / 3, Length: seriesLen, Seed: seed})
	d := ts.NewDataset(full.Name)
	for i := 0; i < n && i < full.Len(); i++ {
		d.MustAdd(full.Series[i])
	}
	if err := ts.NormalizeMinMax(d); err != nil {
		return nil, err
	}
	base, err := grouping.Build(d, grouping.Options{ST: 0.16, MinLength: qlen, MaxLength: qlen})
	if err != nil {
		return nil, err
	}
	heldOut := gen.CBF(gen.CBFOptions{PerClass: 4, Length: seriesLen, Seed: seed + 1000})
	queries := HeldOutQueries(d, heldOut, 10, qlen, seed+7)

	var rows []A2Row
	for _, band := range []int{0, 2, 4, 8, 16, -1} {
		engine, err := core.NewEngine(d, base, core.Options{Band: band, Mode: core.ModeApprox})
		if err != nil {
			return nil, err
		}
		row := A2Row{Band: band}
		var tm Timer
		agree, ratioSum := 0, 0.0
		for _, q := range queries {
			var m core.Match
			tm.Time(func() {
				m, err = engine.BestMatch(q)
			})
			if err != nil {
				return nil, err
			}
			exact, err := bruteforce.BestMatch(d, q, bruteforce.Options{Band: band, EarlyAbandon: true})
			if err != nil {
				return nil, err
			}
			if math.Abs(m.Dist-exact.Dist) <= 1e-9 {
				agree++
			}
			ratioSum += safeRatio(m.Dist, exact.Dist)
		}
		row.QueryUs = tm.MeanMicros()
		row.Top1 = float64(agree) / float64(len(queries))
		row.DistRatio = ratioSum / float64(len(queries))
		rows = append(rows, row)
	}
	return rows, nil
}

// TableA2 renders A2 rows.
func TableA2(rows []A2Row) string {
	tb := NewTable("band", "query_us", "top1", "dist_ratio")
	for _, r := range rows {
		band := fmt.Sprint(r.Band)
		if r.Band < 0 {
			band = "inf"
		}
		tb.AddRow(band, r.QueryUs, r.Top1, r.DistRatio)
	}
	return tb.String()
}

// A3Row reports the UCR-Suite cascade's per-stage pruning on one workload.
type A3Row struct {
	N            int
	Windows      int
	PrunedKim    float64 // fraction of windows dropped by LB_Kim
	PrunedKeoghQ float64
	PrunedKeoghC float64
	DTWComputed  float64 // fraction reaching full DTW
	DTWAbandoned float64 // of all windows, abandoned during DTW
}

// RunA3 measures what each stage of the lower-bound cascade prunes, the
// paper's "indexing of time series using bounding envelopes [and] early
// pruning of unpromising candidates" made visible.
func RunA3(seed int64) ([]A3Row, error) {
	if seed == 0 {
		seed = 79
	}
	var rows []A3Row
	for _, n := range []int{25, 100} {
		per := (n + 2) / 3
		full := gen.CBF(gen.CBFOptions{PerClass: per, Length: 128, Seed: seed})
		d := ts.NewDataset(full.Name)
		for i := 0; i < n && i < full.Len(); i++ {
			d.MustAdd(full.Series[i])
		}
		if err := ts.NormalizeMinMax(d); err != nil {
			return nil, err
		}
		heldOut := gen.CBF(gen.CBFOptions{PerClass: 4, Length: 128, Seed: seed + 1000})
		queries := HeldOutQueries(d, heldOut, 10, 32, seed+7)
		agg := A3Row{N: n}
		totalWindows := 0
		for _, q := range queries {
			res, err := ucrsuite.BestMatch(d, q, ucrsuite.Options{Band: 4})
			if err != nil {
				return nil, err
			}
			st := res.Stats
			totalWindows += st.Windows
			agg.PrunedKim += float64(st.PrunedKim)
			agg.PrunedKeoghQ += float64(st.PrunedKeoghQ)
			agg.PrunedKeoghC += float64(st.PrunedKeoghC)
			agg.DTWComputed += float64(st.DTWComputed)
			agg.DTWAbandoned += float64(st.DTWAbandoned)
		}
		agg.Windows = totalWindows
		tw := float64(totalWindows)
		agg.PrunedKim /= tw
		agg.PrunedKeoghQ /= tw
		agg.PrunedKeoghC /= tw
		agg.DTWComputed /= tw
		agg.DTWAbandoned /= tw
		rows = append(rows, agg)
	}
	return rows, nil
}

// TableA3 renders A3 rows.
func TableA3(rows []A3Row) string {
	tb := NewTable("N", "windows", "kim_pruned", "keoghQ_pruned", "keoghC_pruned", "dtw_run", "dtw_abandoned")
	for _, r := range rows {
		tb.AddRow(r.N, r.Windows, r.PrunedKim, r.PrunedKeoghQ, r.PrunedKeoghC, r.DTWComputed, r.DTWAbandoned)
	}
	return tb.String()
}
