package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/ts"
	"repro/internal/ucrsuite"
	"repro/onex"
)

// E1Config parameterizes the latency comparison (paper claim: "several
// times faster than the fastest known method [6]"). The ONEX side runs
// through the public API — onex.Query executed by DB.Find (or DB.Stream
// in stream mode) — so the experiment measures the path real clients use.
type E1Config struct {
	// SeriesCounts sweeps the collection size.
	SeriesCounts []int
	// SeriesLen is the length of each generated series.
	SeriesLen int
	// QueryLen is the query (and candidate) subsequence length.
	QueryLen int
	// Queries is the number of timed queries per configuration.
	Queries int
	// Band is the Sakoe-Chiba width shared by all systems.
	Band int
	// STFrac expresses the similarity threshold as a fraction of the
	// normalized value range (default 0.25 of sqrt(QueryLen), see code).
	ST float64
	// Seed fixes data and query generation.
	Seed int64
	// Mode selects the ONEX query path: "" or "approx" (the paper's
	// configuration), "exact" (certified search), or "stream" (the
	// progressive pipeline, drained to its exact answer; first-update
	// latency is reported in the first_us column).
	Mode string
	// Workers bounds the per-query worker pool (0 = all cores, 1 = the
	// serial engine), exercising the parallel search path.
	Workers int
}

// DefaultE1 is the configuration the EXPERIMENTS.md table uses.
func DefaultE1() E1Config {
	return E1Config{
		SeriesCounts: []int{25, 50, 100, 200},
		SeriesLen:    128,
		QueryLen:     32,
		Queries:      10,
		Band:         4,
		Seed:         1,
	}
}

// E1Row is one measured configuration.
type E1Row struct {
	N            int     // series count
	Windows      int     // candidate windows (per system, identical)
	Groups       int     // ONEX base groups at the query length
	BuildMs      float64 // ONEX base construction (amortized, offline)
	ONEXQueryUs  float64 // mean ONEX query latency (per cfg.Mode)
	ONEXP95Us    float64 // p95 ONEX query latency (interactivity is a tail property)
	FirstUs      float64 // mean first-update latency (stream mode only; 0 otherwise)
	UCRQueryUs   float64 // mean UCR-Suite-style exact query latency
	BruteQueryUs float64 // mean naive scan latency
	SpeedupUCR   float64 // UCR / ONEX
	SpeedupBrute float64 // Brute / ONEX
	Top1Agree    float64 // fraction of queries where ONEX == exact top-1
	DistRatio    float64 // mean ONEX distance / exact distance (>= 1)
}

// RunE1 measures best-match latency for ONEX (approximate mode, the
// paper's configuration), the UCR-Suite-style exact search, and the naive
// DTW scan on identical random-walk collections and identical queries.
func RunE1(cfg E1Config) ([]E1Row, error) {
	if len(cfg.SeriesCounts) == 0 {
		cfg = DefaultE1()
	}
	rows := make([]E1Row, 0, len(cfg.SeriesCounts))
	for _, n := range cfg.SeriesCounts {
		row, err := runE1One(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("bench: E1 N=%d: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE1One(cfg E1Config, n int) (E1Row, error) {
	// CBF is the workload: class-structured like the UCR archive datasets
	// the original evaluation uses. (Random walks, having no recurring
	// shapes at all, are the degenerate worst case for any group-based
	// approximation and do not represent the paper's setting.)
	per := (n + 2) / 3
	full := gen.CBF(gen.CBFOptions{PerClass: per, Length: cfg.SeriesLen, Seed: cfg.Seed})
	d := ts.NewDataset(full.Name)
	for i := 0; i < n && i < full.Len(); i++ {
		d.MustAdd(full.Series[i])
	}
	if err := ts.NormalizeMinMax(d); err != nil {
		return E1Row{}, err
	}
	st := cfg.ST
	if st <= 0 {
		// CBF's per-point noise is sigma = 1 on a value range of ~12, so a
		// window sits ~0.8*sigma/range ~ 0.066 per point from its class
		// centroid; 0.16 groups same-class windows while keeping classes
		// apart (their events differ by ~0.5 per point over the event).
		st = 0.16
	}
	// The dataset is already normalized, so open the public DB with
	// KeepRaw: every system — onex, UCR-Suite, brute force — then scores
	// in the same value space and the distances are directly comparable.
	var db *onex.DB
	buildTimer := &Timer{}
	var err error
	buildTimer.Time(func() {
		db, err = onex.Open(d, onex.Config{
			ST:        st,
			MinLength: cfg.QueryLen,
			MaxLength: cfg.QueryLen,
			Band:      cfg.Band,
			KeepRaw:   true,
		})
	})
	if err != nil {
		return E1Row{}, err
	}
	mode := onex.ModeApprox
	switch cfg.Mode {
	case "", "approx", "stream":
	case "exact":
		mode = onex.ModeExact
	default:
		return E1Row{}, fmt.Errorf("unknown mode %q (want approx, exact, or stream)", cfg.Mode)
	}
	// UCR-style protocol: queries are held-out CBF instances, so the
	// nearest indexed neighbor is a class-mate rather than a duplicate.
	heldOut := gen.CBF(gen.CBFOptions{PerClass: (cfg.Queries + 2) / 3, Length: cfg.SeriesLen, Seed: cfg.Seed + 1000})
	queries := HeldOutQueries(d, heldOut, cfg.Queries, cfg.QueryLen, cfg.Seed+7)

	stats := db.Stats()
	row := E1Row{
		N:       n,
		Windows: d.NumSubsequences(cfg.QueryLen, cfg.QueryLen),
		Groups:  stats.Groups,
		BuildMs: buildTimer.TotalMillis(),
	}
	ctx := context.Background()
	var onexT, firstT, ucrT, bruteT Timer
	agree, ratioSum := 0, 0.0
	for _, q := range queries {
		// NormRaw ranks by raw DTW cost, the unit the exact baselines
		// report.
		oq := onex.Query{Values: q, LengthNorm: onex.NormRaw, Mode: mode, Workers: cfg.Workers}
		var om onex.Match
		if cfg.Mode == "stream" {
			onexT.Time(func() {
				var x *onex.Exploration
				// firstT covers Stream-call to first update: the latency at
				// which the analyst sees the approximate answer.
				firstT.Time(func() {
					x, err = db.Stream(ctx, oq)
					if err == nil {
						<-x.Updates()
					}
				})
				if err != nil {
					return
				}
				var res onex.Result
				res, err = x.Wait()
				if err == nil {
					om = res.Matches[0]
				}
			})
		} else {
			onexT.Time(func() {
				var res onex.Result
				res, err = db.Find(ctx, oq)
				if err == nil {
					om = res.Matches[0]
				}
			})
		}
		if err != nil {
			return E1Row{}, err
		}
		var ur ucrsuite.Result
		ucrT.Time(func() {
			ur, err = ucrsuite.BestMatch(d, q, ucrsuite.Options{Band: cfg.Band})
		})
		if err != nil {
			return E1Row{}, err
		}
		var br bruteforce.Result
		bruteT.Time(func() {
			br, err = bruteforce.BestMatch(d, q, bruteforce.Options{Band: cfg.Band, EarlyAbandon: false})
		})
		if err != nil {
			return E1Row{}, err
		}
		// UCR and brute force are both exact; they must agree.
		if math.Abs(ur.Dist-br.Dist) > 1e-6 {
			return E1Row{}, fmt.Errorf("exact baselines disagree: %g vs %g", ur.Dist, br.Dist)
		}
		if math.Abs(om.Dist-br.Dist) <= 1e-9 {
			agree++
		}
		if br.Dist > 0 {
			ratioSum += om.Dist / br.Dist
		} else {
			ratioSum += 1
		}
	}
	row.ONEXQueryUs = onexT.MeanMicros()
	row.ONEXP95Us = onexT.PercentileMicros(0.95)
	row.FirstUs = firstT.MeanMicros()
	row.UCRQueryUs = ucrT.MeanMicros()
	row.BruteQueryUs = bruteT.MeanMicros()
	if row.ONEXQueryUs > 0 {
		row.SpeedupUCR = row.UCRQueryUs / row.ONEXQueryUs
		row.SpeedupBrute = row.BruteQueryUs / row.ONEXQueryUs
	}
	row.Top1Agree = float64(agree) / float64(len(queries))
	row.DistRatio = ratioSum / float64(len(queries))
	return row, nil
}

// TableE1 renders E1 rows. first_us is the stream-mode first-update
// latency (0 in the one-shot modes).
func TableE1(rows []E1Row) string {
	tb := NewTable("N", "windows", "groups", "build_ms",
		"onex_us", "onex_p95", "first_us", "ucr_us", "brute_us", "speedup_ucr", "speedup_brute", "top1", "dist_ratio")
	for _, r := range rows {
		tb.AddRow(r.N, r.Windows, r.Groups, r.BuildMs,
			r.ONEXQueryUs, r.ONEXP95Us, r.FirstUs, r.UCRQueryUs, r.BruteQueryUs,
			r.SpeedupUCR, r.SpeedupBrute, r.Top1Agree, r.DistRatio)
	}
	return tb.String()
}
