package grouping

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ts"
)

// tinyDataset is a quick.Generator for small random datasets.
type tinyDataset struct{ D *ts.Dataset }

// Generate implements quick.Generator.
func (tinyDataset) Generate(r *rand.Rand, size int) reflect.Value {
	d := ts.NewDataset("quick")
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		l := 6 + r.Intn(14)
		vals := make([]float64, l)
		v := r.Float64()
		for j := range vals {
			v += r.NormFloat64() * 0.1
			vals[j] = v
		}
		d.MustAdd(ts.NewSeries(string(rune('a'+i)), vals))
	}
	return reflect.ValueOf(tinyDataset{D: d})
}

// Any build on any dataset satisfies the full validation contract
// (coverage, radius invariant, no duplicates).
func TestQuickBuildAlwaysValid(t *testing.T) {
	f := func(td tinyDataset, stRaw uint8) bool {
		st := 0.01 + float64(stRaw%100)/250.0 // 0.01 .. 0.41 per point
		b, err := Build(td.D, Options{ST: st, MinLength: 3, MaxLength: 6})
		if err != nil {
			return false
		}
		return b.Validate(td.D) == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(139))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Serialization round-trips losslessly for arbitrary bases.
func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(td tinyDataset, stRaw uint8) bool {
		st := 0.02 + float64(stRaw%50)/200.0
		b, err := Build(td.D, Options{ST: st, MinLength: 3, MaxLength: 5})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumGroups() != b.NumGroups() || back.NumSubsequences() != b.NumSubsequences() {
			return false
		}
		return back.Validate(td.D) == nil
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(149))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The dataset checksum reacts to any single-value perturbation.
func TestQuickChecksumSensitivity(t *testing.T) {
	f := func(td tinyDataset, whichSeries, whichValue uint8, delta float64) bool {
		if delta == 0 || delta != delta { // skip zero and NaN deltas
			return true
		}
		before := DatasetChecksum(td.D)
		si := int(whichSeries) % td.D.Len()
		s := td.D.Series[si]
		vi := int(whichValue) % s.Len()
		old := s.Values[vi]
		s.Values[vi] = old + 1 + delta*0 // guaranteed change
		changed := DatasetChecksum(td.D)
		s.Values[vi] = old
		restored := DatasetChecksum(td.D)
		return before != changed && before == restored
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(151))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Incremental insert preserves the full validation contract for arbitrary
// appended series.
func TestQuickAddSeriesAlwaysValid(t *testing.T) {
	f := func(td tinyDataset, stRaw uint8, newLen uint8) bool {
		st := 0.02 + float64(stRaw%50)/200.0
		b, err := Build(td.D, Options{ST: st, MinLength: 3, MaxLength: 5})
		if err != nil {
			return false
		}
		l := 3 + int(newLen%12)
		vals := make([]float64, l)
		rng := rand.New(rand.NewSource(int64(stRaw)*31 + int64(newLen)))
		v := rng.Float64()
		for i := range vals {
			v += rng.NormFloat64() * 0.1
			vals[i] = v
		}
		td.D.MustAdd(ts.NewSeries("zz-new", vals))
		if err := b.AddSeries(td.D, td.D.Len()-1); err != nil {
			return false
		}
		return b.Validate(td.D) == nil
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(157))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
