package grouping

import (
	"bytes"
	"testing"

	"repro/internal/ts"
)

// FuzzRead asserts the base deserializer never panics and never accepts
// silently corrupted data: arbitrary bytes either fail cleanly or decode
// into a structurally plausible base.
func FuzzRead(f *testing.F) {
	// Seed with a genuine serialized base plus adversarial variants.
	d := ts.NewDataset("fuzzseed")
	d.MustAdd(ts.NewSeries("a", []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.4, 0.3, 0.2, 0.1, 0.2, 0.3, 0.4}))
	d.MustAdd(ts.NewSeries("b", []float64{0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5}))
	b, err := Build(d, Options{ST: 0.05, MinLength: 4, MaxLength: 5})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ONEXBAS1"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent.
		if back.ByLength == nil {
			t.Fatal("decoded base has nil map")
		}
		for l, lg := range back.ByLength {
			if lg.Length != l {
				t.Fatalf("length key %d != %d", l, lg.Length)
			}
			for _, g := range lg.Groups {
				if len(g.Rep) != l {
					t.Fatal("rep length mismatch survived CRC")
				}
				for _, m := range g.Members {
					if m.Length != l {
						t.Fatal("member length mismatch survived CRC")
					}
				}
			}
		}
	})
}
