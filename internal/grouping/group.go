// Package grouping implements the ONEX base: the offline half of the ONEX
// contribution. All subsequences of a dataset within a configurable length
// range are clustered, per length, into "ONEX similarity groups" using the
// inexpensive Euclidean (L1) distance. Each group is summarized by a
// representative (the centroid of its members), and construction maintains
// the paper's §3.1 invariant:
//
//   - every member is within ST/2 of its group representative, hence
//   - any two members of a group are within ST of each other (ED is a
//     metric).
//
// Because the centroid drifts while members stream in, the invariant can be
// violated for early members; Build therefore finishes with a repair pass
// that freezes representatives and re-homes (or re-seeds) any member that
// drifted out, so the invariant holds exactly for the final base. The
// online half (internal/core) explores this compact base with DTW instead
// of the raw data.
package grouping

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/ts"
)

// Group is one ONEX similarity group: same-length subsequences that are
// mutually within the similarity threshold, summarized by a representative.
type Group struct {
	// Length is the length of every member and of Rep.
	Length int
	// Rep is the group representative: the member centroid at build time,
	// frozen by the repair pass (see package comment).
	Rep []float64
	// Members references every subsequence assigned to this group. Members
	// never overlap-deduplicate: each window of the dataset appears in
	// exactly one group of its length.
	Members []ts.SubSeq
}

// Count returns the group cardinality. The overview pane color-codes by it.
func (g *Group) Count() int { return len(g.Members) }

// MaxRadius returns the largest ED between a member and the representative;
// at most ST/2 for a repaired base.
func (g *Group) MaxRadius(d *ts.Dataset) float64 {
	maxR := 0.0
	for _, m := range g.Members {
		if r := dist.ED(m.Values(d), g.Rep); r > maxR {
			maxR = r
		}
	}
	return maxR
}

// LengthGroups holds every group of one subsequence length.
type LengthGroups struct {
	Length int
	Groups []*Group
}

// Options configures Build.
type Options struct {
	// ST is the per-point similarity threshold in the dataset's
	// (normalized) units: a group of length-l subsequences uses the
	// absolute threshold ST*l, and members are kept within ST*l/2 of their
	// representative. Expressing ST per point makes one setting meaningful
	// across every indexed length (ED sums grow linearly with length),
	// which is how ONEX compares sequences of different lengths.
	ST float64
	// MinLength and MaxLength bound the subsequence lengths that are
	// enumerated and grouped. MinLength below 2 is raised to 2 (length-1
	// windows carry no shape). MaxLength 0 means the longest series.
	MinLength, MaxLength int
	// Workers bounds the number of concurrent per-length builders;
	// 0 means GOMAXPROCS.
	Workers int
	// SkipRepair preserves the raw online-clustering result (the original
	// ONEX system behaviour). The ST/2 invariant may then be violated by
	// centroid drift; Validate reports by how much.
	SkipRepair bool
}

// BuildStats records what construction did; E3 reports these.
type BuildStats struct {
	Duration   time.Duration
	NumWindows int // subsequences enumerated
	NumGroups  int // groups in the final base
	EDComputed int // full or abandoned ED evaluations during assignment
	Rehomed    int // members moved by the repair pass
	Reseeded   int // singleton groups created by the repair pass
}

// Base is the complete ONEX base for one dataset.
type Base struct {
	// DatasetName and DatasetSum tie the base to the dataset it was built
	// from; Load verifies both before use.
	DatasetName string
	DatasetSum  uint64
	// Norm records the normalization the dataset had at build time.
	Norm ts.NormKind

	// ST is the per-point similarity threshold (see Options.ST); the
	// absolute threshold for length l is HalfST(l)*2.
	ST                   float64
	MinLength, MaxLength int

	// ByLength maps subsequence length to that length's groups.
	ByLength map[int]*LengthGroups

	BuildStats BuildStats

	// indexed tracks which series indices have already been built or
	// streamed into the base, making AddSeries' double-insertion check O(1)
	// instead of a scan over every member of every group. It is not
	// serialized; Read recomputes it from the stored membership.
	indexed map[int]bool
}

// ErrNoData is returned when the dataset has no subsequence in range.
var ErrNoData = errors.New("grouping: no subsequences in the configured length range")

// Build constructs the ONEX base for dataset d. The dataset should already
// be normalized (ST is interpreted in the dataset's value units either
// way). Build does not retain d; callers pass it again where needed.
func Build(d *ts.Dataset, opts Options) (*Base, error) {
	// Pin mmap-backed values for the whole construction (no-op for heap
	// datasets); every subsequence window is dereferenced below.
	release, err := d.Pin()
	if err != nil {
		return nil, fmt.Errorf("grouping: Build: %w", err)
	}
	defer release()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("grouping: Build: %w", err)
	}
	if opts.ST <= 0 {
		return nil, fmt.Errorf("grouping: Build: ST must be positive, got %g", opts.ST)
	}
	minLen := opts.MinLength
	if minLen < 2 {
		minLen = 2
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 || maxLen > d.MaxLen() {
		maxLen = d.MaxLen()
	}
	if minLen > maxLen {
		return nil, fmt.Errorf("grouping: Build: empty length range [%d,%d]", minLen, maxLen)
	}
	start := time.Now()

	lengths := make([]int, 0, maxLen-minLen+1)
	for l := minLen; l <= maxLen; l++ {
		lengths = append(lengths, l)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(lengths) {
		workers = len(lengths)
	}

	type lengthResult struct {
		lg    *LengthGroups
		stats BuildStats
	}
	results := make([]lengthResult, len(lengths))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				lg, st := buildLength(d, lengths[idx], opts.ST, !opts.SkipRepair)
				results[idx] = lengthResult{lg: lg, stats: st}
			}
		}()
	}
	for idx := range lengths {
		work <- idx
	}
	close(work)
	wg.Wait()

	b := &Base{
		DatasetName: d.Name,
		DatasetSum:  DatasetChecksum(d),
		Norm:        d.Norm.Kind,
		ST:          opts.ST,
		MinLength:   minLen,
		MaxLength:   maxLen,
		ByLength:    make(map[int]*LengthGroups),
		indexed:     make(map[int]bool, d.Len()),
	}
	// Mark every series that contributed windows. Series shorter than
	// MinLength contribute nothing and stay unmarked — re-streaming one is
	// an accepted no-op, exactly like the old member-scan check (and like a
	// base reloaded from disk, where only membership survives).
	for si, s := range d.Series {
		if s.Len() >= minLen {
			b.indexed[si] = true
		}
	}
	for _, res := range results {
		if res.lg == nil || len(res.lg.Groups) == 0 {
			continue
		}
		b.ByLength[res.lg.Length] = res.lg
		b.BuildStats.NumWindows += res.stats.NumWindows
		b.BuildStats.NumGroups += res.stats.NumGroups
		b.BuildStats.EDComputed += res.stats.EDComputed
		b.BuildStats.Rehomed += res.stats.Rehomed
		b.BuildStats.Reseeded += res.stats.Reseeded
	}
	if len(b.ByLength) == 0 {
		return nil, ErrNoData
	}
	b.BuildStats.Duration = time.Since(start)
	return b, nil
}

// builderGroup carries the running centroid sums during construction.
type builderGroup struct {
	sum     []float64
	rep     []float64
	members []ts.SubSeq
}

func (bg *builderGroup) add(vals []float64, ref ts.SubSeq) {
	if bg.sum == nil {
		bg.sum = make([]float64, len(vals))
		bg.rep = make([]float64, len(vals))
	}
	bg.members = append(bg.members, ref)
	inv := 1 / float64(len(bg.members))
	for i, v := range vals {
		bg.sum[i] += v
		bg.rep[i] = bg.sum[i] * inv
	}
}

// buildLength clusters every window of one length; this is the hot path of
// base construction.
func buildLength(d *ts.Dataset, length int, st float64, repair bool) (*LengthGroups, BuildStats) {
	half := st * float64(length) / 2
	var stats BuildStats
	var groups []*builderGroup

	for si, s := range d.Series {
		if s.Len() < length {
			continue
		}
		for startIdx := 0; startIdx+length <= s.Len(); startIdx++ {
			w := s.Values[startIdx : startIdx+length]
			stats.NumWindows++

			best := -1
			bestD := math.Inf(1)
			for gi, g := range groups {
				// Cheap endpoint filter before the full ED.
				if dist.LBKim(w, g.rep) > half {
					continue
				}
				ub := half
				if bestD < ub {
					ub = bestD
				}
				stats.EDComputed++
				dd := dist.EDEarlyAbandon(w, g.rep, ub)
				if dd <= half && dd < bestD {
					best = gi
					bestD = dd
				}
			}
			ref := ts.SubSeq{Series: si, Start: startIdx, Length: length}
			if best >= 0 {
				groups[best].add(w, ref)
			} else {
				ng := &builderGroup{}
				ng.add(w, ref)
				groups = append(groups, ng)
			}
		}
	}
	if len(groups) == 0 {
		return nil, stats
	}
	if repair {
		groups = repairLength(d, groups, half, &stats)
	}

	lg := &LengthGroups{Length: length, Groups: make([]*Group, 0, len(groups))}
	for _, bg := range groups {
		if len(bg.members) == 0 {
			continue
		}
		lg.Groups = append(lg.Groups, &Group{Length: length, Rep: bg.rep, Members: bg.members})
	}
	// Largest groups first: the overview pane and the query processor both
	// prefer visiting high-cardinality groups early.
	sort.SliceStable(lg.Groups, func(i, j int) bool {
		return len(lg.Groups[i].Members) > len(lg.Groups[j].Members)
	})
	stats.NumGroups = len(lg.Groups)
	return lg, stats
}

// repairLength freezes representatives and re-homes members that centroid
// drift pushed beyond ST/2, guaranteeing the §3.1 invariant exactly.
// Members that fit no frozen representative seed new singleton groups whose
// representative is the member itself (trivially within bound).
func repairLength(d *ts.Dataset, groups []*builderGroup, half float64, stats *BuildStats) []*builderGroup {
	var strays []ts.SubSeq
	for _, g := range groups {
		kept := g.members[:0]
		for _, m := range g.members {
			if dist.EDEarlyAbandon(m.Values(d), g.rep, half) <= half {
				kept = append(kept, m)
			} else {
				strays = append(strays, m)
			}
		}
		g.members = kept
	}
	if len(strays) == 0 {
		return groups
	}
	for _, m := range strays {
		w := m.Values(d)
		best := -1
		bestD := math.Inf(1)
		for gi, g := range groups {
			if len(g.members) == 0 {
				continue
			}
			if dist.LBKim(w, g.rep) > half {
				continue
			}
			ub := half
			if bestD < ub {
				ub = bestD
			}
			stats.EDComputed++
			dd := dist.EDEarlyAbandon(w, g.rep, ub)
			if dd <= half && dd < bestD {
				best = gi
				bestD = dd
			}
		}
		if best >= 0 {
			// Frozen representative: append member without moving rep.
			groups[best].members = append(groups[best].members, m)
			stats.Rehomed++
		} else {
			rep := make([]float64, len(w))
			copy(rep, w)
			groups = append(groups, &builderGroup{rep: rep, members: []ts.SubSeq{m}})
			stats.Reseeded++
		}
	}
	return groups
}

// HalfST returns the group radius bound (half the absolute similarity
// threshold) for subsequences of the given length.
func (b *Base) HalfST(length int) float64 { return b.ST * float64(length) / 2 }

// Lengths returns the lengths present in the base, ascending.
func (b *Base) Lengths() []int {
	out := make([]int, 0, len(b.ByLength))
	for l := range b.ByLength {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// GroupsOfLength returns the groups for one length (nil when absent).
func (b *Base) GroupsOfLength(l int) []*Group {
	lg, ok := b.ByLength[l]
	if !ok {
		return nil
	}
	return lg.Groups
}

// NumGroups returns the total group count across lengths.
func (b *Base) NumGroups() int {
	n := 0
	for _, lg := range b.ByLength {
		n += len(lg.Groups)
	}
	return n
}

// NumSubsequences returns the total membership across lengths.
func (b *Base) NumSubsequences() int {
	n := 0
	for _, lg := range b.ByLength {
		for _, g := range lg.Groups {
			n += len(g.Members)
		}
	}
	return n
}

// CompactionRatio is subsequences per group: how much smaller the explored
// set is than the raw candidate population (E3's headline number).
func (b *Base) CompactionRatio() float64 {
	g := b.NumGroups()
	if g == 0 {
		return 0
	}
	return float64(b.NumSubsequences()) / float64(g)
}

// Validate re-checks the construction invariants against the dataset:
// members in range, member length equals group length, every member within
// ST/2 of the representative, and every window of every in-range length
// present exactly once.
func (b *Base) Validate(d *ts.Dataset) error {
	release, err := d.Pin()
	if err != nil {
		return fmt.Errorf("grouping: Validate: %w", err)
	}
	defer release()
	if got := DatasetChecksum(d); got != b.DatasetSum {
		return fmt.Errorf("grouping: Validate: dataset checksum %x does not match base %x", got, b.DatasetSum)
	}
	seen := make(map[ts.SubSeq]bool)
	for l, lg := range b.ByLength {
		half := b.HalfST(l)
		if l != lg.Length {
			return fmt.Errorf("grouping: Validate: map key %d != LengthGroups.Length %d", l, lg.Length)
		}
		for gi, g := range lg.Groups {
			if g.Length != l || len(g.Rep) != l {
				return fmt.Errorf("grouping: Validate: length %d group %d has bad shape", l, gi)
			}
			if len(g.Members) == 0 {
				return fmt.Errorf("grouping: Validate: length %d group %d is empty", l, gi)
			}
			for _, m := range g.Members {
				if err := m.Validate(d); err != nil {
					return fmt.Errorf("grouping: Validate: %w", err)
				}
				if m.Length != l {
					return fmt.Errorf("grouping: Validate: member %v in length-%d group", m, l)
				}
				if seen[m] {
					return fmt.Errorf("grouping: Validate: member %v appears twice", m)
				}
				seen[m] = true
				if r := dist.ED(m.Values(d), g.Rep); r > half+1e-9 {
					return fmt.Errorf("grouping: Validate: member %v radius %g exceeds ST/2 = %g", m, r, half)
				}
			}
		}
	}
	// Coverage: every in-range window must be present.
	for si, s := range d.Series {
		for l := b.MinLength; l <= b.MaxLength && l <= s.Len(); l++ {
			if _, ok := b.ByLength[l]; !ok {
				return fmt.Errorf("grouping: Validate: length %d missing from base", l)
			}
			for startIdx := 0; startIdx+l <= s.Len(); startIdx++ {
				if !seen[(ts.SubSeq{Series: si, Start: startIdx, Length: l})] {
					return fmt.Errorf("grouping: Validate: window %s[%d:%d) missing", s.Name, startIdx, startIdx+l)
				}
			}
		}
	}
	return nil
}

// DatasetChecksum computes an order-sensitive FNV-1a digest of the dataset
// name, series names, and raw value bits; used to tie a serialized base to
// its dataset.
func DatasetChecksum(d *ts.Dataset) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
		mix(0xFF)
	}
	mixStr(d.Name)
	for _, s := range d.Series {
		mixStr(s.Name)
		for _, v := range s.Values {
			bits := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				mix(byte(bits >> (8 * k)))
			}
		}
	}
	return h
}
