package grouping

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/ts"
)

// testDataset builds a small deterministic dataset with obvious cluster
// structure: two families of series (flat-ish and ramp-ish) plus noise.
func testDataset(t testing.TB, numSeries, length int, seed int64) *ts.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := ts.NewDataset("grouptest")
	for i := 0; i < numSeries; i++ {
		vals := make([]float64, length)
		if i%2 == 0 {
			for j := range vals {
				vals[j] = 0.5 + rng.NormFloat64()*0.02
			}
		} else {
			for j := range vals {
				vals[j] = float64(j)/float64(length) + rng.NormFloat64()*0.02
			}
		}
		d.MustAdd(ts.NewSeries(seriesName(i), vals))
	}
	return d
}

func seriesName(i int) string {
	return string(rune('A'+i%26)) + string(rune('0'+i/26))
}

func TestBuildBasics(t *testing.T) {
	d := testDataset(t, 6, 20, 1)
	b, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.MinLength != 4 || b.MaxLength != 8 {
		t.Fatalf("length range = [%d,%d]", b.MinLength, b.MaxLength)
	}
	wantLengths := []int{4, 5, 6, 7, 8}
	got := b.Lengths()
	if len(got) != len(wantLengths) {
		t.Fatalf("Lengths = %v", got)
	}
	for i, l := range wantLengths {
		if got[i] != l {
			t.Fatalf("Lengths = %v, want %v", got, wantLengths)
		}
	}
	// Every window accounted for.
	if b.NumSubsequences() != d.NumSubsequences(4, 8) {
		t.Fatalf("subsequences %d != windows %d", b.NumSubsequences(), d.NumSubsequences(4, 8))
	}
	if b.NumGroups() == 0 || b.NumGroups() > b.NumSubsequences() {
		t.Fatalf("groups = %d", b.NumGroups())
	}
	if b.CompactionRatio() < 1 {
		t.Fatalf("compaction ratio %g < 1", b.CompactionRatio())
	}
	if err := b.Validate(d); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildInvariantHolds(t *testing.T) {
	d := testDataset(t, 8, 30, 2)
	b, err := Build(d, Options{ST: 0.3, MinLength: 5, MaxLength: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range b.Lengths() {
		half := b.HalfST(l)
		for _, g := range b.GroupsOfLength(l) {
			if r := g.MaxRadius(d); r > half+1e-9 {
				t.Fatalf("length %d group radius %g > ST*l/2 %g", l, r, half)
			}
			// Pairwise diameter <= ST*l via metric triangle inequality;
			// spot check directly on small groups.
			if len(g.Members) <= 8 {
				for i := 0; i < len(g.Members); i++ {
					for j := i + 1; j < len(g.Members); j++ {
						dd := dist.ED(g.Members[i].Values(d), g.Members[j].Values(d))
						if dd > 2*half+1e-9 {
							t.Fatalf("pairwise %g > ST*l %g", dd, 2*half)
						}
					}
				}
			}
		}
	}
}

func TestBuildSkipRepairMayDrift(t *testing.T) {
	d := testDataset(t, 8, 30, 3)
	b, err := Build(d, Options{ST: 0.3, MinLength: 5, MaxLength: 10, SkipRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	// The unrepaired base still covers every window exactly once...
	if b.NumSubsequences() != d.NumSubsequences(5, 10) {
		t.Fatal("coverage broken without repair")
	}
	// ...but Validate may reject it (drift); both outcomes are legal, we
	// only require it not to panic.
	_ = b.Validate(d)
}

func TestBuildTightThresholdMakesSingletons(t *testing.T) {
	d := testDataset(t, 4, 16, 4)
	b, err := Build(d, Options{ST: 1e-12, MinLength: 4, MaxLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With a near-zero threshold, almost every window is its own group.
	if b.NumGroups() < b.NumSubsequences()/2 {
		t.Fatalf("expected near-singleton grouping, got %d groups for %d windows",
			b.NumGroups(), b.NumSubsequences())
	}
}

func TestBuildLooseThresholdCompacts(t *testing.T) {
	d := testDataset(t, 8, 24, 5)
	tight, err := Build(d, Options{ST: 0.05, MinLength: 6, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(d, Options{ST: 2.0, MinLength: 6, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NumGroups() > tight.NumGroups() {
		t.Fatalf("loose ST produced more groups (%d) than tight (%d)",
			loose.NumGroups(), tight.NumGroups())
	}
}

func TestBuildErrors(t *testing.T) {
	d := testDataset(t, 2, 10, 6)
	if _, err := Build(d, Options{ST: 0}); err == nil {
		t.Fatal("zero ST accepted")
	}
	if _, err := Build(d, Options{ST: 1, MinLength: 20, MaxLength: 30}); err == nil {
		t.Fatal("empty length range accepted")
	}
	if _, err := Build(ts.NewDataset("empty"), Options{ST: 1}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBuildDefaultsLengthRange(t *testing.T) {
	d := testDataset(t, 2, 12, 7)
	b, err := Build(d, Options{ST: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if b.MinLength != 2 || b.MaxLength != 12 {
		t.Fatalf("default range [%d,%d], want [2,12]", b.MinLength, b.MaxLength)
	}
}

func TestGroupsSortedByCardinality(t *testing.T) {
	d := testDataset(t, 8, 24, 8)
	b, err := Build(d, Options{ST: 0.4, MinLength: 6, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	gs := b.GroupsOfLength(6)
	for i := 1; i < len(gs); i++ {
		if gs[i].Count() > gs[i-1].Count() {
			t.Fatal("groups not sorted by descending cardinality")
		}
	}
	if b.GroupsOfLength(999) != nil {
		t.Fatal("absent length should return nil")
	}
}

func TestDatasetChecksumSensitivity(t *testing.T) {
	d1 := testDataset(t, 3, 10, 9)
	d2 := d1.Clone()
	if DatasetChecksum(d1) != DatasetChecksum(d2) {
		t.Fatal("clone checksum differs")
	}
	d2.Series[1].Values[3] += 1e-9
	if DatasetChecksum(d1) == DatasetChecksum(d2) {
		t.Fatal("value perturbation not detected")
	}
	d3 := d1.Clone()
	d3.Name = "other"
	if DatasetChecksum(d1) == DatasetChecksum(d3) {
		t.Fatal("name change not detected")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d := testDataset(t, 6, 20, 10)
	b, err := Build(d, Options{ST: 0.35, MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.DatasetName != b.DatasetName || back.DatasetSum != b.DatasetSum ||
		back.ST != b.ST || back.MinLength != b.MinLength || back.MaxLength != b.MaxLength {
		t.Fatalf("header mismatch: %+v vs %+v", back, b)
	}
	if back.NumGroups() != b.NumGroups() || back.NumSubsequences() != b.NumSubsequences() {
		t.Fatal("shape mismatch after round trip")
	}
	for _, l := range b.Lengths() {
		g1 := b.GroupsOfLength(l)
		g2 := back.GroupsOfLength(l)
		if len(g1) != len(g2) {
			t.Fatalf("length %d group count mismatch", l)
		}
		for i := range g1 {
			if len(g1[i].Members) != len(g2[i].Members) {
				t.Fatalf("length %d group %d member count mismatch", l, i)
			}
			for k := range g1[i].Rep {
				if g1[i].Rep[k] != g2[i].Rep[k] {
					t.Fatalf("rep value drift after round trip")
				}
			}
			for k := range g1[i].Members {
				if g1[i].Members[k] != g2[i].Members[k] {
					t.Fatalf("member drift after round trip")
				}
			}
		}
	}
	if err := back.Validate(d); err != nil {
		t.Fatalf("round-tripped base fails validation: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	d := testDataset(t, 3, 12, 11)
	b, err := Build(d, Options{ST: 0.5, MinLength: 4, MaxLength: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Flipped payload byte -> CRC failure.
	bad2 := append([]byte{}, raw...)
	bad2[len(bad2)/2] ^= 0x01
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-6])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := testDataset(t, 4, 14, 12)
	b, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.onex")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, d)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGroups() != b.NumGroups() {
		t.Fatal("file round trip changed base")
	}
	// Mismatched dataset rejected.
	other := testDataset(t, 4, 14, 999)
	if _, err := LoadFile(path, other); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
	// nil dataset skips the check.
	if _, err := LoadFile(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateDetectsTampering(t *testing.T) {
	d := testDataset(t, 4, 16, 13)
	b, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Drop one member: coverage check must fire.
	for _, l := range b.Lengths() {
		gs := b.GroupsOfLength(l)
		if len(gs) > 0 && len(gs[0].Members) > 1 {
			gs[0].Members = gs[0].Members[1:]
			break
		}
	}
	if err := b.Validate(d); err == nil {
		t.Fatal("member removal not detected")
	}
}

func TestValidateDetectsRadiusViolation(t *testing.T) {
	d := testDataset(t, 4, 16, 14)
	b, err := Build(d, Options{ST: 0.4, MinLength: 5, MaxLength: 5})
	if err != nil {
		t.Fatal(err)
	}
	gs := b.GroupsOfLength(5)
	// Push a representative far away.
	for i := range gs[0].Rep {
		gs[0].Rep[i] += 100
	}
	if err := b.Validate(d); err == nil {
		t.Fatal("radius violation not detected")
	}
}

func TestBuildDeterministicSingleWorker(t *testing.T) {
	d := testDataset(t, 6, 20, 15)
	b1, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 8, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Per-length construction is deterministic regardless of worker count
	// (workers parallelize across lengths, not within).
	if b1.NumGroups() != b2.NumGroups() || b1.NumSubsequences() != b2.NumSubsequences() {
		t.Fatalf("worker count changed result: %d/%d vs %d/%d",
			b1.NumGroups(), b1.NumSubsequences(), b2.NumGroups(), b2.NumSubsequences())
	}
}

func TestBuildStatspopulated(t *testing.T) {
	d := testDataset(t, 6, 20, 16)
	b, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := b.BuildStats
	if st.NumWindows == 0 || st.NumGroups == 0 || st.Duration <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.NumWindows != d.NumSubsequences(4, 8) {
		t.Fatalf("window count %d != expected %d", st.NumWindows, d.NumSubsequences(4, 8))
	}
}

// Fuzz-ish property check across random datasets: invariant + coverage.
func TestPropertyBuildInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		d := ts.NewDataset("prop")
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			l := 8 + rng.Intn(12)
			vals := make([]float64, l)
			v := rng.Float64()
			for j := range vals {
				v += rng.NormFloat64() * 0.1
				vals[j] = v
			}
			d.MustAdd(ts.NewSeries(seriesName(i), vals))
		}
		st := 0.05 + rng.Float64()*0.8
		b, err := Build(d, Options{ST: st, MinLength: 3, MaxLength: 7})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := b.Validate(d); err != nil {
			t.Fatalf("trial %d (ST=%g): %v", trial, st, err)
		}
	}
}

func TestMaxRadiusFinite(t *testing.T) {
	d := testDataset(t, 4, 12, 17)
	b, err := Build(d, Options{ST: 0.4, MinLength: 4, MaxLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range b.GroupsOfLength(4) {
		if r := g.MaxRadius(d); math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			t.Fatalf("bad radius %g", r)
		}
	}
}
