package grouping

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ts"
)

func TestAddSeriesPreservesInvariants(t *testing.T) {
	d := testDataset(t, 5, 24, 41)
	b, err := Build(d, Options{ST: 0.05, MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	before := b.NumSubsequences()

	// Append a new series to the dataset, then index it.
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 24)
	v := 0.4
	for i := range vals {
		v += rng.NormFloat64() * 0.03
		vals[i] = v
	}
	d.MustAdd(ts.NewSeries("ZZnew", vals))
	if err := b.AddSeries(d, d.Len()-1); err != nil {
		t.Fatal(err)
	}

	// Full validation: coverage (including the new series' windows),
	// radius invariant, no duplicates, checksum.
	if err := b.Validate(d); err != nil {
		t.Fatalf("post-insert validation: %v", err)
	}
	wantNew := 0
	for l := 4; l <= 9; l++ {
		wantNew += 24 - l + 1
	}
	if got := b.NumSubsequences() - before; got != wantNew {
		t.Fatalf("inserted %d windows, want %d", got, wantNew)
	}
	if b.BuildStats.NumWindows != b.NumSubsequences() {
		t.Fatalf("stats window count %d != actual %d", b.BuildStats.NumWindows, b.NumSubsequences())
	}
}

func TestAddSeriesRejectsDoubleInsert(t *testing.T) {
	d := testDataset(t, 4, 20, 43)
	b, err := Build(d, Options{ST: 0.05, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSeries(d, 0); err == nil {
		t.Fatal("double insertion accepted")
	}
	if err := b.AddSeries(d, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := b.AddSeries(d, 99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	// A streamed series is tracked too: inserting it again must fail
	// without a member scan.
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 20)
	v := 0.5
	for i := range vals {
		v += rng.NormFloat64() * 0.03
		vals[i] = v
	}
	d.MustAdd(ts.NewSeries("ZZstream", vals))
	if err := b.AddSeries(d, d.Len()-1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSeries(d, d.Len()-1); err == nil {
		t.Fatal("double insertion of a streamed series accepted")
	}
}

// TestAddSeriesDoubleInsertAfterLoad pins that the O(1) indexed-series set
// — which is not part of the wire format — is recomputed from the stored
// membership on load, so a deserialized base still rejects re-streaming.
func TestAddSeriesDoubleInsertAfterLoad(t *testing.T) {
	d := testDataset(t, 4, 20, 46)
	b, err := Build(d, Options{ST: 0.05, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for si := 0; si < d.Len(); si++ {
		if err := loaded.AddSeries(d, si); err == nil {
			t.Fatalf("loaded base accepted double insertion of series %d", si)
		}
	}
	// Fresh series still stream in after a load, and get tracked.
	rng := rand.New(rand.NewSource(8))
	vals := make([]float64, 20)
	v := 0.5
	for i := range vals {
		v += rng.NormFloat64() * 0.03
		vals[i] = v
	}
	d.MustAdd(ts.NewSeries("ZZpostload", vals))
	if err := loaded.AddSeries(d, d.Len()-1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddSeries(d, d.Len()-1); err == nil {
		t.Fatal("loaded base accepted double insertion of a streamed series")
	}
	if err := loaded.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestAddSeriesKeepsGroupOrdering(t *testing.T) {
	d := testDataset(t, 5, 24, 44)
	b, err := Build(d, Options{ST: 0.08, MinLength: 5, MaxLength: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a near-duplicate of an existing series so existing groups
	// grow rather than fragment.
	clone := make([]float64, 24)
	copy(clone, d.Series[0].Values)
	for i := range clone {
		clone[i] += 0.001
	}
	d.MustAdd(ts.NewSeries("ZZdup", clone))
	if err := b.AddSeries(d, d.Len()-1); err != nil {
		t.Fatal(err)
	}
	gs := b.GroupsOfLength(5)
	for i := 1; i < len(gs); i++ {
		if gs[i].Count() > gs[i-1].Count() {
			t.Fatal("group ordering lost after insert")
		}
	}
	if err := b.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestAddSeriesShortSeries(t *testing.T) {
	d := testDataset(t, 3, 20, 45)
	b, err := Build(d, Options{ST: 0.05, MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A series shorter than MinLength contributes nothing but must not fail.
	d.MustAdd(ts.NewSeries("tiny", []float64{1, 2, 3}))
	before := b.NumSubsequences()
	if err := b.AddSeries(d, d.Len()-1); err != nil {
		t.Fatal(err)
	}
	if b.NumSubsequences() != before {
		t.Fatal("short series contributed windows")
	}
	// Windowless series are not tracked as indexed, so re-streaming one
	// stays an accepted no-op (on a fresh and a reloaded base alike).
	if err := b.AddSeries(d, d.Len()-1); err != nil {
		t.Fatalf("re-adding a windowless series: %v", err)
	}
	if err := b.Validate(d); err != nil {
		t.Fatal(err)
	}
}
