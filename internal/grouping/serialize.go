package grouping

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/fsutil"
	"repro/internal/ts"
)

// Binary base format, little endian throughout:
//
//	magic   [8]byte  "ONEXBAS1"
//	payload          everything below, CRC-covered
//	  u64 dataset checksum, u8 norm kind
//	  str dataset name
//	  f64 ST, u32 minLen, u32 maxLen
//	  build stats: i64 durationNs, u64 windows, u64 groups, u64 ed, u64 rehomed, u64 reseeded
//	  u32 numLengths
//	  per length (ascending): u32 length, u32 numGroups
//	    per group: f64[length] rep, u32 numMembers, per member (u32 series, u32 start)
//	crc32   u32     IEEE CRC of the payload
const baseMagic = "ONEXBAS1"

type countingWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
}

func (cw *countingWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.crc.Write(p)
}

func (cw *countingWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	cw.write(buf[:])
}

func (cw *countingWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	cw.write(buf[:])
}

func (cw *countingWriter) f64(v float64) { cw.u64(math.Float64bits(v)) }

func (cw *countingWriter) str(s string) {
	cw.u32(uint32(len(s)))
	cw.write([]byte(s))
}

type countingReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
}

func (cr *countingReader) read(p []byte) {
	if cr.err != nil {
		return
	}
	if _, err := io.ReadFull(cr.r, p); err != nil {
		cr.err = err
		return
	}
	cr.crc.Write(p)
}

func (cr *countingReader) u32() uint32 {
	var buf [4]byte
	cr.read(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (cr *countingReader) u64() uint64 {
	var buf [8]byte
	cr.read(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (cr *countingReader) f64() float64 { return math.Float64frombits(cr.u64()) }

func (cr *countingReader) str(maxLen uint32) string {
	n := cr.u32()
	if cr.err != nil {
		return ""
	}
	if n > maxLen {
		cr.err = fmt.Errorf("grouping: string length %d exceeds limit %d", n, maxLen)
		return ""
	}
	buf := make([]byte, n)
	cr.read(buf)
	return string(buf)
}

// Write serializes the base.
func (b *Base) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(baseMagic); err != nil {
		return fmt.Errorf("grouping: Write: %w", err)
	}
	cw := &countingWriter{w: bw, crc: crc32.NewIEEE()}
	cw.u64(b.DatasetSum)
	cw.write([]byte{byte(b.Norm)})
	cw.str(b.DatasetName)
	cw.f64(b.ST)
	cw.u32(uint32(b.MinLength))
	cw.u32(uint32(b.MaxLength))
	cw.u64(uint64(b.BuildStats.Duration.Nanoseconds()))
	cw.u64(uint64(b.BuildStats.NumWindows))
	cw.u64(uint64(b.BuildStats.NumGroups))
	cw.u64(uint64(b.BuildStats.EDComputed))
	cw.u64(uint64(b.BuildStats.Rehomed))
	cw.u64(uint64(b.BuildStats.Reseeded))

	lengths := b.Lengths()
	cw.u32(uint32(len(lengths)))
	for _, l := range lengths {
		lg := b.ByLength[l]
		cw.u32(uint32(l))
		cw.u32(uint32(len(lg.Groups)))
		for _, g := range lg.Groups {
			for _, v := range g.Rep {
				cw.f64(v)
			}
			cw.u32(uint32(len(g.Members)))
			for _, m := range g.Members {
				cw.u32(uint32(m.Series))
				cw.u32(uint32(m.Start))
			}
		}
	}
	if cw.err != nil {
		return fmt.Errorf("grouping: Write: %w", cw.err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("grouping: Write: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("grouping: Write: %w", err)
	}
	return nil
}

// Read deserializes a base written by Write, verifying magic and CRC.
func Read(r io.Reader) (*Base, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(baseMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("grouping: Read: %w", err)
	}
	if string(magic) != baseMagic {
		return nil, fmt.Errorf("grouping: Read: bad magic %q", magic)
	}
	cr := &countingReader{r: br, crc: crc32.NewIEEE()}
	b := &Base{ByLength: make(map[int]*LengthGroups)}
	b.DatasetSum = cr.u64()
	var kindBuf [1]byte
	cr.read(kindBuf[:])
	b.Norm = ts.NormKind(kindBuf[0])
	b.DatasetName = cr.str(1 << 20)
	b.ST = cr.f64()
	b.MinLength = int(cr.u32())
	b.MaxLength = int(cr.u32())
	b.BuildStats.Duration = time.Duration(cr.u64())
	b.BuildStats.NumWindows = int(cr.u64())
	b.BuildStats.NumGroups = int(cr.u64())
	b.BuildStats.EDComputed = int(cr.u64())
	b.BuildStats.Rehomed = int(cr.u64())
	b.BuildStats.Reseeded = int(cr.u64())

	numLengths := cr.u32()
	if cr.err == nil && numLengths > 1<<24 {
		return nil, fmt.Errorf("grouping: Read: implausible length count %d", numLengths)
	}
	for li := uint32(0); li < numLengths && cr.err == nil; li++ {
		length := int(cr.u32())
		numGroups := cr.u32()
		if cr.err != nil {
			break
		}
		if length <= 0 || numGroups > 1<<28 {
			return nil, fmt.Errorf("grouping: Read: implausible length %d / group count %d", length, numGroups)
		}
		lg := &LengthGroups{Length: length, Groups: make([]*Group, 0, numGroups)}
		for gi := uint32(0); gi < numGroups && cr.err == nil; gi++ {
			rep := make([]float64, length)
			for i := range rep {
				rep[i] = cr.f64()
			}
			numMembers := cr.u32()
			if cr.err != nil {
				break
			}
			if numMembers > 1<<28 {
				return nil, fmt.Errorf("grouping: Read: implausible member count %d", numMembers)
			}
			members := make([]ts.SubSeq, numMembers)
			for mi := range members {
				members[mi] = ts.SubSeq{
					Series: int(cr.u32()),
					Start:  int(cr.u32()),
					Length: length,
				}
			}
			lg.Groups = append(lg.Groups, &Group{Length: length, Rep: rep, Members: members})
		}
		b.ByLength[length] = lg
	}
	if cr.err != nil {
		return nil, fmt.Errorf("grouping: Read: %w", cr.err)
	}
	wantCRC := cr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("grouping: Read: trailing CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != wantCRC {
		return nil, fmt.Errorf("grouping: Read: CRC mismatch: stored %08x, computed %08x", got, wantCRC)
	}
	// The indexed-series set is not part of the wire format; recompute it
	// from the membership so AddSeries keeps its O(1) double-insert check
	// after a load.
	b.reindexSeries()
	return b, nil
}

// SaveFile writes the base to path atomically: the bytes go to a temp file
// in the same directory, are fsynced, and are renamed over path, so a crash
// mid-write can never corrupt an existing base file (the historical
// in-place os.Create could).
func (b *Base) SaveFile(path string) error {
	if err := fsutil.WriteFileAtomic(path, b.Write); err != nil {
		return fmt.Errorf("grouping: SaveFile: %w", err)
	}
	return nil
}

// LoadFile reads a base from path and, when d is non-nil, verifies it was
// built from d.
func LoadFile(path string, d *ts.Dataset) (*Base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("grouping: LoadFile: %w", err)
	}
	defer f.Close()
	b, err := Read(f)
	if err != nil {
		return nil, err
	}
	if d != nil {
		if got := DatasetChecksum(d); got != b.DatasetSum {
			return nil, fmt.Errorf("grouping: LoadFile: base %s was built from a different dataset (checksum %x != %x)",
				path, b.DatasetSum, got)
		}
	}
	return b, nil
}
