package grouping

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/ts"
)

// AddSeries incrementally indexes every window of one series into an
// existing base, without rebuilding. The series must already be present in
// d (typically just appended); its windows join the nearest existing group
// whose frozen representative is within the ST*l/2 radius, or seed new
// singleton groups. Representatives never move during an insert, so the
// §3.1 invariant is preserved exactly for old and new members alike.
//
// The base's dataset checksum is refreshed to d's current state, so
// engines must be constructed (or reconstructed) after the insert.
// AddSeries is not safe to run concurrently with queries on the same base.
func (b *Base) AddSeries(d *ts.Dataset, si int) error {
	if si < 0 || si >= d.Len() {
		return fmt.Errorf("grouping: AddSeries: series index %d out of range", si)
	}
	// The insert compares the new series' windows against existing group
	// representatives and the checksum refresh walks every value; pin
	// mmap-backed storage across both (no-op for heap datasets).
	release, err := d.Pin()
	if err != nil {
		return fmt.Errorf("grouping: AddSeries: %w", err)
	}
	defer release()
	s := d.Series[si]
	// Reject double-insertion: the caller is misusing the API. The indexed
	// set makes this O(1) per call instead of a scan over every member of
	// every group (O(total subsequences) per streamed series).
	if b.indexed[si] {
		return fmt.Errorf("grouping: AddSeries: series %d already indexed", si)
	}
	added := 0
	for l := b.MinLength; l <= b.MaxLength && l <= s.Len(); l++ {
		half := b.HalfST(l)
		lg := b.ByLength[l]
		if lg == nil {
			lg = &LengthGroups{Length: l}
			b.ByLength[l] = lg
		}
		for start := 0; start+l <= s.Len(); start++ {
			w := s.Values[start : start+l]
			best := -1
			bestD := math.Inf(1)
			for gi, g := range lg.Groups {
				if dist.LBKim(w, g.Rep) > half {
					continue
				}
				ub := half
				if bestD < ub {
					ub = bestD
				}
				dd := dist.EDEarlyAbandon(w, g.Rep, ub)
				if dd <= half && dd < bestD {
					best = gi
					bestD = dd
				}
			}
			ref := ts.SubSeq{Series: si, Start: start, Length: l}
			if best >= 0 {
				lg.Groups[best].Members = append(lg.Groups[best].Members, ref)
			} else {
				rep := make([]float64, l)
				copy(rep, w)
				lg.Groups = append(lg.Groups, &Group{Length: l, Rep: rep, Members: []ts.SubSeq{ref}})
			}
			added++
		}
		// Keep the overview ordering (largest groups first).
		sort.SliceStable(lg.Groups, func(i, j int) bool {
			return len(lg.Groups[i].Members) > len(lg.Groups[j].Members)
		})
	}
	if added > 0 {
		// Series too short to contribute stay unmarked, so re-streaming one
		// remains an accepted no-op (matching the old member-scan check and
		// a base reloaded from disk).
		if b.indexed == nil {
			b.indexed = make(map[int]bool)
		}
		b.indexed[si] = true
	}
	b.BuildStats.NumWindows += added
	b.BuildStats.NumGroups = b.NumGroups()
	b.DatasetSum = DatasetChecksum(d)
	return nil
}

// RemoveSeries is AddSeries' inverse for ingest rollback: it removes every
// member of series si from the base, drops groups that become empty, and
// refreshes the dataset checksum against d (which must already have the
// series removed). It is only sound for the most recently added series —
// member references hold series indices, and removing an interior series
// would shift every later index. Representatives never move during an
// insert, so removal restores the exact pre-insert grouping (group order
// among equal cardinalities may differ; queries are order-independent).
func (b *Base) RemoveSeries(d *ts.Dataset, si int) {
	removed := 0
	for l, lg := range b.ByLength {
		for _, g := range lg.Groups {
			kept := g.Members[:0]
			for _, m := range g.Members {
				if m.Series == si {
					removed++
					continue
				}
				kept = append(kept, m)
			}
			g.Members = kept
		}
		nonEmpty := lg.Groups[:0]
		for _, g := range lg.Groups {
			if len(g.Members) > 0 {
				nonEmpty = append(nonEmpty, g)
			}
		}
		lg.Groups = nonEmpty
		if len(lg.Groups) == 0 {
			delete(b.ByLength, l)
			continue
		}
		sort.SliceStable(lg.Groups, func(i, j int) bool {
			return len(lg.Groups[i].Members) > len(lg.Groups[j].Members)
		})
	}
	delete(b.indexed, si)
	b.BuildStats.NumWindows -= removed
	b.BuildStats.NumGroups = b.NumGroups()
	b.DatasetSum = DatasetChecksum(d)
}

// reindexSeries rebuilds the indexed-series set from the stored membership
// (used after deserialization, where only members are persisted). The set
// always equals "series with at least one member" — Build and AddSeries
// maintain the same invariant — so a reloaded base behaves identically to
// a fresh one.
func (b *Base) reindexSeries() {
	b.indexed = make(map[int]bool)
	for _, lg := range b.ByLength {
		for _, g := range lg.Groups {
			for _, m := range g.Members {
				b.indexed[m.Series] = true
			}
		}
	}
}
