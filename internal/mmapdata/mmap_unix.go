//go:build unix

package mmapdata

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared (so the pages stay
// page-cache-backed, never copied). heap reports whether the returned
// buffer is an ordinary heap allocation instead of a mapping; on unix it
// is always a mapping.
func mapFile(f *os.File, size int) (data []byte, heap bool, err error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// munmap releases a mapping produced by mapFile.
func munmap(data []byte) error { return syscall.Munmap(data) }
