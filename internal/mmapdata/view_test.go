package mmapdata

import (
	"encoding/binary"
	"math"
	"testing"
)

// TestFloat64ViewMatchesCopy: the zero-copy reinterpretation and the
// explicit little-endian decode must agree bit-for-bit — including on
// payloads the viewer refuses to alias (misaligned starts), where it must
// fall back to copying rather than returning garbage.
func TestFloat64ViewMatchesCopy(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, math.MaxFloat64, -0.0}
	backing := make([]byte, 8+len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(backing[8+i*8:], math.Float64bits(v))
	}

	for name, raw := range map[string][]byte{
		"aligned":    backing[8:],
		"misaligned": backing[7 : len(backing)-1], // same length, off-by-one start
		"empty":      nil,
	} {
		t.Run(name, func(t *testing.T) {
			got := float64View(raw)
			want := copyFloat64s(raw)
			if len(got) != len(want) {
				t.Fatalf("len %d != %d", len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		})
	}
}
