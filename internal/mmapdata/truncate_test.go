package mmapdata

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grouping"
	"repro/internal/store"
	"repro/internal/ts"
)

// bigSnapshot writes a snapshot that spans several pages, so truncating it
// leaves whole pages of the mapping past the new EOF (accessing those is
// what raises SIGBUS; the tail of the last in-file page only reads zeros).
func bigSnapshot(t *testing.T) string {
	t.Helper()
	vals := make([]float64, 8192) // 64 KiB of values: ~16 pages
	for i := range vals {
		vals[i] = (math.Sin(float64(i)/7) + 1) / 2
	}
	d := ts.NewDataset("mmap-trunc")
	d.MustAdd(ts.NewSeries("long", vals))
	base, err := grouping.Build(d, grouping.Options{ST: 0.05, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	data, err := store.EncodeSnapshot(&store.State{
		Dataset: d,
		Norm:    ts.NormInfo{Kind: ts.NormNone},
		Base:    base,
		Version: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.onex")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDecodeMappedTruncationFault exercises the race OpenState's fault guard
// exists for: the file shrinks between map and decode, so the decode's CRC
// walk faults past the new EOF. The guard must convert that into a typed
// ErrTruncated (also classifiable as snapshot corruption) — the process must
// not die with SIGBUS.
func TestDecodeMappedTruncationFault(t *testing.T) {
	path := bigSnapshot(t)
	m, err := openMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if m.heap {
		t.Skip("eager-decode fallback platform: no mapping to fault")
	}
	if err := os.Truncate(path, 4096); err != nil {
		t.Fatal(err)
	}
	_, err = decodeMapped(m)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("decode over truncated mapping = %v, want ErrTruncated", err)
	}
	if !errors.Is(err, store.ErrSnapshotCorrupt) {
		t.Fatalf("truncation error %v must also classify as snapshot corruption", err)
	}
}

// TestDecodeMappedGrowthIsHarmless: the guard is scoped to the decode — a
// valid file decodes identically under it, proving SetPanicOnFault isn't
// masking or altering the normal path.
func TestDecodeMappedIntact(t *testing.T) {
	path := bigSnapshot(t)
	m, err := openMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	st, err := decodeMapped(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset.Len() != 1 || len(st.Dataset.Series[0].Values) != 8192 {
		t.Fatalf("decoded shape %d/%d", st.Dataset.Len(), len(st.Dataset.Series[0].Values))
	}
}
