package mmapdata

import (
	"encoding/binary"
	"math"
)

// copyFloat64s decodes a little-endian float64 run into a fresh heap
// slice — the portable slow path behind float64View, byte-compatible with
// the zero-copy reinterpretation.
func copyFloat64s(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}
