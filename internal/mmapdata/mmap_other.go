//go:build !unix

package mmapdata

import (
	"io"
	"os"
)

// mapFile on platforms without a usable mmap reads the whole file into a
// heap buffer instead. Every caller-visible behavior is preserved — the
// same decoder runs over the same bytes — only Kind reports
// "mmap-fallback" and the values are materialized rather than paged.
func mapFile(f *os.File, size int) (data []byte, heap bool, err error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

// munmap is never called for heap buffers; present to satisfy the shared
// Release path's signature.
func munmap(data []byte) error { return nil }
