package mmapdata_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/grouping"
	"repro/internal/mmapdata"
	"repro/internal/store"
	"repro/internal/ts"
)

// testState builds a small but real State, mirroring the store package's
// fixture: a dataset with meta, a grouping base over it, and non-default
// configuration everywhere.
func testState(t testing.TB) *store.State {
	t.Helper()
	d := ts.NewDataset("mmap-test")
	d.MustAdd(ts.NewSeries("a", []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.4, 0.3, 0.2, 0.1, 0.2, 0.3, 0.4}))
	d.MustAdd(ts.NewSeries("b", []float64{0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.5}))
	c := &ts.Series{Name: "c", Values: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.8},
		Meta: map[string]string{"unit": "kW", "site": "x1"}}
	d.MustAdd(c)
	base, err := grouping.Build(d, grouping.Options{ST: 0.08, MinLength: 4, MaxLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	return &store.State{
		Dataset:   d,
		Norm:      ts.NormInfo{Kind: ts.NormMinMax, Min: -2.5, Max: 7.25},
		Base:      base,
		Version:   42,
		Band:      3,
		Exact:     true,
		CreatedAt: time.Unix(1700000000, 123456789),
	}
}

// writeSnapshot encodes st into a snapshot file in a fresh temp dir and
// returns both the path and the encoded bytes (for corruption tests).
func writeSnapshot(t testing.TB, st *store.State) (string, []byte) {
	t.Helper()
	data, err := store.EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.onex")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestOpenStateMatchesEagerDecode is the zero-copy acceptance bar: the
// mapped decode must be bit-identical to the eager decode of the same file,
// and the returned dataset must carry the mapping as its ValueSource.
func TestOpenStateMatchesEagerDecode(t *testing.T) {
	want := testState(t)
	path, data := writeSnapshot(t, want)

	eager, err := store.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mmapdata.OpenState(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := st.Dataset.Source.(*mmapdata.Mapping)
	if !ok {
		t.Fatalf("Dataset.Source = %T, want *mmapdata.Mapping", st.Dataset.Source)
	}
	defer m.Release()

	if k := m.Kind(); k != "mmap" && k != "mmap-fallback" {
		t.Fatalf("Kind() = %q", k)
	}
	if m.Path() != path {
		t.Fatalf("Path() = %q, want %q", m.Path(), path)
	}
	if m.MappedBytes() != int64(len(data)) {
		t.Fatalf("MappedBytes() = %d, want file size %d", m.MappedBytes(), len(data))
	}
	// The open-time decode walked every byte (all CRCs verified), so on a
	// true mapping resident memory is either known (>0) or unknowable (-1).
	if rb := m.ResidentBytes(); rb == 0 || rb < -1 || rb > m.MappedBytes() {
		t.Fatalf("ResidentBytes() = %d (mapped %d)", rb, m.MappedBytes())
	}

	if st.Version != eager.Version || st.Band != eager.Band || st.Exact != eager.Exact ||
		st.Norm.Kind != eager.Norm.Kind || st.Norm.Min != eager.Norm.Min ||
		st.Norm.Max != eager.Norm.Max || !st.CreatedAt.Equal(eager.CreatedAt) {
		t.Fatalf("config drift: mmap %+v, eager %+v", st, eager)
	}
	if st.Dataset.Len() != eager.Dataset.Len() {
		t.Fatalf("series count %d != %d", st.Dataset.Len(), eager.Dataset.Len())
	}
	for i, es := range eager.Dataset.Series {
		ms := st.Dataset.Series[i]
		if ms.Name != es.Name || len(ms.Values) != len(es.Values) {
			t.Fatalf("series %d shape: %s/%d != %s/%d", i, ms.Name, len(ms.Values), es.Name, len(es.Values))
		}
		for j, v := range es.Values {
			if ms.Values[j] != v {
				t.Fatalf("series %s value %d: %v != %v (must be bit-exact)", es.Name, j, ms.Values[j], v)
			}
		}
		for k, v := range es.Meta {
			if ms.Meta[k] != v {
				t.Fatalf("series %s meta %q lost", es.Name, k)
			}
		}
	}
	if st.Base.DatasetSum != eager.Base.DatasetSum {
		t.Fatalf("base checksum %x != %x", st.Base.DatasetSum, eager.Base.DatasetSum)
	}
}

// TestOpenStateMissingFile pins the SnapshotOpener contract: a missing file
// must surface as os.ErrNotExist so store.Load treats it as "no snapshot",
// not as damage.
func TestOpenStateMissingFile(t *testing.T) {
	_, err := mmapdata.OpenState(filepath.Join(t.TempDir(), "nope.onex"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestOpenStateCorruption drives every damage class through the mmap open:
// each must come back as a typed store.ErrSnapshotCorrupt — never a panic,
// never a SIGBUS, and never a silently wrong dataset.
func TestOpenStateCorruption(t *testing.T) {
	// Snapshot header layout (see store/snapshot.go): 8-byte magic, u32
	// version, u32 section count, n x 32-byte entries, u32 header CRC.
	const fixed = 8 + 4 + 4
	for name, corrupt := range map[string]func([]byte) []byte{
		"empty file": func(data []byte) []byte {
			return nil
		},
		"torn section table": func(data []byte) []byte {
			return data[:fixed+10] // mid-entry: shorter than the declared table
		},
		"bad magic": func(data []byte) []byte {
			data[0] ^= 0xFF
			return data
		},
		"flipped payload byte": func(data []byte) []byte {
			data[len(data)-9] ^= 0x01 // inside the BASE payload: section CRC must catch it
			return data
		},
		"truncated tail": func(data []byte) []byte {
			return data[:len(data)-9] // last section now reaches past EOF
		},
		"section length past EOF": func(data []byte) []byte {
			// Inflate the DATASET section's length (entry 1, length at +16)
			// and recompute the header CRC so only the bounds check can
			// reject it — the file itself must never be dereferenced there.
			n := binary.LittleEndian.Uint32(data[8+4:])
			binary.LittleEndian.PutUint64(data[fixed+1*32+16:], uint64(len(data))*16)
			headerSize := fixed + int(n)*32 + 4
			binary.LittleEndian.PutUint32(data[headerSize-4:], crc32.ChecksumIEEE(data[:headerSize-4]))
			return data
		},
	} {
		t.Run(name, func(t *testing.T) {
			path, data := writeSnapshot(t, testState(t))
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := mmapdata.OpenState(path)
			if err == nil {
				st.Dataset.Source.Release()
				t.Fatal("corrupted snapshot opened without error")
			}
			if !errors.Is(err, store.ErrSnapshotCorrupt) {
				t.Fatalf("err = %v, want store.ErrSnapshotCorrupt", err)
			}
		})
	}
}

// TestRetainAfterRelease pins the refcount lifecycle: pins taken before the
// owner releases keep the mapping alive, and once the count hits zero any
// further Retain must fail with ErrReleased instead of resurrecting freed
// storage.
func TestRetainAfterRelease(t *testing.T) {
	path, _ := writeSnapshot(t, testState(t))
	st, err := mmapdata.OpenState(path)
	if err != nil {
		t.Fatal(err)
	}
	m := st.Dataset.Source.(*mmapdata.Mapping)

	if err := m.Retain(); err != nil { // a walk pins the mapping
		t.Fatal(err)
	}
	m.Release() // owner closes: count 2 -> 1, storage must survive the pin
	v := st.Dataset.Series[0].Values
	if v[0] != 0.1 || v[len(v)-1] != 0.4 {
		t.Fatalf("mapped values unreadable under pin after owner release: %v", v[:2])
	}
	m.Release() // the walk finishes: count 1 -> 0, storage reclaimed

	if err := m.Retain(); !errors.Is(err, mmapdata.ErrReleased) {
		t.Fatalf("Retain after last release = %v, want ErrReleased", err)
	}
	if m.MappedBytes() == 0 {
		t.Fatal("MappedBytes must stay readable after release (status endpoints)")
	}
}

// TestReleaseUnderflowPanics: an unbalanced Release is a caller bug; the
// mapping panics loudly rather than silently corrupting the count.
func TestReleaseUnderflowPanics(t *testing.T) {
	path, _ := writeSnapshot(t, testState(t))
	st, err := mmapdata.OpenState(path)
	if err != nil {
		t.Fatal(err)
	}
	m := st.Dataset.Source.(*mmapdata.Mapping)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	m.Release()
}
