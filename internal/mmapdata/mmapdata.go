// Package mmapdata opens ONEX snapshot files as memory-mapped, zero-copy
// datasets, so a database larger than RAM can be served straight off the
// page cache instead of being decoded eagerly onto the heap.
//
// OpenState maps the snapshot read-only and runs the regular store decoder
// over the mapping with a value viewer that reinterprets each series'
// 8-aligned little-endian float64 run in place (see store.Float64Viewer).
// The structural metadata — names, meta maps, the grouping base — is small
// and decodes onto the heap as usual; the value runs, which dominate the
// file, stay in the mapping and page in on demand. The returned
// store.State carries the mapping as its Dataset's ts.ValueSource.
//
// Lifetime is refcounted: the opener holds the initial reference and every
// walk that dereferences mapped values pins the mapping (ts.Dataset.Pin)
// for its duration, so releasing the owner's reference (onex.DB.Close)
// never unmaps storage under an in-flight scan. Compaction is safe by
// inode semantics: the atomic rename that installs a new snapshot leaves
// the mapped old file alive until the last reference drops — readers pin
// the incarnation they started on.
//
// A snapshot damaged on disk is reported as a typed error, never a fault:
// the open-time decode verifies the header and every section CRC against
// the true file size, and runs under a page-fault guard
// (debug.SetPanicOnFault) that converts a truncation race — the file
// shrinking between stat and decode — into ErrTruncated. After a
// successful open the file is never truncated in place (the store engine
// only ever replaces snapshots by rename), so the mapping stays valid.
//
// On platforms without a usable mmap the package transparently falls back
// to an eager read into the heap behind the same interface (Kind reports
// "mmap-fallback"), so callers never branch on platform.
package mmapdata

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/store"
)

// ErrTruncated reports that the snapshot file shrank while it was being
// decoded — the mapping faulted past end-of-file. The store's engines only
// replace snapshots by atomic rename, so this indicates outside
// interference with the store directory.
var ErrTruncated = errors.New("mmapdata: snapshot truncated while reading")

// ErrReleased is returned by Retain after the mapping's last reference has
// dropped and the storage has been reclaimed. The dataset it backed is
// gone; callers must not retry.
var ErrReleased = errors.New("mmapdata: mapping released")

// Mapping is one read-only mapped snapshot file (or its eager-decode
// fallback). It implements ts.ValueSource: the dataset decoded from it
// carries it as Source, and every value walk pins it via Retain/Release.
//
// The counter starts at 1 for the opener; OpenState's caller owns that
// reference and must Release it exactly once (onex.DB.Close does). The
// data is unmapped when the count reaches zero.
type Mapping struct {
	path string
	data []byte
	size int64 // len(data) at open; readable without holding a reference
	heap bool  // fallback: data is a heap buffer, not a mapping
	refs atomic.Int64
}

// Retain pins the mapping for one walk. It fails with ErrReleased once the
// last reference has dropped.
func (m *Mapping) Retain() error {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return ErrReleased
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return nil
		}
	}
}

// Release drops one reference; the last release unmaps the file. Calling
// Release more times than Retain (plus the opener's initial reference) is
// a bug and panics rather than corrupting the count.
func (m *Mapping) Release() {
	n := m.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("mmapdata: Release without matching Retain")
	}
	data := m.data
	m.data = nil
	if !m.heap && data != nil {
		// Unmap failures are not actionable by the caller (the address
		// range is gone either way); ignore like os.File finalizers do.
		_ = munmap(data)
	}
}

// Kind reports the backing: "mmap" for a true mapping, "mmap-fallback"
// when the platform forced an eager heap copy.
func (m *Mapping) Kind() string {
	if m.heap {
		return "mmap-fallback"
	}
	return "mmap"
}

// Path returns the snapshot file the mapping was opened from.
func (m *Mapping) Path() string { return m.path }

// MappedBytes is the size of the mapped region (the snapshot file size at
// open). Safe to call without holding a reference.
func (m *Mapping) MappedBytes() int64 { return m.size }

// ResidentBytes reports how much of the mapping is currently resident in
// physical memory, or -1 when the platform cannot tell. The fallback's
// heap buffer is always resident. The caller must hold a reference.
func (m *Mapping) ResidentBytes() int64 {
	if m.heap {
		return m.size
	}
	return residentBytes(m.data)
}

// OpenState maps the snapshot at path and decodes it into a store.State
// whose series values are zero-copy views over the mapping. The returned
// State's Dataset carries the mapping as its ValueSource; the caller owns
// the initial reference and must Release it when done with the dataset.
//
// A missing file satisfies errors.Is(err, os.ErrNotExist) — OpenState is a
// valid store.SnapshotOpener. Corruption satisfies
// errors.Is(err, store.ErrSnapshotCorrupt); a file that shrank mid-decode
// additionally satisfies errors.Is(err, ErrTruncated). On any error the
// mapping is released before returning.
func OpenState(path string) (*store.State, error) {
	m, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	st, err := decodeMapped(m)
	if err != nil {
		m.Release()
		return nil, err
	}
	st.Dataset.Source = m
	return st, nil
}

// openMapping opens and maps (or, on fallback platforms, reads) the file.
func openMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err // preserves os.ErrNotExist for SnapshotOpener
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapdata: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size == 0 {
		// A zero-length mapping is an error on most platforms; report it
		// as the corrupt (empty) snapshot it is.
		return nil, fmt.Errorf("%w: mmapdata: %s is empty", store.ErrSnapshotCorrupt, path)
	}
	const maxSnapshot = 1 << 46 // 64 TiB: int-overflow guard on 64-bit, sanity everywhere
	if size < 0 || size > maxSnapshot {
		return nil, fmt.Errorf("mmapdata: %s: implausible size %d", path, size)
	}
	data, heap, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mmapdata: map %s: %w", path, err)
	}
	m := &Mapping{path: path, data: data, size: int64(len(data)), heap: heap}
	m.refs.Store(1)
	return m, nil
}

// decodeMapped runs the store decoder over the mapping with the zero-copy
// viewer, under a fault guard that turns a mid-decode truncation (SIGBUS
// on a page past the new EOF) into ErrTruncated.
func decodeMapped(m *Mapping) (st *store.State, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Only a runtime memory fault is expected here; anything else
			// is a real bug and must keep crashing.
			if _, ok := r.(error); !ok {
				panic(r)
			}
			err = fmt.Errorf("%w: %w: %s (%v)", store.ErrSnapshotCorrupt, ErrTruncated, m.path, r)
		}
	}()
	// SetPanicOnFault is per-goroutine and scoped to this decode: a fault
	// on the mapping becomes a recoverable panic instead of a crash. The
	// full decode touches every byte of the file (all section CRCs are
	// verified), so a torn or shrinking file is caught here, not later
	// during query walks.
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)
	return store.DecodeSnapshotWith(m.data, float64View)
}
