//go:build linux

package mmapdata

import (
	"os"
	"syscall"
	"unsafe"
)

// residentBytes asks the kernel (mincore) how many pages of the mapping
// are currently resident in physical memory. Advisory only — the answer
// can be stale by the time it returns — but it is exactly the signal
// /healthz needs to show a beyond-RAM dataset being partially paged.
func residentBytes(data []byte) int64 {
	if len(data) == 0 {
		return 0
	}
	page := os.Getpagesize()
	pages := (len(data) + page - 1) / page
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return -1
	}
	var resident int64
	for i, v := range vec {
		if v&1 == 0 {
			continue
		}
		if i == pages-1 {
			// Last page may be partial.
			if rem := len(data) % page; rem != 0 {
				resident += int64(rem)
				continue
			}
		}
		resident += int64(page)
	}
	return resident
}
