//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package mmapdata

// float64View on big-endian architectures cannot alias the little-endian
// snapshot bytes; it decodes into a heap slice. The mapping still avoids
// double-buffering the file, but values are materialized.
func float64View(raw []byte) []float64 { return copyFloat64s(raw) }
