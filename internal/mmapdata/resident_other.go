//go:build !linux

package mmapdata

// residentBytes reports -1 on platforms without a residency syscall: the
// mapping's resident share is unknown (status endpoints render it as such
// rather than guessing).
func residentBytes(data []byte) int64 { return -1 }
