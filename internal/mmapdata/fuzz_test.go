package mmapdata_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mmapdata"
	"repro/internal/store"
)

// FuzzMmapOpen mirrors the store package's snapshot fuzz target through the
// mmap path: arbitrary bytes on disk must either open cleanly or fail with
// a typed error — no panics, no faults, no unbounded allocations. CI runs
// this for a short budget on every push.
func FuzzMmapOpen(f *testing.F) {
	valid, err := store.EncodeSnapshot(testState(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ONEXSNP1"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.onex")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := mmapdata.OpenState(path)
		if err != nil {
			if !errors.Is(err, store.ErrSnapshotCorrupt) {
				t.Fatalf("non-typed open failure: %v", err)
			}
			return
		}
		// A successful open must hand back a live, pinnable mapping.
		src := st.Dataset.Source
		if src == nil {
			t.Fatal("opened state has no ValueSource")
		}
		if err := src.Retain(); err != nil {
			t.Fatalf("Retain on fresh mapping: %v", err)
		}
		src.Release()
		src.Release()
	})
}
