//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package mmapdata

import "unsafe"

// float64View reinterprets an 8-aligned little-endian float64 run as a
// []float64 without copying — valid because the snapshot format is
// little-endian and these architectures are too, and because the writer
// 8-aligns every value run relative to the file start while mmap returns
// page-aligned (hence 8-aligned) addresses. The alignment check is
// defensive: a misaligned run (possible only through the heap fallback
// handing over an unaligned buffer) falls back to a copy rather than
// faulting on alignment-strict hardware.
func float64View(raw []byte) []float64 {
	if len(raw) < 8 {
		return nil
	}
	p := unsafe.Pointer(&raw[0])
	if uintptr(p)%8 != 0 {
		return copyFloat64s(raw)
	}
	return unsafe.Slice((*float64)(p), len(raw)/8)
}
