package onex

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// openPower builds a DB over a seasonal dataset so every analysis kind has
// non-trivial results (daily habits recur every 12 samples).
func openPower(t testing.TB) *DB {
	t.Helper()
	d := gen.ElectricityLoad(gen.ElectricityOptions{Households: 3, Days: 30, SamplesPerDay: 12})
	db, err := Open(d, Config{MinLength: 6, MaxLength: 14})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAnalyzeEquivalenceWithWrappers pins the deprecation contract: every
// legacy exploration method is a thin wrapper over Analyze, so both
// spellings must return identical payloads at equal inputs.
func TestAnalyzeEquivalenceWithWrappers(t *testing.T) {
	db := openPower(t)
	ctx := context.Background()

	// Seasonal.
	legacyPats, err := db.Seasonal("household-00", 12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Analyze(ctx, Analysis{
		Kind: AnalysisSeasonal, Series: "household-00",
		Lengths: Lengths{Min: 12, Max: 12}, MinOccurrences: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyPats) == 0 || !reflect.DeepEqual(legacyPats, res.Patterns) {
		t.Fatalf("seasonal: legacy %+v != analyze %+v", legacyPats, res.Patterns)
	}

	// Overview (auto length).
	legacyGroups := db.Overview(0, 5)
	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisOverview, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyGroups) != 5 || !reflect.DeepEqual(legacyGroups, res.Groups) {
		t.Fatalf("overview: legacy %d groups != analyze %d", len(legacyGroups), len(res.Groups))
	}
	if res.Request.Length == 0 {
		t.Fatalf("overview: auto-selected length not echoed: %+v", res.Request)
	}

	// GroupMembers at the overview's resolved length.
	length := res.Request.Length
	legacyMembers, err := db.GroupMembers(length, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisGroupMembers, Length: length})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyMembers) == 0 || !reflect.DeepEqual(legacyMembers, res.Members) {
		t.Fatalf("group-members: legacy %d != analyze %d", len(legacyMembers), len(res.Members))
	}

	// LengthSummaries.
	legacyLens := db.LengthSummaries()
	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisLengthSummaries})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyLens) == 0 || !reflect.DeepEqual(legacyLens, res.LengthSummaries) {
		t.Fatalf("length-summaries: legacy %+v != analyze %+v", legacyLens, res.LengthSummaries)
	}

	// CommonPatterns.
	legacyCommon := db.CommonPatterns(3, 0, 0, 4)
	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisCommonPatterns, MinSeries: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyCommon) == 0 || !reflect.DeepEqual(legacyCommon, res.Common) {
		t.Fatalf("common-patterns: legacy %d != analyze %d", len(legacyCommon), len(res.Common))
	}

	// SimilaritySweep.
	raw, err := db.SeriesValues("household-00")
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{0.02, 0.05, 0.1}
	legacySweep, err := db.SimilaritySweep(raw[0:12], thresholds)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Analyze(ctx, Analysis{
		Kind: AnalysisSimilaritySweep, Values: raw[0:12], Thresholds: thresholds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacySweep) != 3 || !reflect.DeepEqual(legacySweep, res.Sweep) {
		t.Fatalf("sweep: legacy %+v != analyze %+v", legacySweep, res.Sweep)
	}
	// A window addressing the same samples answers identically.
	winRes, err := db.Analyze(ctx, Analysis{
		Kind:       AnalysisSimilaritySweep,
		Window:     Window{Series: "household-00", Start: 0, Length: 12},
		Thresholds: thresholds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(winRes.Sweep, res.Sweep) {
		t.Fatalf("sweep: window %+v != values %+v", winRes.Sweep, res.Sweep)
	}

	// Threshold distribution and recommendations.
	dists, probe, recs, err := db.ThresholdDistribution()
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisThresholds})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Thresholds
	if tr == nil || !reflect.DeepEqual(dists, tr.Sample) || probe != tr.ProbeLength ||
		!reflect.DeepEqual(recs, tr.Recommendations) {
		t.Fatalf("thresholds: legacy (%d dists, probe %d, %d recs) != analyze %+v",
			len(dists), probe, len(recs), tr)
	}
	recsOnly, err := db.RecommendThresholds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recsOnly, tr.Recommendations) {
		t.Fatal("RecommendThresholds != analyze recommendations")
	}
}

// TestDeprecatedWrappersTolerateNegativeBounds pins the historical
// contract of the legacy methods: non-positive length bounds mean "the
// indexed range" and must not trip Analyze's Lengths validation.
func TestDeprecatedWrappersTolerateNegativeBounds(t *testing.T) {
	db := openPower(t)
	pats, err := db.Seasonal("household-00", -1, -1, 2)
	if err != nil {
		t.Fatalf("Seasonal with negative bounds: %v", err)
	}
	if len(pats) == 0 {
		t.Fatal("Seasonal with negative bounds found nothing")
	}
	if got := db.CommonPatterns(2, -1, -1, 4); len(got) == 0 {
		t.Fatal("CommonPatterns with negative bounds found nothing")
	}
}

func TestAnalyzeResolvedRequestAndStats(t *testing.T) {
	db := openPower(t)
	ctx := context.Background()

	res, err := db.Analyze(ctx, Analysis{Kind: AnalysisSeasonal, Series: "household-00"})
	if err != nil {
		t.Fatal(err)
	}
	req := res.Request
	if req.MinOccurrences != 2 || req.K != 16 {
		t.Fatalf("seasonal defaults not resolved: %+v", req)
	}
	if req.Lengths.Min != 6 || req.Lengths.Max != 14 {
		t.Fatalf("seasonal lengths not resolved to indexed range: %+v", req.Lengths)
	}
	if req.Mode != ModeApprox || req.Band != db.Config().Band {
		t.Fatalf("mode/band not resolved: %+v", req)
	}
	if res.Stats.Groups <= 0 || res.Stats.Candidates <= 0 || res.Stats.WallMicros < 0 {
		t.Fatalf("seasonal stats empty: %+v", res.Stats)
	}
	if res.Stats.DTWs != 0 {
		t.Fatalf("seasonal mining ran %d DTWs, want 0 (base-driven)", res.Stats.DTWs)
	}

	raw, err := db.SeriesValues("household-00")
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Analyze(ctx, Analysis{
		Kind: AnalysisSimilaritySweep, Values: raw[0:12], Thresholds: []float64{0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Request.Mode != ModeExact {
		t.Fatalf("sweep must echo the certified mode, got %q", res.Request.Mode)
	}
	if res.Stats.DTWs <= 0 || res.Stats.Groups <= 0 {
		t.Fatalf("sweep stats empty: %+v", res.Stats)
	}

	res, err = db.Analyze(ctx, Analysis{Kind: AnalysisCommonPatterns})
	if err != nil {
		t.Fatal(err)
	}
	if res.Request.MinSeries != 2 || res.Request.K != 16 {
		t.Fatalf("common-patterns defaults not resolved: %+v", res.Request)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	db := openPower(t)
	ctx := context.Background()
	raw, _ := db.SeriesValues("household-00")

	cases := []struct {
		label string
		a     Analysis
		field string
	}{
		{"unknown kind", Analysis{Kind: "bogus"}, "Kind"},
		{"empty kind", Analysis{}, "Kind"},
		{"bad mode", Analysis{Kind: AnalysisOverview, Mode: "sideways"}, "Mode"},
		{"negative overview length", Analysis{Kind: AnalysisOverview, Length: -1}, "Length"},
		{"group-members without length", Analysis{Kind: AnalysisGroupMembers}, "Length"},
		{"group-members negative index", Analysis{Kind: AnalysisGroupMembers, Length: 6, Index: -1}, "Index"},
		{"seasonal without series", Analysis{Kind: AnalysisSeasonal}, "Series"},
		{"negative lengths", Analysis{Kind: AnalysisSeasonal, Series: "household-00",
			Lengths: Lengths{Min: -1}}, "Lengths"},
		{"inverted lengths", Analysis{Kind: AnalysisCommonPatterns,
			Lengths: Lengths{Min: 10, Max: 6}}, "Lengths"},
		{"sweep without thresholds", Analysis{Kind: AnalysisSimilaritySweep, Values: raw[0:12]}, "Thresholds"},
		{"sweep negative threshold", Analysis{Kind: AnalysisSimilaritySweep, Values: raw[0:12],
			Thresholds: []float64{-0.1}}, "Thresholds"},
		{"sweep without query", Analysis{Kind: AnalysisSimilaritySweep, Thresholds: []float64{0.1}}, "Values"},
		{"sweep with values and window", Analysis{Kind: AnalysisSimilaritySweep,
			Values: raw[0:12], Window: Window{Series: "household-00", Length: 12},
			Thresholds: []float64{0.1}}, "Values"},
	}
	for _, tc := range cases {
		_, err := db.Analyze(ctx, tc.a)
		var ae *AnalysisError
		if !errors.As(err, &ae) {
			t.Fatalf("%s: err = %v, want *AnalysisError", tc.label, err)
		}
		if ae.Field != tc.field {
			t.Fatalf("%s: Field = %q, want %q (%v)", tc.label, ae.Field, tc.field, ae)
		}
	}

	// Fields irrelevant to the Kind are not consulted: garbage Lengths on
	// an overview (which never reads them) must not trip validation.
	if _, err := db.Analyze(ctx, Analysis{Kind: AnalysisOverview,
		Lengths: Lengths{Min: 9, Max: 3}}); err != nil {
		t.Fatalf("overview with irrelevant Lengths rejected: %v", err)
	}

	// Engine-level errors pass through untyped.
	if _, err := db.Analyze(ctx, Analysis{Kind: AnalysisSeasonal, Series: "ghost"}); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := db.Analyze(ctx, Analysis{Kind: AnalysisGroupMembers, Length: 6, Index: 1 << 20}); err == nil {
		t.Fatal("out-of-range group index accepted")
	}
}

// TestAnalyzePreCancelled verifies every kind observes an already-dead
// context before doing work.
func TestAnalyzePreCancelled(t *testing.T) {
	db := openPower(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	raw, err := db.SeriesValues("household-00")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Analysis{
		{Kind: AnalysisOverview},
		{Kind: AnalysisGroupMembers, Length: 6},
		{Kind: AnalysisLengthSummaries},
		{Kind: AnalysisSeasonal, Series: "household-00"},
		{Kind: AnalysisCommonPatterns},
		{Kind: AnalysisSimilaritySweep, Values: raw[0:12], Thresholds: []float64{0.1}},
		{Kind: AnalysisThresholds},
	} {
		if _, err := db.Analyze(ctx, a); !errors.Is(err, context.Canceled) {
			t.Fatalf("kind %s: err = %v, want context.Canceled", a.Kind, err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	db := openPower(b)
	raw, err := db.SeriesValues("household-00")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("seasonal", func(b *testing.B) {
		a := Analysis{Kind: AnalysisSeasonal, Series: "household-00",
			Lengths: Lengths{Min: 12, Max: 12}, MinOccurrences: 3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Analyze(ctx, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		a := Analysis{Kind: AnalysisSimilaritySweep, Values: raw[0:12],
			Thresholds: []float64{0.02, 0.05, 0.1}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Analyze(ctx, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}
