package onex

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// drain collects every update of an exploration.
func drain(t *testing.T, x *Exploration) []Update {
	t.Helper()
	var ups []Update
	for u := range x.Updates() {
		ups = append(ups, u)
	}
	return ups
}

// assertNoGoroutineLeak is the goleak-style check: the goroutine count
// must return to (at most) its baseline within the deadline, proving the
// stream goroutine and the core worker pool drained.
func assertNoGoroutineLeak(t *testing.T, label string, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers; cheap in tests
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines still alive, baseline %d", label, n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamProgressiveContract is the acceptance test for the streaming
// API: the first update is the approximate answer (emitted before any
// exact refinement wave, asserted via its stats), and the final update
// equals the one-shot exact Find — matches, order, and stats — at
// Workers 1 and 4.
func TestStreamProgressiveContract(t *testing.T) {
	db := openWalks(t)
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		q := Query{Values: raw[0:16], K: 5, Workers: workers}

		x, err := db.Stream(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		ups := drain(t, x)
		if err := x.Err(); err != nil {
			t.Fatalf("workers=%d: stream err = %v", workers, err)
		}
		if len(ups) < 3 {
			t.Fatalf("workers=%d: %d updates; want approx + waves + final", workers, len(ups))
		}

		// First update: the approximate answer, before any wave.
		approxQ := q
		approxQ.Mode = ModeApprox
		approx, err := db.Find(ctx, approxQ)
		if err != nil {
			t.Fatal(err)
		}
		first := ups[0]
		if first.Seq != 0 || first.Wave != 0 || first.Final {
			t.Fatalf("workers=%d: first update seq=%d wave=%d final=%v", workers, first.Seq, first.Wave, first.Final)
		}
		if len(first.Matches) != len(approx.Matches) {
			t.Fatalf("workers=%d: first update has %d matches, approx Find %d", workers, len(first.Matches), len(approx.Matches))
		}
		for i := range first.Matches {
			sameMatch(t, "first update vs approx Find", approx.Matches[i], first.Matches[i])
		}
		// The stats pin the emission point: exactly the work of an
		// approx-mode Find, i.e. no exact refinement wave has run yet.
		if first.Stats.Groups != approx.Stats.Groups ||
			first.Stats.GroupsRefined != approx.Stats.GroupsRefined ||
			first.Stats.Candidates != approx.Stats.Candidates {
			t.Fatalf("workers=%d: first update stats %+v != approx Find stats %+v",
				workers, first.Stats, approx.Stats)
		}
		if first.GroupsRemaining == 0 {
			t.Fatalf("workers=%d: first update claims the walk already finished", workers)
		}

		// Final update: identical to the one-shot exact Find.
		exactQ := q
		exactQ.Mode = ModeExact
		exact, err := db.Find(ctx, exactQ)
		if err != nil {
			t.Fatal(err)
		}
		last := ups[len(ups)-1]
		if !last.Final || last.GroupsRemaining != 0 {
			t.Fatalf("workers=%d: last update final=%v remaining=%d", workers, last.Final, last.GroupsRemaining)
		}
		if len(last.Matches) != len(exact.Matches) {
			t.Fatalf("workers=%d: final update has %d matches, exact Find %d", workers, len(last.Matches), len(exact.Matches))
		}
		for i := range last.Matches {
			sameMatch(t, "final update vs exact Find", exact.Matches[i], last.Matches[i])
			if len(last.Matches[i].Path) == 0 || len(last.Matches[i].Path) != len(exact.Matches[i].Path) {
				t.Fatalf("workers=%d: final update match %d path missing or diverged", workers, i)
			}
		}
		if !reflect.DeepEqual(last.Query, exact.Query) {
			t.Fatalf("workers=%d: final update query %+v != Find query %+v", workers, last.Query, exact.Query)
		}
		wantStats, gotStats := exact.Stats, last.Stats
		// Wall time varies run to run, and at Workers > 1 the LB/DTW split
		// can shift with scheduling (the documented parallel contract); the
		// deterministic totals must match exactly, and at Workers = 1 the
		// whole block must.
		wantStats.WallMicros, gotStats.WallMicros = 0, 0
		if workers > 1 {
			wantStats.DTWs, gotStats.DTWs = 0, 0
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: final update stats %+v != exact Find stats %+v", workers, gotStats, wantStats)
		}
		for i, c := range last.Certified {
			if !c {
				t.Fatalf("workers=%d: final update match %d not certified", workers, i)
			}
		}

		// Refinement invariants across the stream.
		for i, u := range ups {
			if u.Seq != i {
				t.Fatalf("workers=%d: update %d has seq %d", workers, i, u.Seq)
			}
			if len(u.Certified) != len(u.Matches) {
				t.Fatalf("workers=%d: update %d: %d flags for %d matches", workers, i, len(u.Certified), len(u.Matches))
			}
			if !reflect.DeepEqual(u.Query, last.Query) {
				t.Fatalf("workers=%d: update %d echoes a different query", workers, i)
			}
			if u.Query.Mode != ModeExact {
				t.Fatalf("workers=%d: resolved mode %q, want exact", workers, u.Query.Mode)
			}
			if i > 0 && u.GroupsRemaining > ups[i-1].GroupsRemaining {
				t.Fatalf("workers=%d: update %d remaining grew", workers, i)
			}
		}
	}
}

// TestStreamWaitEqualsFind pins the "drain the stream, return the last
// update" spelling: Stream+Wait and exact-mode Find are the same call.
func TestStreamWaitEqualsFind(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		q := Query{Values: raw[0:8], K: 3, Workers: workers}
		x, err := db.Stream(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := x.Wait()
		if err != nil {
			t.Fatal(err)
		}
		exactQ := q
		exactQ.Mode = ModeExact
		oneShot, err := db.Find(ctx, exactQ)
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed.Matches) != len(oneShot.Matches) {
			t.Fatalf("workers=%d: %d streamed matches != %d", workers, len(streamed.Matches), len(oneShot.Matches))
		}
		for i := range streamed.Matches {
			sameMatch(t, "Wait vs Find", oneShot.Matches[i], streamed.Matches[i])
		}
		if !reflect.DeepEqual(streamed.Query, oneShot.Query) {
			t.Fatalf("workers=%d: query echo diverged", workers)
		}
	}
}

// TestStreamValidation pins the synchronous error contract.
func TestStreamValidation(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	ctx := context.Background()
	for name, q := range map[string]Query{
		"range":            {Values: raw[0:8], MaxDist: 0.2},
		"empty":            {},
		"unknown series":   {Window: Window{Series: "nope", Start: 0, Length: 8}},
		"negative workers": {Values: raw[0:8], Workers: -1},
		"both inputs":      {Values: raw[0:8], Window: Window{Series: "MA", Start: 0, Length: 8}},
	} {
		if _, err := db.Stream(ctx, q); err == nil {
			t.Fatalf("%s: Stream accepted an invalid query", name)
		}
	}
}

// TestStreamCancellation covers the mid-stream cancellation contract:
// cancelling the context (or Close-ing the exploration) after the first
// update stops the core walk within one pruning round, the stream closes,
// Err reports the cancellation, and no goroutines leak.
func TestStreamCancellation(t *testing.T) {
	db := openWalks(t)
	raw, err := db.SeriesValues("walk-001")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 4} {
		// Cancel via context after the first update.
		ctx, cancel := context.WithCancel(context.Background())
		x, err := db.Stream(ctx, Query{Values: raw[0:16], K: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		first, ok := <-x.Updates()
		if !ok || first.Seq != 0 {
			t.Fatalf("workers=%d: no first update before cancel", workers)
		}
		cancel()
		deadline := time.After(5 * time.Second)
		drained := make(chan []Update, 1)
		go func() {
			var rest []Update
			for u := range x.Updates() {
				rest = append(rest, u)
			}
			drained <- rest
		}()
		select {
		case rest := <-drained:
			// The walk may finish one in-flight wave, no more.
			if len(rest) > 2 {
				t.Fatalf("workers=%d: %d updates after cancellation", workers, len(rest))
			}
			for _, u := range rest {
				if u.Final {
					t.Fatalf("workers=%d: cancelled stream still delivered a final update", workers)
				}
			}
		case <-deadline:
			t.Fatalf("workers=%d: stream did not close within 5s of cancellation", workers)
		}
		if err := x.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Err = %v, want context.Canceled", workers, err)
		}
		cancel()

		// Abandon via Close without reading anything further.
		x2, err := db.Stream(context.Background(), Query{Values: raw[4:20], K: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		<-x2.Updates()
		x2.Close()
		if err := x2.Err(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: after Close, Err = %v", workers, err)
		}
	}
	assertNoGoroutineLeak(t, "after cancelled streams", baseline)
}

// TestStreamStallBound pins the abandoned-consumer safety valve: a
// consumer that stops taking updates (without Close or cancel) must not
// pin the DB read lock forever. The walk aborts after the stall bound,
// Err reports ErrStreamStalled, and a writer (AddSeries) plus later
// queries proceed.
func TestStreamStallBound(t *testing.T) {
	old := streamStallTimeout
	streamStallTimeout = 50 * time.Millisecond
	defer func() { streamStallTimeout = old }()

	db := openWalks(t)
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	x, err := db.Stream(context.Background(), Query{Values: raw[0:16], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Take the first update, then abandon the stream without Close: the
	// walk is now blocked sending the next one.
	<-x.Updates()

	// A writer queued behind the pinned read lock must get through once
	// the stall bound fires.
	writerDone := make(chan error, 1)
	go func() { writerDone <- db.AddSeries("late-writer", raw) }()
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AddSeries still blocked 5s after the stall bound")
	}

	// The stream closed with the stall error.
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-x.Updates():
			open = ok
		case <-deadline:
			t.Fatal("stalled stream never closed")
		}
	}
	if err := x.Err(); !errors.Is(err, ErrStreamStalled) {
		t.Fatalf("Err = %v, want ErrStreamStalled", err)
	}
	// And the DB is fully usable afterwards.
	if _, err := db.Find(context.Background(), Query{Values: raw[0:16], K: 2}); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeak(t, "after stalled stream", baseline)

	// A stall on the terminating snapshot — after which the walk has no
	// ctx poll left to abort on — must still surface as ErrStreamStalled,
	// not as a clean end with no final update.
	x2, err := db.Stream(context.Background(), Query{Values: raw[0:16], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for u := range x2.Updates() {
		if u.GroupsRemaining == 0 && !u.Final {
			break // the final snapshot is next; abandon the stream here
		}
		if u.Final {
			t.Fatal("walk finished without a last-wave update; test setup too small")
		}
	}
	// Outwait the stall bound before touching the stream again, so the
	// producer's pending send is abandoned rather than taken by the drain.
	time.Sleep(10 * streamStallTimeout)
	for u := range x2.Updates() {
		if u.Final {
			t.Fatal("final update delivered after the consumer stalled")
		}
	}
	if err := x2.Err(); !errors.Is(err, ErrStreamStalled) {
		t.Fatalf("stall on final snapshot: Err = %v, want ErrStreamStalled", err)
	}
	assertNoGoroutineLeak(t, "after final-snapshot stall", baseline)
}

// TestStreamPreCancelled: a context cancelled before Stream is called
// still returns a usable exploration whose stream closes immediately.
func TestStreamPreCancelled(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, err := db.Stream(ctx, Query{Values: raw[0:8], K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ups := drain(t, x); len(ups) != 0 {
		t.Fatalf("pre-cancelled stream delivered %d updates", len(ups))
	}
	if err := x.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	assertNoGoroutineLeak(t, "after pre-cancelled stream", baseline)
}

// BenchmarkStream measures the streaming pipeline against the one-shot
// exact Find it must stay within noise of, and reports first-update
// latency — the interactivity headline — as its own sub-benchmark.
func BenchmarkStream(b *testing.B) {
	db := openWalks(b)
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Values: raw[0:16], K: 3}

	b.Run("find-exact", func(b *testing.B) {
		fq := q
		fq.Mode = ModeExact
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Find(ctx, fq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-drain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x, err := db.Stream(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := x.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("first-update", func(b *testing.B) {
		b.ReportAllocs()
		var firstTotal time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			x, err := db.Stream(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := <-x.Updates(); !ok {
				b.Fatal("stream closed before the first update")
			}
			firstTotal += time.Since(start)
			x.Close()
		}
		b.ReportMetric(float64(firstTotal.Microseconds())/float64(b.N), "first-µs/op")
	})
}
