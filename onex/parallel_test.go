package onex

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/gen"
)

// openWalks opens a base large enough that the per-query worker pool
// genuinely engages (hundreds of groups across many lengths).
func openWalks(t testing.TB) *DB {
	t.Helper()
	d := gen.RandomWalks(gen.WalkOptions{Num: 8, Length: 96, Seed: 11})
	db, err := Open(d, Config{ST: 0.12, MinLength: 8, MaxLength: 20, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFindWorkersKnob(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")

	// Negative workers are rejected like Config.Workers.
	if _, err := db.Find(context.Background(), Query{Values: raw[0:8], Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	// The resolved pool size is echoed: explicit values pass through,
	// zero resolves to GOMAXPROCS.
	res, err := db.Find(context.Background(), Query{Values: raw[0:8], Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Workers != 2 {
		t.Fatalf("echoed workers = %d, want 2", res.Query.Workers)
	}
	res, err = db.Find(context.Background(), Query{Values: raw[0:8]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("echoed workers = %d, want GOMAXPROCS = %d", res.Query.Workers, runtime.GOMAXPROCS(0))
	}
}

func TestAnalyzeWorkersKnob(t *testing.T) {
	db := openSmall(t)
	var ae *AnalysisError
	_, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisOverview, Workers: -1})
	if !errors.As(err, &ae) || ae.Field != "Workers" {
		t.Fatalf("err = %v, want *AnalysisError on Workers", err)
	}
	res, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisLengthSummaries, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Request.Workers != 3 {
		t.Fatalf("echoed workers = %d, want 3", res.Request.Workers)
	}
}

// TestFindWorkersEquivalencePublic pins the public contract: Workers only
// changes wall time. Identical matches in identical order, in exact and
// approx modes and for range queries, at every worker count.
func TestFindWorkersEquivalencePublic(t *testing.T) {
	db := openWalks(t)
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, q := range map[string]Query{
		"approx":      {Values: raw[0:16], K: 5},
		"exact":       {Values: raw[10:26], K: 5, Mode: ModeExact},
		"range":       {Values: raw[0:16], MaxDist: 0.1},
		"constrained": {Window: Window{Series: "walk-000", Start: 0, Length: 16}, K: 4, Exclude: Exclude{Series: []string{"walk-000"}}},
	} {
		serialQ := q
		serialQ.Workers = 1
		serial, err := db.Find(ctx, serialQ)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{2, 4, 0} {
			pq := q
			pq.Workers = workers
			par, err := db.Find(ctx, pq)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if len(par.Matches) != len(serial.Matches) {
				t.Fatalf("%s workers=%d: %d matches != %d", name, workers, len(par.Matches), len(serial.Matches))
			}
			for i := range par.Matches {
				sameMatch(t, fmt.Sprintf("%s workers=%d match %d", name, workers, i),
					serial.Matches[i], par.Matches[i])
			}
			if par.Stats.Groups != serial.Stats.Groups ||
				par.Stats.GroupsRefined != serial.Stats.GroupsRefined ||
				par.Stats.Candidates != serial.Stats.Candidates {
				t.Fatalf("%s workers=%d: deterministic totals drifted: %+v != %+v",
					name, workers, par.Stats, serial.Stats)
			}
		}
	}
}

// TestAnalyzeWorkersEquivalencePublic does the same for the heavy analytics
// walks (seasonal mining and the certified sweep).
func TestAnalyzeWorkersEquivalencePublic(t *testing.T) {
	db := openWalks(t)
	raw, err := db.SeriesValues("walk-001")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, a := range map[string]Analysis{
		"seasonal": {Kind: AnalysisSeasonal, Series: "walk-001"},
		"common":   {Kind: AnalysisCommonPatterns},
		"sweep":    {Kind: AnalysisSimilaritySweep, Values: raw[0:16], Thresholds: []float64{0.02, 0.05, 0.1}},
	} {
		serialA := a
		serialA.Workers = 1
		serial, err := db.Analyze(ctx, serialA)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{4, 0} {
			pa := a
			pa.Workers = workers
			par, err := db.Analyze(ctx, pa)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if fmt.Sprintf("%v%v%v", par.Patterns, par.Common, par.Sweep) !=
				fmt.Sprintf("%v%v%v", serial.Patterns, serial.Common, serial.Sweep) {
				t.Fatalf("%s workers=%d: payload diverged from serial", name, workers)
			}
			if par.Stats.Groups != serial.Stats.Groups || par.Stats.Candidates != serial.Stats.Candidates {
				t.Fatalf("%s workers=%d: stats drifted: %+v != %+v", name, workers, par.Stats, serial.Stats)
			}
		}
	}
}

// TestAddSeriesRacingParallelQueries drives Workers > 1 queries, parallel
// analytics walks, and mid-flight cancellations concurrently with
// AddSeries on one DB; run with -race to make it meaningful.
func TestAddSeriesRacingParallelQueries(t *testing.T) {
	db := openWalks(t)
	raw, err := db.SeriesValues("walk-002")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%3 == 2 {
					go cancel() // race a cancellation against the parallel scan
				}
				_, err := db.Find(ctx, Query{Values: raw[0:16], K: 4, Workers: 3})
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					errs <- err
					return
				}
				if _, err := db.Analyze(context.Background(), Analysis{
					Kind: AnalysisSeasonal, Series: "walk-003", Workers: 2,
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			vals := make([]float64, len(raw))
			for j, v := range raw {
				vals[j] = v + 0.001*float64(i+1)
			}
			if err := db.AddSeries(fmt.Sprintf("clone-%d", i), vals); err != nil {
				errs <- fmt.Errorf("AddSeries: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := db.Stats().Series, 8+3; got != want {
		t.Fatalf("series after concurrent adds = %d, want %d", got, want)
	}
}

// BenchmarkFindParallel measures intra-query parallel speedup on an
// internal/gen base: Workers follows GOMAXPROCS, so running with
// `-cpu 1,4` compares the serial engine (Workers resolves to 1) against a
// four-worker pool on identical queries — and doubles as the Workers=1
// non-regression guard.
func BenchmarkFindParallel(b *testing.B) {
	d := gen.RandomWalks(gen.WalkOptions{Num: 10, Length: 192, Seed: 7})
	db, err := Open(d, Config{ST: 0.15, MinLength: 16, MaxLength: 48, Band: -1})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := db.SeriesValues("walk-000")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("approx", func(b *testing.B) {
		q := Query{Values: raw[0:32], K: 3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Find(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		q := Query{Values: raw[0:32], K: 3, Mode: ModeExact}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Find(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
