package onex

import "fmt"

// ConfigError reports an invalid Config combination passed to Open,
// OpenFile, or OpenWithBase. Unset (zero) fields are resolved to documented
// defaults and never produce a ConfigError; explicitly contradictory or
// out-of-domain values do, instead of being silently clamped.
//
// Use errors.As to detect it:
//
//	var ce *onex.ConfigError
//	if errors.As(err, &ce) { log.Fatalf("bad %s: %s", ce.Field, ce.Reason) }
type ConfigError struct {
	// Field names the offending Config field ("MinLength", "Workers", ...).
	Field string
	// Value is the rejected value, rendered with %v.
	Value any
	// Reason says what the field's domain is.
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("onex: invalid Config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// AnalysisError reports an invalid Analysis passed to Analyze, in the
// style of ConfigError: unset (zero) fields resolve to documented defaults
// and never produce an AnalysisError; missing required fields and
// out-of-domain values do, instead of being silently clamped.
//
// Use errors.As to detect it:
//
//	var ae *onex.AnalysisError
//	if errors.As(err, &ae) { log.Fatalf("bad %s: %s", ae.Field, ae.Reason) }
type AnalysisError struct {
	// Kind is the analysis kind the request asked for (possibly invalid
	// itself, when Field is "Kind").
	Kind AnalysisKind
	// Field names the offending Analysis field ("Series", "Thresholds", ...).
	Field string
	// Value is the rejected value, rendered with %v.
	Value any
	// Reason says what the field's domain is.
	Reason string
}

// Error implements the error interface.
func (e *AnalysisError) Error() string {
	return fmt.Sprintf("onex: invalid Analysis.%s = %v (kind %q): %s", e.Field, e.Value, e.Kind, e.Reason)
}

// validateConfig rejects contradictory or out-of-domain Config values.
// Zero values are legal everywhere (they select defaults) and are resolved
// by Open after this check passes.
func validateConfig(cfg Config) error {
	if cfg.ST < 0 || cfg.ST != cfg.ST { // negative or NaN
		return &ConfigError{Field: "ST", Value: cfg.ST,
			Reason: "similarity threshold must be positive (or 0 for the data-driven default)"}
	}
	if cfg.MinLength < 0 || cfg.MinLength == 1 {
		return &ConfigError{Field: "MinLength", Value: cfg.MinLength,
			Reason: "indexed lengths start at 2 (or 0 for the default)"}
	}
	if cfg.MaxLength < 0 {
		return &ConfigError{Field: "MaxLength", Value: cfg.MaxLength,
			Reason: "must be positive (or 0 for the longest series)"}
	}
	if cfg.MinLength > 0 && cfg.MaxLength > 0 && cfg.MinLength > cfg.MaxLength {
		return &ConfigError{Field: "MinLength", Value: cfg.MinLength,
			Reason: fmt.Sprintf("exceeds MaxLength %d", cfg.MaxLength)}
	}
	if cfg.Workers < 0 {
		return &ConfigError{Field: "Workers", Value: cfg.Workers,
			Reason: "must be non-negative (0 = GOMAXPROCS)"}
	}
	if cfg.FsyncEvery < 0 {
		return &ConfigError{Field: "FsyncEvery", Value: cfg.FsyncEvery,
			Reason: "must be non-negative (0 or 1 = fsync per ingest)"}
	}
	return nil
}
