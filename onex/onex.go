// Package onex is the public API of the ONEX reproduction: online
// exploration of time series collections (Neamtu et al., SIGMOD 2017).
//
// ONEX answers DTW similarity queries over every subsequence of a dataset
// at interactive latency by pre-grouping subsequences with the cheap
// Euclidean distance ("the ONEX base") and exploring only the compact set
// of group representatives with DTW.
//
// Basic usage:
//
//	d, _ := onex.LoadDataset("states.csv")
//	db, _ := onex.Open(d, onex.Config{})          // normalize, pick ST, build base
//	res, _ := db.Find(ctx, onex.Query{
//		Window:  onex.Window{Series: "MA", Start: 0, Length: 12},
//		Exclude: onex.Exclude{Self: true},
//	})
//	fmt.Println(res.Matches[0].Series, res.Matches[0].Dist)
//
// Find executes every similarity scenario — best match, top-K, range, and
// constrained variants — from one composable Query, honours context
// cancellation, and reports search statistics. Analyze is its analytics
// twin: one composable Analysis covers the exploration scenarios (group
// overview, drill-down, per-length stats, seasonal and common patterns,
// threshold sweeps and recommendations) with the same cancellation and
// stats treatment:
//
//	res, _ := db.Analyze(ctx, onex.Analysis{
//		Kind:   onex.AnalysisSeasonal,
//		Series: "household-00",
//	})
//	fmt.Println(res.Patterns[0].Length, res.Patterns[0].Occurrences)
//
// Stream is Find's progressive spelling for interactive consumers: the
// same Query, answered as a refining sequence of Update snapshots — the
// approximate top-k immediately, then one update per certified
// refinement wave, terminating with the exact result:
//
//	x, _ := db.Stream(ctx, onex.Query{Values: q, K: 5})
//	defer x.Close()
//	for u := range x.Updates() {
//		render(u) // u.Certified marks matches that are already final
//	}
//
// The older per-scenario methods (BestMatch, KBestMatches, Seasonal,
// Overview, ...) remain as thin wrappers over Find and Analyze.
//
// Queries and results are in the dataset's original units; normalization
// is handled internally.
package onex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/store"
	"repro/internal/ts"
)

// Config tunes Open. Zero values select documented defaults; contradictory
// or out-of-domain values are rejected with a *ConfigError.
type Config struct {
	// ST is the per-point similarity threshold in normalized [0,1] units
	// (the dataset is min-max normalized before grouping, and a group of
	// length-l windows uses the absolute threshold ST*l). Zero selects the
	// data-driven "balanced" recommendation automatically (paper §3.3).
	// Negative or NaN values are a ConfigError.
	ST float64
	// MinLength/MaxLength bound the indexed subsequence lengths.
	// Defaults: MinLength 2; MaxLength = longest series. Narrow these for
	// large collections: the subsequence population grows quadratically
	// with series length. MinLength 1, negative bounds, or
	// MinLength > MaxLength are a ConfigError.
	MinLength, MaxLength int
	// Band is the Sakoe-Chiba width for all DTW comparisons (negative =
	// unconstrained; 0 means the default of max(4, MaxLength/10)).
	// Queries can override it per call via Query.Band.
	Band int
	// Exact switches the engine to certified-exact search; default is the
	// paper's approximate mode. Queries can override it per call via
	// Query.Mode.
	Exact bool
	// Workers bounds build parallelism (0 = GOMAXPROCS; negative is a
	// ConfigError).
	Workers int
	// KeepRaw skips min-max normalization; ST is then in raw units.
	KeepRaw bool
	// Store attaches a persistence engine: Open writes an initial snapshot
	// (overwriting whatever the engine held) and every successful AddSeries
	// appends a durable write-ahead-log record before Version is bumped, so
	// ingest survives crashes and OpenStore restarts warm. nil — the
	// default — keeps the dataset purely in process memory. The DB owns the
	// engine from Open on; Close releases it.
	Store store.Engine
	// CompactBytes is the WAL size that triggers automatic compaction
	// (folding the log into a fresh snapshot) after an ingest. 0 selects
	// DefaultCompactBytes; negative disables auto-compaction (explicit
	// Snapshot calls still compact). Ignored without Store.
	CompactBytes int64
	// FsyncEvery is the WAL group-commit stride: the log is fsynced once
	// per this many AddSeries appends. 0 or 1 keeps the durable default —
	// fsync before every ingest is acknowledged. Larger strides amortize
	// the fsync across N ingests for ingest-heavy leaders, at a documented
	// durability cost: a crash can lose up to N-1 of the most recently
	// acknowledged ingests (always a clean suffix — recovery keeps the
	// longest valid WAL prefix, never a torn middle). Negative is a
	// ConfigError. Ignored without Store.
	FsyncEvery int
	// MmapValues makes warm opens (OpenStore, OpenReplicaFile) serve series
	// values as zero-copy views over a read-only memory-mapped snapshot
	// instead of decoding them eagerly onto the heap, so a dataset larger
	// than RAM pages in on demand. With min-max normalization the engine's
	// normalized view is still materialized (the transform rewrites every
	// value); with KeepRaw both views alias the mapping and the dataset is
	// fully paged. Close on an mmap-backed DB releases the mapping — unlike
	// the eager default, queries after Close fail with ErrMmapClosed
	// (in-flight scans finish safely; they pin the mapping). Ignored by
	// cold opens (Open, OpenWithBase), which build from a caller-provided
	// in-memory dataset. On platforms without a usable mmap the same
	// interface transparently falls back to an eager read (StoreStatus
	// reports ValuesKind "mmap-fallback").
	MmapValues bool
}

// DefaultCompactBytes is the WAL size threshold used when Config.
// CompactBytes is zero.
const DefaultCompactBytes int64 = 4 << 20

// DB is an opened ONEX database: a normalized dataset plus its base and
// query engine. DB is safe for concurrent use: queries run concurrently
// with each other and with AddSeries (writes serialize behind a RWMutex).
type DB struct {
	mu     sync.RWMutex
	raw    *ts.Dataset // original units (clone of what the caller gave us)
	normed *ts.Dataset // what the engine sees
	base   *grouping.Base
	engine *core.Engine
	cfg    Config
	// version counts successful mutations (AddSeries) since Open. It is
	// bumped under the write lock, so any query that observes version v is
	// answered from data at least as new as mutation v — the property
	// result caches key on to never serve a stale answer.
	version uint64
	// id is the process-unique instance identifier assigned at Open,
	// immutable thereafter. See ID.
	id uint64
	// store is the attached persistence engine (nil = in-memory only); see
	// Config.Store. storeErr records the last background compaction
	// failure for StoreStatus (the triggering append itself was durable).
	store    store.Engine
	storeErr error
	// storeClosed is set by Close on a store-backed DB: durability has been
	// released, so further ingest must refuse rather than silently drop the
	// crash-safety the caller was promised.
	storeClosed bool
	// replica marks a read-only follower DB (OpenReplica): AddSeries is
	// refused — mutations arrive only through ApplyReplicated, driven by
	// the leader's WAL stream, so follower state is exactly the leader's
	// mutation sequence and nothing else.
	replica bool
	// values is the owner reference on the mmap-backed storage the dataset
	// views alias when the DB was opened with Config.MmapValues (nil for
	// eager, heap-resident DBs). Close releases it exactly once and sets
	// mmapClosed; from then on every path that could dereference series
	// values refuses with ErrMmapClosed instead of touching unmapped
	// memory. In-flight walks are safe either way: the core layer pins the
	// source for the duration of each scan, so the release by Close only
	// unmaps after the last reader finishes.
	values     ts.ValueSource
	mmapClosed bool
}

// ErrMmapClosed is returned by queries and accessors on an mmap-backed DB
// (Config.MmapValues) after Close has released the mapping. Eager DBs keep
// answering queries after Close; mmap-backed ones cannot, because the
// values were never copied out of the released mapping.
var ErrMmapClosed = errors.New("onex: mmap-backed values released by Close")

// checkValuesLocked refuses access to series values once an mmap-backed
// DB's mapping has been released. Callers hold db.mu (read or write).
func (db *DB) checkValuesLocked() error {
	if db.mmapClosed {
		return ErrMmapClosed
	}
	return nil
}

// lastDBID issues process-unique DB identifiers; see DB.id and ID.
var lastDBID atomic.Uint64

// Match is one similarity result, reported in original units. It is
// deliberately untagged for JSON: the legacy HTTP routes have always
// serialized it with Go field casing, and that wire format is kept.
type Match struct {
	// Series is the name of the matched series.
	Series string
	// Start and Length locate the matched window within Series.
	Start, Length int
	// Dist is the query-to-match distance in the query's ranking units:
	// length-normalized DTW (raw DTW divided by the longer of query and
	// match, directly comparable with the per-point Config.ST) unless the
	// query selected NormRaw.
	Dist float64
	// Values is the matched window in original units.
	Values []float64
	// Path is the DTW warping path: pairs of (query index, match index),
	// the raw material of the demo's warped-points view.
	Path [][2]int
}

// Pattern is one seasonal-query result in public form.
type Pattern struct {
	Series      string
	Length      int
	Starts      []int
	MeanGap     float64
	Occurrences int
}

// GroupInfo summarizes one similarity group for overview panes.
type GroupInfo struct {
	Length int
	Count  int
	// Rep is the representative shape in original units.
	Rep []float64
}

// Recommendation re-exports a threshold suggestion.
type Recommendation = core.Recommendation

// Open normalizes (a clone of) the dataset, chooses or accepts a
// similarity threshold, builds the ONEX base, and returns a ready DB.
// Invalid Config combinations are rejected with a *ConfigError.
func Open(d *ts.Dataset, cfg Config) (*DB, error) {
	if d == nil {
		return nil, errors.New("onex: Open: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	raw := d.Clone()
	normed := d.Clone()
	if !cfg.KeepRaw {
		if err := ts.NormalizeMinMax(normed); err != nil {
			return nil, fmt.Errorf("onex: Open: %w", err)
		}
	}
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = normed.MaxLen()
	}
	if cfg.MinLength < 2 {
		cfg.MinLength = 2
	}
	if cfg.Band == 0 {
		cfg.Band = max(4, cfg.MaxLength/10)
	}
	if cfg.ST <= 0 {
		recs, err := core.RecommendThresholds(normed, core.ThresholdOptions{})
		if err != nil {
			return nil, fmt.Errorf("onex: Open: auto threshold: %w", err)
		}
		for _, r := range recs {
			if r.Label == "balanced" {
				cfg.ST = r.ST
			}
		}
		if cfg.ST <= 0 {
			cfg.ST = recs[len(recs)-1].ST
		}
	}
	base, err := grouping.Build(normed, grouping.Options{
		ST:        cfg.ST,
		MinLength: cfg.MinLength,
		MaxLength: cfg.MaxLength,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	engine, err := newEngine(normed, base, cfg)
	if err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	db := &DB{raw: raw, normed: normed, base: base, engine: engine, cfg: cfg, version: 1, id: lastDBID.Add(1), store: cfg.Store}
	if db.store != nil {
		applyFsyncEvery(db.store, cfg.FsyncEvery)
		// Persist the freshly built state immediately so a crash right after
		// Open still warm-starts; this overwrites whatever the engine held.
		// On failure the engine is left open for the caller to close (the DB
		// never existed, so it never took ownership).
		if err := db.store.Snapshot(db.stateLocked()); err != nil {
			return nil, fmt.Errorf("onex: Open: initial snapshot: %w", err)
		}
	}
	return db, nil
}

// newEngine binds dataset+base under the DB's resolved configuration.
func newEngine(normed *ts.Dataset, base *grouping.Base, cfg Config) (*core.Engine, error) {
	mode := core.ModeApprox
	if cfg.Exact {
		mode = core.ModeExact
	}
	return core.NewEngine(normed, base, core.Options{
		Band:       cfg.Band,
		Mode:       mode,
		LengthNorm: true, // rank variable-length matches fairly
	})
}

// OpenFile loads a dataset file (.csv, .json, or UCR text) and opens it.
func OpenFile(path string, cfg Config) (*DB, error) {
	d, err := ts.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenFile: %w", err)
	}
	return Open(d, cfg)
}

// LoadDataset loads a dataset file without opening a DB (for inspection or
// generator output round-trips).
func LoadDataset(path string) (*ts.Dataset, error) { return ts.LoadFile(path) }

// Config returns the effective configuration with every default resolved:
// ST carries the auto-recommended threshold when none was given, MinLength
// is at least 2, MaxLength is the longest series when it was 0, and Band
// holds the resolved width max(4, MaxLength/10) when it was 0. Exact,
// Workers, and KeepRaw are returned as given.
func (db *DB) Config() Config {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cfg
}

// Dataset returns a deep copy of the dataset in original units. Copying
// keeps the accessor safe alongside concurrent AddSeries calls, which
// mutate the live dataset in place.
func (db *DB) Dataset() *ts.Dataset {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.mmapClosed {
		// The clone would read released mapped memory; there is no error
		// return here, so surface the closed state as an empty dataset.
		return ts.NewDataset(db.raw.Name)
	}
	return db.raw.Clone()
}

// ST returns the similarity threshold in effect (normalized units).
func (db *DB) ST() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cfg.ST
}

// Version returns the dataset's monotone mutation counter: 1 at Open,
// bumped by every successful AddSeries. Because the bump happens under the
// same write lock that guards the mutation, a query issued after Version
// returned v is answered from data at least as new as mutation v. Result
// caches key entries on (dataset, Version, canonical request) so a cached
// answer computed before an ingest is structurally unreachable after it.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// ID returns this DB instance's process-unique identifier, assigned at
// Open and immutable thereafter. Version distinguishes mutations of one
// instance; ID distinguishes instances. A result cache must key on both:
// keying on (name, Version) alone would let entries survive a dataset
// being *replaced* under the same name, since a fresh Open starts its
// version back at 1.
func (db *DB) ID() uint64 { return db.id }

// Stats describes the built base. Untagged for JSON to preserve the
// legacy HTTP wire format.
type Stats struct {
	Series          int
	Subsequences    int
	Groups          int
	CompactionRatio float64
	BuildMillis     int64
}

// Stats returns base-construction statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		Series:          db.normed.Len(),
		Subsequences:    db.base.NumSubsequences(),
		Groups:          db.base.NumGroups(),
		CompactionRatio: db.base.CompactionRatio(),
		BuildMillis:     db.base.BuildStats.Duration.Milliseconds(),
	}
}

// normalizeQuery maps a query in original units into the engine's space.
// Callers hold db.mu.
func (db *DB) normalizeQuery(q []float64) []float64 {
	if db.cfg.KeepRaw {
		out := make([]float64, len(q))
		copy(out, q)
		return out
	}
	span := db.normed.Norm.Max - db.normed.Norm.Min
	out := make([]float64, len(q))
	for i, v := range q {
		if span == 0 {
			out[i] = 0
		} else {
			out[i] = (v - db.normed.Norm.Min) / span
		}
	}
	return out
}

// publicMatch converts an engine match to original units. Callers hold
// db.mu.
func (db *DB) publicMatch(m core.Match) Match {
	values, _ := ts.DenormalizeValues(db.normed, m.Ref.Series, m.Values)
	path := make([][2]int, len(m.Path))
	for i, st := range m.Path {
		path[i] = [2]int{st.I, st.J}
	}
	return Match{
		Series: db.normed.At(m.Ref.Series).Name,
		Start:  m.Ref.Start,
		Length: m.Ref.Length,
		Dist:   m.Score, // length-normalized; comparable with Config.ST
		Values: values,
		Path:   path,
	}
}

// BestMatch finds the most similar indexed subsequence to an ad-hoc query
// given in original units.
//
// Deprecated: use Find with Query{Values: q}.
func (db *DB) BestMatch(q []float64) (Match, error) {
	res, err := db.Find(context.Background(), Query{Values: q})
	if err != nil {
		return Match{}, err
	}
	return res.Matches[0], nil
}

// KBestMatches returns the k most similar indexed subsequences.
//
// Deprecated: use Find with Query{Values: q, K: k}.
func (db *DB) KBestMatches(q []float64, k int) ([]Match, error) {
	if k < 1 {
		return nil, fmt.Errorf("onex: KBestMatches: k = %d must be >= 1", k)
	}
	res, err := db.Find(context.Background(), Query{Values: q, K: k})
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// BestMatchForSeries runs the demo's similarity flow: take the window
// [start, start+length) of the named series as the query and find the most
// similar window elsewhere (the query's own overlapping windows are
// excluded).
//
// Deprecated: use Find with Query{Window: Window{...}, Exclude:
// Exclude{Self: true}}.
func (db *DB) BestMatchForSeries(seriesName string, start, length int) (Match, error) {
	res, err := db.Find(context.Background(), Query{
		Window:  Window{Series: seriesName, Start: start, Length: length},
		Exclude: Exclude{Self: true},
	})
	if err != nil {
		return Match{}, err
	}
	return res.Matches[0], nil
}

// BestMatchOtherSeries is BestMatchForSeries but excludes the whole source
// series, answering "which other state looks most like MA?".
//
// Deprecated: use Find with Query{Window: Window{...}, Exclude:
// Exclude{Series: []string{seriesName}}}.
func (db *DB) BestMatchOtherSeries(seriesName string, start, length int) (Match, error) {
	res, err := db.Find(context.Background(), Query{
		Window:  Window{Series: seriesName, Start: start, Length: length},
		Exclude: Exclude{Series: []string{seriesName}},
	})
	if err != nil {
		return Match{}, err
	}
	return res.Matches[0], nil
}

// Seasonal finds repeating patterns within one series (paper §3.3, Fig 4).
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisSeasonal, Series:
// seriesName, Lengths: Lengths{Min: minLen, Max: maxLen}, MinOccurrences:
// minOccurrences}.
func (db *DB) Seasonal(seriesName string, minLen, maxLen, minOccurrences int) ([]Pattern, error) {
	// This method has always treated non-positive bounds as "the indexed
	// range"; Analysis spells that 0, so clamp before delegating.
	res, err := db.Analyze(context.Background(), Analysis{
		Kind:           AnalysisSeasonal,
		Series:         seriesName,
		Lengths:        Lengths{Min: max(minLen, 0), Max: max(maxLen, 0)},
		MinOccurrences: minOccurrences,
	})
	if err != nil {
		return nil, err
	}
	return res.Patterns, nil
}

// Overview returns the top-k groups of the given length (length 0
// auto-selects, k<=0 returns all), representatives in original units.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisOverview, Length:
// length, K: k}.
func (db *DB) Overview(length, k int) []GroupInfo {
	res, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisOverview, Length: length, K: k})
	if err != nil {
		return nil
	}
	return res.Groups
}

// RecommendThresholds surfaces the data-driven threshold suggestions for
// the (normalized) dataset.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisThresholds}.
func (db *DB) RecommendThresholds() ([]Recommendation, error) {
	res, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisThresholds})
	if err != nil {
		return nil, err
	}
	return res.Thresholds.Recommendations, nil
}

// RecommendForDataset computes threshold recommendations for a dataset
// before opening it, in the normalized units Open will use, so the chosen
// ST can be passed straight into Config.ST. The dataset is not modified.
func RecommendForDataset(d *ts.Dataset) ([]Recommendation, error) {
	if d == nil {
		return nil, errors.New("onex: RecommendForDataset: nil dataset")
	}
	c := d.Clone()
	if err := ts.NormalizeMinMax(c); err != nil {
		return nil, fmt.Errorf("onex: RecommendForDataset: %w", err)
	}
	return core.RecommendThresholds(c, core.ThresholdOptions{})
}

// SeriesNames lists the dataset's series in order.
func (db *DB) SeriesNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, db.raw.Len())
	for i, s := range db.raw.Series {
		out[i] = s.Name
	}
	return out
}

// SeriesValues returns a copy of the named series in original units.
func (db *DB) SeriesValues(name string) ([]float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := db.checkValuesLocked(); err != nil {
		return nil, err
	}
	s, ok := db.raw.ByName(name)
	if !ok {
		return nil, fmt.Errorf("onex: unknown series %q", name)
	}
	out := make([]float64, s.Len())
	copy(out, s.Values)
	return out, nil
}
