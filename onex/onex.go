// Package onex is the public API of the ONEX reproduction: online
// exploration of time series collections (Neamtu et al., SIGMOD 2017).
//
// ONEX answers DTW similarity queries over every subsequence of a dataset
// at interactive latency by pre-grouping subsequences with the cheap
// Euclidean distance ("the ONEX base") and exploring only the compact set
// of group representatives with DTW.
//
// Basic usage:
//
//	d, _ := onex.LoadDataset("states.csv")
//	db, _ := onex.Open(d, onex.Config{})          // normalize, pick ST, build base
//	m, _ := db.BestMatchForSeries("MA", 0, 12)     // most similar other window
//	fmt.Println(m.Series, m.Dist)
//
// Queries and results are in the dataset's original units; normalization
// is handled internally.
package onex

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/ts"
)

// Config tunes Open.
type Config struct {
	// ST is the per-point similarity threshold in normalized [0,1] units
	// (the dataset is min-max normalized before grouping, and a group of
	// length-l windows uses the absolute threshold ST*l). Zero selects the
	// data-driven "balanced" recommendation automatically (paper §3.3).
	ST float64
	// MinLength/MaxLength bound the indexed subsequence lengths.
	// Defaults: MinLength 2; MaxLength = longest series. Narrow these for
	// large collections: the subsequence population grows quadratically
	// with series length.
	MinLength, MaxLength int
	// Band is the Sakoe-Chiba width for all DTW comparisons (negative =
	// unconstrained; 0 means the default of max(4, MaxLength/10)).
	Band int
	// Exact switches the engine to certified-exact search; default is the
	// paper's approximate mode.
	Exact bool
	// Workers bounds build parallelism (0 = GOMAXPROCS).
	Workers int
	// KeepRaw skips min-max normalization; ST is then in raw units.
	KeepRaw bool
}

// DB is an opened ONEX database: a normalized dataset plus its base and
// query engine. DB is safe for concurrent readers.
type DB struct {
	raw    *ts.Dataset // original units (clone of what the caller gave us)
	normed *ts.Dataset // what the engine sees
	base   *grouping.Base
	engine *core.Engine
	cfg    Config
}

// Match is one similarity result, reported in original units.
type Match struct {
	// Series is the name of the matched series.
	Series string
	// Start and Length locate the matched window within Series.
	Start, Length int
	// Dist is the length-normalized DTW distance (raw DTW divided by the
	// longer of query and match) in normalized units, directly comparable
	// with the per-point Config.ST.
	Dist float64
	// Values is the matched window in original units.
	Values []float64
	// Path is the DTW warping path: pairs of (query index, match index),
	// the raw material of the demo's warped-points view.
	Path [][2]int
}

// Pattern is one seasonal-query result in public form.
type Pattern struct {
	Series      string
	Length      int
	Starts      []int
	MeanGap     float64
	Occurrences int
}

// GroupInfo summarizes one similarity group for overview panes.
type GroupInfo struct {
	Length int
	Count  int
	// Rep is the representative shape in original units.
	Rep []float64
}

// Recommendation re-exports a threshold suggestion.
type Recommendation = core.Recommendation

// Open normalizes (a clone of) the dataset, chooses or accepts a
// similarity threshold, builds the ONEX base, and returns a ready DB.
func Open(d *ts.Dataset, cfg Config) (*DB, error) {
	if d == nil {
		return nil, errors.New("onex: Open: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	raw := d.Clone()
	normed := d.Clone()
	if !cfg.KeepRaw {
		if err := ts.NormalizeMinMax(normed); err != nil {
			return nil, fmt.Errorf("onex: Open: %w", err)
		}
	}
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = normed.MaxLen()
	}
	if cfg.MinLength < 2 {
		cfg.MinLength = 2
	}
	if cfg.Band == 0 {
		cfg.Band = maxInt(4, cfg.MaxLength/10)
	}
	if cfg.ST <= 0 {
		recs, err := core.RecommendThresholds(normed, core.ThresholdOptions{})
		if err != nil {
			return nil, fmt.Errorf("onex: Open: auto threshold: %w", err)
		}
		for _, r := range recs {
			if r.Label == "balanced" {
				cfg.ST = r.ST
			}
		}
		if cfg.ST <= 0 {
			cfg.ST = recs[len(recs)-1].ST
		}
	}
	base, err := grouping.Build(normed, grouping.Options{
		ST:        cfg.ST,
		MinLength: cfg.MinLength,
		MaxLength: cfg.MaxLength,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	mode := core.ModeApprox
	if cfg.Exact {
		mode = core.ModeExact
	}
	engine, err := core.NewEngine(normed, base, core.Options{
		Band:       cfg.Band,
		Mode:       mode,
		LengthNorm: true, // rank variable-length matches fairly
	})
	if err != nil {
		return nil, fmt.Errorf("onex: Open: %w", err)
	}
	return &DB{raw: raw, normed: normed, base: base, engine: engine, cfg: cfg}, nil
}

// OpenFile loads a dataset file (.csv, .json, or UCR text) and opens it.
func OpenFile(path string, cfg Config) (*DB, error) {
	d, err := ts.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenFile: %w", err)
	}
	return Open(d, cfg)
}

// LoadDataset loads a dataset file without opening a DB (for inspection or
// generator output round-trips).
func LoadDataset(path string) (*ts.Dataset, error) { return ts.LoadFile(path) }

// Config returns the effective configuration (thresholds resolved).
func (db *DB) Config() Config { return db.cfg }

// Dataset returns the dataset in original units.
func (db *DB) Dataset() *ts.Dataset { return db.raw }

// ST returns the similarity threshold in effect (normalized units).
func (db *DB) ST() float64 { return db.cfg.ST }

// Stats describes the built base.
type Stats struct {
	Series          int
	Subsequences    int
	Groups          int
	CompactionRatio float64
	BuildMillis     int64
}

// Stats returns base-construction statistics.
func (db *DB) Stats() Stats {
	return Stats{
		Series:          db.normed.Len(),
		Subsequences:    db.base.NumSubsequences(),
		Groups:          db.base.NumGroups(),
		CompactionRatio: db.base.CompactionRatio(),
		BuildMillis:     db.base.BuildStats.Duration.Milliseconds(),
	}
}

// normalizeQuery maps a query in original units into the engine's space.
func (db *DB) normalizeQuery(q []float64) []float64 {
	if db.cfg.KeepRaw {
		out := make([]float64, len(q))
		copy(out, q)
		return out
	}
	span := db.normed.Norm.Max - db.normed.Norm.Min
	out := make([]float64, len(q))
	for i, v := range q {
		if span == 0 {
			out[i] = 0
		} else {
			out[i] = (v - db.normed.Norm.Min) / span
		}
	}
	return out
}

func (db *DB) publicMatch(m core.Match) Match {
	values, _ := ts.DenormalizeValues(db.normed, m.Ref.Series, m.Values)
	path := make([][2]int, len(m.Path))
	for i, st := range m.Path {
		path[i] = [2]int{st.I, st.J}
	}
	return Match{
		Series: db.normed.At(m.Ref.Series).Name,
		Start:  m.Ref.Start,
		Length: m.Ref.Length,
		Dist:   m.Score, // length-normalized; comparable with Config.ST
		Values: values,
		Path:   path,
	}
}

// BestMatch finds the most similar indexed subsequence to an ad-hoc query
// given in original units.
func (db *DB) BestMatch(q []float64) (Match, error) {
	m, err := db.engine.BestMatch(db.normalizeQuery(q))
	if err != nil {
		return Match{}, err
	}
	return db.publicMatch(m), nil
}

// KBestMatches returns the k most similar indexed subsequences.
func (db *DB) KBestMatches(q []float64, k int) ([]Match, error) {
	ms, err := db.engine.KBestMatches(db.normalizeQuery(q), k)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = db.publicMatch(m)
	}
	return out, nil
}

// BestMatchForSeries runs the demo's similarity flow: take the window
// [start, start+length) of the named series as the query and find the most
// similar window elsewhere (the query's own overlapping windows are
// excluded).
func (db *DB) BestMatchForSeries(seriesName string, start, length int) (Match, error) {
	si := db.normed.IndexOf(seriesName)
	if si < 0 {
		return Match{}, fmt.Errorf("onex: unknown series %q", seriesName)
	}
	self := ts.SubSeq{Series: si, Start: start, Length: length}
	if err := self.Validate(db.normed); err != nil {
		return Match{}, fmt.Errorf("onex: BestMatchForSeries: %w", err)
	}
	q := self.Values(db.normed)
	m, err := db.engine.BestMatchConstrained(q, core.QueryConstraints{ExcludeOverlap: self})
	if err != nil {
		return Match{}, err
	}
	return db.publicMatch(m), nil
}

// BestMatchOtherSeries is BestMatchForSeries but excludes the whole source
// series, answering "which other state looks most like MA?".
func (db *DB) BestMatchOtherSeries(seriesName string, start, length int) (Match, error) {
	si := db.normed.IndexOf(seriesName)
	if si < 0 {
		return Match{}, fmt.Errorf("onex: unknown series %q", seriesName)
	}
	self := ts.SubSeq{Series: si, Start: start, Length: length}
	if err := self.Validate(db.normed); err != nil {
		return Match{}, fmt.Errorf("onex: BestMatchOtherSeries: %w", err)
	}
	q := self.Values(db.normed)
	m, err := db.engine.BestMatchConstrained(q, core.QueryConstraints{
		ExcludeSeries: map[int]bool{si: true},
	})
	if err != nil {
		return Match{}, err
	}
	return db.publicMatch(m), nil
}

// Seasonal finds repeating patterns within one series (paper §3.3,
// Fig 4).
func (db *DB) Seasonal(seriesName string, minLen, maxLen, minOccurrences int) ([]Pattern, error) {
	pats, err := db.engine.Seasonal(seriesName, core.SeasonalOptions{
		MinLength:      minLen,
		MaxLength:      maxLen,
		MinOccurrences: minOccurrences,
		Dedup:          true, // suppress sub-window duplicates across lengths
	})
	if err != nil {
		return nil, err
	}
	out := make([]Pattern, len(pats))
	for i, p := range pats {
		starts := make([]int, len(p.Occurrences))
		for j, o := range p.Occurrences {
			starts[j] = o.Start
		}
		out[i] = Pattern{
			Series:      seriesName,
			Length:      p.Length,
			Starts:      starts,
			MeanGap:     p.MeanGap,
			Occurrences: len(p.Occurrences),
		}
	}
	return out, nil
}

// Overview returns the top-k groups of the given length (length 0
// auto-selects, k<=0 returns all), representatives in original units.
func (db *DB) Overview(length, k int) []GroupInfo {
	sums := db.engine.Overview(length, k)
	out := make([]GroupInfo, len(sums))
	for i, s := range sums {
		rep, _ := ts.DenormalizeValues(db.normed, 0, s.Rep)
		out[i] = GroupInfo{Length: s.Group.Length, Count: s.Count, Rep: rep}
	}
	return out
}

// RecommendThresholds surfaces the data-driven threshold suggestions for
// the (normalized) dataset.
func (db *DB) RecommendThresholds() ([]Recommendation, error) {
	return core.RecommendThresholds(db.normed, core.ThresholdOptions{})
}

// RecommendForDataset computes threshold recommendations for a dataset
// before opening it, in the normalized units Open will use, so the chosen
// ST can be passed straight into Config.ST. The dataset is not modified.
func RecommendForDataset(d *ts.Dataset) ([]Recommendation, error) {
	if d == nil {
		return nil, errors.New("onex: RecommendForDataset: nil dataset")
	}
	c := d.Clone()
	if err := ts.NormalizeMinMax(c); err != nil {
		return nil, fmt.Errorf("onex: RecommendForDataset: %w", err)
	}
	return core.RecommendThresholds(c, core.ThresholdOptions{})
}

// SeriesNames lists the dataset's series in order.
func (db *DB) SeriesNames() []string {
	out := make([]string, db.raw.Len())
	for i, s := range db.raw.Series {
		out[i] = s.Name
	}
	return out
}

// SeriesValues returns a copy of the named series in original units.
func (db *DB) SeriesValues(name string) ([]float64, error) {
	s, ok := db.raw.ByName(name)
	if !ok {
		return nil, fmt.Errorf("onex: unknown series %q", name)
	}
	out := make([]float64, s.Len())
	copy(out, s.Values)
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
