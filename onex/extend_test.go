package onex

import (
	"math"
	"path/filepath"
	"testing"
)

func TestWithinThresholdPublic(t *testing.T) {
	db := openSmall(t)
	raw, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	q := raw[0:8]
	ms, err := db.WithinThreshold(q, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("self window should be within any threshold")
	}
	for i, m := range ms {
		if m.Dist > 0.05+1e-9 {
			t.Fatalf("match %d beyond threshold: %g", i, m.Dist)
		}
		if i > 0 && ms[i-1].Dist > m.Dist {
			t.Fatal("results out of order")
		}
	}
	// Larger thresholds can only grow the set.
	more, err := db.WithinThreshold(q, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) < len(ms) {
		t.Fatal("looser threshold shrank the result set")
	}
	// Limit honored.
	lim, err := db.WithinThreshold(q, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim) > 2 {
		t.Fatal("limit ignored")
	}
}

func TestCommonPatternsPublic(t *testing.T) {
	db := openSmall(t)
	shapes := db.CommonPatterns(2, 0, 0, 5)
	if len(shapes) == 0 {
		t.Fatal("MATTERS regional structure should yield cross-series shapes")
	}
	if len(shapes) > 5 {
		t.Fatal("k ignored")
	}
	for _, s := range shapes {
		if len(s.Series) < 2 {
			t.Fatalf("shape spans %d series", len(s.Series))
		}
		if len(s.Rep) != s.Length || s.TotalMembers < len(s.Series) {
			t.Fatalf("malformed shape %+v", s)
		}
		seen := map[string]bool{}
		for _, n := range s.Series {
			if seen[n] {
				t.Fatal("duplicate series name")
			}
			seen[n] = true
		}
	}
}

func TestSimilaritySweepPublic(t *testing.T) {
	db := openSmall(t)
	raw, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := db.SimilaritySweep(raw[0:8], []float64{0.02, 0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Matches > pts[i].Matches {
			t.Fatal("sweep not monotone")
		}
	}
	if pts[len(pts)-1].Matches == 0 {
		t.Fatal("no matches at the loosest threshold despite self window")
	}
}

func TestThresholdDistributionPublic(t *testing.T) {
	db := openSmall(t)
	dists, probe, recs, err := db.ThresholdDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) == 0 || probe < 2 || len(recs) != 3 {
		t.Fatalf("distribution shape: %d dists, probe %d, %d recs", len(dists), probe, len(recs))
	}
	// Sorted ascending, and the recommended STs sit inside the sample range.
	for i := 1; i < len(dists); i++ {
		if dists[i-1] > dists[i] {
			t.Fatal("distances not sorted")
		}
	}
	for _, r := range recs {
		if r.ST < dists[0]-1e-9 || r.ST > dists[len(dists)-1]+1e-9 {
			t.Fatalf("recommendation %g outside sample range [%g, %g]",
				r.ST, dists[0], dists[len(dists)-1])
		}
	}
}

func TestGroupMembersPublic(t *testing.T) {
	db := openSmall(t)
	ov := db.Overview(6, 1)
	if len(ov) == 0 {
		t.Fatal("no overview")
	}
	members, err := db.GroupMembers(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != ov[0].Count {
		t.Fatalf("members %d != overview count %d", len(members), ov[0].Count)
	}
	for i, m := range members {
		if m.Length != 6 || len(m.Values) != 6 {
			t.Fatalf("malformed member %+v", m)
		}
		if i > 0 && members[i-1].RepED > m.RepED {
			t.Fatal("members not sorted")
		}
	}
	if _, err := db.GroupMembers(6, 1<<20); err == nil {
		t.Fatal("out-of-range group accepted")
	}
}

func TestLengthSummariesPublic(t *testing.T) {
	db := openSmall(t)
	ls := db.LengthSummaries()
	if len(ls) == 0 {
		t.Fatal("no length summaries")
	}
	total := 0
	for _, s := range ls {
		total += s.Subsequences
	}
	if total != db.Stats().Subsequences {
		t.Fatalf("summaries total %d != stats %d", total, db.Stats().Subsequences)
	}
}

func TestAddSeriesPublic(t *testing.T) {
	db := openSmall(t)
	before := db.Stats()

	// A near-clone of MA shifted by epsilon: after insertion it must be
	// MA's nearest other series.
	maVals, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	clone := make([]float64, len(maVals))
	for i, v := range maVals {
		clone[i] = v + 0.0001
	}
	if err := db.AddSeries("MA2", clone); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.Series != before.Series+1 {
		t.Fatalf("series count %d, want %d", after.Series, before.Series+1)
	}
	if after.Subsequences <= before.Subsequences {
		t.Fatal("no subsequences indexed for the new series")
	}
	m, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series != "MA2" {
		t.Fatalf("nearest other series = %s, want the inserted clone", m.Series)
	}
	if m.Dist > 0.01 {
		t.Fatalf("clone distance %g unexpectedly large", m.Dist)
	}
	// The new series is queryable as a source too.
	if _, err := db.BestMatchForSeries("MA2", 0, 6); err != nil {
		t.Fatal(err)
	}
}

func TestAddSeriesValidation(t *testing.T) {
	db := openSmall(t)
	if err := db.AddSeries("", []float64{1, 2}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := db.AddSeries("X", nil); err == nil {
		t.Fatal("empty values accepted")
	}
	if err := db.AddSeries("MA", []float64{1, 2, 3}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Failed adds must not corrupt the DB.
	if _, err := db.BestMatchForSeries("MA", 0, 6); err != nil {
		t.Fatalf("db corrupted after rejected adds: %v", err)
	}
}

func TestAddSeriesOutOfRangeValues(t *testing.T) {
	db := openSmall(t)
	// Values far beyond the normalization range map outside [0,1] but must
	// still index and validate.
	big := make([]float64, 16)
	for i := range big {
		big[i] = 1e4 + float64(i)
	}
	if err := db.AddSeries("huge", big); err != nil {
		t.Fatal(err)
	}
	m, err := db.BestMatchForSeries("huge", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Dist) {
		t.Fatal("NaN distance after out-of-range insert")
	}
}

func TestSaveAndOpenWithBase(t *testing.T) {
	d := smallMatters(t)
	db, err := Open(d, Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "growth.base")
	if err := db.SaveBase(path); err != nil {
		t.Fatal(err)
	}

	// Reopen from the saved base: same stats, same query answers.
	db2, err := OpenWithBase(d, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats().Groups != db.Stats().Groups ||
		db2.Stats().Subsequences != db.Stats().Subsequences {
		t.Fatalf("reopened base differs: %+v vs %+v", db2.Stats(), db.Stats())
	}
	if db2.ST() != db.ST() {
		t.Fatalf("ST drifted: %g vs %g", db2.ST(), db.ST())
	}
	m1, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db2.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Series != m2.Series || math.Abs(m1.Dist-m2.Dist) > 1e-12 {
		t.Fatalf("answers differ after reload: %+v vs %+v", m1, m2)
	}

	// A different dataset must be rejected by checksum.
	other := smallMatters(t)
	other.Series[0].Values[0] += 1
	if _, err := OpenWithBase(other, path, Config{}); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
	if _, err := OpenWithBase(nil, path, Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := OpenWithBase(d, filepath.Join(t.TempDir(), "missing.base"), Config{}); err == nil {
		t.Fatal("missing base file accepted")
	}
}
