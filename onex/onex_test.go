package onex

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/ts"
)

func smallMatters(t testing.TB) *ts.Dataset {
	t.Helper()
	return gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
}

func openSmall(t testing.TB) *DB {
	t.Helper()
	db, err := Open(smallMatters(t), Config{MinLength: 4, MaxLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := openSmall(t)
	cfg := db.Config()
	if cfg.ST <= 0 {
		t.Fatal("auto ST not resolved")
	}
	if cfg.Band <= 0 {
		t.Fatal("default band not resolved")
	}
	st := db.Stats()
	if st.Series != 50 || st.Subsequences == 0 || st.Groups == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CompactionRatio < 1 {
		t.Fatalf("compaction %g < 1", st.CompactionRatio)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(nil, Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Open(ts.NewDataset("empty"), Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestOpenDoesNotMutateCaller(t *testing.T) {
	d := smallMatters(t)
	before := d.Series[0].Values[0]
	if _, err := Open(d, Config{MinLength: 4, MaxLength: 8}); err != nil {
		t.Fatal(err)
	}
	if d.Series[0].Values[0] != before {
		t.Fatal("Open mutated the caller's dataset")
	}
	if d.Norm.Kind != ts.NormNone {
		t.Fatal("Open normalized the caller's dataset")
	}
}

func TestBestMatchForSeriesDemoFlow(t *testing.T) {
	db := openSmall(t)
	// The demo selects MA and brushes a window; the best match must come
	// from elsewhere and carry a valid path and original-unit values.
	m, err := db.BestMatchForSeries("MA", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series == "" || m.Length != len(m.Values) {
		t.Fatalf("malformed match %+v", m)
	}
	if m.Series == "MA" {
		// Same series allowed if the window doesn't overlap; verify that.
		if m.Start < 2+8 && 2 < m.Start+m.Length {
			t.Fatal("match overlaps the query window")
		}
	}
	if len(m.Path) == 0 {
		t.Fatal("missing warping path")
	}
	if m.Dist < 0 || math.IsNaN(m.Dist) {
		t.Fatalf("bad distance %g", m.Dist)
	}
	// Values are in original units (growth percentages, not [0,1]).
	anyOutsideUnit := false
	for _, v := range m.Values {
		if v < 0 || v > 1 {
			anyOutsideUnit = true
		}
	}
	if !anyOutsideUnit {
		t.Log("warning: all match values inside [0,1]; cannot distinguish units")
	}
}

func TestBestMatchOtherSeriesExcludesSource(t *testing.T) {
	db := openSmall(t)
	m, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series == "MA" {
		t.Fatal("source series not excluded")
	}
}

func TestBestMatchAdHocQueryUnits(t *testing.T) {
	db := openSmall(t)
	// Query copied from the raw dataset (original units) must self-match
	// at distance ~0.
	raw, err := db.SeriesValues("CT")
	if err != nil {
		t.Fatal(err)
	}
	q := raw[3:10]
	m, err := db.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-9 {
		t.Fatalf("self query in original units missed: dist %g", m.Dist)
	}
	if m.Series != "CT" || m.Start != 3 {
		t.Fatalf("matched %s[%d] instead of CT[3]", m.Series, m.Start)
	}
}

func TestKBestMatches(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	ms, err := db.KBestMatches(raw[0:6], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Dist > ms[i].Dist {
			t.Fatal("matches out of order")
		}
	}
}

func TestSeasonalPublic(t *testing.T) {
	d := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 21, SamplesPerDay: 12})
	db, err := Open(d, Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	pats, err := db.Seasonal("household-00", 12, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no daily pattern found in electricity data")
	}
	p := pats[0]
	if p.Occurrences < 2 || len(p.Starts) != p.Occurrences {
		t.Fatalf("malformed pattern %+v", p)
	}
	if p.Series != "household-00" || p.Length != 12 {
		t.Fatalf("pattern identity wrong: %+v", p)
	}
}

func TestOverviewPublic(t *testing.T) {
	db := openSmall(t)
	ov := db.Overview(6, 5)
	if len(ov) == 0 || len(ov) > 5 {
		t.Fatalf("overview size %d", len(ov))
	}
	for _, g := range ov {
		if g.Length != 6 || g.Count <= 0 || len(g.Rep) != 6 {
			t.Fatalf("bad group info %+v", g)
		}
	}
}

func TestRecommendThresholdsPublic(t *testing.T) {
	db := openSmall(t)
	recs, err := db.RecommendThresholds()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recommendations = %d", len(recs))
	}
}

func TestSeriesAccessors(t *testing.T) {
	db := openSmall(t)
	names := db.SeriesNames()
	if len(names) != 50 || names[0] != "AL" {
		t.Fatalf("names = %v...", names[:3])
	}
	if _, err := db.SeriesValues("nope"); err == nil {
		t.Fatal("unknown series accepted")
	}
	vals, err := db.SeriesValues("MA")
	if err != nil || len(vals) != 16 {
		t.Fatalf("MA values: %v %v", len(vals), err)
	}
	// Returned values are a copy.
	vals[0] = 1e9
	again, _ := db.SeriesValues("MA")
	if again[0] == 1e9 {
		t.Fatal("SeriesValues aliases internal storage")
	}
}

func TestOpenFileRoundTrip(t *testing.T) {
	d := smallMatters(t)
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := ts.SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path, Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Series != 50 {
		t.Fatal("file round trip lost series")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.csv"), Config{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadDataset(path); err != nil {
		t.Fatal(err)
	}
}

func TestExactConfig(t *testing.T) {
	db, err := Open(smallMatters(t), Config{MinLength: 4, MaxLength: 6, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := db.SeriesValues("MA")
	m, err := db.BestMatch(raw[0:5])
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-9 {
		t.Fatalf("exact self query dist = %g", m.Dist)
	}
}

func TestKeepRawConfig(t *testing.T) {
	d := smallMatters(t)
	st := ts.DatasetStats(d)
	// Per-point threshold at ~1% of the raw value range keeps groups tight
	// enough that the approximate search ranks the self-match's group first.
	db, err := Open(d, Config{MinLength: 4, MaxLength: 6, KeepRaw: true, ST: st.Range() / 100})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := db.SeriesValues("MA")
	m, err := db.BestMatch(raw[0:5])
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-9 {
		t.Fatalf("raw-mode self query dist = %g", m.Dist)
	}
}
