package onex

import (
	"os"
	"strings"
	"testing"

	"repro/internal/store"
)

// openFDs counts this process's open file descriptors via /proc; tests that
// need it skip on platforms without procfs.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd table: %v", err)
	}
	return len(ents)
}

// mapsSnapshot reports whether /proc/self/maps references path.
func mapsSnapshot(t *testing.T, path string) bool {
	t.Helper()
	maps, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Skipf("no /proc maps: %v", err)
	}
	return strings.Contains(string(maps), path)
}

// TestCloseLeaksNothing opens and closes store-backed DBs repeatedly — both
// eager and mmap-backed — and asserts the fd table and address space return
// to their starting point: Close must drop the WAL fd and the snapshot
// mapping every time, or a long-lived server reopening datasets would bleed
// resources.
func TestCloseLeaksNothing(t *testing.T) {
	live, dir := openStored(t, Config{})
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	snap := store.SnapshotPath(dir)

	// Warm-up: let lazy runtime fds (poller etc.) come into existence
	// before the baseline is taken.
	for _, mmap := range []bool{false, true} {
		db, err := OpenStore(dir, Config{MmapValues: mmap})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	before := openFDs(t)
	for i := 0; i < 10; i++ {
		for _, mmap := range []bool{false, true} {
			db, err := OpenStore(dir, Config{MmapValues: mmap})
			if err != nil {
				t.Fatal(err)
			}
			if mmap && db.values != nil && db.values.Kind() == "mmap" {
				if !mapsSnapshot(t, snap) {
					t.Fatal("snapshot not in the address space while the mmap DB is open")
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if mapsSnapshot(t, snap) {
		t.Fatal("snapshot still mapped after Close: mapping leak")
	}
	if after := openFDs(t); after > before {
		t.Fatalf("fd table grew from %d to %d over open/close cycles: fd leak", before, after)
	}
}
