package onex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/ts"
)

// openStoredMmap seeds a store directory via a live DB, closes it, and
// reopens the snapshot with mmap-backed values.
func openStoredMmap(t testing.TB, cfg Config) (live, warm *DB) {
	t.Helper()
	live, dir := openStored(t, cfg)
	warm, err := OpenStore(dir, Config{MmapValues: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { warm.Close() })
	return live, warm
}

// TestOpenStoreMmapEquivalence is the mmap acceptance bar: a DB whose
// values never left the snapshot file must answer every query class
// byte-identically to the live DB that wrote it — including WAL replay of
// series ingested after the snapshot.
func TestOpenStoreMmapEquivalence(t *testing.T) {
	live, dir := openStored(t, Config{})
	if err := live.AddSeries("ingested-1", []float64{5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if err := live.AddSeries("ingested-2", []float64{120, 110, 100, 90, 80, 90, 100, 110, 120, 110, 100, 90}); err != nil {
		t.Fatal(err)
	}

	warm, err := OpenStore(dir, Config{MmapValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	sameResults(t, live, warm)

	if warm.values == nil {
		t.Fatal("mmap open produced no ValueSource")
	}
	// Residency split under min-max normalization: the raw view stays on
	// the mapping, the engine's normalized view is materialized on the heap
	// (the mapping is read-only).
	if warm.raw.Source == nil {
		t.Fatal("raw dataset does not reference the mapping")
	}
	if warm.normed.Source != nil {
		t.Fatal("normalized view claims to be mapped; min-max must materialize")
	}

	st, ok := warm.StoreStatus()
	if !ok {
		t.Fatal("no store status")
	}
	if st.ValuesKind != "mmap" && st.ValuesKind != "mmap-fallback" {
		t.Fatalf("ValuesKind = %q", st.ValuesKind)
	}
	if st.MappedBytes <= 0 {
		t.Fatalf("MappedBytes = %d", st.MappedBytes)
	}
	if st.MappedResidentBytes < -1 || st.MappedResidentBytes > st.MappedBytes {
		t.Fatalf("MappedResidentBytes = %d of %d", st.MappedResidentBytes, st.MappedBytes)
	}
}

// TestMmapKeepRawFullyPaged: with no normalization there is nothing to
// materialize — the engine view must alias the mapped raw values, so the
// whole dataset stays pageable.
func TestMmapKeepRawFullyPaged(t *testing.T) {
	d := smallMatters(t)
	stats := ts.DatasetStats(d)
	dir := t.TempDir()
	eng, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live, err := Open(d, Config{MinLength: 4, MaxLength: 10, KeepRaw: true, ST: stats.Range() / 100, Store: eng})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })

	warm, err := OpenStore(dir, Config{MmapValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.normed.Source == nil {
		t.Fatal("KeepRaw engine view not sharing the mapping")
	}
	for i := range warm.raw.Series {
		rv, nv := warm.raw.Series[i].Values, warm.normed.Series[i].Values
		if len(rv) == 0 || &rv[0] != &nv[0] {
			t.Fatalf("series %d: engine view copied instead of aliased", i)
		}
	}
	sameResults(t, live, warm)
}

// TestMmapCloseSemantics: unlike an eager store-backed DB (which keeps
// serving from the heap after Close), closing an mmap-backed DB releases
// the only copy of the values — every later query must refuse with
// ErrMmapClosed rather than touch unmapped memory.
func TestMmapCloseSemantics(t *testing.T) {
	_, warm := openStoredMmap(t, Config{})
	ctx := context.Background()
	q, err := warm.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := warm.Find(ctx, Query{Values: q[0:8], K: 2}); !errors.Is(err, ErrMmapClosed) {
		t.Fatalf("Find after Close = %v, want ErrMmapClosed", err)
	}
	if _, err := warm.Analyze(ctx, Analysis{Kind: AnalysisLengthSummaries}); !errors.Is(err, ErrMmapClosed) {
		t.Fatalf("Analyze after Close = %v, want ErrMmapClosed", err)
	}
	if _, err := warm.Stream(ctx, Query{Values: q[0:8], K: 2}); !errors.Is(err, ErrMmapClosed) {
		t.Fatalf("Stream after Close = %v, want ErrMmapClosed", err)
	}
	if _, err := warm.SeriesValues("MA"); !errors.Is(err, ErrMmapClosed) {
		t.Fatalf("SeriesValues after Close = %v, want ErrMmapClosed", err)
	}
	if n := warm.Dataset().Len(); n != 0 {
		t.Fatalf("Dataset after Close has %d series, want empty", n)
	}
}

// TestMmapCloseDuringQueries races Close against a storm of Finds: in-flight
// walks hold pins, so every query must either complete normally or refuse
// with ErrMmapClosed — never fault on unmapped memory. (The -race job is the
// real referee here.)
func TestMmapCloseDuringQueries(t *testing.T) {
	_, warm := openStoredMmap(t, Config{})
	q, err := warm.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := warm.Find(context.Background(), Query{Values: q[0:8], K: 2}); err != nil {
					if !errors.Is(err, ErrMmapClosed) {
						t.Errorf("Find during Close: %v", err)
					}
					return
				}
			}
		}()
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestMmapConcurrentCompaction drives ingest, queries and compaction against
// an mmap-backed DB. Every compaction atomically replaces the snapshot file
// the DB is still mapping — inode semantics must keep the old incarnation
// alive under the readers. A fresh open afterwards must match exactly.
func TestMmapConcurrentCompaction(t *testing.T) {
	live, dir := openStored(t, Config{})
	q, err := live.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil { // hand the directory to the mmap DB
		t.Fatal(err)
	}

	warm, err := OpenStore(dir, Config{MmapValues: true, CompactBytes: 1}) // compact on every ingest
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("mmap-conc-%d-%d", w, i)
				vals := make([]float64, 12)
				for j := range vals {
					vals[j] = float64(w) + float64(i)*0.1 + math.Cos(float64(j))
				}
				if err := warm.AddSeries(name, vals); err != nil {
					t.Errorf("AddSeries %s: %v", name, err)
					return
				}
				if _, err := warm.Find(context.Background(), Query{Values: q[0:8], K: 2}); err != nil {
					t.Errorf("Find during compaction: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	again, err := OpenStore(dir, Config{MmapValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	sameResults(t, warm, again)
}

// TestOpenReplicaFileMmap: the follower bootstrap path — opening a spooled
// snapshot file with mapped values — must be indistinguishable from the
// eager decode of the same file, and must close to ErrMmapClosed like any
// other mmap DB.
func TestOpenReplicaFileMmap(t *testing.T) {
	live, dir := openStored(t, Config{})
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	path := store.SnapshotPath(dir)

	eager, err := OpenReplicaFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := OpenReplicaFile(path, Config{MmapValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if !warm.IsReplica() || !eager.IsReplica() {
		t.Fatal("OpenReplicaFile did not produce replicas")
	}
	sameResults(t, eager, warm)

	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := eager.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Find(context.Background(), Query{Values: q[0:8], K: 2}); !errors.Is(err, ErrMmapClosed) {
		t.Fatalf("Find on closed mmap replica = %v, want ErrMmapClosed", err)
	}
}
