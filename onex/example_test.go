package onex_test

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/onex"
)

// Open a synthetic economic dataset and find which other state's growth
// trajectory most resembles Massachusetts'.
func ExampleOpen() {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 12})
	if err != nil {
		panic(err)
	}
	m, err := db.BestMatchOtherSeries("MA", 12, 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s matches MA's recent growth (length %d)\n", m.Series, m.Length)
	// Output: IL matches MA's recent growth (length 5)
}

// Seasonal queries surface repeating patterns inside one series: daily
// cycles in household electricity usage.
func ExampleDB_Seasonal() {
	data := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 21, SamplesPerDay: 12})
	db, err := onex.Open(data, onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		panic(err)
	}
	pats, err := db.Seasonal("household-00", 12, 12, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("found %v pattern(s); top one recurs %d times\n", len(pats) > 0, pats[0].Occurrences)
	// Output: found true pattern(s); top one recurs 15 times
}

// Analyze runs every exploration scenario from one composable request;
// here the seasonal mine of ExampleDB_Seasonal in its unified spelling,
// with the walk statistics Analyze adds.
func ExampleDB_Analyze() {
	data := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 21, SamplesPerDay: 12})
	db, err := onex.Open(data, onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		panic(err)
	}
	res, err := db.Analyze(context.Background(), onex.Analysis{
		Kind:           onex.AnalysisSeasonal,
		Series:         "household-00",
		MinOccurrences: 3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top pattern recurs %d times; visited every group: %v\n",
		res.Patterns[0].Occurrences, res.Stats.Groups == db.Stats().Groups)
	// Output: top pattern recurs 15 times; visited every group: true
}

// Threshold recommendations are data-driven: the suggested ST tracks the
// dataset's own distance distribution.
func ExampleDB_RecommendThresholds() {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		panic(err)
	}
	recs, err := db.RecommendThresholds()
	if err != nil {
		panic(err)
	}
	for _, r := range recs {
		fmt.Printf("%s: %.4f\n", r.Label, r.ST)
	}
	// Output:
	// tight: 0.0453
	// balanced: 0.0638
	// loose: 0.0877
}

// Range queries return everything within a similarity budget; sweeping the
// budget shows how the match population grows.
func ExampleDB_SimilaritySweep() {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		panic(err)
	}
	ma, err := db.SeriesValues("MA")
	if err != nil {
		panic(err)
	}
	pts, err := db.SimilaritySweep(ma[0:8], []float64{0.01, 0.05})
	if err != nil {
		panic(err)
	}
	fmt.Printf("monotone growth: %v\n", pts[0].Matches <= pts[1].Matches)
	// Output: monotone growth: true
}
