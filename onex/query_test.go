package onex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// matchKey identifies a match for cross-call comparison.
func matchKey(m Match) string {
	return fmt.Sprintf("%s[%d:%d)", m.Series, m.Start, m.Start+m.Length)
}

func sameMatch(t *testing.T, label string, a, b Match) {
	t.Helper()
	if matchKey(a) != matchKey(b) {
		t.Fatalf("%s: match %s != %s", label, matchKey(a), matchKey(b))
	}
	if math.Abs(a.Dist-b.Dist) > 1e-12 {
		t.Fatalf("%s: dist %g != %g", label, a.Dist, b.Dist)
	}
}

// TestFindEquivalenceWithWrappers pins the deprecation contract: every
// legacy method is a thin wrapper over Find, so both spellings must return
// identical answers at equal inputs.
func TestFindEquivalenceWithWrappers(t *testing.T) {
	db := openSmall(t)
	ctx := context.Background()
	raw, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	q := raw[0:8]

	m, err := db.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Find(ctx, Query{Values: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("Find K default returned %d matches", len(res.Matches))
	}
	sameMatch(t, "BestMatch", m, res.Matches[0])

	ms, err := db.KBestMatches(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Find(ctx, Query{Values: q, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(res.Matches) {
		t.Fatalf("KBestMatches %d != Find %d", len(ms), len(res.Matches))
	}
	for i := range ms {
		sameMatch(t, "KBestMatches", ms[i], res.Matches[i])
	}

	m, err = db.BestMatchForSeries("MA", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Find(ctx, Query{
		Window:  Window{Series: "MA", Start: 2, Length: 8},
		Exclude: Exclude{Self: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameMatch(t, "BestMatchForSeries", m, res.Matches[0])

	m, err = db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Find(ctx, Query{
		Window:  Window{Series: "MA", Start: 0, Length: 8},
		Exclude: Exclude{Series: []string{"MA"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameMatch(t, "BestMatchOtherSeries", m, res.Matches[0])
	if res.Matches[0].Series == "MA" {
		t.Fatal("Exclude.Series ignored")
	}

	rs, err := db.WithinThreshold(q, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Find(ctx, Query{Values: q, MaxDist: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(res.Matches) {
		t.Fatalf("WithinThreshold %d != Find range %d", len(rs), len(res.Matches))
	}
	for i := range rs {
		sameMatch(t, "WithinThreshold", rs[i], res.Matches[i])
	}
}

func TestFindEffectiveQuery(t *testing.T) {
	db := openSmall(t) // MinLength 4, MaxLength 10
	raw, _ := db.SeriesValues("MA")
	res, err := db.Find(context.Background(), Query{Values: raw[0:8]})
	if err != nil {
		t.Fatal(err)
	}
	eq := res.Query
	if eq.K != 1 {
		t.Fatalf("resolved K = %d", eq.K)
	}
	if eq.Mode != ModeApprox {
		t.Fatalf("resolved Mode = %q", eq.Mode)
	}
	if eq.Band != db.Config().Band {
		t.Fatalf("resolved Band = %d, config %d", eq.Band, db.Config().Band)
	}
	if eq.LengthNorm != NormLength {
		t.Fatalf("resolved LengthNorm = %q", eq.LengthNorm)
	}
	if eq.Lengths.Min != 4 || eq.Lengths.Max != 10 {
		t.Fatalf("resolved Lengths = %+v", eq.Lengths)
	}
}

func TestFindModeOverride(t *testing.T) {
	d := smallMatters(t)
	dbApprox, err := Open(d, Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	dbExact, err := Open(d, Config{MinLength: 4, MaxLength: 8, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := dbApprox.SeriesValues("MA")
	q := Query{
		Window:  Window{Series: "MA", Start: 0, Length: 8},
		Exclude: Exclude{Self: true},
		K:       3,
	}
	_ = raw

	// Per-query exact on an approx DB equals an exact-opened DB.
	over, err := dbApprox.Find(context.Background(), Query{
		Window: q.Window, Exclude: q.Exclude, K: q.K, Mode: ModeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Query.Mode != ModeExact {
		t.Fatalf("effective mode %q", over.Query.Mode)
	}
	want, err := dbExact.Find(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Matches) != len(want.Matches) {
		t.Fatalf("override returned %d matches, exact DB %d", len(over.Matches), len(want.Matches))
	}
	for i := range want.Matches {
		sameMatch(t, "mode override", over.Matches[i], want.Matches[i])
	}

	// The override must not stick: the next default query behaves approx.
	after, err := dbApprox.Find(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Query.Mode != ModeApprox {
		t.Fatalf("mode override leaked into DB state: %q", after.Query.Mode)
	}
}

func TestFindBandOverride(t *testing.T) {
	d := smallMatters(t)
	db, err := Open(d, Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	dbWide, err := Open(d, Config{MinLength: 4, MaxLength: 8, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := db.SeriesValues("MA")
	over, err := db.Find(context.Background(), Query{Values: raw[0:8], K: 3, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	if over.Query.Band != -1 {
		t.Fatalf("effective band %d", over.Query.Band)
	}
	want, err := dbWide.Find(context.Background(), Query{Values: raw[0:8], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Matches {
		sameMatch(t, "band override", over.Matches[i], want.Matches[i])
	}
}

func TestFindLengthNormOverride(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	q := raw[0:8]
	normed, err := db.Find(context.Background(), Query{Values: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	rawRanked, err := db.Find(context.Background(), Query{Values: q, K: 5, LengthNorm: NormRaw})
	if err != nil {
		t.Fatal(err)
	}
	if rawRanked.Query.LengthNorm != NormRaw {
		t.Fatalf("effective length norm %q", rawRanked.Query.LengthNorm)
	}
	// Any match found under both rankings must satisfy
	// raw DTW = normalized score * max(len(q), match length).
	byKey := map[string]Match{}
	for _, m := range normed.Matches {
		byKey[matchKey(m)] = m
	}
	shared := 0
	for _, rm := range rawRanked.Matches {
		nm, ok := byKey[matchKey(rm)]
		if !ok {
			continue
		}
		shared++
		denom := float64(len(q))
		if rm.Length > len(q) {
			denom = float64(rm.Length)
		}
		if math.Abs(rm.Dist-nm.Dist*denom) > 1e-9 {
			t.Fatalf("raw %g != normalized %g * %g", rm.Dist, nm.Dist, denom)
		}
	}
	if shared == 0 {
		t.Fatal("no shared matches between rankings; cannot verify relationship")
	}
}

func TestFindCancellation(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range []Query{
		{Values: raw[0:8]},
		{Values: raw[0:8], Mode: ModeExact},
		{Values: raw[0:8], MaxDist: 0.1},
	} {
		if _, err := db.Find(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("query %+v: err = %v, want context.Canceled", q, err)
		}
	}
}

func TestFindValidation(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	for name, q := range map[string]Query{
		"empty":               {},
		"values and window":   {Values: raw[0:8], Window: Window{Series: "MA", Start: 0, Length: 8}},
		"self without window": {Values: raw[0:8], Exclude: Exclude{Self: true}},
		"unknown window":      {Window: Window{Series: "nope", Start: 0, Length: 8}},
		"bad window range":    {Window: Window{Series: "MA", Start: 0, Length: 9999}},
		"unknown exclude":     {Values: raw[0:8], Exclude: Exclude{Series: []string{"nope"}}},
		"bad mode":            {Values: raw[0:8], Mode: "bogus"},
		"bad norm":            {Values: raw[0:8], LengthNorm: "bogus"},
	} {
		if _, err := db.Find(context.Background(), q); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	// nil ctx is tolerated (treated as Background).
	if _, err := db.Find(nil, Query{Values: raw[0:8]}); err != nil { //nolint:staticcheck
		t.Fatalf("nil ctx rejected: %v", err)
	}
}

func TestFindRangeSemantics(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	res, err := db.Find(context.Background(), Query{Values: raw[0:8], MaxDist: 0.1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) > 2 {
		t.Fatalf("K cap ignored in range mode: %d matches", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Dist > 0.1+1e-9 {
			t.Fatalf("match %s beyond MaxDist: %g", matchKey(m), m.Dist)
		}
	}
	// Unlimited range grows the set.
	all, err := db.Find(context.Background(), Query{Values: raw[0:8], MaxDist: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Matches) < len(res.Matches) {
		t.Fatal("unlimited range returned fewer matches than capped")
	}
}

func TestFindStats(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	res, err := db.Find(context.Background(), Query{Values: raw[0:8], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Groups <= 0 {
		t.Fatalf("stats report no groups considered: %+v", st)
	}
	if st.GroupsRefined <= 0 || st.Candidates <= 0 {
		t.Fatalf("stats report no refinement work: %+v", st)
	}
	if st.DTWs <= 0 {
		t.Fatalf("stats report no DTW work: %+v", st)
	}
	if st.WallMicros < 0 {
		t.Fatalf("negative wall time: %+v", st)
	}
	// Exact mode prunes via the certified transfer bound; the stats must
	// reflect that work too, not just the approximate LB cascade.
	exact, err := db.Find(context.Background(), Query{Values: raw[0:8], Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.GroupsPruned <= 0 {
		t.Fatalf("exact-mode stats report no pruning: %+v", exact.Stats)
	}
	// In exact mode every group is either certified-skipped or refined;
	// the counters are disjoint and must reconcile.
	if got := exact.Stats.GroupsPruned + exact.Stats.GroupsRefined; got != exact.Stats.Groups {
		t.Fatalf("exact-mode groups don't reconcile: pruned %d + refined %d != %d",
			exact.Stats.GroupsPruned, exact.Stats.GroupsRefined, exact.Stats.Groups)
	}
	// Range mode always runs the certified scan and says so.
	rng, err := db.Find(context.Background(), Query{Values: raw[0:8], MaxDist: 0.05, Mode: ModeApprox})
	if err != nil {
		t.Fatal(err)
	}
	if rng.Query.Mode != ModeExact {
		t.Fatalf("range mode echoed %q, want %q (certified)", rng.Query.Mode, ModeExact)
	}
}

func TestOpenConfigErrors(t *testing.T) {
	d := smallMatters(t)
	for name, tc := range map[string]struct {
		cfg   Config
		field string
	}{
		"min above max":      {Config{MinLength: 10, MaxLength: 5}, "MinLength"},
		"min one":            {Config{MinLength: 1}, "MinLength"},
		"negative min":       {Config{MinLength: -2}, "MinLength"},
		"negative max":       {Config{MaxLength: -3}, "MaxLength"},
		"negative workers":   {Config{Workers: -1}, "Workers"},
		"negative threshold": {Config{ST: -0.5}, "ST"},
		"nan threshold":      {Config{ST: math.NaN()}, "ST"},
	} {
		_, err := Open(d, tc.cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *ConfigError", name, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("%s: field = %q, want %q", name, ce.Field, tc.field)
		}
		if ce.Error() == "" {
			t.Fatalf("%s: empty error text", name)
		}
	}
	// OpenWithBase applies the same validation.
	if _, err := OpenWithBase(d, "irrelevant", Config{Workers: -1}); err == nil {
		t.Fatal("OpenWithBase accepted negative workers")
	}
}

// TestAddSeriesConcurrentWithFind drives queries and inserts from many
// goroutines at once; run with -race to make it meaningful. Every query
// must either succeed or report a benign no-match — never corrupt state.
func TestAddSeriesConcurrentWithFind(t *testing.T) {
	db := openSmall(t)
	raw, _ := db.SeriesValues("MA")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := db.Find(context.Background(), Query{Values: raw[0:8], K: 2}); err != nil {
					errs <- err
					return
				}
				if _, err := db.Find(context.Background(), Query{
					Window:  Window{Series: "MA", Start: 0, Length: 8},
					Exclude: Exclude{Self: true},
				}); err != nil {
					errs <- err
					return
				}
				db.Stats()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			vals := make([]float64, len(raw))
			for j, v := range raw {
				vals[j] = v + 0.001*float64(i+1)
			}
			if err := db.AddSeries(fmt.Sprintf("clone-%d", i), vals); err != nil {
				errs <- fmt.Errorf("AddSeries: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Stats().Series; got != 56 {
		t.Fatalf("series after concurrent adds = %d, want 56", got)
	}
}

func BenchmarkFind(b *testing.B) {
	db := openSmall(b)
	raw, err := db.SeriesValues("MA")
	if err != nil {
		b.Fatal(err)
	}
	q := Query{Values: raw[0:8], K: 3}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Find(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}
